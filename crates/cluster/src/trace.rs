//! Skewed, bursty request traces for routing experiments.
//!
//! Poisson traces ([`llmss_sched::TraceGenerator`]) average out quickly
//! across replicas, so every sane policy looks alike on them. Routing
//! policies separate on *adversarial* traffic: requests arriving in tight
//! bursts with heavy-tailed sizes, where a load-blind router can pile the
//! expensive requests onto one replica. [`bursty_trace`] generates exactly
//! that shape, deterministically.

use llmss_sched::{Request, TimePs};

/// Shape of a bursty, size-skewed trace.
///
/// Requests arrive in `bursts` bursts of `burst_size`, separated by
/// `burst_gap_ms` of silence. Within a burst, arrivals are 1 µs apart
/// (ordered, effectively simultaneous at serving timescales). Every
/// `heavy_every`-th request (by global index) is a heavy request with
/// `heavy` input/output token counts; the rest use `light`.
///
/// The periodic heavy placement is deliberately adversarial to
/// round-robin: when `heavy_every` is a multiple of the replica count,
/// round-robin funnels *all* heavy requests to the same replicas while
/// load-aware policies spread them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstyTraceSpec {
    /// Number of bursts.
    pub bursts: usize,
    /// Requests per burst.
    pub burst_size: usize,
    /// Idle gap between bursts, in milliseconds.
    pub burst_gap_ms: f64,
    /// Every `heavy_every`-th request is heavy (0 disables heavies).
    pub heavy_every: usize,
    /// `(input_len, output_len)` of light requests.
    pub light: (usize, usize),
    /// `(input_len, output_len)` of heavy requests.
    pub heavy: (usize, usize),
}

impl Default for BurstyTraceSpec {
    fn default() -> Self {
        Self {
            bursts: 8,
            burst_size: 25,
            burst_gap_ms: 40.0,
            heavy_every: 4,
            light: (32, 8),
            heavy: (512, 64),
        }
    }
}

impl BurstyTraceSpec {
    /// Total requests the spec generates.
    pub fn total_requests(&self) -> usize {
        self.bursts * self.burst_size
    }
}

/// Generates the bursty trace described by `spec` (see
/// [`BurstyTraceSpec`]). Fully deterministic.
///
/// # Examples
///
/// ```
/// use llmss_cluster::{bursty_trace, BurstyTraceSpec};
///
/// let trace = bursty_trace(&BurstyTraceSpec::default());
/// assert_eq!(trace.len(), 200);
/// assert!(trace.windows(2).all(|w| w[0].arrival_ps < w[1].arrival_ps));
/// ```
pub fn bursty_trace(spec: &BurstyTraceSpec) -> Vec<Request> {
    let gap_ps = (spec.burst_gap_ms * 1e9) as TimePs;
    let intra_ps: TimePs = 1_000_000; // 1 µs between arrivals in a burst
    let mut out = Vec::with_capacity(spec.total_requests());
    for burst in 0..spec.bursts {
        for slot in 0..spec.burst_size {
            let id = (burst * spec.burst_size + slot) as u64;
            let heavy = spec.heavy_every > 0 && (id as usize).is_multiple_of(spec.heavy_every);
            let (input_len, output_len) = if heavy { spec.heavy } else { spec.light };
            let arrival = burst as TimePs * gap_ps + slot as TimePs * intra_ps;
            out.push(Request::new(id, input_len, output_len, arrival));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_requests_land_periodically() {
        let spec = BurstyTraceSpec::default();
        let trace = bursty_trace(&spec);
        for (i, r) in trace.iter().enumerate() {
            let expect_heavy = i % spec.heavy_every == 0;
            assert_eq!(r.input_len == spec.heavy.0, expect_heavy, "request {i}");
        }
    }

    #[test]
    fn bursts_are_separated_by_gaps() {
        let spec = BurstyTraceSpec {
            bursts: 3,
            burst_size: 4,
            burst_gap_ms: 10.0,
            ..BurstyTraceSpec::default()
        };
        let trace = bursty_trace(&spec);
        // Last of burst 0 to first of burst 1 spans (almost) the gap.
        let intra = trace[3].arrival_ps - trace[0].arrival_ps;
        let inter = trace[4].arrival_ps - trace[3].arrival_ps;
        assert!(inter > 100 * intra);
    }

    #[test]
    fn zero_heavy_every_disables_heavies() {
        let spec = BurstyTraceSpec { heavy_every: 0, ..BurstyTraceSpec::default() };
        assert!(bursty_trace(&spec).iter().all(|r| r.input_len == spec.light.0));
    }
}
