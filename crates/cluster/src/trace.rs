//! Skewed, bursty request traces for routing experiments.
//!
//! Poisson traces ([`llmss_sched::TraceGenerator`]) average out quickly
//! across replicas, so every sane policy looks alike on them. Routing
//! policies separate on *adversarial* traffic: requests arriving in tight
//! bursts with heavy-tailed sizes, where a load-blind router can pile the
//! expensive requests onto one replica. [`bursty_trace`] generates exactly
//! that shape, deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use llmss_sched::{Request, TimePs};

/// Shape of a bursty, size-skewed trace.
///
/// Requests arrive in `bursts` bursts of `burst_size`, separated by
/// `burst_gap_ms` of silence. Within a burst, arrivals are 1 µs apart
/// (ordered, effectively simultaneous at serving timescales) unless
/// `poisson_rate_per_s` is set, in which case intra-burst gaps are drawn
/// from a seeded exponential distribution (a Poisson arrival process).
///
/// Heavy requests carry the `heavy` input/output token counts; the rest
/// use `light`. Placement is either *periodic* (every `heavy_every`-th
/// request by global index — deliberately adversarial to round-robin:
/// when `heavy_every` is a multiple of the replica count, round-robin
/// funnels *all* heavy requests to the same replicas) or *stochastic*
/// (`heavy_frac > 0`: each request is heavy with that probability,
/// seeded). The heavy/light pairs double as the long-prompt/short-decode
/// mixture knob for disaggregation experiments — see
/// [`prefill_heavy_mix`](Self::prefill_heavy_mix) and
/// [`decode_heavy_mix`](Self::decode_heavy_mix).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstyTraceSpec {
    /// Number of bursts.
    pub bursts: usize,
    /// Requests per burst.
    pub burst_size: usize,
    /// Idle gap between bursts, in milliseconds.
    pub burst_gap_ms: f64,
    /// Every `heavy_every`-th request is heavy (0 disables the periodic
    /// rule; ignored when `heavy_frac > 0`).
    pub heavy_every: usize,
    /// Probability that any given request is heavy (0.0 keeps the
    /// periodic `heavy_every` rule).
    pub heavy_frac: f64,
    /// `(input_len, output_len)` of light requests.
    pub light: (usize, usize),
    /// `(input_len, output_len)` of heavy requests.
    pub heavy: (usize, usize),
    /// Mean intra-burst arrival rate in requests/s; 0.0 keeps the fixed
    /// 1 µs spacing, > 0 draws exponential inter-arrival gaps.
    pub poisson_rate_per_s: f64,
    /// Seed for the stochastic knobs (`heavy_frac`,
    /// `poisson_rate_per_s`).
    pub seed: u64,
}

impl Default for BurstyTraceSpec {
    fn default() -> Self {
        Self {
            bursts: 8,
            burst_size: 25,
            burst_gap_ms: 40.0,
            heavy_every: 4,
            heavy_frac: 0.0,
            light: (32, 8),
            heavy: (512, 64),
            poisson_rate_per_s: 0.0,
            seed: 0,
        }
    }
}

impl BurstyTraceSpec {
    /// Total requests the spec generates.
    pub fn total_requests(&self) -> usize {
        self.bursts * self.burst_size
    }

    /// A prefill-heavy mixture: `frac` of requests carry long prompts
    /// with short decodes (the disaggregation sweet spot — big KV builds
    /// that stall co-batched decoders), the rest are light conversational
    /// requests. Arrivals within a burst follow a seeded Poisson process.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is outside `[0, 1]`.
    pub fn prefill_heavy_mix(frac: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&frac), "mixture fraction must be in [0, 1]");
        Self {
            heavy: (1024, 8), // long prompt, short decode
            light: (32, 48),
            heavy_every: 0,
            heavy_frac: frac,
            poisson_rate_per_s: 5_000.0,
            seed,
            ..Self::default()
        }
    }

    /// A decode-heavy mixture: `frac` of requests stream long outputs
    /// from short prompts (disaggregation pays for the transfer without
    /// relieving much prefill pressure).
    ///
    /// # Panics
    ///
    /// Panics if `frac` is outside `[0, 1]`.
    pub fn decode_heavy_mix(frac: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&frac), "mixture fraction must be in [0, 1]");
        Self {
            heavy: (32, 256), // short prompt, long decode
            light: (32, 48),
            heavy_every: 0,
            heavy_frac: frac,
            poisson_rate_per_s: 5_000.0,
            seed,
            ..Self::default()
        }
    }
}

/// Generates the bursty trace described by `spec` (see
/// [`BurstyTraceSpec`]). Fully deterministic: the stochastic knobs
/// (Poisson arrivals, Bernoulli heavy placement) are driven by
/// `spec.seed`, and arrivals are strictly increasing either way.
///
/// # Examples
///
/// ```
/// use llmss_cluster::{bursty_trace, BurstyTraceSpec};
///
/// let trace = bursty_trace(&BurstyTraceSpec::default());
/// assert_eq!(trace.len(), 200);
/// assert!(trace.windows(2).all(|w| w[0].arrival_ps < w[1].arrival_ps));
///
/// // Seeded Poisson arrivals + 40% long-prompt/short-decode mix.
/// let mix = bursty_trace(&BurstyTraceSpec::prefill_heavy_mix(0.4, 7));
/// assert_eq!(mix, bursty_trace(&BurstyTraceSpec::prefill_heavy_mix(0.4, 7)));
/// assert!(mix.windows(2).all(|w| w[0].arrival_ps < w[1].arrival_ps));
/// ```
pub fn bursty_trace(spec: &BurstyTraceSpec) -> Vec<Request> {
    let gap_ps = (spec.burst_gap_ms * 1e9) as TimePs;
    let intra_ps: TimePs = 1_000_000; // 1 µs between arrivals in a burst
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut out = Vec::with_capacity(spec.total_requests());
    let mut clock: TimePs = 0;
    for burst in 0..spec.bursts {
        // Poisson tails may spill past the nominal burst boundary; never
        // let a later burst start behind an earlier arrival.
        clock = clock.max(burst as TimePs * gap_ps);
        for slot in 0..spec.burst_size {
            let id = (burst * spec.burst_size + slot) as u64;
            let heavy = if spec.heavy_frac > 0.0 {
                rng.gen_bool(spec.heavy_frac)
            } else {
                spec.heavy_every > 0 && (id as usize).is_multiple_of(spec.heavy_every)
            };
            let (input_len, output_len) = if heavy { spec.heavy } else { spec.light };
            let arrival = if spec.poisson_rate_per_s > 0.0 {
                if slot > 0 {
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let gap_s = -u.ln() / spec.poisson_rate_per_s;
                    clock += ((gap_s * 1e12) as TimePs).max(1);
                }
                clock
            } else {
                burst as TimePs * gap_ps + slot as TimePs * intra_ps
            };
            clock = arrival;
            out.push(Request::new(id, input_len, output_len, arrival));
        }
        // Keep monotonicity across bursts even if a tail spilled over.
        clock += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_requests_land_periodically() {
        let spec = BurstyTraceSpec::default();
        let trace = bursty_trace(&spec);
        for (i, r) in trace.iter().enumerate() {
            let expect_heavy = i % spec.heavy_every == 0;
            assert_eq!(r.input_len == spec.heavy.0, expect_heavy, "request {i}");
        }
    }

    #[test]
    fn bursts_are_separated_by_gaps() {
        let spec = BurstyTraceSpec {
            bursts: 3,
            burst_size: 4,
            burst_gap_ms: 10.0,
            ..BurstyTraceSpec::default()
        };
        let trace = bursty_trace(&spec);
        // Last of burst 0 to first of burst 1 spans (almost) the gap.
        let intra = trace[3].arrival_ps - trace[0].arrival_ps;
        let inter = trace[4].arrival_ps - trace[3].arrival_ps;
        assert!(inter > 100 * intra);
    }

    #[test]
    fn zero_heavy_every_disables_heavies() {
        let spec = BurstyTraceSpec { heavy_every: 0, ..BurstyTraceSpec::default() };
        assert!(bursty_trace(&spec).iter().all(|r| r.input_len == spec.light.0));
    }

    #[test]
    fn poisson_arrivals_are_seeded_and_monotone() {
        let spec =
            BurstyTraceSpec { poisson_rate_per_s: 10_000.0, seed: 3, ..Default::default() };
        let a = bursty_trace(&spec);
        let b = bursty_trace(&spec);
        assert_eq!(a, b, "same seed must reproduce the same arrivals");
        assert!(a.windows(2).all(|w| w[0].arrival_ps < w[1].arrival_ps));
        // Exponential gaps vary; the fixed 1 µs spacing does not.
        let gaps: Vec<TimePs> = a[..spec.burst_size]
            .windows(2)
            .map(|w| w[1].arrival_ps - w[0].arrival_ps)
            .collect();
        let distinct: std::collections::HashSet<_> = gaps.iter().collect();
        assert!(distinct.len() > 3, "gaps look deterministic: {gaps:?}");
        let other = bursty_trace(&BurstyTraceSpec { seed: 4, ..spec });
        assert_ne!(a, other, "different seeds must differ");
    }

    #[test]
    fn mixture_fraction_controls_heavy_share() {
        let all_heavy = bursty_trace(&BurstyTraceSpec::prefill_heavy_mix(1.0, 1));
        assert!(all_heavy.iter().all(|r| r.input_len == 1024 && r.output_len == 8));
        let none_heavy = bursty_trace(&BurstyTraceSpec::prefill_heavy_mix(0.0, 1));
        assert!(none_heavy.iter().all(|r| r.input_len == 32));
        let half = bursty_trace(&BurstyTraceSpec::prefill_heavy_mix(0.5, 1));
        let heavies = half.iter().filter(|r| r.input_len == 1024).count();
        assert!(
            (60..140).contains(&heavies),
            "50% mix over 200 requests gave {heavies} heavies"
        );
    }

    #[test]
    fn decode_heavy_mix_streams_long_outputs() {
        let trace = bursty_trace(&BurstyTraceSpec::decode_heavy_mix(1.0, 9));
        assert!(trace.iter().all(|r| r.output_len == 256 && r.input_len == 32));
    }

    #[test]
    fn legacy_fixed_spacing_is_unchanged() {
        // The stochastic knobs default off: the trace shape predates them.
        let trace = bursty_trace(&BurstyTraceSpec::default());
        assert_eq!(trace[1].arrival_ps - trace[0].arrival_ps, 1_000_000);
        assert_eq!(trace[0].arrival_ps, 0);
    }
}
