//! Cluster-scale serving: a fleet of LLMServingSim replicas behind a
//! front-end router.
//!
//! The original paper simulates one serving cluster; production traffic is
//! served by *many* replicas of that cluster behind a load-balancing
//! router (the direction LLMServingSim 2.0 and TokenSim explore). This
//! crate adds that layer on top of `llmss-core`:
//!
//! * [`ClusterSimulator`] owns N independent [`ServingSimulator`]
//!   replicas and advances them in virtual time with a min-heap event
//!   loop, injecting each trace request into a replica chosen by the
//!   router at its arrival time (online request injection — replicas
//!   never see the future of the trace).
//! * [`RoutingPolicy`] is the pluggable router: round-robin,
//!   least-outstanding-requests, least-KV-load, and power-of-two-choices
//!   ship built in ([`RoutingPolicyKind`]).
//! * [`ClusterReport`] aggregates cluster-level SLO metrics — p50/p95/p99
//!   TTFT, TPOT and end-to-end latency, per-replica utilization, and
//!   load-imbalance statistics.
//!
//! # Examples
//!
//! Serve a ShareGPT-like trace on a 4-replica cluster with
//! power-of-two-choices routing:
//!
//! ```
//! use llmss_cluster::{ClusterConfig, ClusterSimulator, RoutingPolicyKind};
//! use llmss_core::SimConfig;
//! use llmss_model::ModelSpec;
//! use llmss_sched::{Dataset, TraceGenerator};
//!
//! let replica = SimConfig::new(ModelSpec::gpt2()).npu_num(1).tensor_parallel();
//! let cluster = ClusterConfig::new(4).routing(RoutingPolicyKind::PowerOfTwoChoices);
//! let trace = TraceGenerator::new(Dataset::ShareGpt, 42).rate_per_s(40.0).generate(32);
//! let report = ClusterSimulator::new(replica, cluster, trace)?.run();
//! assert_eq!(report.total_completions(), 32);
//! println!("{}", report.summary());
//! # Ok::<(), llmss_core::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod report;
mod route;
mod sim;

/// Compatibility re-export: the bursty trace generator moved to
/// `llmss_sched::workload` so every front-end (scheduler, cluster,
/// disagg, scenario files) shares one traffic-source surface. Import from
/// `llmss_sched` in new code; this alias remains for one release.
pub use llmss_sched::{bursty_trace, BurstyTraceSpec};
pub use report::{ClusterReport, ReplicaStats};
pub use route::{
    LeastKvLoad, LeastOutstanding, PowerOfTwoChoices, ReplicaRole, ReplicaSnapshot, RoundRobin,
    RoutingPolicy, RoutingPolicyKind, Sticky,
};
pub use sim::{ClusterConfig, ClusterSimulator};

/// Compatibility re-export: the lazy-invalidation ready-time heap moved
/// into `llmss_core::fleet` next to [`FleetEngine`](llmss_core::FleetEngine)
/// so every fleet driver shares it.
pub use llmss_core::ReadyHeap;
pub use llmss_core::ServingSimulator;
