//! The cluster simulator: N serving replicas behind a routing front-end,
//! as a thin composition over the core [`FleetEngine`].
//!
//! Each replica is a complete [`ServingSimulator`] (scheduler → engine
//! stack → graph converter → network DES) with its own clock; the fleet
//! engine interleaves them in virtual time and asks the control plane to
//! route each arrival. A classic cluster is exactly the engine with a
//! [`StaticControl`] plane (the router) and no KV-transfer links — this
//! type owns no event loop of its own, only the cluster-shaped
//! constructor checks and the [`ClusterReport`] assembly.

use llmss_core::{
    ConfigError, FleetEngine, ServingSimulator, SimConfig, Simulate, StaticControl, Telemetry,
};
use llmss_sched::{Request, TimePs};

use crate::{ClusterReport, ReplicaRole, RoutingPolicyKind};

/// Cluster-level configuration: fleet size and routing.
///
/// # Examples
///
/// ```
/// use llmss_cluster::{ClusterConfig, RoutingPolicyKind};
///
/// let cfg = ClusterConfig::new(8)
///     .routing(RoutingPolicyKind::LeastOutstanding)
///     .seed(7);
/// assert_eq!(cfg.replicas, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of serving replicas (≥ 1).
    pub replicas: usize,
    /// Routing policy for the front-end.
    pub routing: RoutingPolicyKind,
    /// Seed for randomized routing policies (power-of-two-choices).
    pub seed: u64,
}

impl ClusterConfig {
    /// A cluster of `replicas` replicas with round-robin routing.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn new(replicas: usize) -> Self {
        assert!(replicas > 0, "a cluster needs at least one replica");
        Self { replicas, routing: RoutingPolicyKind::RoundRobin, seed: 0 }
    }

    /// Sets the routing policy.
    pub fn routing(mut self, routing: RoutingPolicyKind) -> Self {
        self.routing = routing;
        self
    }

    /// Sets the routing seed (power-of-two-choices sampling).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A fleet of serving replicas behind a router, advanced in virtual time
/// by the core [`FleetEngine`].
#[derive(Debug)]
pub struct ClusterSimulator {
    engine: FleetEngine,
    /// Per-replica serving role, frozen at construction (a static
    /// cluster never reshapes).
    roles: Vec<ReplicaRole>,
    routing: RoutingPolicyKind,
}

impl ClusterSimulator {
    /// Builds a cluster of identical replicas from one replica
    /// configuration and a global request trace.
    ///
    /// The trace is *not* pre-partitioned: requests are injected online,
    /// at their arrival times, into the replica the router picks.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the replica configuration cannot be
    /// realized (invalid parallelism, model does not fit, ...).
    pub fn new(
        replica_config: SimConfig,
        cluster: ClusterConfig,
        trace: Vec<Request>,
    ) -> Result<Self, ConfigError> {
        let configs = vec![replica_config; cluster.replicas];
        Self::heterogeneous(configs, cluster, trace)
    }

    /// Builds a cluster of *heterogeneous* replicas: one [`SimConfig`]
    /// per replica, so the fleet may mix batch limits, KV capacities,
    /// hardware shapes — and serving roles ([`ReplicaRole`], derived from
    /// each config's scheduler mode). The router only offers replicas
    /// whose role accepts fresh arrivals; decode-role replicas take no
    /// fresh work and idle here, since only `llmss-disagg`'s
    /// `DisaggSimulator` wires up the KV-transfer links that feed them.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when any replica configuration cannot be
    /// realized.
    ///
    /// # Panics
    ///
    /// Panics if `configs.len() != cluster.replicas`; if any replica is
    /// prefill-only (a plain cluster has no KV handoff, so its requests
    /// would silently complete with truncated output — use
    /// `DisaggSimulator`); or if the trace is non-empty and no replica
    /// accepts arrivals (an all-decode fleet can never serve it).
    pub fn heterogeneous(
        configs: Vec<SimConfig>,
        cluster: ClusterConfig,
        trace: Vec<Request>,
    ) -> Result<Self, ConfigError> {
        assert_eq!(
            configs.len(),
            cluster.replicas,
            "cluster declares {} replicas but {} configs were provided",
            cluster.replicas,
            configs.len()
        );
        let roles: Vec<ReplicaRole> = configs.iter().map(|c| c.mode.into()).collect();
        // A plain cluster has no KV handoff: a prefill-only replica would
        // accept arrivals and silently "complete" them at end-of-prefill
        // with one token instead of output_len. Refuse rather than report
        // a healthy-looking run with truncated generation.
        assert!(
            !roles.contains(&ReplicaRole::Prefill),
            "prefill-only replicas complete at end-of-prefill with no KV handoff; \
             disaggregated fleets need llmss-disagg's DisaggSimulator"
        );
        assert!(
            trace.is_empty() || roles.iter().any(ReplicaRole::accepts_arrivals),
            "no replica accepts arrivals: an all-decode fleet cannot serve the trace"
        );
        // A linkless fleet never pairs, so the pairer is unreachable; any
        // deterministic policy satisfies StaticControl's signature.
        let control = StaticControl::new(
            cluster.routing.build(cluster.seed),
            RoutingPolicyKind::LeastKvLoad.build(cluster.seed),
        );
        let engine = FleetEngine::new(configs, Vec::new(), Box::new(control), trace)?;
        Ok(Self { engine, roles, routing: cluster.routing })
    }

    /// Attaches a telemetry handle; the engine fans it out per replica.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.engine.set_telemetry(telemetry);
    }

    /// Sets the worker-thread budget for windowed fleet stepping
    /// (byte-identical outcomes under any value; 1 = serial).
    pub fn set_shards(&mut self, shards: usize) {
        self.engine.set_shards(shards);
    }

    /// Arms the cluster-wide shared reuse cache: homogeneous replicas
    /// warm one iteration/op cache instead of N private ones.
    pub fn enable_shared_cache(&mut self) {
        self.engine.enable_shared_cache();
    }

    /// The routing policy driving this cluster.
    pub fn policy_name(&self) -> &'static str {
        self.routing.as_str()
    }

    /// Per-replica serving roles, by replica index.
    pub fn roles(&self) -> &[ReplicaRole] {
        &self.roles
    }

    /// The replicas (for inspection between steps).
    pub fn replicas(&self) -> &[ServingSimulator] {
        self.engine.sims()
    }

    /// `(request id, replica)` assignments made so far, in routing order.
    pub fn assignments(&self) -> &[(u64, usize)] {
        self.engine.assignments()
    }

    /// Injects one request online: it queues at the front end and is
    /// routed when the cluster's virtual time reaches its arrival
    /// (immediately, if time is already past it).
    pub fn push_request(&mut self, request: Request) {
        self.engine.push_request(request);
    }

    /// The earliest virtual time the next [`step`](Self::step) would act
    /// (an arrival to route or a replica iteration), or `None` when the
    /// cluster has fully drained.
    pub fn next_ready_ps(&self) -> Option<TimePs> {
        self.engine.next_ready_ps()
    }

    /// The cluster's virtual clock: the furthest replica clock.
    pub fn clock_ps(&self) -> TimePs {
        self.engine.clock_ps()
    }

    /// Requests fully served across all replicas so far.
    pub fn completed_requests(&self) -> usize {
        self.engine.completed_requests()
    }

    /// Processes the earliest virtual-time event: routes one arrival or
    /// runs one replica iteration. Returns `false` when the trace is
    /// drained and every replica is idle.
    pub fn step(&mut self) -> bool {
        self.engine.step()
    }

    /// Runs the cluster to completion and aggregates the report.
    pub fn run(mut self) -> ClusterReport {
        while self.step() {}
        self.into_report()
    }

    /// Aggregates the report from the cluster's current state (a
    /// partially drained cluster yields a partial report).
    pub fn into_report(self) -> ClusterReport {
        let parts = self.engine.into_parts();
        let routed: Vec<usize> = parts.replicas.iter().map(|r| r.routed).collect();
        let replica_reports = parts.replicas.into_iter().map(|r| r.report).collect();
        ClusterReport::new(parts.control, replica_reports, routed, parts.assignments)
    }
}

impl Simulate for ClusterSimulator {
    type Report = ClusterReport;

    fn push_request(&mut self, request: Request) {
        ClusterSimulator::push_request(self, request);
    }

    fn next_ready_ps(&self) -> Option<TimePs> {
        ClusterSimulator::next_ready_ps(self)
    }

    fn clock_ps(&self) -> TimePs {
        ClusterSimulator::clock_ps(self)
    }

    fn completed_requests(&self) -> usize {
        ClusterSimulator::completed_requests(self)
    }

    fn step(&mut self) -> bool {
        ClusterSimulator::step(self)
    }

    fn finalize(self) -> ClusterReport {
        self.into_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmss_model::ModelSpec;
    use llmss_sched::{Dataset, TraceGenerator};

    fn replica_config() -> SimConfig {
        SimConfig::new(ModelSpec::gpt2()).npu_num(1).tensor_parallel()
    }

    fn trace(n: usize, rate: f64) -> Vec<Request> {
        TraceGenerator::new(Dataset::Alpaca, 13).rate_per_s(rate).generate(n)
    }

    #[test]
    fn single_replica_cluster_matches_standalone_simulator() {
        let t = trace(12, 40.0);
        let standalone = ServingSimulator::new(replica_config(), t.clone()).unwrap().run();
        let cluster =
            ClusterSimulator::new(replica_config(), ClusterConfig::new(1), t).unwrap().run();
        assert_eq!(cluster.total_completions(), standalone.completions.len());
        assert_eq!(cluster.makespan_ps(), standalone.sim_duration_ps);
        // Same requests, same finish times: the router layer is
        // transparent when there is nothing to balance.
        let mut a: Vec<_> = standalone.completions.clone();
        let mut b: Vec<_> = cluster.completions().cloned().collect();
        a.sort_by_key(|c| c.id);
        b.sort_by_key(|c| c.id);
        assert_eq!(a, b);
    }

    #[test]
    fn every_request_served_exactly_once_across_replicas() {
        for kind in RoutingPolicyKind::ALL {
            let cluster = ClusterSimulator::new(
                replica_config(),
                ClusterConfig::new(3).routing(kind).seed(5),
                trace(30, 100.0),
            )
            .unwrap()
            .run();
            let mut ids: Vec<u64> = cluster.completions().map(|c| c.id).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..30).collect::<Vec<u64>>(), "policy {kind}");
            assert_eq!(cluster.assignments.len(), 30);
        }
    }

    #[test]
    fn round_robin_spreads_requests_evenly() {
        let cluster =
            ClusterSimulator::new(replica_config(), ClusterConfig::new(4), trace(32, 100.0))
                .unwrap()
                .run();
        for stats in cluster.per_replica() {
            assert_eq!(stats.routed_requests, 8);
        }
    }

    #[test]
    fn arrivals_route_before_later_replica_work() {
        // A burst at t=0 followed by a straggler: the straggler must be
        // routed when the cluster's virtual time reaches its arrival,
        // seeing queue depths that reflect the burst's progress.
        let mut t = trace(8, 1_000.0);
        t.push(Request::new(8, 64, 4, 2_000_000_000)); // 2 ms
        let mut sim = ClusterSimulator::new(
            replica_config(),
            ClusterConfig::new(2).routing(RoutingPolicyKind::LeastOutstanding),
            t,
        )
        .unwrap();
        while sim.step() {}
        assert_eq!(sim.assignments().len(), 9);
    }

    #[test]
    fn heterogeneous_replicas_carry_distinct_configs() {
        // Replica 0 batches freely; replica 1 is capped at one sequence.
        // Both serve, and each iteration trace reflects its own config.
        let roomy = replica_config();
        let tight = replica_config().max_batch(1);
        let sim = ClusterSimulator::heterogeneous(
            vec![roomy, tight],
            ClusterConfig::new(2),
            trace(20, 2_000.0),
        )
        .unwrap();
        assert_eq!(sim.roles(), [ReplicaRole::Unified, ReplicaRole::Unified]);
        let report = sim.run();
        assert_eq!(report.total_completions(), 20);
        let max_batch = |r: usize| {
            report.replica_reports[r].iterations.iter().map(|it| it.batch_size).max().unwrap()
        };
        assert!(max_batch(0) > 1, "the roomy replica should batch under a burst");
        assert_eq!(max_batch(1), 1, "the capped replica must never exceed its limit");
    }

    #[test]
    fn decode_replicas_never_receive_fresh_arrivals() {
        let unified = replica_config();
        let decode = replica_config().decode_only();
        let mut sim = ClusterSimulator::heterogeneous(
            vec![unified, decode],
            ClusterConfig::new(2).routing(RoutingPolicyKind::LeastOutstanding),
            trace(10, 200.0),
        )
        .unwrap();
        assert_eq!(sim.roles()[1], ReplicaRole::Decode);
        while sim.step() {}
        assert!(
            sim.assignments().iter().all(|&(_, replica)| replica == 0),
            "the decode replica took a fresh arrival"
        );
    }

    #[test]
    #[should_panic(expected = "no KV handoff")]
    fn prefill_only_replicas_rejected_without_handoff() {
        // A plain cluster would route arrivals to the prefill replica and
        // report them "complete" with one token — refuse loudly instead.
        let _ = ClusterSimulator::heterogeneous(
            vec![replica_config().prefill_only(), replica_config()],
            ClusterConfig::new(2),
            trace(4, 100.0),
        );
    }

    #[test]
    #[should_panic(expected = "configs were provided")]
    fn mismatched_config_count_panics() {
        let _ = ClusterSimulator::heterogeneous(
            vec![replica_config()],
            ClusterConfig::new(2),
            Vec::new(),
        );
    }

    #[test]
    fn replica_clocks_stay_interleaved() {
        let mut sim =
            ClusterSimulator::new(replica_config(), ClusterConfig::new(2), trace(16, 200.0))
                .unwrap();
        let mut max_skew = 0i128;
        while sim.step() {
            let clocks: Vec<TimePs> = sim.replicas().iter().map(|r| r.clock_ps()).collect();
            // Busy replicas may drift apart by the length of the
            // iterations in flight, but the min-heap keeps them from
            // racing unboundedly ahead of one another.
            if sim.replicas().iter().all(|r| r.next_ready_ps().is_some()) {
                let skew = clocks[0] as i128 - clocks[1] as i128;
                max_skew = max_skew.max(skew.abs());
            }
        }
        // Generous bound: a single gpt2 iteration is far below 50 ms.
        assert!(max_skew < 50_000_000_000, "skew {max_skew} ps");
    }
}
