//! The cluster simulator: N serving replicas interleaved in virtual time
//! behind a routing front-end.
//!
//! Each replica is a complete [`ServingSimulator`] (scheduler → engine
//! stack → graph converter → network DES) with its own clock. The cluster
//! advances whichever event is earliest in *virtual* time:
//!
//! * **request arrival** — the router inspects replica load snapshots and
//!   injects the request into the chosen replica
//!   ([`ServingSimulator::push_request`]);
//! * **replica iteration** — the replica with the smallest
//!   [`next_ready_ps`](ServingSimulator::next_ready_ps) runs one
//!   iteration of its serving loop.
//!
//! Replica ready-times live in a min-heap with lazy invalidation: every
//! mutation bumps the replica's stamp and pushes a fresh entry; stale
//! entries are discarded on pop. Routing happens strictly in arrival
//! order, and never after a replica was stepped past the arrival — so a
//! request can join, at most, after the iteration that was already in
//! flight at its arrival instant, exactly like a real front-end queue.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use llmss_core::{ConfigError, ServingSimulator, SimConfig, Simulate};
use llmss_sched::{Request, TimePs};

use crate::{ClusterReport, ReplicaRole, ReplicaSnapshot, RoutingPolicy, RoutingPolicyKind};

/// Cluster-level configuration: fleet size and routing.
///
/// # Examples
///
/// ```
/// use llmss_cluster::{ClusterConfig, RoutingPolicyKind};
///
/// let cfg = ClusterConfig::new(8)
///     .routing(RoutingPolicyKind::LeastOutstanding)
///     .seed(7);
/// assert_eq!(cfg.replicas, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of serving replicas (≥ 1).
    pub replicas: usize,
    /// Routing policy for the front-end.
    pub routing: RoutingPolicyKind,
    /// Seed for randomized routing policies (power-of-two-choices).
    pub seed: u64,
}

impl ClusterConfig {
    /// A cluster of `replicas` replicas with round-robin routing.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn new(replicas: usize) -> Self {
        assert!(replicas > 0, "a cluster needs at least one replica");
        Self { replicas, routing: RoutingPolicyKind::RoundRobin, seed: 0 }
    }

    /// Sets the routing policy.
    pub fn routing(mut self, routing: RoutingPolicyKind) -> Self {
        self.routing = routing;
        self
    }

    /// Sets the routing seed (power-of-two-choices sampling).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A min-heap of replica ready-times with lazy invalidation: every
/// mutation re-keys the replica under a fresh stamp, and stale entries
/// are discarded on peek. This is the interleaving core shared by the
/// cluster and disaggregated simulators — any driver juggling N
/// independently-clocked [`ServingSimulator`]s can use it.
#[derive(Debug, Default)]
pub struct ReadyHeap {
    /// `(ready time, replica, stamp)` entries, earliest first.
    heap: BinaryHeap<Reverse<(TimePs, usize, u64)>>,
    /// Latest stamp per replica; heap entries with older stamps are stale.
    stamps: Vec<u64>,
    counter: u64,
}

impl ReadyHeap {
    /// An empty heap over `n` replicas.
    pub fn new(n: usize) -> Self {
        Self { heap: BinaryHeap::new(), stamps: vec![0; n], counter: 0 }
    }

    /// Re-keys `replica` after a mutation: its previous entry (if any)
    /// goes stale, and `ready` (when `Some`) becomes its live entry.
    pub fn refresh(&mut self, replica: usize, ready: Option<TimePs>) {
        self.counter += 1;
        self.stamps[replica] = self.counter;
        if let Some(t) = ready {
            self.heap.push(Reverse((t, replica, self.counter)));
        }
    }

    /// The earliest live entry, discarding stale ones.
    pub fn peek(&mut self) -> Option<(TimePs, usize)> {
        while let Some(&Reverse((t, idx, stamp))) = self.heap.peek() {
            if self.stamps[idx] == stamp {
                return Some((t, idx));
            }
            self.heap.pop();
        }
        None
    }

    /// Removes and returns the earliest live entry.
    pub fn pop(&mut self) -> Option<(TimePs, usize)> {
        let live = self.peek();
        if live.is_some() {
            self.heap.pop();
        }
        live
    }
}

/// A fleet of serving replicas behind a router, advanced in virtual time.
#[derive(Debug)]
pub struct ClusterSimulator {
    replicas: Vec<ServingSimulator>,
    /// Per-replica serving role (all [`ReplicaRole::Unified`] for the
    /// homogeneous constructor).
    roles: Vec<ReplicaRole>,
    router: Box<dyn RoutingPolicy>,
    /// Global arrival stream, earliest first (online injection source).
    arrivals: VecDeque<Request>,
    /// `(request id, replica index)` in routing order.
    assignments: Vec<(u64, usize)>,
    /// Per-replica routed-request counters.
    routed: Vec<usize>,
    /// Replica ready-times with lazy invalidation.
    heap: ReadyHeap,
}

impl ClusterSimulator {
    /// Builds a cluster of identical replicas from one replica
    /// configuration and a global request trace.
    ///
    /// The trace is *not* pre-partitioned: requests are injected online,
    /// at their arrival times, into the replica the router picks.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the replica configuration cannot be
    /// realized (invalid parallelism, model does not fit, ...).
    pub fn new(
        replica_config: SimConfig,
        cluster: ClusterConfig,
        trace: Vec<Request>,
    ) -> Result<Self, ConfigError> {
        let configs = vec![replica_config; cluster.replicas];
        Self::heterogeneous(configs, cluster, trace)
    }

    /// Builds a cluster of *heterogeneous* replicas: one [`SimConfig`]
    /// per replica, so the fleet may mix batch limits, KV capacities,
    /// hardware shapes — and serving roles ([`ReplicaRole`], derived from
    /// each config's scheduler mode). The router only offers replicas
    /// whose role accepts fresh arrivals; decode-role replicas take no
    /// fresh work and idle here, since only `llmss-disagg`'s
    /// `DisaggSimulator` implements the KV-cache handoff that feeds them.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when any replica configuration cannot be
    /// realized.
    ///
    /// # Panics
    ///
    /// Panics if `configs.len() != cluster.replicas`; if any replica is
    /// prefill-only (a plain cluster has no KV handoff, so its requests
    /// would silently complete with truncated output — use
    /// `DisaggSimulator`); or if the trace is non-empty and no replica
    /// accepts arrivals (an all-decode fleet can never serve it).
    pub fn heterogeneous(
        configs: Vec<SimConfig>,
        cluster: ClusterConfig,
        mut trace: Vec<Request>,
    ) -> Result<Self, ConfigError> {
        assert_eq!(
            configs.len(),
            cluster.replicas,
            "cluster declares {} replicas but {} configs were provided",
            cluster.replicas,
            configs.len()
        );
        let roles: Vec<ReplicaRole> = configs.iter().map(|c| c.mode.into()).collect();
        // A plain cluster has no KV handoff: a prefill-only replica would
        // accept arrivals and silently "complete" them at end-of-prefill
        // with one token instead of output_len. Refuse rather than report
        // a healthy-looking run with truncated generation.
        assert!(
            !roles.contains(&ReplicaRole::Prefill),
            "prefill-only replicas complete at end-of-prefill with no KV handoff; \
             disaggregated fleets need llmss-disagg's DisaggSimulator"
        );
        assert!(
            trace.is_empty() || roles.iter().any(ReplicaRole::accepts_arrivals),
            "no replica accepts arrivals: an all-decode fleet cannot serve the trace"
        );
        let mut replicas = Vec::with_capacity(configs.len());
        for config in configs {
            replicas.push(ServingSimulator::new(config, Vec::new())?);
        }
        trace.sort_by_key(|r| (r.arrival_ps, r.id));
        Ok(Self {
            router: cluster.routing.build(cluster.seed),
            routed: vec![0; cluster.replicas],
            heap: ReadyHeap::new(cluster.replicas),
            replicas,
            roles,
            arrivals: trace.into(),
            assignments: Vec::new(),
        })
    }

    /// The routing policy driving this cluster.
    pub fn policy_name(&self) -> &'static str {
        self.router.name()
    }

    /// Per-replica serving roles, by replica index.
    pub fn roles(&self) -> &[ReplicaRole] {
        &self.roles
    }

    /// The replicas (for inspection between steps).
    pub fn replicas(&self) -> &[ServingSimulator] {
        &self.replicas
    }

    /// `(request id, replica)` assignments made so far, in routing order.
    pub fn assignments(&self) -> &[(u64, usize)] {
        &self.assignments
    }

    /// Injects one request online: it queues at the front end and is
    /// routed when the cluster's virtual time reaches its arrival
    /// (immediately, if time is already past it).
    pub fn push_request(&mut self, request: Request) {
        let pos = self
            .arrivals
            .iter()
            .position(|r| (r.arrival_ps, r.id) > (request.arrival_ps, request.id))
            .unwrap_or(self.arrivals.len());
        self.arrivals.insert(pos, request);
    }

    /// The earliest virtual time the next [`step`](Self::step) would act
    /// (an arrival to route or a replica iteration), or `None` when the
    /// cluster has fully drained.
    pub fn next_ready_ps(&self) -> Option<TimePs> {
        let replica_ready =
            self.replicas.iter().filter_map(ServingSimulator::next_ready_ps).min();
        let arrival = self.arrivals.front().map(|r| r.arrival_ps);
        match (arrival, replica_ready) {
            (Some(a), Some(r)) => Some(a.min(r)),
            (a, r) => a.or(r),
        }
    }

    /// The cluster's virtual clock: the furthest replica clock.
    pub fn clock_ps(&self) -> TimePs {
        self.replicas.iter().map(ServingSimulator::clock_ps).max().unwrap_or(0)
    }

    /// Requests fully served across all replicas so far.
    pub fn completed_requests(&self) -> usize {
        self.replicas.iter().map(|r| r.scheduler().completions().len()).sum()
    }

    fn snapshot(&self, index: usize) -> ReplicaSnapshot {
        ReplicaSnapshot::capture(&self.replicas[index], index, self.roles[index])
    }

    /// Re-keys `replica` in the heap after a mutation.
    fn refresh(&mut self, replica: usize) {
        self.heap.refresh(replica, self.replicas[replica].next_ready_ps());
    }

    /// Processes the earliest virtual-time event: routes one arrival or
    /// runs one replica iteration. Returns `false` when the trace is
    /// drained and every replica is idle.
    pub fn step(&mut self) -> bool {
        let next_ready = self.heap.peek();
        let next_arrival = self.arrivals.front().map(|r| r.arrival_ps);
        // Arrivals route first on ties so the router always sees the
        // request before the replica simulates past its arrival time.
        let route_arrival = match (next_arrival, next_ready) {
            (Some(at), Some((rt, _))) => at <= rt,
            (Some(_), None) => true,
            (None, _) => false,
        };
        match (route_arrival, next_ready) {
            (true, _) => {
                let request = self.arrivals.pop_front().expect("checked above");
                // Offer only the replicas whose role takes fresh work.
                let snapshots: Vec<ReplicaSnapshot> = (0..self.replicas.len())
                    .filter(|&i| self.roles[i].accepts_arrivals())
                    .map(|i| self.snapshot(i))
                    .collect();
                let chosen = self.router.route(&request, &snapshots);
                assert!(
                    snapshots.iter().any(|s| s.index == chosen),
                    "router returned replica {chosen}, not one of the {} offered",
                    snapshots.len()
                );
                self.assignments.push((request.id, chosen));
                self.routed[chosen] += 1;
                self.replicas[chosen].push_request(request);
                self.refresh(chosen);
                true
            }
            (false, Some((_, idx))) => {
                self.heap.pop();
                self.replicas[idx].step();
                self.refresh(idx);
                true
            }
            (false, None) => false,
        }
    }

    /// Runs the cluster to completion and aggregates the report.
    pub fn run(mut self) -> ClusterReport {
        while self.step() {}
        self.into_report()
    }

    /// Aggregates the report from the cluster's current state (a
    /// partially drained cluster yields a partial report).
    pub fn into_report(self) -> ClusterReport {
        let policy = self.router.name().to_owned();
        let routed = self.routed;
        let replica_reports =
            self.replicas.into_iter().map(ServingSimulator::into_report).collect();
        ClusterReport::new(policy, replica_reports, routed, self.assignments)
    }
}

impl Simulate for ClusterSimulator {
    type Report = ClusterReport;

    fn push_request(&mut self, request: Request) {
        ClusterSimulator::push_request(self, request);
    }

    fn next_ready_ps(&self) -> Option<TimePs> {
        ClusterSimulator::next_ready_ps(self)
    }

    fn clock_ps(&self) -> TimePs {
        ClusterSimulator::clock_ps(self)
    }

    fn completed_requests(&self) -> usize {
        ClusterSimulator::completed_requests(self)
    }

    fn step(&mut self) -> bool {
        ClusterSimulator::step(self)
    }

    fn finalize(self) -> ClusterReport {
        self.into_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmss_model::ModelSpec;
    use llmss_sched::{Dataset, TraceGenerator};

    fn replica_config() -> SimConfig {
        SimConfig::new(ModelSpec::gpt2()).npu_num(1).tensor_parallel()
    }

    fn trace(n: usize, rate: f64) -> Vec<Request> {
        TraceGenerator::new(Dataset::Alpaca, 13).rate_per_s(rate).generate(n)
    }

    #[test]
    fn single_replica_cluster_matches_standalone_simulator() {
        let t = trace(12, 40.0);
        let standalone = ServingSimulator::new(replica_config(), t.clone()).unwrap().run();
        let cluster =
            ClusterSimulator::new(replica_config(), ClusterConfig::new(1), t).unwrap().run();
        assert_eq!(cluster.total_completions(), standalone.completions.len());
        assert_eq!(cluster.makespan_ps(), standalone.sim_duration_ps);
        // Same requests, same finish times: the router layer is
        // transparent when there is nothing to balance.
        let mut a: Vec<_> = standalone.completions.clone();
        let mut b: Vec<_> = cluster.completions().cloned().collect();
        a.sort_by_key(|c| c.id);
        b.sort_by_key(|c| c.id);
        assert_eq!(a, b);
    }

    #[test]
    fn every_request_served_exactly_once_across_replicas() {
        for kind in RoutingPolicyKind::ALL {
            let cluster = ClusterSimulator::new(
                replica_config(),
                ClusterConfig::new(3).routing(kind).seed(5),
                trace(30, 100.0),
            )
            .unwrap()
            .run();
            let mut ids: Vec<u64> = cluster.completions().map(|c| c.id).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..30).collect::<Vec<u64>>(), "policy {kind}");
            assert_eq!(cluster.assignments.len(), 30);
        }
    }

    #[test]
    fn round_robin_spreads_requests_evenly() {
        let cluster =
            ClusterSimulator::new(replica_config(), ClusterConfig::new(4), trace(32, 100.0))
                .unwrap()
                .run();
        for stats in cluster.per_replica() {
            assert_eq!(stats.routed_requests, 8);
        }
    }

    #[test]
    fn arrivals_route_before_later_replica_work() {
        // A burst at t=0 followed by a straggler: the straggler must be
        // routed when the cluster's virtual time reaches its arrival,
        // seeing queue depths that reflect the burst's progress.
        let mut t = trace(8, 1_000.0);
        t.push(Request::new(8, 64, 4, 2_000_000_000)); // 2 ms
        let mut sim = ClusterSimulator::new(
            replica_config(),
            ClusterConfig::new(2).routing(RoutingPolicyKind::LeastOutstanding),
            t,
        )
        .unwrap();
        while sim.step() {}
        assert_eq!(sim.assignments().len(), 9);
    }

    #[test]
    fn heterogeneous_replicas_carry_distinct_configs() {
        // Replica 0 batches freely; replica 1 is capped at one sequence.
        // Both serve, and each iteration trace reflects its own config.
        let roomy = replica_config();
        let tight = replica_config().max_batch(1);
        let sim = ClusterSimulator::heterogeneous(
            vec![roomy, tight],
            ClusterConfig::new(2),
            trace(20, 2_000.0),
        )
        .unwrap();
        assert_eq!(sim.roles(), [ReplicaRole::Unified, ReplicaRole::Unified]);
        let report = sim.run();
        assert_eq!(report.total_completions(), 20);
        let max_batch = |r: usize| {
            report.replica_reports[r].iterations.iter().map(|it| it.batch_size).max().unwrap()
        };
        assert!(max_batch(0) > 1, "the roomy replica should batch under a burst");
        assert_eq!(max_batch(1), 1, "the capped replica must never exceed its limit");
    }

    #[test]
    fn decode_replicas_never_receive_fresh_arrivals() {
        let unified = replica_config();
        let decode = replica_config().decode_only();
        let mut sim = ClusterSimulator::heterogeneous(
            vec![unified, decode],
            ClusterConfig::new(2).routing(RoutingPolicyKind::LeastOutstanding),
            trace(10, 200.0),
        )
        .unwrap();
        assert_eq!(sim.roles()[1], ReplicaRole::Decode);
        while sim.step() {}
        assert!(
            sim.assignments().iter().all(|&(_, replica)| replica == 0),
            "the decode replica took a fresh arrival"
        );
    }

    #[test]
    #[should_panic(expected = "no KV handoff")]
    fn prefill_only_replicas_rejected_without_handoff() {
        // A plain cluster would route arrivals to the prefill replica and
        // report them "complete" with one token — refuse loudly instead.
        let _ = ClusterSimulator::heterogeneous(
            vec![replica_config().prefill_only(), replica_config()],
            ClusterConfig::new(2),
            trace(4, 100.0),
        );
    }

    #[test]
    #[should_panic(expected = "configs were provided")]
    fn mismatched_config_count_panics() {
        let _ = ClusterSimulator::heterogeneous(
            vec![replica_config()],
            ClusterConfig::new(2),
            Vec::new(),
        );
    }

    #[test]
    fn replica_clocks_stay_interleaved() {
        let mut sim =
            ClusterSimulator::new(replica_config(), ClusterConfig::new(2), trace(16, 200.0))
                .unwrap();
        let mut max_skew = 0i128;
        while sim.step() {
            let clocks: Vec<TimePs> = sim.replicas().iter().map(|r| r.clock_ps()).collect();
            // Busy replicas may drift apart by the length of the
            // iterations in flight, but the min-heap keeps them from
            // racing unboundedly ahead of one another.
            if sim.replicas().iter().all(|r| r.next_ready_ps().is_some()) {
                let skew = clocks[0] as i128 - clocks[1] as i128;
                max_skew = max_skew.max(skew.abs());
            }
        }
        // Generous bound: a single gpt2 iteration is far below 50 ms.
        assert!(max_skew < 50_000_000_000, "skew {max_skew} ps");
    }
}
