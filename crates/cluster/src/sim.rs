//! The cluster simulator: N serving replicas interleaved in virtual time
//! behind a routing front-end.
//!
//! Each replica is a complete [`ServingSimulator`] (scheduler → engine
//! stack → graph converter → network DES) with its own clock. The cluster
//! advances whichever event is earliest in *virtual* time:
//!
//! * **request arrival** — the router inspects replica load snapshots and
//!   injects the request into the chosen replica
//!   ([`ServingSimulator::push_request`]);
//! * **replica iteration** — the replica with the smallest
//!   [`next_ready_ps`](ServingSimulator::next_ready_ps) runs one
//!   iteration of its serving loop.
//!
//! Replica ready-times live in a min-heap with lazy invalidation: every
//! mutation bumps the replica's stamp and pushes a fresh entry; stale
//! entries are discarded on pop. Routing happens strictly in arrival
//! order, and never after a replica was stepped past the arrival — so a
//! request can join, at most, after the iteration that was already in
//! flight at its arrival instant, exactly like a real front-end queue.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use llmss_core::{ConfigError, ServingSimulator, SimConfig};
use llmss_sched::{Request, TimePs};

use crate::{ClusterReport, ReplicaSnapshot, RoutingPolicy, RoutingPolicyKind};

/// Cluster-level configuration: fleet size and routing.
///
/// # Examples
///
/// ```
/// use llmss_cluster::{ClusterConfig, RoutingPolicyKind};
///
/// let cfg = ClusterConfig::new(8)
///     .routing(RoutingPolicyKind::LeastOutstanding)
///     .seed(7);
/// assert_eq!(cfg.replicas, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of serving replicas (≥ 1).
    pub replicas: usize,
    /// Routing policy for the front-end.
    pub routing: RoutingPolicyKind,
    /// Seed for randomized routing policies (power-of-two-choices).
    pub seed: u64,
}

impl ClusterConfig {
    /// A cluster of `replicas` replicas with round-robin routing.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn new(replicas: usize) -> Self {
        assert!(replicas > 0, "a cluster needs at least one replica");
        Self { replicas, routing: RoutingPolicyKind::RoundRobin, seed: 0 }
    }

    /// Sets the routing policy.
    pub fn routing(mut self, routing: RoutingPolicyKind) -> Self {
        self.routing = routing;
        self
    }

    /// Sets the routing seed (power-of-two-choices sampling).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A fleet of serving replicas behind a router, advanced in virtual time.
#[derive(Debug)]
pub struct ClusterSimulator {
    replicas: Vec<ServingSimulator>,
    router: Box<dyn RoutingPolicy>,
    /// Global arrival stream, earliest first (online injection source).
    arrivals: VecDeque<Request>,
    /// `(request id, replica index)` in routing order.
    assignments: Vec<(u64, usize)>,
    /// Per-replica routed-request counters.
    routed: Vec<usize>,
    /// Min-heap of `(ready time, replica, stamp)` with lazy invalidation.
    heap: BinaryHeap<Reverse<(TimePs, usize, u64)>>,
    /// Latest stamp per replica; heap entries with older stamps are stale.
    stamps: Vec<u64>,
    stamp_counter: u64,
}

impl ClusterSimulator {
    /// Builds a cluster of identical replicas from one replica
    /// configuration and a global request trace.
    ///
    /// The trace is *not* pre-partitioned: requests are injected online,
    /// at their arrival times, into the replica the router picks.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the replica configuration cannot be
    /// realized (invalid parallelism, model does not fit, ...).
    pub fn new(
        replica_config: SimConfig,
        cluster: ClusterConfig,
        mut trace: Vec<Request>,
    ) -> Result<Self, ConfigError> {
        let mut replicas = Vec::with_capacity(cluster.replicas);
        for _ in 0..cluster.replicas {
            replicas.push(ServingSimulator::new(replica_config.clone(), Vec::new())?);
        }
        trace.sort_by_key(|r| (r.arrival_ps, r.id));
        Ok(Self {
            router: cluster.routing.build(cluster.seed),
            routed: vec![0; cluster.replicas],
            stamps: vec![0; cluster.replicas],
            replicas,
            arrivals: trace.into(),
            assignments: Vec::new(),
            heap: BinaryHeap::new(),
            stamp_counter: 0,
        })
    }

    /// The routing policy driving this cluster.
    pub fn policy_name(&self) -> &'static str {
        self.router.name()
    }

    /// The replicas (for inspection between steps).
    pub fn replicas(&self) -> &[ServingSimulator] {
        &self.replicas
    }

    /// `(request id, replica)` assignments made so far, in routing order.
    pub fn assignments(&self) -> &[(u64, usize)] {
        &self.assignments
    }

    fn snapshot(&self, index: usize) -> ReplicaSnapshot {
        let sched = self.replicas[index].scheduler();
        ReplicaSnapshot {
            index,
            clock_ps: sched.clock_ps(),
            outstanding_requests: sched.outstanding(),
            active_sequences: sched.active_len(),
            kv_used_pages: sched.kv().used_pages(),
            kv_total_pages: sched.kv().config().total_pages(),
            completed_requests: sched.completions().len(),
        }
    }

    /// Re-keys `replica` in the heap after a mutation.
    fn refresh(&mut self, replica: usize) {
        self.stamp_counter += 1;
        self.stamps[replica] = self.stamp_counter;
        if let Some(t) = self.replicas[replica].next_ready_ps() {
            self.heap.push(Reverse((t, replica, self.stamp_counter)));
        }
    }

    /// The earliest live heap entry, discarding stale ones.
    fn peek_ready(&mut self) -> Option<(TimePs, usize)> {
        while let Some(&Reverse((t, idx, stamp))) = self.heap.peek() {
            if self.stamps[idx] == stamp {
                return Some((t, idx));
            }
            self.heap.pop();
        }
        None
    }

    /// Processes the earliest virtual-time event: routes one arrival or
    /// runs one replica iteration. Returns `false` when the trace is
    /// drained and every replica is idle.
    pub fn step(&mut self) -> bool {
        let next_ready = self.peek_ready();
        let next_arrival = self.arrivals.front().map(|r| r.arrival_ps);
        // Arrivals route first on ties so the router always sees the
        // request before the replica simulates past its arrival time.
        let route_arrival = match (next_arrival, next_ready) {
            (Some(at), Some((rt, _))) => at <= rt,
            (Some(_), None) => true,
            (None, _) => false,
        };
        match (route_arrival, next_ready) {
            (true, _) => {
                let request = self.arrivals.pop_front().expect("checked above");
                let snapshots: Vec<ReplicaSnapshot> =
                    (0..self.replicas.len()).map(|i| self.snapshot(i)).collect();
                let chosen = self.router.route(&request, &snapshots);
                assert!(
                    chosen < self.replicas.len(),
                    "router returned replica {chosen} of {}",
                    self.replicas.len()
                );
                self.assignments.push((request.id, chosen));
                self.routed[chosen] += 1;
                self.replicas[chosen].push_request(request);
                self.refresh(chosen);
                true
            }
            (false, Some((_, idx))) => {
                self.heap.pop();
                self.replicas[idx].step();
                self.refresh(idx);
                true
            }
            (false, None) => false,
        }
    }

    /// Runs the cluster to completion and aggregates the report.
    pub fn run(mut self) -> ClusterReport {
        while self.step() {}
        let policy = self.router.name().to_owned();
        let routed = self.routed;
        let replica_reports =
            self.replicas.into_iter().map(ServingSimulator::into_report).collect();
        ClusterReport::new(policy, replica_reports, routed, self.assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmss_model::ModelSpec;
    use llmss_sched::{Dataset, TraceGenerator};

    fn replica_config() -> SimConfig {
        SimConfig::new(ModelSpec::gpt2()).npu_num(1).tensor_parallel()
    }

    fn trace(n: usize, rate: f64) -> Vec<Request> {
        TraceGenerator::new(Dataset::Alpaca, 13).rate_per_s(rate).generate(n)
    }

    #[test]
    fn single_replica_cluster_matches_standalone_simulator() {
        let t = trace(12, 40.0);
        let standalone = ServingSimulator::new(replica_config(), t.clone()).unwrap().run();
        let cluster =
            ClusterSimulator::new(replica_config(), ClusterConfig::new(1), t).unwrap().run();
        assert_eq!(cluster.total_completions(), standalone.completions.len());
        assert_eq!(cluster.makespan_ps(), standalone.sim_duration_ps);
        // Same requests, same finish times: the router layer is
        // transparent when there is nothing to balance.
        let mut a: Vec<_> = standalone.completions.clone();
        let mut b: Vec<_> = cluster.completions().cloned().collect();
        a.sort_by_key(|c| c.id);
        b.sort_by_key(|c| c.id);
        assert_eq!(a, b);
    }

    #[test]
    fn every_request_served_exactly_once_across_replicas() {
        for kind in RoutingPolicyKind::ALL {
            let cluster = ClusterSimulator::new(
                replica_config(),
                ClusterConfig::new(3).routing(kind).seed(5),
                trace(30, 100.0),
            )
            .unwrap()
            .run();
            let mut ids: Vec<u64> = cluster.completions().map(|c| c.id).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..30).collect::<Vec<u64>>(), "policy {kind}");
            assert_eq!(cluster.assignments.len(), 30);
        }
    }

    #[test]
    fn round_robin_spreads_requests_evenly() {
        let cluster =
            ClusterSimulator::new(replica_config(), ClusterConfig::new(4), trace(32, 100.0))
                .unwrap()
                .run();
        for stats in cluster.per_replica() {
            assert_eq!(stats.routed_requests, 8);
        }
    }

    #[test]
    fn arrivals_route_before_later_replica_work() {
        // A burst at t=0 followed by a straggler: the straggler must be
        // routed when the cluster's virtual time reaches its arrival,
        // seeing queue depths that reflect the burst's progress.
        let mut t = trace(8, 1_000.0);
        t.push(Request::new(8, 64, 4, 2_000_000_000)); // 2 ms
        let mut sim = ClusterSimulator::new(
            replica_config(),
            ClusterConfig::new(2).routing(RoutingPolicyKind::LeastOutstanding),
            t,
        )
        .unwrap();
        while sim.step() {}
        assert_eq!(sim.assignments().len(), 9);
    }

    #[test]
    fn replica_clocks_stay_interleaved() {
        let mut sim =
            ClusterSimulator::new(replica_config(), ClusterConfig::new(2), trace(16, 200.0))
                .unwrap();
        let mut max_skew = 0i128;
        while sim.step() {
            let clocks: Vec<TimePs> = sim.replicas().iter().map(|r| r.clock_ps()).collect();
            // Busy replicas may drift apart by the length of the
            // iterations in flight, but the min-heap keeps them from
            // racing unboundedly ahead of one another.
            if sim.replicas().iter().all(|r| r.next_ready_ps().is_some()) {
                let skew = clocks[0] as i128 - clocks[1] as i128;
                max_skew = max_skew.max(skew.abs());
            }
        }
        // Generous bound: a single gpt2 iteration is far below 50 ms.
        assert!(max_skew < 50_000_000_000, "skew {max_skew} ps");
    }
}
