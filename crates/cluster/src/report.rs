//! Cluster-level results: SLO percentiles, per-replica utilization, and
//! load-imbalance statistics.

use llmss_core::{PercentileSummary, ReportOutput, SimReport, SloSummary};
use llmss_sched::{Completion, TimePs};

/// Per-replica aggregate statistics derived from its [`SimReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaStats {
    /// Replica index.
    pub replica: usize,
    /// Requests the router assigned to this replica.
    pub routed_requests: usize,
    /// Requests it finished.
    pub completions: usize,
    /// Serving iterations it ran.
    pub iterations: usize,
    /// Simulated time spent executing iterations.
    pub busy_ps: TimePs,
    /// The replica's final clock.
    pub final_clock_ps: TimePs,
    /// Prompt tokens processed.
    pub prompt_tokens: u64,
    /// Tokens generated.
    pub generated_tokens: u64,
}

impl ReplicaStats {
    /// Fraction of the cluster makespan this replica spent executing
    /// iterations (`0.0` for an empty makespan).
    pub fn utilization(&self, makespan_ps: TimePs) -> f64 {
        if makespan_ps == 0 {
            return 0.0;
        }
        self.busy_ps as f64 / makespan_ps as f64
    }
}

/// The aggregated result of one cluster simulation.
///
/// Wraps the per-replica [`SimReport`]s and derives the cluster-level
/// view: merged completions, SLO percentiles (via the shared
/// [`SloSummary`] pipeline), utilization, and imbalance.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Name of the routing policy that produced this run.
    pub policy: String,
    /// One full serving report per replica, by replica index.
    pub replica_reports: Vec<SimReport>,
    /// `(request id, replica index)` in routing order.
    pub assignments: Vec<(u64, usize)>,
    routed: Vec<usize>,
    makespan_ps: TimePs,
}

impl ClusterReport {
    /// Assembles a report from per-replica results.
    pub(crate) fn new(
        policy: String,
        replica_reports: Vec<SimReport>,
        routed: Vec<usize>,
        assignments: Vec<(u64, usize)>,
    ) -> Self {
        let makespan_ps = replica_reports.iter().map(|r| r.sim_duration_ps).max().unwrap_or(0);
        Self { policy, replica_reports, assignments, routed, makespan_ps }
    }

    /// Cluster makespan: the latest replica clock (simulated time until
    /// the last request finished anywhere).
    pub fn makespan_ps(&self) -> TimePs {
        self.makespan_ps
    }

    /// Cluster makespan in seconds.
    pub fn makespan_s(&self) -> f64 {
        self.makespan_ps as f64 / 1e12
    }

    /// All completions across replicas.
    pub fn completions(&self) -> impl Iterator<Item = &Completion> + Clone {
        self.replica_reports.iter().flat_map(|r| r.completions.iter())
    }

    /// Total requests finished cluster-wide.
    pub fn total_completions(&self) -> usize {
        self.replica_reports.iter().map(|r| r.completions.len()).sum()
    }

    /// Cluster-wide generation throughput (tokens per simulated second).
    pub fn generation_throughput(&self) -> f64 {
        let s = self.makespan_s();
        if s == 0.0 {
            return 0.0;
        }
        let tokens: u64 =
            self.replica_reports.iter().map(SimReport::total_generated_tokens).sum();
        tokens as f64 / s
    }

    /// The standard SLO percentile summaries (TTFT / TPOT / latency),
    /// cluster-wide, via the shared [`SloSummary`] pipeline.
    pub fn slo(&self) -> SloSummary {
        SloSummary::collect(self.completions())
    }

    /// p50/p95/p99 time to first token, cluster-wide (`None` with zero
    /// completions).
    pub fn ttft_percentiles(&self) -> Option<PercentileSummary> {
        SloSummary::ttft_of(self.completions())
    }

    /// p50/p95/p99 time per output token, cluster-wide (single-token
    /// requests excluded, matching [`SimReport::tpot_percentiles`];
    /// `None` when no request generated more than one token).
    pub fn tpot_percentiles(&self) -> Option<PercentileSummary> {
        SloSummary::tpot_of(self.completions())
    }

    /// p50/p95/p99 end-to-end request latency, cluster-wide (`None` with
    /// zero completions).
    pub fn latency_percentiles(&self) -> Option<PercentileSummary> {
        SloSummary::latency_of(self.completions())
    }

    /// Per-replica statistics, by replica index.
    pub fn per_replica(&self) -> Vec<ReplicaStats> {
        self.replica_reports
            .iter()
            .enumerate()
            .map(|(i, r)| ReplicaStats {
                replica: i,
                routed_requests: self.routed.get(i).copied().unwrap_or(0),
                completions: r.completions.len(),
                iterations: r.iterations.len(),
                busy_ps: r.iterations.iter().map(|it| it.latency_ps).sum(),
                final_clock_ps: r.sim_duration_ps,
                prompt_tokens: r.total_prompt_tokens(),
                generated_tokens: r.total_generated_tokens(),
            })
            .collect()
    }

    /// Load imbalance as max/mean routed requests per replica (`1.0` is
    /// perfectly balanced; only meaningful once requests were routed).
    pub fn load_imbalance(&self) -> f64 {
        let max = self.routed.iter().copied().max().unwrap_or(0);
        let total: usize = self.routed.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.routed.len() as f64;
        max as f64 / mean
    }

    /// Coefficient of variation (stddev/mean) of per-replica busy time —
    /// `0.0` when every replica worked equally long.
    pub fn utilization_imbalance(&self) -> f64 {
        let busy: Vec<f64> = self
            .replica_reports
            .iter()
            .map(|r| r.iterations.iter().map(|it| it.latency_ps as f64).sum())
            .collect();
        let mean = busy.iter().sum::<f64>() / busy.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = busy.iter().map(|b| (b - mean) * (b - mean)).sum::<f64>() / busy.len() as f64;
        var.sqrt() / mean
    }

    /// Fleet-wide reuse statistics: every replica's operator- and
    /// iteration-level counters merged, so a cluster run reports one
    /// combined hit rate for each cache tier.
    pub fn aggregate_reuse(&self) -> llmss_core::ReuseStats {
        let mut total = llmss_core::ReuseStats::default();
        for r in &self.replica_reports {
            total.merge(&r.reuse);
        }
        total
    }

    /// One-paragraph human summary (the cluster analog of
    /// [`SimReport::summary`]).
    pub fn summary(&self) -> String {
        let ttft = PercentileSummary::display_or_na(self.ttft_percentiles());
        let tpot = PercentileSummary::display_or_na(self.tpot_percentiles());
        let latency = PercentileSummary::display_or_na(self.latency_percentiles());
        let reuse = self.aggregate_reuse();
        let mut out = format!(
            "cluster policy={} replicas={} requests={} makespan={:.2}s \
             gen_tput={:.1} tok/s ttft[{ttft}] tpot[{tpot}] latency[{latency}] \
             imbalance={:.2} util_cv={:.3} op_reuse={:.1}% iter_reuse={:.1}%",
            self.policy,
            self.replica_reports.len(),
            self.total_completions(),
            self.makespan_s(),
            self.generation_throughput(),
            self.load_imbalance(),
            self.utilization_imbalance(),
            reuse.hit_rate() * 100.0,
            reuse.iteration_hit_rate() * 100.0,
        );
        if reuse.shared_armed {
            out.push_str(&format!(
                " shared_hits={} local_iter_reuse={:.1}%",
                reuse.shared_hits,
                reuse.local_iteration_hit_rate() * 100.0,
            ));
        }
        out
    }

    /// Machine-readable cluster summary as pretty-printed JSON: cluster
    /// totals, SLO percentiles, imbalance metrics, merged reuse
    /// statistics, and one entry per replica.
    ///
    /// Virtual-time results only, so the artifact is byte-identical
    /// across runs of the same seed.
    pub fn summary_json(&self) -> String {
        use llmss_core::json::obj;
        use serde::Value;

        let makespan = self.makespan_ps();
        let replicas: Vec<Value> = self
            .per_replica()
            .iter()
            .map(|s| {
                obj(vec![
                    ("index", Value::Int(s.replica as i128)),
                    ("routed", Value::Int(s.routed_requests as i128)),
                    ("completed", Value::Int(s.completions as i128)),
                    ("iterations", Value::Int(s.iterations as i128)),
                    ("busy_s", Value::Float(s.busy_ps as f64 / 1e12)),
                    ("utilization", Value::Float(s.utilization(makespan))),
                    ("prompt_tokens", Value::Int(i128::from(s.prompt_tokens))),
                    ("generated_tokens", Value::Int(i128::from(s.generated_tokens))),
                ])
            })
            .collect();
        let v = obj(vec![
            ("shape", Value::Str("cluster".into())),
            ("policy", Value::Str(self.policy.clone())),
            ("replica_count", Value::Int(self.replica_reports.len() as i128)),
            ("completions", Value::Int(self.total_completions() as i128)),
            ("assignments", Value::Int(self.assignments.len() as i128)),
            ("makespan_ps", Value::Int(self.makespan_ps() as i128)),
            ("makespan_s", Value::Float(self.makespan_s())),
            ("generation_tput_tok_s", Value::Float(self.generation_throughput())),
            ("load_imbalance", Value::Float(self.load_imbalance())),
            ("utilization_cv", Value::Float(self.utilization_imbalance())),
            ("slo", self.slo().json_value()),
            ("reuse", self.aggregate_reuse().json_value()),
            ("replicas", Value::Array(replicas)),
        ]);
        llmss_core::json::pretty(&v) + "\n"
    }

    /// Per-replica TSV (the CLI's `{output}-cluster.tsv`): one row per
    /// replica plus a `cluster` totals row carrying the SLO percentiles.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from(
            "replica\trouted\tcompleted\titerations\tbusy_s\tutilization\
             \tprompt_tok\tgen_tok\tttft_p50\tttft_p95\tttft_p99\
             \tlat_p50\tlat_p95\tlat_p99\n",
        );
        let makespan = self.makespan_ps();
        let per_replica = self.per_replica();
        for (stats, report) in per_replica.iter().zip(&self.replica_reports) {
            // A replica that finished nothing has no percentiles: dashes,
            // never NaN, so the TSV stays machine-parseable.
            let ttft = PercentileSummary::tsv_fields_or_dashes(report.ttft_percentiles());
            let lat = PercentileSummary::tsv_fields_or_dashes(report.latency_percentiles());
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{:.4}\t{:.4}\t{}\t{}\t{ttft}\t{lat}\n",
                stats.replica,
                stats.routed_requests,
                stats.completions,
                stats.iterations,
                stats.busy_ps as f64 / 1e12,
                stats.utilization(makespan),
                stats.prompt_tokens,
                stats.generated_tokens,
            ));
        }
        let ttft = PercentileSummary::tsv_fields_or_dashes(self.ttft_percentiles());
        let lat = PercentileSummary::tsv_fields_or_dashes(self.latency_percentiles());
        out.push_str(&format!(
            "cluster\t{}\t{}\t{}\t{:.4}\t{:.4}\t{}\t{}\t{ttft}\t{lat}\n",
            self.assignments.len(),
            self.total_completions(),
            per_replica.iter().map(|s| s.iterations).sum::<usize>(),
            per_replica.iter().map(|s| s.busy_ps).sum::<TimePs>() as f64 / 1e12,
            // Mean, not sum: a fleet-level utilization above 1.0 would
            // read as nonsense in the totals row.
            per_replica.iter().map(|s| s.utilization(makespan)).sum::<f64>()
                / per_replica.len().max(1) as f64,
            per_replica.iter().map(|s| s.prompt_tokens).sum::<u64>(),
            per_replica.iter().map(|s| s.generated_tokens).sum::<u64>(),
        ));
        out
    }
}

impl ReportOutput for ClusterReport {
    fn summary(&self) -> String {
        ClusterReport::summary(self)
    }

    fn artifacts(&self) -> Vec<(&'static str, String)> {
        vec![("-cluster.tsv", self.to_tsv()), ("-summary.json", self.summary_json())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmss_core::{ReuseStats, WallBreakdown};
    use llmss_sched::Completion;

    fn completion(id: u64, arrival: TimePs, first: TimePs, finish: TimePs) -> Completion {
        Completion {
            id,
            arrival_ps: arrival,
            first_token_ps: first,
            finish_ps: finish,
            input_len: 16,
            output_len: 4,
        }
    }

    fn report_with(completions: Vec<Completion>, duration: TimePs) -> SimReport {
        SimReport {
            iterations: Vec::new(),
            completions,
            wall: WallBreakdown::default(),
            reuse: ReuseStats::default(),
            sim_duration_ps: duration,
        }
    }

    fn two_replica_report() -> ClusterReport {
        ClusterReport::new(
            "round-robin".into(),
            vec![
                report_with(
                    vec![completion(0, 0, 1_000, 5_000), completion(2, 0, 2_000, 9_000)],
                    9_000,
                ),
                report_with(vec![completion(1, 0, 4_000, 6_000)], 6_000),
            ],
            vec![2, 1],
            vec![(0, 0), (1, 1), (2, 0)],
        )
    }

    #[test]
    fn makespan_is_latest_replica_clock() {
        let r = two_replica_report();
        assert_eq!(r.makespan_ps(), 9_000);
        assert_eq!(r.total_completions(), 3);
    }

    #[test]
    fn ttft_percentiles_merge_replicas() {
        let r = two_replica_report();
        // TTFTs: 1000, 2000, 4000 ps → p50 = 2000 ps.
        assert!((r.ttft_percentiles().unwrap().p50_s - 2e-9).abs() < 1e-15);
    }

    #[test]
    fn empty_completion_sets_render_dashes_not_nan() {
        let r = ClusterReport::new(
            "round-robin".into(),
            vec![report_with(Vec::new(), 0), report_with(Vec::new(), 0)],
            vec![0, 0],
            Vec::new(),
        );
        assert_eq!(r.ttft_percentiles(), None);
        assert_eq!(r.latency_percentiles(), None);
        let tsv = r.to_tsv();
        assert!(!tsv.contains("NaN"), "TSV leaked NaN: {tsv}");
        assert!(tsv.lines().nth(1).unwrap().contains("-\t-\t-"), "{tsv}");
        assert!(r.summary().contains("n/a"), "{}", r.summary());
    }

    #[test]
    fn load_imbalance_of_uneven_split() {
        let r = two_replica_report();
        // routed = [2, 1]: max 2 / mean 1.5.
        assert!((r.load_imbalance() - 2.0 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn tsv_has_per_replica_and_cluster_rows() {
        let tsv = two_replica_report().to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 4, "{tsv}"); // header + 2 replicas + cluster
        assert!(lines[0].starts_with("replica\t"));
        assert!(lines[3].starts_with("cluster\t"));
    }

    #[test]
    fn summary_names_the_policy() {
        assert!(two_replica_report().summary().contains("round-robin"));
    }
}
