//! Front-end routing policies: which replica serves the next request.
//!
//! The routing vocabulary — [`ReplicaRole`], [`ReplicaSnapshot`],
//! [`RoutingPolicy`] and the built-in policies — moved into
//! `llmss_core::fleet` so the [`FleetEngine`](llmss_core::FleetEngine)
//! and its control planes can share it; this module re-exports it all,
//! so `llmss_cluster::{RoutingPolicy, ...}` keeps working.

pub use llmss_core::{
    LeastKvLoad, LeastOutstanding, PowerOfTwoChoices, ReplicaRole, ReplicaSnapshot, RoundRobin,
    RoutingPolicy, RoutingPolicyKind, Sticky,
};
