//! LLMServingSim core: the hardware/software co-simulation loop.
//!
//! This crate is the paper's primary contribution rebuilt in Rust. It wires
//! the substrates together into the Figure 4 workflow:
//!
//! 1. **Scheduler** (`llmss-sched`) — iteration-level batching with paged
//!    KV-cache management.
//! 2. **Execution engine stack** ([`EngineStack`]) — pluggable
//!    compiler-and-simulator engines ([`ExecutionEngine`]) behind a
//!    computation-[`ReuseCache`], with operator [mapping](map_op) across
//!    heterogeneous devices.
//! 3. **Graph converter** ([`GraphConverter`]) — engine traces become
//!    Chakra-like execution graphs with tensor/pipeline/hybrid parallelism,
//!    selective batching, PIM-pool offload transfers, and KV paging ops.
//! 4. **System simulator** (`llmss-net`) — executes the graph and feeds the
//!    iteration latency back to the scheduler.
//!
//! [`ServingSimulator`] drives the loop and produces a [`SimReport`] with
//! throughput series, latency statistics, reuse statistics, and the
//! per-component wall-clock breakdown the paper's evaluation uses.
//!
//! # Examples
//!
//! ```
//! use llmss_core::{ServingSimulator, SimConfig};
//! use llmss_model::ModelSpec;
//! use llmss_sched::{Dataset, TraceGenerator};
//!
//! let config = SimConfig::new(ModelSpec::gpt2()).npu_num(2).tensor_parallel();
//! let trace = TraceGenerator::new(Dataset::Alpaca, 1).rate_per_s(20.0).generate(4);
//! let report = ServingSimulator::new(config, trace)?.run();
//! assert_eq!(report.completions.len(), 4);
//! # Ok::<(), llmss_core::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chaos;
mod config;
mod convert;
mod engine;
mod fabric;
mod fleet;
pub mod json;
mod mapping;
mod report;
mod reuse;
mod sim;
mod simulate;
mod stack;
pub mod telemetry;

pub use chaos::{
    ChaosSchedule, FaultEvent, LinkFault, ReplicaFault, ReplicaFaultKind, ResilienceStats,
    RetryPolicy,
};
pub use config::{
    ConfigError, KvBucket, KvManage, ParallelismKind, ParallelismSpec, SimConfig,
};
pub use convert::GraphConverter;
pub use engine::{ExecutionEngine, NpuPimLocalPlugin, NpuPlugin, PimPlugin};
pub use fabric::{
    Fabric, FabricCommit, FabricGraph, FabricStats, FabricTopology, FlowDone, FlowModel,
    LinkUsage, NamedLink, RouteSpec,
};
pub use fleet::{
    AutoscaleConfig, AutoscaleControl, ControlPlane, FleetCommand, FleetEngine, FleetParts,
    FleetReplica, FleetReport, FleetStats, FleetTransfer, FlexPools, FlexPoolsConfig,
    LeastKvLoad, LeastOutstanding, PowerOfTwoChoices, ReadyHeap, ReplicaRole, ReplicaSlot,
    ReplicaSnapshot, ReplicaStatus, RoundRobin, RoutingPolicy, RoutingPolicyKind,
    StaticControl, Sticky,
};
pub use mapping::{map_op, DeviceKind, PimMode};
pub use report::{
    percentile, percentiles_from_ps, IterationRecord, PercentileSummary, ReportOutput,
    SimReport, SloCompletion, SloSummary, ThroughputBin, WallBreakdown,
};
pub use reuse::{
    BucketAdaptivity, IterationCache, IterationLookup, IterationOutcome, ReuseCache,
    ReuseStats, SharedReuse,
};
pub use sim::ServingSimulator;
pub use simulate::Simulate;
pub use stack::EngineStack;
pub use telemetry::{
    chrome_trace, filter_events, timeline_tsv, validate_chrome_trace, MemorySink, SimEvent,
    Telemetry, TimelineConfig, TraceSink,
};
