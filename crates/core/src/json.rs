//! Helpers for hand-assembled JSON [`Value`] trees.
//!
//! The vendored `serde_json` renders and parses through typed
//! `Serialize`/`Deserialize` impls; reports and trace exporters instead
//! build [`Value`] trees directly (their shapes are data-driven — maps
//! of replica sections, event arrays). These helpers bridge the gap:
//! [`pretty`] renders a tree, [`parse`] reads one back, and [`obj`]
//! keeps construction sites readable.

use serde::Value;

/// Builds an object value from `(key, value)` pairs, preserving order.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// A [`Value`] carried through the typed `serde_json` entry points
/// unchanged (the vendored `Value` itself implements neither trait).
struct Raw(Value);

impl serde::Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

impl serde::Deserialize for Raw {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(Raw(v.clone()))
    }
}

/// Pretty-prints a value tree as JSON (2-space indent, deterministic:
/// objects keep insertion order and floats render shortest-round-trip).
pub fn pretty(value: &Value) -> String {
    // llmss-lint: allow(p001, reason = "rendering a value tree to a String cannot fail")
    serde_json::to_string_pretty(&Raw(value.clone())).expect("value trees always render")
}

/// Parses JSON text into a value tree.
///
/// # Errors
///
/// Returns the parser's message on malformed input.
pub fn parse(text: &str) -> Result<Value, String> {
    serde_json::from_str::<Raw>(text).map(|r| r.0).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_tree() {
        let v = obj(vec![
            ("a", Value::Int(1)),
            ("b", Value::Array(vec![Value::Float(0.5), Value::Str("x".into())])),
            ("c", Value::Null),
        ]);
        let text = pretty(&v);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{nope").is_err());
    }
}
