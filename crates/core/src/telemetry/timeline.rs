//! Windowed virtual-time series: renders captured [`SimEvent`]s as the
//! `{output}-timeline.tsv` artifact — one row per fixed-width window of
//! simulated time, one column per signal.
//!
//! Columns:
//!
//! | column | meaning |
//! |---|---|
//! | `window_s` | window start, seconds of simulated time |
//! | `arrivals` | requests arriving in the window |
//! | `admitted` | requests admitted onto a replica |
//! | `completed` | requests finishing end to end |
//! | `queue_depth` | mean post-batch queue depth over iterations |
//! | `batch_mean` | mean batch size over iterations |
//! | `kv_util` | mean KV-page occupancy over iterations |
//! | `memo_hit_rate` | iteration-memo hit rate (`-` with no iterations) |
//! | `tok_per_s` | generated tokens per simulated second |
//! | `live_replicas` | replicas in service at the window's end |
//! | `ttft_attain` | fraction of the window's completions meeting the TTFT SLO (`-` with none) |
//! | `tpot_attain` | same for TPOT (single-token requests excluded) |
//! | `util:r{i}` | fraction of the window replica `i` spent executing |
//! | `link:{name}` | fraction of link `{name}`'s capacity carried |
//!
//! Like the Chrome exporter this is a pure function of the event list:
//! same seed, same bytes.

use llmss_model::FnvHashMap;
use llmss_sched::TimePs;

use super::SimEvent;

/// Windowing and SLO parameters for [`timeline_tsv`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineConfig {
    /// Window width in picoseconds.
    pub window_ps: TimePs,
    /// TTFT SLO threshold in milliseconds (attainment = fraction under).
    pub slo_ttft_ms: f64,
    /// TPOT SLO threshold in milliseconds.
    pub slo_tpot_ms: f64,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        // 100 ms windows, and the interactive-serving SLO targets the
        // roadmap's control-plane work quotes.
        Self { window_ps: 100_000_000_000, slo_ttft_ms: 500.0, slo_tpot_ms: 50.0 }
    }
}

/// Per-window accumulators, folded over the event stream.
#[derive(Default, Clone)]
struct Window {
    arrivals: usize,
    admitted: usize,
    completed: usize,
    queue_depth_sum: f64,
    batch_sum: f64,
    kv_util_sum: f64,
    iterations: usize,
    memo_hits: usize,
    gen_tokens: u64,
    ttft_ok: usize,
    ttft_total: usize,
    tpot_ok: usize,
    tpot_total: usize,
    /// Busy picoseconds per replica (indexed by the replica table).
    busy_ps: Vec<TimePs>,
    /// Carried bytes per link (indexed by the link table).
    link_bytes: Vec<f64>,
}

/// Renders the windowed time-series TSV.
///
/// # Panics
///
/// Panics if `config.window_ps` is zero.
pub fn timeline_tsv(events: &[SimEvent], config: &TimelineConfig) -> String {
    assert!(config.window_ps > 0, "timeline window must be positive");
    let w = config.window_ps;

    // Pass 1: discover the horizon, the replica and link tables, the
    // fleet-level arrival times, and each request's handoff bookkeeping
    // record (excluded from completion counts).
    let mut end_ps: TimePs = 0;
    let mut replicas: Vec<usize> = Vec::new();
    let mut links: Vec<(String, f64)> = Vec::new();
    let mut arrival_of: FnvHashMap<u64, TimePs> = FnvHashMap::default();
    let mut queued_of: FnvHashMap<u64, (usize, TimePs)> = FnvHashMap::default();
    let mut any_arrival = false;
    let mut any_admitted = false;
    let mut any_activation = false;
    for e in events {
        end_ps = end_ps.max(match *e {
            SimEvent::Iteration { end_ps, .. } => end_ps,
            SimEvent::LinkShare { to_ps, .. } => to_ps,
            ref e => e.t_ps(),
        });
        match e {
            SimEvent::Arrival { id, t_ps, .. } => {
                any_arrival = true;
                arrival_of.insert(*id, *t_ps);
            }
            SimEvent::Admitted { .. } => any_admitted = true,
            SimEvent::ReplicaActivated { .. } => any_activation = true,
            SimEvent::TransferQueued { id, from, t_ps } => {
                queued_of.insert(*id, (*from, *t_ps));
            }
            SimEvent::Iteration { replica, .. } if !replicas.contains(replica) => {
                replicas.push(*replica);
            }
            SimEvent::LinkShare { link, bw_gbps, .. }
                if !links.iter().any(|(n, _)| n == link) =>
            {
                links.push((link.clone(), *bw_gbps));
            }
            SimEvent::Completed { arrival_ps, t_ps, .. } => {
                // Synthesized horizon/arrival sources for single-replica
                // runs, which have no fleet front end.
                end_ps = end_ps.max(*t_ps);
                let _ = arrival_ps;
            }
            _ => {}
        }
    }
    for e in events {
        if let SimEvent::ReplicaActivated { replica, .. } = e {
            if !replicas.contains(replica) {
                replicas.push(*replica);
            }
        }
    }
    replicas.sort_unstable();
    let replica_slot: FnvHashMap<usize, usize> =
        replicas.iter().enumerate().map(|(slot, &r)| (r, slot)).collect();

    let n_windows = (end_ps / w + 1) as usize;
    let blank = Window {
        busy_ps: vec![0; replicas.len()],
        link_bytes: vec![0.0; links.len()],
        ..Window::default()
    };
    let mut windows: Vec<Window> = vec![blank; n_windows];
    let at = |t: TimePs| ((t / w) as usize).min(n_windows - 1);

    // Live-replica series: +1/-1 deltas at activation/retirement.
    let mut live_delta = vec![0i64; n_windows];
    for e in events {
        match e {
            SimEvent::ReplicaActivated { t_ps, .. } => live_delta[at(*t_ps)] += 1,
            SimEvent::ReplicaRetired { t_ps, .. } => live_delta[at(*t_ps)] -= 1,
            _ => {}
        }
    }

    // Pass 2: fold the signals.
    for e in events {
        match e {
            SimEvent::Arrival { t_ps, .. } => windows[at(*t_ps)].arrivals += 1,
            SimEvent::Admitted { t_ps, .. } => windows[at(*t_ps)].admitted += 1,
            // Admission proxy for single-replica runs (no router).
            SimEvent::PrefillStart { t_ps, .. } if !any_admitted => {
                windows[at(*t_ps)].admitted += 1;
            }
            SimEvent::Completed {
                t_ps,
                id,
                replica,
                arrival_ps,
                first_token_ps,
                output_len,
                ..
            } => {
                // Skip the prefill-side bookkeeping record of a handoff.
                if let Some(&(from, ready)) = queued_of.get(id) {
                    if *replica == from && *t_ps == ready {
                        continue;
                    }
                }
                // End-to-end TTFT needs the original arrival; a decode
                // replica's scheduler-local arrival is the KV delivery.
                let arrival = arrival_of.get(id).copied().unwrap_or(*arrival_ps);
                if !any_arrival {
                    windows[at(arrival)].arrivals += 1;
                }
                let win = &mut windows[at(*t_ps)];
                win.completed += 1;
                let ttft_ms = first_token_ps.saturating_sub(arrival) as f64 / 1e9;
                win.ttft_total += 1;
                if ttft_ms <= config.slo_ttft_ms {
                    win.ttft_ok += 1;
                }
                if *output_len > 1 {
                    let tpot_ms = t_ps.saturating_sub(*first_token_ps) as f64
                        / (*output_len as f64 - 1.0)
                        / 1e9;
                    win.tpot_total += 1;
                    if tpot_ms <= config.slo_tpot_ms {
                        win.tpot_ok += 1;
                    }
                }
            }
            SimEvent::Iteration {
                replica,
                start_ps,
                end_ps,
                batch_size,
                gen_tokens,
                queue_depth,
                kv_used_pages,
                kv_total_pages,
                memo_hit,
                ..
            } => {
                let win = &mut windows[at(*start_ps)];
                win.iterations += 1;
                win.memo_hits += usize::from(*memo_hit);
                win.queue_depth_sum += *queue_depth as f64;
                win.batch_sum += *batch_size as f64;
                win.kv_util_sum += if *kv_total_pages > 0 {
                    *kv_used_pages as f64 / *kv_total_pages as f64
                } else {
                    0.0
                };
                windows[at(*end_ps)].gen_tokens += *gen_tokens as u64;
                // Busy time clips the iteration's span to each window it
                // crosses.
                let slot = replica_slot[replica];
                let (mut t, stop) = (*start_ps, *end_ps);
                while t < stop {
                    let idx = at(t);
                    let edge = ((idx as u64 + 1) * w).min(stop);
                    windows[idx].busy_ps[slot] += edge - t;
                    t = edge;
                }
            }
            SimEvent::LinkShare { from_ps, to_ps, link, bytes, .. } => {
                let slot = links.iter().position(|(n, _)| n == link).unwrap(); // llmss-lint: allow(p001, reason = "LinkShare events only name links announced by the preamble pass above")
                let span = to_ps.saturating_sub(*from_ps);
                if span == 0 {
                    windows[at(*from_ps)].link_bytes[slot] += bytes;
                    continue;
                }
                // Spread the interval's bytes over the windows it
                // overlaps, proportionally.
                let (mut t, stop) = (*from_ps, *to_ps);
                while t < stop {
                    let idx = at(t);
                    let edge = ((idx as u64 + 1) * w).min(stop);
                    windows[idx].link_bytes[slot] += bytes * (edge - t) as f64 / span as f64;
                    t = edge;
                }
            }
            _ => {}
        }
    }

    // Render.
    let mut out = String::from(
        "window_s\tarrivals\tadmitted\tcompleted\tqueue_depth\tbatch_mean\tkv_util\
         \tmemo_hit_rate\ttok_per_s\tlive_replicas\tttft_attain\ttpot_attain",
    );
    for &r in &replicas {
        out.push_str(&format!("\tutil:r{r}"));
    }
    for (name, _) in &links {
        out.push_str(&format!("\tlink:{name}"));
    }
    out.push('\n');
    let ratio_or_dash = |num: usize, den: usize| -> String {
        if den == 0 {
            "-".into()
        } else {
            format!("{:.3}", num as f64 / den as f64)
        }
    };
    let mut live: i64 = if any_activation { 0 } else { replicas.len() as i64 };
    let window_s = w as f64 / 1e12;
    for (idx, win) in windows.iter().enumerate() {
        live += live_delta[idx];
        let (queue, batch, kv) = if win.iterations > 0 {
            let n = win.iterations as f64;
            (win.queue_depth_sum / n, win.batch_sum / n, win.kv_util_sum / n)
        } else {
            (0.0, 0.0, 0.0)
        };
        out.push_str(&format!(
            "{:.6}\t{}\t{}\t{}\t{queue:.2}\t{batch:.2}\t{kv:.3}\t{}\t{:.1}\t{live}\t{}\t{}",
            idx as f64 * window_s,
            win.arrivals,
            win.admitted,
            win.completed,
            ratio_or_dash(win.memo_hits, win.iterations),
            win.gen_tokens as f64 / window_s,
            ratio_or_dash(win.ttft_ok, win.ttft_total),
            ratio_or_dash(win.tpot_ok, win.tpot_total),
        ));
        for &busy in &win.busy_ps {
            out.push_str(&format!("\t{:.4}", busy as f64 / w as f64));
        }
        for (slot, (_, bw_gbps)) in links.iter().enumerate() {
            let cap_bytes = bw_gbps / 1000.0 * w as f64;
            let util = if cap_bytes > 0.0 { win.link_bytes[slot] / cap_bytes } else { 0.0 };
            out.push_str(&format!("\t{util:.4}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_bucket_signals_and_links() {
        let events = vec![
            SimEvent::Arrival { t_ps: 0, id: 1, input_len: 8, output_len: 4 },
            SimEvent::Admitted { t_ps: 0, id: 1, replica: 0 },
            SimEvent::Iteration {
                replica: 0,
                index: 0,
                start_ps: 0,
                end_ps: 150,
                batch_size: 2,
                prefill_slots: 1,
                prompt_tokens: 8,
                gen_tokens: 4,
                queue_depth: 3,
                kv_used_pages: 4,
                kv_total_pages: 8,
                memo_hit: true,
                signature: "sig".into(),
            },
            SimEvent::Completed {
                t_ps: 150,
                id: 1,
                replica: 0,
                arrival_ps: 0,
                first_token_ps: 100,
                input_len: 8,
                output_len: 4,
            },
            SimEvent::LinkShare {
                from_ps: 0,
                to_ps: 200,
                link: "trunk".into(),
                bw_gbps: 1.0,
                bytes: 0.05,
            },
        ];
        let cfg = TimelineConfig { window_ps: 100, ..TimelineConfig::default() };
        let tsv = timeline_tsv(&events, &cfg);
        let lines: Vec<&str> = tsv.lines().collect();
        assert!(lines[0].ends_with("util:r0\tlink:trunk"), "{}", lines[0]);
        // Three windows: the iteration spans [0, 150], completion in
        // window 1, link bytes split evenly across [0, 200].
        assert_eq!(lines.len(), 1 + 3, "{tsv}");
        let w0: Vec<&str> = lines[1].split('\t').collect();
        assert_eq!(w0[1], "1", "arrivals: {tsv}");
        assert_eq!(w0[2], "1", "admitted: {tsv}");
        assert_eq!(w0[4], "3.00", "queue depth: {tsv}");
        assert_eq!(w0[7], "1.000", "memo rate: {tsv}");
        // util:r0 in window 0 is the full window.
        assert_eq!(w0[12], "1.0000", "{tsv}");
        // Window 0 carries 0.025 of its 0.1-byte capacity integral
        // (1 GB/s = 0.001 B/ps over a 100 ps window).
        assert_eq!(w0[13], "0.2500", "{tsv}");
        let w1: Vec<&str> = lines[2].split('\t').collect();
        assert_eq!(w1[3], "1", "completed: {tsv}");
        assert_eq!(w1[10], "1.000", "ttft attainment: {tsv}");
    }

    #[test]
    fn deterministic_bytes() {
        let events = vec![SimEvent::Completed {
            t_ps: 5,
            id: 1,
            replica: 0,
            arrival_ps: 0,
            first_token_ps: 3,
            input_len: 2,
            output_len: 2,
        }];
        let cfg = TimelineConfig::default();
        assert_eq!(timeline_tsv(&events, &cfg), timeline_tsv(&events, &cfg));
    }
}
