//! Virtual-time telemetry: a zero-cost-when-off event layer observing
//! the serving engine, plus exporters that render captured events as a
//! Perfetto-viewable Chrome trace and a windowed time-series TSV.
//!
//! The design splits observation from rendering:
//!
//! * Hot paths ([`ServingSimulator::step`], the fleet engine, the
//!   fabric) hold a [`Telemetry`] handle and call
//!   [`emit`](Telemetry::emit) with a *closure*. When no sink is
//!   attached — the default — the closure is never evaluated and the
//!   whole call inlines to a branch on a `None`, so the untraced path
//!   costs nothing and all existing goldens stay byte-identical.
//! * A [`TraceSink`] receives typed [`SimEvent`]s. The bundled
//!   [`MemorySink`] just accumulates them; exporters
//!   ([`chrome_trace`], [`timeline_tsv`]) are pure post-processors
//!   over the captured `Vec<SimEvent>`, which makes byte-determinism
//!   trivial: same seed, same events, same bytes.
//!
//! [`ServingSimulator::step`]: crate::ServingSimulator::step

mod chrome;
mod timeline;

pub use chrome::{chrome_trace, validate_chrome_trace};
pub use timeline::{timeline_tsv, TimelineConfig};

use std::sync::{Arc, Mutex};

use llmss_sched::TimePs;

/// One typed event in a simulation's life, stamped in virtual time.
///
/// Request-lifecycle events carry the request id; replica-scoped events
/// carry the fleet index (0 for a single-replica run). Events are
/// emitted in engine-step order, which is deterministic for a fixed
/// seed — exporters rely on that and never re-sort semantically.
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// A request entered the front-end arrival queue.
    Arrival {
        /// Arrival time.
        t_ps: TimePs,
        /// Request id.
        id: u64,
        /// Prompt length in tokens.
        input_len: usize,
        /// Requested generation length in tokens.
        output_len: usize,
    },
    /// The router admitted a request onto a replica.
    Admitted {
        /// Admission time.
        t_ps: TimePs,
        /// Request id.
        id: u64,
        /// The replica that received it.
        replica: usize,
    },
    /// One scheduler iteration executed on a replica: batch formation
    /// (signature, memo outcome) plus the engine's answer.
    Iteration {
        /// The replica that ran the iteration.
        replica: usize,
        /// Iteration index on that replica.
        index: u64,
        /// Iteration start (the replica clock when the batch formed).
        start_ps: TimePs,
        /// Iteration end (start plus the simulated latency).
        end_ps: TimePs,
        /// Sequences in the batch.
        batch_size: usize,
        /// How many of them were prefill slots (no KV yet).
        prefill_slots: usize,
        /// Prompt tokens processed this iteration.
        prompt_tokens: usize,
        /// Tokens generated this iteration.
        gen_tokens: usize,
        /// Requests still queued after batch formation.
        queue_depth: usize,
        /// KV pages in use after batch formation.
        kv_used_pages: usize,
        /// KV pages in total.
        kv_total_pages: usize,
        /// Whether the iteration memo answered (skipping the DES).
        memo_hit: bool,
        /// Compact batch signature, e.g. `2p+14d/96t`.
        signature: String,
    },
    /// A request's prefill phase started on a replica.
    PrefillStart {
        /// Start time.
        t_ps: TimePs,
        /// Request id.
        id: u64,
        /// The replica running the prefill.
        replica: usize,
    },
    /// A request's prefill phase finished (its KV cache is built).
    PrefillEnd {
        /// End time.
        t_ps: TimePs,
        /// Request id.
        id: u64,
        /// The replica that ran the prefill.
        replica: usize,
    },
    /// A request generated its first decode token on a replica.
    DecodeStart {
        /// Start time.
        t_ps: TimePs,
        /// Request id.
        id: u64,
        /// The replica running the decode.
        replica: usize,
    },
    /// A request finished generating on a replica.
    Completed {
        /// Finish time.
        t_ps: TimePs,
        /// Request id.
        id: u64,
        /// The replica it finished on.
        replica: usize,
        /// The request's (scheduler-local) arrival time.
        arrival_ps: TimePs,
        /// When its first token landed.
        first_token_ps: TimePs,
        /// Prompt length in tokens.
        input_len: usize,
        /// Generated length in tokens.
        output_len: usize,
    },
    /// A finished prefill queued its KV cache for handoff.
    TransferQueued {
        /// When the KV cache became ready to ship.
        t_ps: TimePs,
        /// Request id.
        id: u64,
        /// The prefill replica holding the KV cache.
        from: usize,
    },
    /// A KV transfer entered the fabric.
    TransferStart {
        /// When the transfer started moving.
        t_ps: TimePs,
        /// Request id.
        id: u64,
        /// Source (prefill) replica.
        from: usize,
        /// Destination (decode) replica.
        to: usize,
        /// KV-cache size in bytes.
        bytes: u64,
        /// Uncontended transfer time.
        nominal_ps: TimePs,
    },
    /// A KV transfer landed on its decode replica.
    TransferEnd {
        /// Delivery time.
        t_ps: TimePs,
        /// Request id.
        id: u64,
        /// Source (prefill) replica.
        from: usize,
        /// Destination (decode) replica.
        to: usize,
    },
    /// A flow entered the fabric (fabric-side view of a transfer).
    FlowStart {
        /// Admission time.
        t_ps: TimePs,
        /// Flow id (the request id).
        id: u64,
        /// Flow size in bytes.
        bytes: u64,
    },
    /// A flow left the fabric.
    FlowEnd {
        /// Delivery time.
        t_ps: TimePs,
        /// Flow id (the request id).
        id: u64,
    },
    /// Bytes a link carried over a fabric recompute interval (the fair
    /// model's bandwidth re-share grain; one interval for FIFO
    /// bookings).
    LinkShare {
        /// Interval start.
        from_ps: TimePs,
        /// Interval end.
        to_ps: TimePs,
        /// The link's display name.
        link: String,
        /// The link's nominal bandwidth in GB/s.
        bw_gbps: f64,
        /// Bytes carried over the interval.
        bytes: f64,
    },
    /// The control plane issued a command at a tick.
    Command {
        /// The tick time.
        t_ps: TimePs,
        /// The command, rendered (`SetRole { replica: 1, .. }`, ...).
        command: String,
    },
    /// A deferred role switch landed after the replica's drain window.
    RoleApplied {
        /// When the replica finished draining and switched.
        t_ps: TimePs,
        /// The replica that switched.
        replica: usize,
        /// The role it now serves.
        role: String,
    },
    /// A replica was retired by `ScaleDown`.
    ReplicaRetired {
        /// The retirement time.
        t_ps: TimePs,
        /// The retired replica.
        replica: usize,
    },
    /// A replica joined the fleet (at start, or via `ScaleUp`).
    ReplicaActivated {
        /// When the replica was added.
        t_ps: TimePs,
        /// The new replica's fleet index.
        replica: usize,
        /// When it starts admitting work (after warmup).
        admit_from_ps: TimePs,
    },
    /// A chaos fault struck a replica.
    ReplicaFault {
        /// When the fault struck.
        t_ps: TimePs,
        /// The replica it hit.
        replica: usize,
        /// The fault kind (`crash`, `hang`, `drain`), rendered.
        kind: String,
    },
    /// A faulted replica recovered.
    ReplicaRecovered {
        /// The recovery time.
        t_ps: TimePs,
        /// The replica that came back.
        replica: usize,
    },
    /// A chaos fault degraded (or partitioned) a fabric link.
    LinkFault {
        /// When the degradation started.
        t_ps: TimePs,
        /// The fabric link index.
        link: usize,
        /// The degraded bandwidth in GB/s (zero = partition).
        bw_gbps: f64,
    },
    /// A degraded fabric link returned to its original bandwidth.
    LinkRecovered {
        /// The restoration time.
        t_ps: TimePs,
        /// The fabric link index.
        link: usize,
    },
    /// A fault knocked a request out of the fleet; it re-enters
    /// admission after a deterministic virtual-time backoff.
    RequestRetried {
        /// When the request was knocked out.
        t_ps: TimePs,
        /// Request id.
        id: u64,
        /// Retry attempt number (1-based).
        attempt: u32,
        /// When the retry re-enters admission.
        retry_at_ps: TimePs,
    },
    /// A request exhausted its retries (or had nowhere left to go) and
    /// was abandoned.
    RequestAbandoned {
        /// The abandonment time.
        t_ps: TimePs,
        /// Request id.
        id: u64,
        /// Why it was abandoned.
        reason: String,
    },
    /// A control-plane tick fired (drain-window boundary).
    Tick {
        /// The tick time.
        t_ps: TimePs,
        /// Replicas currently in service.
        live_replicas: usize,
        /// Arrivals still queued fleet-wide.
        queued_arrivals: usize,
        /// KV transfers awaiting commit.
        pending_transfers: usize,
    },
}

impl SimEvent {
    /// The event's primary timestamp, for windowing and ordering.
    pub fn t_ps(&self) -> TimePs {
        match *self {
            SimEvent::Arrival { t_ps, .. }
            | SimEvent::Admitted { t_ps, .. }
            | SimEvent::PrefillStart { t_ps, .. }
            | SimEvent::PrefillEnd { t_ps, .. }
            | SimEvent::DecodeStart { t_ps, .. }
            | SimEvent::Completed { t_ps, .. }
            | SimEvent::TransferQueued { t_ps, .. }
            | SimEvent::TransferStart { t_ps, .. }
            | SimEvent::TransferEnd { t_ps, .. }
            | SimEvent::FlowStart { t_ps, .. }
            | SimEvent::FlowEnd { t_ps, .. }
            | SimEvent::Command { t_ps, .. }
            | SimEvent::RoleApplied { t_ps, .. }
            | SimEvent::ReplicaRetired { t_ps, .. }
            | SimEvent::ReplicaActivated { t_ps, .. }
            | SimEvent::ReplicaFault { t_ps, .. }
            | SimEvent::ReplicaRecovered { t_ps, .. }
            | SimEvent::LinkFault { t_ps, .. }
            | SimEvent::LinkRecovered { t_ps, .. }
            | SimEvent::RequestRetried { t_ps, .. }
            | SimEvent::RequestAbandoned { t_ps, .. }
            | SimEvent::Tick { t_ps, .. } => t_ps,
            SimEvent::Iteration { start_ps, .. } => start_ps,
            SimEvent::LinkShare { from_ps, .. } => from_ps,
        }
    }

    /// The request id the event concerns, if any.
    pub fn request_id(&self) -> Option<u64> {
        match *self {
            SimEvent::Arrival { id, .. }
            | SimEvent::Admitted { id, .. }
            | SimEvent::PrefillStart { id, .. }
            | SimEvent::PrefillEnd { id, .. }
            | SimEvent::DecodeStart { id, .. }
            | SimEvent::Completed { id, .. }
            | SimEvent::TransferQueued { id, .. }
            | SimEvent::TransferStart { id, .. }
            | SimEvent::TransferEnd { id, .. }
            | SimEvent::FlowStart { id, .. }
            | SimEvent::FlowEnd { id, .. }
            | SimEvent::RequestRetried { id, .. }
            | SimEvent::RequestAbandoned { id, .. } => Some(id),
            _ => None,
        }
    }

    /// The replica the event is scoped to, if any.
    pub fn replica(&self) -> Option<usize> {
        match *self {
            SimEvent::Admitted { replica, .. }
            | SimEvent::Iteration { replica, .. }
            | SimEvent::PrefillStart { replica, .. }
            | SimEvent::PrefillEnd { replica, .. }
            | SimEvent::DecodeStart { replica, .. }
            | SimEvent::Completed { replica, .. }
            | SimEvent::RoleApplied { replica, .. }
            | SimEvent::ReplicaRetired { replica, .. }
            | SimEvent::ReplicaActivated { replica, .. }
            | SimEvent::ReplicaFault { replica, .. }
            | SimEvent::ReplicaRecovered { replica, .. } => Some(replica),
            SimEvent::TransferQueued { from, .. } => Some(from),
            _ => None,
        }
    }
}

/// A receiver for [`SimEvent`]s.
///
/// Sinks are attached behind `Arc<Mutex<..>>` so one sink observes
/// every replica of a fleet; the engine hands each replica a
/// [`Telemetry`] handle cloned from the same sink. The `Send` bound
/// keeps [`ServingSimulator`](crate::ServingSimulator) shippable
/// across shard worker threads (traced runs stay serial — the fleet
/// engine rejects `shards > 1` with telemetry on — but the type must
/// not anchor the whole simulator to one thread).
pub trait TraceSink: std::fmt::Debug + Send {
    /// Receives one event.
    fn record(&mut self, event: SimEvent);
}

/// The bundled sink: accumulates events in memory for post-run export.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Vec<SimEvent>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The events captured so far.
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// Takes the captured events out of the sink.
    pub fn take(&mut self) -> Vec<SimEvent> {
        std::mem::take(&mut self.events)
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: SimEvent) {
        self.events.push(event);
    }
}

/// The handle hot paths hold: either off (`Default`) — in which case
/// [`emit`](Self::emit) compiles to a branch on `None` and the event
/// closure is never evaluated — or a shared sink plus the replica index
/// the holder observes from.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<Mutex<dyn TraceSink>>>,
    replica: usize,
}

impl Telemetry {
    /// The disabled handle (what every simulator starts with).
    pub fn off() -> Self {
        Self::default()
    }

    /// A handle recording into `sink`, scoped to replica 0.
    pub fn new(sink: Arc<Mutex<dyn TraceSink>>) -> Self {
        Self { sink: Some(sink), replica: 0 }
    }

    /// The same sink, scoped to a different replica index.
    pub fn for_replica(&self, replica: usize) -> Self {
        Self { sink: self.sink.clone(), replica }
    }

    /// The replica index this handle stamps on its events.
    pub fn replica(&self) -> usize {
        self.replica
    }

    /// Whether a sink is attached. Hot paths with non-trivial event
    /// assembly should guard on this; trivial ones just call
    /// [`emit`](Self::emit), whose closure is lazy anyway.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.sink.is_some()
    }

    /// Records the event produced by `event()` — which is only
    /// evaluated when a sink is attached.
    #[inline]
    pub fn emit(&self, event: impl FnOnce() -> SimEvent) {
        if let Some(sink) = &self.sink {
            // Traced runs are single-threaded (the engine forbids
            // shards > 1 with telemetry), so a poisoned lock can only
            // mean a panic already in flight — keep recording rather
            // than compounding it with a second panic.
            let mut guard = match sink.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.record(event());
        }
    }
}

/// Keeps only events matching the optional request-id / replica
/// filters (an event with no request id or replica scope always
/// passes — fleet-level context stays useful in filtered traces).
pub fn filter_events(
    events: Vec<SimEvent>,
    requests: Option<&[u64]>,
    replicas: Option<&[usize]>,
) -> Vec<SimEvent> {
    if requests.is_none() && replicas.is_none() {
        return events;
    }
    events
        .into_iter()
        .filter(|e| {
            let id_ok = match (requests, e.request_id()) {
                (Some(wanted), Some(id)) => wanted.contains(&id),
                _ => true,
            };
            let replica_ok = match (replicas, e.replica()) {
                (Some(wanted), Some(r)) => wanted.contains(&r),
                _ => true,
            };
            id_ok && replica_ok
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_never_evaluates_the_closure() {
        let t = Telemetry::off();
        assert!(!t.is_on());
        t.emit(|| unreachable!("closure must not run when telemetry is off"));
    }

    #[test]
    fn memory_sink_captures_in_order() {
        let sink = Arc::new(Mutex::new(MemorySink::new()));
        let t = Telemetry::new(sink.clone());
        t.emit(|| SimEvent::Arrival { t_ps: 1, id: 1, input_len: 8, output_len: 4 });
        t.for_replica(2).emit(|| SimEvent::Admitted { t_ps: 2, id: 1, replica: 2 });
        let events = sink.lock().unwrap().take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].t_ps(), 1);
        assert_eq!(events[1].replica(), Some(2));
    }

    #[test]
    fn filters_compose_and_pass_unscoped_events() {
        let events = vec![
            SimEvent::Arrival { t_ps: 0, id: 1, input_len: 1, output_len: 1 },
            SimEvent::Arrival { t_ps: 0, id: 2, input_len: 1, output_len: 1 },
            SimEvent::Admitted { t_ps: 1, id: 1, replica: 0 },
            SimEvent::Admitted { t_ps: 1, id: 2, replica: 1 },
            SimEvent::Tick {
                t_ps: 2,
                live_replicas: 2,
                queued_arrivals: 0,
                pending_transfers: 0,
            },
        ];
        let kept = filter_events(events, Some(&[1]), Some(&[0]));
        assert_eq!(kept.len(), 3, "{kept:?}");
        assert!(matches!(kept[2], SimEvent::Tick { .. }));
    }
}
