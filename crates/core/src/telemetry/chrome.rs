//! Chrome Trace Event Format export: renders captured [`SimEvent`]s as
//! a JSON trace loadable in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`.
//!
//! Track model:
//!
//! * **pid 0 — `fabric`**: one thread per in-flight KV flow plus
//!   counter tracks showing per-link utilization at every bandwidth
//!   re-share point.
//! * **pid `r + 1` — `replica r`**: thread 0 is the iteration row
//!   (one complete-event per scheduler iteration, named by its batch
//!   signature, memo hits/misses in the args); thread `id + 1` carries
//!   request `id`'s lifecycle as nested duration slices
//!   (`queued`/`prefill`/`decode` inside the request span). A request
//!   handed off between replicas gets a prefill-side span and a
//!   decode-side span, connected by a flow arrow following the KV
//!   transfer.
//!
//! The exporter is a pure function of the event list, so a fixed seed
//! produces byte-identical JSON.

use std::collections::BTreeMap;

use llmss_sched::TimePs;
use serde::Value;

use crate::json;

use super::SimEvent;

/// One assembled trace event plus its deterministic sort key.
struct Entry {
    ts_ps: TimePs,
    pid: i128,
    tid: i128,
    /// Longer slices first at equal `ts` so parents open before their
    /// children when viewers replay the array in order.
    neg_dur_ps: i128,
    rank: u8,
    value: Value,
}

/// Everything captured about one request's lifecycle.
#[derive(Default)]
struct Life {
    arrival: Option<(TimePs, usize, usize)>,
    admitted: Option<(TimePs, usize)>,
    prefill_start: Option<(TimePs, usize)>,
    prefill_end: Option<TimePs>,
    decode_start: Option<(TimePs, usize)>,
    /// `(finish, replica)` — two entries for a handed-off request (the
    /// prefill-side bookkeeping record and the real decode-side one).
    completions: Vec<(TimePs, usize)>,
    queued: Option<(TimePs, usize)>,
    transfer_start: Option<(TimePs, usize, usize, u64)>,
    transfer_end: Option<(TimePs, usize)>,
    flow: (Option<(TimePs, u64)>, Option<TimePs>),
}

fn us(t: TimePs) -> Value {
    Value::Float(t as f64 / 1e6)
}

fn dur(from: TimePs, to: TimePs) -> Value {
    us(to.saturating_sub(from))
}

fn slice(
    name: String,
    pid: usize,
    tid: i128,
    start: TimePs,
    end: TimePs,
    args: Vec<(&str, Value)>,
    rank: u8,
) -> Entry {
    let mut fields = vec![
        ("name", Value::Str(name)),
        ("ph", Value::Str("X".into())),
        ("pid", Value::Int(pid as i128)),
        ("tid", Value::Int(tid)),
        ("ts", us(start)),
        ("dur", dur(start, end)),
    ];
    if !args.is_empty() {
        fields.push(("args", json::obj(args)));
    }
    Entry {
        ts_ps: start,
        pid: pid as i128,
        tid,
        neg_dur_ps: -(end.saturating_sub(start) as i128),
        rank,
        value: json::obj(fields),
    }
}

/// Renders the captured events as a Chrome Trace Event Format JSON
/// document (the `traceEvents` object form).
pub fn chrome_trace(events: &[SimEvent]) -> String {
    let mut lives: BTreeMap<u64, Life> = BTreeMap::new();
    let mut entries: Vec<Entry> = Vec::new();
    // Display names, collected as tracks appear: pid -> process name,
    // (pid, tid) -> thread name.
    let mut processes: BTreeMap<i128, String> = BTreeMap::new();
    let mut threads: BTreeMap<(i128, i128), String> = BTreeMap::new();
    // Per-link counter bookkeeping: name -> last interval end.
    let mut link_open: BTreeMap<String, TimePs> = BTreeMap::new();
    let mut link_order: Vec<String> = Vec::new();

    for e in events {
        match e {
            SimEvent::Arrival { t_ps, id, input_len, output_len } => {
                lives.entry(*id).or_default().arrival = Some((*t_ps, *input_len, *output_len));
            }
            SimEvent::Admitted { t_ps, id, replica } => {
                lives.entry(*id).or_default().admitted = Some((*t_ps, *replica));
            }
            SimEvent::PrefillStart { t_ps, id, replica } => {
                let life = lives.entry(*id).or_default();
                if life.prefill_start.is_none() {
                    life.prefill_start = Some((*t_ps, *replica));
                }
            }
            SimEvent::PrefillEnd { t_ps, id, .. } => {
                let life = lives.entry(*id).or_default();
                if life.prefill_end.is_none() {
                    life.prefill_end = Some(*t_ps);
                }
            }
            SimEvent::DecodeStart { t_ps, id, replica } => {
                let life = lives.entry(*id).or_default();
                if life.decode_start.is_none() {
                    life.decode_start = Some((*t_ps, *replica));
                }
            }
            SimEvent::Completed { t_ps, id, replica, .. } => {
                lives.entry(*id).or_default().completions.push((*t_ps, *replica));
            }
            SimEvent::TransferQueued { t_ps, id, from } => {
                lives.entry(*id).or_default().queued = Some((*t_ps, *from));
            }
            SimEvent::TransferStart { t_ps, id, from, to, bytes, .. } => {
                lives.entry(*id).or_default().transfer_start =
                    Some((*t_ps, *from, *to, *bytes));
            }
            SimEvent::TransferEnd { t_ps, id, to, .. } => {
                lives.entry(*id).or_default().transfer_end = Some((*t_ps, *to));
            }
            SimEvent::FlowStart { t_ps, id, bytes } => {
                lives.entry(*id).or_default().flow.0 = Some((*t_ps, *bytes));
            }
            SimEvent::FlowEnd { t_ps, id } => {
                lives.entry(*id).or_default().flow.1 = Some(*t_ps);
            }
            SimEvent::Iteration {
                replica,
                index,
                start_ps,
                end_ps,
                batch_size,
                prefill_slots,
                prompt_tokens,
                gen_tokens,
                queue_depth,
                kv_used_pages,
                kv_total_pages,
                memo_hit,
                signature,
            } => {
                let pid = replica + 1;
                processes.entry(pid as i128).or_insert_with(|| format!("replica {replica}"));
                threads.entry((pid as i128, 0)).or_insert_with(|| "iterations".into());
                entries.push(slice(
                    signature.clone(),
                    pid,
                    0,
                    *start_ps,
                    *end_ps,
                    vec![
                        ("index", Value::Int(*index as i128)),
                        ("batch_size", Value::Int(*batch_size as i128)),
                        ("prefill_slots", Value::Int(*prefill_slots as i128)),
                        ("prompt_tokens", Value::Int(*prompt_tokens as i128)),
                        ("gen_tokens", Value::Int(*gen_tokens as i128)),
                        ("queue_depth", Value::Int(*queue_depth as i128)),
                        ("kv_used_pages", Value::Int(*kv_used_pages as i128)),
                        ("kv_total_pages", Value::Int(*kv_total_pages as i128)),
                        ("memo_hit", Value::Bool(*memo_hit)),
                    ],
                    0,
                ));
            }
            SimEvent::LinkShare { from_ps, to_ps, link, bw_gbps, bytes } => {
                processes.entry(0).or_insert_with(|| "fabric".into());
                if !link_order.contains(link) {
                    link_order.push(link.clone());
                }
                link_open.insert(link.clone(), *to_ps);
                let window = to_ps.saturating_sub(*from_ps);
                let cap_bytes = bw_gbps / 1000.0 * window as f64;
                let util = if cap_bytes > 0.0 { bytes / cap_bytes } else { 0.0 };
                entries.push(Entry {
                    ts_ps: *from_ps,
                    pid: 0,
                    tid: 0,
                    neg_dur_ps: 0,
                    rank: 0,
                    value: json::obj(vec![
                        ("name", Value::Str(format!("util {link}"))),
                        ("ph", Value::Str("C".into())),
                        ("pid", Value::Int(0)),
                        ("ts", us(*from_ps)),
                        ("args", json::obj(vec![("util", Value::Float(util))])),
                    ]),
                });
            }
            SimEvent::Command { t_ps, command } => {
                entries.push(instant(*t_ps, 0, 0, format!("cmd {command}")));
                processes.entry(0).or_insert_with(|| "fabric".into());
            }
            SimEvent::RoleApplied { t_ps, replica, role } => {
                let pid = replica + 1;
                processes.entry(pid as i128).or_insert_with(|| format!("replica {replica}"));
                entries.push(instant(*t_ps, pid as i128, 0, format!("role={role}")));
            }
            SimEvent::ReplicaRetired { t_ps, replica } => {
                let pid = replica + 1;
                processes.entry(pid as i128).or_insert_with(|| format!("replica {replica}"));
                entries.push(instant(*t_ps, pid as i128, 0, "retired".into()));
            }
            SimEvent::ReplicaActivated { replica, .. } => {
                let pid = replica + 1;
                processes.entry(pid as i128).or_insert_with(|| format!("replica {replica}"));
            }
            SimEvent::ReplicaFault { t_ps, replica, kind } => {
                let pid = replica + 1;
                processes.entry(pid as i128).or_insert_with(|| format!("replica {replica}"));
                entries.push(instant(*t_ps, pid as i128, 0, format!("fault={kind}")));
            }
            SimEvent::ReplicaRecovered { t_ps, replica } => {
                let pid = replica + 1;
                processes.entry(pid as i128).or_insert_with(|| format!("replica {replica}"));
                entries.push(instant(*t_ps, pid as i128, 0, "recovered".into()));
            }
            SimEvent::LinkFault { t_ps, link, bw_gbps } => {
                processes.entry(0).or_insert_with(|| "fabric".into());
                entries.push(instant(*t_ps, 0, 0, format!("link{link} fault bw={bw_gbps}")));
            }
            SimEvent::LinkRecovered { t_ps, link } => {
                processes.entry(0).or_insert_with(|| "fabric".into());
                entries.push(instant(*t_ps, 0, 0, format!("link{link} recovered")));
            }
            SimEvent::RequestRetried { t_ps, id, attempt, .. } => {
                entries.push(instant(*t_ps, 0, 0, format!("retry req {id} #{attempt}")));
                processes.entry(0).or_insert_with(|| "fabric".into());
            }
            SimEvent::RequestAbandoned { t_ps, id, reason } => {
                entries.push(instant(*t_ps, 0, 0, format!("abandon req {id}: {reason}")));
                processes.entry(0).or_insert_with(|| "fabric".into());
            }
            SimEvent::Tick { .. } => {}
        }
    }

    // Close every link counter track at its last interval end.
    for link in &link_order {
        let end = link_open[link];
        entries.push(Entry {
            ts_ps: end,
            pid: 0,
            tid: 0,
            neg_dur_ps: 0,
            rank: 1,
            value: json::obj(vec![
                ("name", Value::Str(format!("util {link}"))),
                ("ph", Value::Str("C".into())),
                ("pid", Value::Int(0)),
                ("ts", us(end)),
                ("args", json::obj(vec![("util", Value::Float(0.0))])),
            ]),
        });
    }

    for (&id, life) in &lives {
        render_life(id, life, &mut entries, &mut processes, &mut threads);
    }

    // Metadata first, then the event stream ordered by (ts, track,
    // longest-slice-first) — which also makes ts monotonic per track.
    entries.sort_by(|a, b| {
        (a.ts_ps, a.pid, a.tid, a.neg_dur_ps, a.rank).cmp(&(
            b.ts_ps,
            b.pid,
            b.tid,
            b.neg_dur_ps,
            b.rank,
        ))
    });
    let mut out: Vec<Value> = Vec::new();
    for (&pid, name) in &processes {
        out.push(json::obj(vec![
            ("name", Value::Str("process_name".into())),
            ("ph", Value::Str("M".into())),
            ("pid", Value::Int(pid)),
            ("args", json::obj(vec![("name", Value::Str(name.clone()))])),
        ]));
        out.push(json::obj(vec![
            ("name", Value::Str("process_sort_index".into())),
            ("ph", Value::Str("M".into())),
            ("pid", Value::Int(pid)),
            ("args", json::obj(vec![("sort_index", Value::Int(pid))])),
        ]));
    }
    for (&(pid, tid), name) in &threads {
        out.push(json::obj(vec![
            ("name", Value::Str("thread_name".into())),
            ("ph", Value::Str("M".into())),
            ("pid", Value::Int(pid)),
            ("tid", Value::Int(tid)),
            ("args", json::obj(vec![("name", Value::Str(name.clone()))])),
        ]));
    }
    out.extend(entries.into_iter().map(|e| e.value));
    json::pretty(&json::obj(vec![("traceEvents", Value::Array(out))]))
}

fn instant(t_ps: TimePs, pid: i128, tid: i128, name: String) -> Entry {
    Entry {
        ts_ps: t_ps,
        pid,
        tid,
        neg_dur_ps: 0,
        rank: 4,
        value: json::obj(vec![
            ("name", Value::Str(name)),
            ("ph", Value::Str("i".into())),
            ("pid", Value::Int(pid)),
            ("tid", Value::Int(tid)),
            ("ts", us(t_ps)),
            ("s", Value::Str("t".into())),
        ]),
    }
}

/// Emits one request's slices (and its flow arrow when it was handed
/// off). Lifecycles missing their closing event are skipped rather than
/// drawn open-ended.
fn render_life(
    id: u64,
    life: &Life,
    entries: &mut Vec<Entry>,
    processes: &mut BTreeMap<i128, String>,
    threads: &mut BTreeMap<(i128, i128), String>,
) {
    let tid = id as i128 + 1;
    let mut track = |replica: usize, processes: &mut BTreeMap<i128, String>| {
        let pid = replica as i128 + 1;
        processes.entry(pid).or_insert_with(|| format!("replica {replica}"));
        threads.entry((pid, tid)).or_insert_with(|| format!("req {id}"));
        pid as usize - 1
    };
    let args = |life: &Life| -> Vec<(&str, Value)> {
        match life.arrival {
            Some((_, input, output)) => vec![
                ("input_len", Value::Int(input as i128)),
                ("output_len", Value::Int(output as i128)),
            ],
            None => Vec::new(),
        }
    };
    let handoff = life.queued.is_some() || life.transfer_start.is_some();
    if !handoff {
        // Unified lifecycle: one span on one replica.
        let Some(&(finish, replica)) = life.completions.first() else { return };
        let open = life
            .admitted
            .map(|(t, _)| t)
            .or(life.prefill_start.map(|(t, _)| t))
            .or(life.arrival.map(|(t, ..)| t))
            .unwrap_or(finish);
        let r = track(replica, processes);
        entries.push(slice(format!("req {id}"), r + 1, tid, open, finish, args(life), 1));
        if let Some((ps, _)) = life.prefill_start {
            if ps > open {
                entries.push(slice("queued".into(), r + 1, tid, open, ps, Vec::new(), 2));
            }
            if let Some(pe) = life.prefill_end {
                entries.push(slice("prefill".into(), r + 1, tid, ps, pe, Vec::new(), 2));
            }
        }
        if let Some((ds, _)) = life.decode_start {
            entries.push(slice("decode".into(), r + 1, tid, ds, finish, Vec::new(), 2));
        }
        return;
    }

    // Handed-off lifecycle: a prefill-side span, a decode-side span,
    // and a flow arrow riding the KV transfer between them.
    let from =
        life.queued.map(|(_, f)| f).or(life.transfer_start.map(|(_, f, ..)| f)).unwrap_or(0);
    let prefill_close = life
        .queued
        .map(|(t, _)| t)
        .or(life.prefill_end)
        .or(life.transfer_start.map(|(t, ..)| t));
    let open = life
        .admitted
        .map(|(t, _)| t)
        .or(life.prefill_start.map(|(t, _)| t))
        .or(life.arrival.map(|(t, ..)| t));
    if let (Some(open), Some(close)) = (open, prefill_close) {
        let r = track(from, processes);
        entries.push(slice(
            format!("req {id} (prefill)"),
            r + 1,
            tid,
            open,
            close,
            args(life),
            1,
        ));
        if let Some((ps, _)) = life.prefill_start {
            if ps > open {
                entries.push(slice("queued".into(), r + 1, tid, open, ps, Vec::new(), 2));
            }
            if let Some(pe) = life.prefill_end {
                entries.push(slice("prefill".into(), r + 1, tid, ps, pe, Vec::new(), 2));
            }
        }
    }
    let Some((arrive, to)) = life.transfer_end else { return };
    // The decode-side completion is the one that is not the prefill
    // replica's bookkeeping record (same replica, finishing exactly at
    // the KV-ready instant).
    let queued_t = life.queued.map(|(t, _)| t);
    let decode_finish =
        life.completions.iter().find(|&&(t, r)| !(r == from && Some(t) == queued_t)).copied();
    if let Some((finish, _)) = decode_finish {
        let r = track(to, processes);
        entries.push(slice(
            format!("req {id} (decode)"),
            r + 1,
            tid,
            arrive,
            finish,
            args(life),
            1,
        ));
        if let Some((ds, _)) = life.decode_start {
            entries.push(slice("decode".into(), r + 1, tid, ds, finish, Vec::new(), 2));
        }
    }
    // Flow arrow: out of the prefill-side span at the KV-ready
    // instant, into the decode-side span at delivery.
    if let Some(close) = prefill_close {
        let bytes = life.transfer_start.map(|(.., b)| b).unwrap_or(0);
        let fp = from as i128 + 1;
        let tp = to as i128 + 1;
        entries.push(Entry {
            ts_ps: close,
            pid: fp,
            tid,
            neg_dur_ps: 0,
            rank: 3,
            value: json::obj(vec![
                ("name", Value::Str("kv".into())),
                ("cat", Value::Str("kv".into())),
                ("ph", Value::Str("s".into())),
                ("id", Value::Int(id as i128)),
                ("pid", Value::Int(fp)),
                ("tid", Value::Int(tid)),
                ("ts", us(close)),
                ("args", json::obj(vec![("bytes", Value::Int(bytes as i128))])),
            ]),
        });
        entries.push(Entry {
            ts_ps: arrive,
            pid: tp,
            tid,
            neg_dur_ps: 0,
            rank: 3,
            value: json::obj(vec![
                ("name", Value::Str("kv".into())),
                ("cat", Value::Str("kv".into())),
                ("ph", Value::Str("f".into())),
                ("bp", Value::Str("e".into())),
                ("id", Value::Int(id as i128)),
                ("pid", Value::Int(tp)),
                ("tid", Value::Int(tid)),
                ("ts", us(arrive)),
            ]),
        });
    }
    // The fabric-side flow slice (only present when the fabric emitted
    // flow events for this id).
    if let (Some((fs, bytes)), Some(fe)) = life.flow {
        processes.entry(0).or_insert_with(|| "fabric".into());
        threads.entry((0, tid)).or_insert_with(|| format!("flow {id}"));
        entries.push(slice(
            format!("flow {id}"),
            0,
            tid,
            fs,
            fe,
            vec![("bytes", Value::Int(bytes as i128))],
            1,
        ));
    }
}

/// Structurally validates a Chrome trace JSON document: well-formed
/// JSON, a `traceEvents` array, required fields per phase, and `ts`
/// monotonically non-decreasing within every `(pid, tid)` track. Every
/// flow-start (`ph: "s"`) must have a matching flow-finish (`"f"`) with
/// a later-or-equal timestamp.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate_chrome_trace(text: &str) -> Result<(), String> {
    let root = json::parse(text)?;
    let Some(Value::Array(events)) = root.get("traceEvents") else {
        return Err("missing traceEvents array".into());
    };
    let mut last_ts: BTreeMap<(i128, i128), f64> = BTreeMap::new();
    let mut flows: BTreeMap<i128, (usize, usize, f64, f64)> = BTreeMap::new();
    let int = |v: Option<&Value>| -> Option<i128> {
        match v {
            Some(Value::Int(i)) => Some(*i),
            _ => None,
        }
    };
    let num = |v: Option<&Value>| -> Option<f64> {
        match v {
            Some(Value::Float(f)) => Some(*f),
            Some(Value::Int(i)) => Some(*i as f64),
            _ => None,
        }
    };
    for (i, e) in events.iter().enumerate() {
        let Some(Value::Str(ph)) = e.get("ph") else {
            return Err(format!("event {i}: missing ph"));
        };
        let Some(Value::Str(_)) = e.get("name") else {
            return Err(format!("event {i}: missing name"));
        };
        let pid = int(e.get("pid")).ok_or_else(|| format!("event {i}: missing integer pid"))?;
        if ph == "M" {
            continue;
        }
        let ts = num(e.get("ts")).ok_or_else(|| format!("event {i}: missing numeric ts"))?;
        if ts < 0.0 {
            return Err(format!("event {i}: negative ts {ts}"));
        }
        match ph.as_str() {
            "X" => {
                let tid = int(e.get("tid"))
                    .ok_or_else(|| format!("event {i}: missing integer tid"))?;
                let dur = num(e.get("dur"))
                    .ok_or_else(|| format!("event {i}: X event missing dur"))?;
                if dur < 0.0 {
                    return Err(format!("event {i}: negative dur {dur}"));
                }
                let prev = last_ts.entry((pid, tid)).or_insert(f64::NEG_INFINITY);
                if ts < *prev {
                    return Err(format!(
                        "event {i}: ts {ts} goes backwards on track ({pid}, {tid})"
                    ));
                }
                *prev = ts;
            }
            "s" | "f" => {
                let id =
                    int(e.get("id")).ok_or_else(|| format!("event {i}: flow missing id"))?;
                let entry = flows.entry(id).or_insert((0, 0, f64::INFINITY, f64::NEG_INFINITY));
                if ph == "s" {
                    entry.0 += 1;
                    entry.2 = entry.2.min(ts);
                } else {
                    entry.1 += 1;
                    entry.3 = entry.3.max(ts);
                }
            }
            "C" | "i" => {}
            other => return Err(format!("event {i}: unexpected phase {other:?}")),
        }
    }
    for (id, (starts, finishes, first_s, last_f)) in flows {
        if starts != finishes {
            return Err(format!("flow {id}: {starts} starts but {finishes} finishes"));
        }
        if starts > 0 && last_f < first_s {
            return Err(format!(
                "flow {id}: finishes at {last_f} before it starts at {first_s}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handoff_events() -> Vec<SimEvent> {
        vec![
            SimEvent::Arrival { t_ps: 0, id: 1, input_len: 8, output_len: 4 },
            SimEvent::Admitted { t_ps: 0, id: 1, replica: 0 },
            SimEvent::PrefillStart { t_ps: 10, id: 1, replica: 0 },
            SimEvent::Iteration {
                replica: 0,
                index: 0,
                start_ps: 10,
                end_ps: 50,
                batch_size: 1,
                prefill_slots: 1,
                prompt_tokens: 8,
                gen_tokens: 0,
                queue_depth: 0,
                kv_used_pages: 1,
                kv_total_pages: 8,
                memo_hit: false,
                signature: "1p+0d/8t".into(),
            },
            SimEvent::PrefillEnd { t_ps: 50, id: 1, replica: 0 },
            SimEvent::Completed {
                t_ps: 50,
                id: 1,
                replica: 0,
                arrival_ps: 0,
                first_token_ps: 50,
                input_len: 8,
                output_len: 1,
            },
            SimEvent::TransferQueued { t_ps: 50, id: 1, from: 0 },
            SimEvent::TransferStart {
                t_ps: 50,
                id: 1,
                from: 0,
                to: 1,
                bytes: 64,
                nominal_ps: 20,
            },
            SimEvent::FlowStart { t_ps: 50, id: 1, bytes: 64 },
            SimEvent::FlowEnd { t_ps: 70, id: 1 },
            SimEvent::TransferEnd { t_ps: 70, id: 1, from: 0, to: 1 },
            SimEvent::DecodeStart { t_ps: 80, id: 1, replica: 1 },
            SimEvent::Completed {
                t_ps: 120,
                id: 1,
                replica: 1,
                arrival_ps: 70,
                first_token_ps: 80,
                input_len: 8,
                output_len: 4,
            },
        ]
    }

    #[test]
    fn handoff_produces_flow_arrow_between_tracks() {
        let text = chrome_trace(&handoff_events());
        validate_chrome_trace(&text).unwrap();
        assert!(text.contains("\"ph\": \"s\""), "missing flow start:\n{text}");
        assert!(text.contains("\"ph\": \"f\""), "missing flow finish:\n{text}");
        assert!(text.contains("req 1 (prefill)"));
        assert!(text.contains("req 1 (decode)"));
        assert!(text.contains("replica 1"));
    }

    #[test]
    fn export_is_deterministic() {
        let events = handoff_events();
        assert_eq!(chrome_trace(&events), chrome_trace(&events));
    }

    #[test]
    fn validator_catches_backwards_ts() {
        let bad = r#"{"traceEvents": [
            {"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 5.0, "dur": 1.0},
            {"name": "b", "ph": "X", "pid": 1, "tid": 1, "ts": 2.0, "dur": 1.0}
        ]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("backwards"));
    }

    #[test]
    fn validator_catches_unbalanced_flows() {
        let bad = r#"{"traceEvents": [
            {"name": "kv", "ph": "s", "pid": 1, "tid": 1, "ts": 5.0, "id": 3}
        ]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("flow 3"));
    }
}
