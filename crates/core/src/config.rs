//! Simulation configuration (the artifact's 16 CLI parameters).

use llmss_model::ModelSpec;
use llmss_net::{LinkSpec, TimePs, Topology};
use llmss_npu::NpuConfig;
use llmss_pim::PimConfig;
use llmss_sched::{
    KvCache, KvCacheConfig, MemoryModel, SchedulerConfig, SchedulerMode, SchedulingPolicy,
};
use serde::{Deserialize, Serialize};

use crate::PimMode;

/// Parallelism strategy (the artifact's `parallel` parameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParallelismKind {
    /// All NPUs in one tensor-parallel group.
    Tensor,
    /// Each NPU its own pipeline stage.
    Pipeline,
    /// `npu_group` pipeline stages of tensor-parallel groups.
    Hybrid,
}

/// A resolved parallelism layout: `tp` nodes per group, `pp` groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelismSpec {
    /// Tensor-parallel degree (nodes per group).
    pub tp: usize,
    /// Pipeline-parallel degree (number of stage groups).
    pub pp: usize,
}

impl ParallelismSpec {
    /// Total accelerator nodes.
    pub fn n_nodes(&self) -> usize {
        self.tp * self.pp
    }
}

impl std::fmt::Display for ParallelismSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TP{} PP{}", self.tp, self.pp)
    }
}

/// KV-cache management choice (the artifact's `kv_manage`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KvManage {
    /// vLLM-style demand paging (default).
    Vllm,
    /// Conventional max-length preallocation.
    MaxLen,
}

/// KV-length bucket policy for iteration-outcome memoization.
///
/// The iteration cache keys batches on their KV lengths divided by a
/// bucket granularity: bucket 1 is exact (memoized runs are bit-identical
/// to unmemoized ones), coarser buckets trade bounded timing fidelity for
/// much higher hit rates. [`Fixed`](KvBucket::Fixed) pins one granularity
/// for the whole run; [`Adaptive`](KvBucket::Adaptive) *anneals* it — the
/// run starts at `min_tokens` and doubles the bucket (up to the
/// `max_tokens` drift budget) whenever a window of iterations falls short
/// of the target hit rate, so each trace finds its own fidelity/speed
/// point instead of requiring a hand-tuned global `--kv-bucket`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KvBucket {
    /// One bucket granularity for the whole run (1 = exact).
    Fixed {
        /// Bucket width in tokens (>= 1).
        tokens: usize,
    },
    /// Anneal the bucket from observed iteration-cache hit rates.
    Adaptive {
        /// Starting (and minimum) bucket width in tokens (>= 1; 1 starts
        /// exact).
        min_tokens: usize,
        /// The drift budget: the bucket never grows beyond this width,
        /// bounding how far a decode iteration's priced KV length can sit
        /// from its true length.
        max_tokens: usize,
        /// Observed-window hit rate below which the bucket doubles, in
        /// `(0, 1]`.
        target_hit_rate: f64,
        /// Cacheable iterations per observation window (>= 1).
        window: u64,
    },
}

impl KvBucket {
    /// The exact policy: fixed unit buckets, bit-identical reports.
    pub fn exact() -> Self {
        KvBucket::Fixed { tokens: 1 }
    }

    /// A reasonable adaptive default: start exact, grow up to 128-token
    /// buckets whenever a 64-iteration window hits below 60%.
    pub fn adaptive() -> Self {
        KvBucket::Adaptive { min_tokens: 1, max_tokens: 128, target_hit_rate: 0.6, window: 64 }
    }

    /// The bucket width the run starts with.
    pub fn initial_tokens(&self) -> usize {
        match *self {
            KvBucket::Fixed { tokens } => tokens,
            KvBucket::Adaptive { min_tokens, .. } => min_tokens,
        }
    }

    /// Checks the policy's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when a width is zero, the adaptive range is
    /// inverted, the target hit rate is outside `(0, 1]`, or the window is
    /// empty.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match *self {
            KvBucket::Fixed { tokens } => {
                if tokens == 0 {
                    return Err(ConfigError::new("kv_bucket must be at least 1 token"));
                }
            }
            KvBucket::Adaptive { min_tokens, max_tokens, target_hit_rate, window } => {
                if min_tokens == 0 {
                    return Err(ConfigError::new("adaptive kv_bucket min_tokens must be >= 1"));
                }
                if max_tokens < min_tokens {
                    return Err(ConfigError::new(format!(
                        "adaptive kv_bucket range inverted: min {min_tokens} > max {max_tokens}"
                    )));
                }
                if !(target_hit_rate > 0.0 && target_hit_rate <= 1.0) {
                    return Err(ConfigError::new(format!(
                        "adaptive kv_bucket target_hit_rate must be in (0, 1], got \
                         {target_hit_rate}"
                    )));
                }
                if window == 0 {
                    return Err(ConfigError::new("adaptive kv_bucket window must be >= 1"));
                }
            }
        }
        Ok(())
    }
}

impl Default for KvBucket {
    fn default() -> Self {
        Self::exact()
    }
}

impl From<usize> for KvBucket {
    fn from(tokens: usize) -> Self {
        KvBucket::Fixed { tokens }
    }
}

/// Errors raised when a configuration cannot be realized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid simulation config: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Full simulation configuration.
///
/// Mirrors the artifact's parameters: model, `npu_num`, `max_batch`,
/// `batch_delay`, `scheduling`, `parallel`, `npu_group`, `npu_mem`,
/// `kv_manage`, `pim_type`, `sub_batch` — plus the hardware configs and
/// link specs that live in separate JSON files in the original.
///
/// # Examples
///
/// ```
/// use llmss_core::SimConfig;
/// use llmss_model::ModelSpec;
///
/// let cfg = SimConfig::new(ModelSpec::gpt3_7b())
///     .npu_num(4)
///     .tensor_parallel();
/// assert_eq!(cfg.parallelism().unwrap().tp, 4);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The model to serve.
    pub model: ModelSpec,
    /// Number of NPU nodes.
    pub npu_num: usize,
    /// Maximum batch size (0 = unlimited).
    pub max_batch: usize,
    /// Batching delay in milliseconds.
    pub batch_delay_ms: f64,
    /// Scheduling policy.
    pub scheduling: SchedulingPolicy,
    /// Which serving phases this replica runs (unified, prefill-only, or
    /// decode-only — the disaggregated-serving knob).
    pub mode: SchedulerMode,
    /// Parallelism strategy.
    pub parallel: ParallelismKind,
    /// NPU groups for hybrid parallelism (= pipeline stages).
    pub npu_group: usize,
    /// Per-NPU memory override in GiB (`None`: use the NPU config's).
    pub npu_mem_gib: Option<f64>,
    /// KV-cache management scheme.
    pub kv_manage: KvManage,
    /// Tokens per KV page.
    pub kv_page_tokens: usize,
    /// PIM participation.
    pub pim_mode: PimMode,
    /// Number of PIM nodes when `pim_mode == Pool`.
    pub pim_pool_size: usize,
    /// NeuPIMs-style sub-batch interleaving.
    pub sub_batch: bool,
    /// Orca-style selective batching (attention fan-out across the group).
    pub selective_batching: bool,
    /// Computation-reuse caches enabled.
    pub reuse: bool,
    /// Whole-iteration outcome memoization (requires `reuse`; see
    /// [`kv_bucket`](Self::kv_bucket) for the fidelity knob).
    pub iteration_memo: bool,
    /// KV-length bucket policy for iteration signatures. The default
    /// ([`KvBucket::exact`]) keys iterations on exact KV lengths —
    /// memoized runs are then bit-identical to unmemoized ones; coarser
    /// fixed buckets price a decode iteration as its bucket
    /// representative, and [`KvBucket::Adaptive`] anneals the width per
    /// run from observed hit rates within a drift budget.
    pub kv_bucket: KvBucket,
    /// NPU hardware configuration.
    pub npu_config: NpuConfig,
    /// PIM hardware configuration.
    pub pim_config: PimConfig,
    /// Inter-device link.
    pub link: LinkSpec,
    /// NPU-pool to PIM-pool interconnect.
    pub pool_link: LinkSpec,
}

impl SimConfig {
    /// Creates a configuration with the artifact's defaults for `model`.
    pub fn new(model: ModelSpec) -> Self {
        Self {
            model,
            npu_num: 16,
            max_batch: 0,
            batch_delay_ms: 0.0,
            scheduling: SchedulingPolicy::IterationLevel,
            mode: SchedulerMode::Unified,
            parallel: ParallelismKind::Hybrid,
            npu_group: 1,
            npu_mem_gib: None,
            kv_manage: KvManage::Vllm,
            kv_page_tokens: 16,
            pim_mode: PimMode::None,
            pim_pool_size: 0,
            sub_batch: false,
            selective_batching: true,
            reuse: true,
            iteration_memo: true,
            kv_bucket: KvBucket::exact(),
            npu_config: NpuConfig::table1(),
            pim_config: PimConfig::table1(),
            link: LinkSpec::pcie4_x16(),
            pool_link: LinkSpec::cxl(),
        }
    }

    /// A deterministic 64-bit digest of every field that shapes
    /// simulated outcomes — the namespace key for the cross-replica
    /// [`SharedReuse`](crate::SharedReuse) tier. Two replicas may share
    /// cached iteration outcomes only when their fingerprints agree:
    /// identical configurations produce identical graphs, so a cached
    /// outcome is a pure function of the batch signature within one
    /// fingerprint. The digest is FNV-1a over the `Debug` rendering,
    /// which covers all fields (the struct is not serde-serializable)
    /// and stays stable for a fixed configuration within one build.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x1000_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in format!("{self:?}").bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }

    /// Sets the number of NPUs.
    pub fn npu_num(mut self, n: usize) -> Self {
        self.npu_num = n;
        self
    }

    /// Uses pure tensor parallelism.
    pub fn tensor_parallel(mut self) -> Self {
        self.parallel = ParallelismKind::Tensor;
        self
    }

    /// Uses pure pipeline parallelism.
    pub fn pipeline_parallel(mut self) -> Self {
        self.parallel = ParallelismKind::Pipeline;
        self
    }

    /// Uses hybrid parallelism with `groups` pipeline stages.
    pub fn hybrid_parallel(mut self, groups: usize) -> Self {
        self.parallel = ParallelismKind::Hybrid;
        self.npu_group = groups;
        self
    }

    /// Sets the maximum batch size (0 = unlimited).
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n;
        self
    }

    /// Enables or disables the computation-reuse caches.
    pub fn reuse(mut self, enabled: bool) -> Self {
        self.reuse = enabled;
        self
    }

    /// Enables or disables whole-iteration outcome memoization (on by
    /// default; also requires [`reuse`](Self::reuse)).
    pub fn iteration_memo(mut self, enabled: bool) -> Self {
        self.iteration_memo = enabled;
        self
    }

    /// Sets the KV-length bucket policy for iteration signatures: a
    /// plain token count for a fixed bucket (1 = exact; larger trades
    /// bounded fidelity for hit rate), or a full [`KvBucket`] value
    /// (e.g. [`KvBucket::Adaptive`]).
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (zero width, inverted adaptive
    /// range, out-of-range target, empty window).
    pub fn kv_bucket(mut self, bucket: impl Into<KvBucket>) -> Self {
        let bucket = bucket.into();
        if let Err(e) = bucket.validate() {
            panic!("{e}"); // llmss-lint: allow(p001, reason = "documented panic: an invalid bucket spec is a caller bug in this builder API")
        }
        self.kv_bucket = bucket;
        self
    }

    /// Attaches a local PIM to every NPU device.
    pub fn pim_local(mut self) -> Self {
        self.pim_mode = PimMode::Local;
        self
    }

    /// Adds a PIM pool of `n` devices.
    pub fn pim_pool(mut self, n: usize) -> Self {
        self.pim_mode = PimMode::Pool;
        self.pim_pool_size = n;
        self
    }

    /// Enables NeuPIMs-style sub-batch interleaving.
    pub fn sub_batch(mut self, enabled: bool) -> Self {
        self.sub_batch = enabled;
        self
    }

    /// Enables or disables selective batching.
    pub fn selective_batching(mut self, enabled: bool) -> Self {
        self.selective_batching = enabled;
        self
    }

    /// Uses max-length KV preallocation instead of paging.
    pub fn kv_max_len(mut self) -> Self {
        self.kv_manage = KvManage::MaxLen;
        self
    }

    /// Sets the scheduling policy.
    pub fn scheduling(mut self, policy: SchedulingPolicy) -> Self {
        self.scheduling = policy;
        self
    }

    /// Runs this replica as a prefill-pool member: requests complete at
    /// the end of their prefill iteration, KV ready to ship.
    pub fn prefill_only(mut self) -> Self {
        self.mode = SchedulerMode::PrefillOnly;
        self
    }

    /// Runs this replica as a decode-pool member: admitted requests
    /// arrive with their prompt KV already computed elsewhere.
    pub fn decode_only(mut self) -> Self {
        self.mode = SchedulerMode::DecodeOnly;
        self
    }

    /// Per-NPU memory in bytes (override or hardware config).
    pub fn npu_mem_bytes(&self) -> u64 {
        let gib = self.npu_mem_gib.unwrap_or(self.npu_config.mem_capacity_gib);
        (gib * 1024.0 * 1024.0 * 1024.0) as u64
    }

    /// Resolves the parallelism layout.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if groups do not divide `npu_num`, the
    /// layout has more stages than the model has layers, or `npu_num` is 0.
    pub fn parallelism(&self) -> Result<ParallelismSpec, ConfigError> {
        if self.npu_num == 0 {
            return Err(ConfigError::new("npu_num must be at least 1"));
        }
        let spec = match self.parallel {
            ParallelismKind::Tensor => ParallelismSpec { tp: self.npu_num, pp: 1 },
            ParallelismKind::Pipeline => ParallelismSpec { tp: 1, pp: self.npu_num },
            ParallelismKind::Hybrid => {
                if self.npu_group == 0 || !self.npu_num.is_multiple_of(self.npu_group) {
                    return Err(ConfigError::new(format!(
                        "npu_group {} must divide npu_num {}",
                        self.npu_group, self.npu_num
                    )));
                }
                ParallelismSpec { tp: self.npu_num / self.npu_group, pp: self.npu_group }
            }
        };
        if spec.pp > self.model.n_layers {
            return Err(ConfigError::new(format!(
                "{} pipeline stages exceed {} model layers",
                spec.pp, self.model.n_layers
            )));
        }
        Ok(spec)
    }

    /// Builds the system topology for this configuration.
    ///
    /// # Errors
    ///
    /// Propagates parallelism errors; requires a non-empty PIM pool in
    /// `Pool` mode.
    pub fn topology(&self) -> Result<Topology, ConfigError> {
        let p = self.parallelism()?;
        match self.pim_mode {
            PimMode::None | PimMode::Local => {
                Ok(Topology::grouped_npus(self.npu_num, p.pp, self.link))
            }
            PimMode::Pool => {
                if self.pim_pool_size == 0 {
                    return Err(ConfigError::new("pool mode needs pim_pool_size >= 1"));
                }
                Ok(Topology::npu_pim_pools(
                    self.npu_num,
                    self.pim_pool_size,
                    p.pp,
                    self.link,
                    self.pool_link,
                ))
            }
        }
    }

    /// Builds the aggregate memory model.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the model weights do not fit.
    pub fn memory_model(&self) -> Result<MemoryModel, ConfigError> {
        let per_device = self.npu_mem_bytes();
        let weights = self.model.weight_bytes();
        // 1 GiB activation/workspace reserve per device.
        let reserve: u64 = 1 << 30;
        let total = self.npu_num as u64 * per_device;
        if weights + self.npu_num as u64 * reserve > total {
            return Err(ConfigError::new(format!(
                "model weights ({:.1} GiB) exceed system memory ({:.1} GiB across {} NPUs)",
                weights as f64 / (1u64 << 30) as f64,
                total as f64 / (1u64 << 30) as f64,
                self.npu_num
            )));
        }
        Ok(MemoryModel::new(self.npu_num, per_device, weights, reserve))
    }

    /// Builds the KV cache for this configuration.
    ///
    /// # Errors
    ///
    /// Propagates memory-model errors.
    pub fn kv_cache(&self) -> Result<KvCache, ConfigError> {
        let mem = self.memory_model()?;
        let per_token = self.model.kv_bytes_per_token();
        let mut kv_cfg = match self.kv_manage {
            KvManage::Vllm => KvCacheConfig::paged(mem.kv_budget(), per_token),
            KvManage::MaxLen => {
                KvCacheConfig::max_len(mem.kv_budget(), per_token, self.model.max_seq)
            }
        };
        kv_cfg.page_tokens = self.kv_page_tokens;
        Ok(KvCache::new(kv_cfg))
    }

    /// Builds the scheduler configuration.
    pub fn scheduler_config(&self) -> SchedulerConfig {
        SchedulerConfig {
            policy: self.scheduling,
            mode: self.mode,
            max_batch: self.max_batch,
            batch_delay_ps: (self.batch_delay_ms * 1e9) as TimePs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_resolution() {
        let base = SimConfig::new(ModelSpec::gpt3_7b()).npu_num(8);
        assert_eq!(base.clone().tensor_parallel().parallelism().unwrap().tp, 8);
        assert_eq!(base.clone().pipeline_parallel().parallelism().unwrap().pp, 8);
        let h = base.hybrid_parallel(2).parallelism().unwrap();
        assert_eq!((h.tp, h.pp), (4, 2));
    }

    #[test]
    fn bad_group_division_rejected() {
        let cfg = SimConfig::new(ModelSpec::gpt3_7b()).npu_num(8).hybrid_parallel(3);
        assert!(cfg.parallelism().is_err());
    }

    #[test]
    fn too_many_stages_rejected() {
        // GPT-2 has 12 layers; 16 pipeline stages cannot work.
        let cfg = SimConfig::new(ModelSpec::gpt2()).npu_num(16).pipeline_parallel();
        assert!(cfg.parallelism().is_err());
    }

    #[test]
    fn oversized_model_rejected_by_memory_model() {
        let cfg = SimConfig::new(ModelSpec::gpt3_175b()).npu_num(2).tensor_parallel();
        assert!(cfg.memory_model().is_err());
    }

    #[test]
    fn kv_cache_gets_leftover_capacity() {
        let cfg = SimConfig::new(ModelSpec::gpt3_7b()).npu_num(4).tensor_parallel();
        let kv = cfg.kv_cache().unwrap();
        // 4 * 24 GiB minus ~13.4 GB weights minus 4 GiB reserve: tens of GiB
        // of KV space -> hundreds of thousands of 16-token pages at 512 KiB.
        assert!(kv.free_pages() > 10_000);
    }

    #[test]
    fn pool_mode_topology_has_pim_nodes() {
        let cfg = SimConfig::new(ModelSpec::gpt3_7b()).npu_num(4).tensor_parallel().pim_pool(2);
        let topo = cfg.topology().unwrap();
        assert_eq!(topo.n_nodes(), 6);
        assert_eq!(topo.nodes_of_class(llmss_net::NodeClass::Pim).len(), 2);
    }

    #[test]
    fn kv_bucket_policies_validate() {
        assert!(KvBucket::exact().validate().is_ok());
        assert!(KvBucket::adaptive().validate().is_ok());
        assert_eq!(KvBucket::from(64).initial_tokens(), 64);
        assert_eq!(KvBucket::adaptive().initial_tokens(), 1);
        assert!(KvBucket::Fixed { tokens: 0 }.validate().is_err());
        let inverted = KvBucket::Adaptive {
            min_tokens: 64,
            max_tokens: 8,
            target_hit_rate: 0.5,
            window: 16,
        };
        assert!(inverted.validate().is_err());
        let bad_target = KvBucket::Adaptive {
            min_tokens: 1,
            max_tokens: 64,
            target_hit_rate: 1.5,
            window: 16,
        };
        assert!(bad_target.validate().is_err());
        let empty_window = KvBucket::Adaptive {
            min_tokens: 1,
            max_tokens: 64,
            target_hit_rate: 0.5,
            window: 0,
        };
        assert!(empty_window.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "at least 1 token")]
    fn zero_fixed_bucket_panics_in_builder() {
        let _ = SimConfig::new(ModelSpec::gpt2()).kv_bucket(0);
    }

    #[test]
    fn pool_mode_without_size_rejected() {
        let mut cfg = SimConfig::new(ModelSpec::gpt3_7b()).npu_num(4).tensor_parallel();
        cfg.pim_mode = PimMode::Pool;
        assert!(cfg.topology().is_err());
    }
}
