//! The fleet interleaving core: a min-heap of replica ready-times with
//! lazy invalidation.
//!
//! Moved here from `llmss-cluster` so every driver juggling N
//! independently-clocked [`ServingSimulator`](crate::ServingSimulator)s —
//! the cluster router, the disaggregated pools, the [`FleetEngine`]
//! — shares one implementation instead of re-deriving min-over-replicas.
//!
//! [`FleetEngine`]: crate::FleetEngine

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use llmss_sched::TimePs;

/// A min-heap of replica ready-times with lazy invalidation: every
/// mutation re-keys the replica under a fresh stamp, and stale entries
/// are discarded on peek. A `ready` mirror keeps the latest value per
/// replica, so [`min_live`](Self::min_live) answers without mutating
/// heap state (the `&self` observability path `next_ready_ps` needs).
#[derive(Debug, Default)]
pub struct ReadyHeap {
    /// `(ready time, replica, stamp)` entries, earliest first.
    heap: BinaryHeap<Reverse<(TimePs, usize, u64)>>,
    /// Latest stamp per replica; heap entries with older stamps are stale.
    stamps: Vec<u64>,
    /// The live ready-time per replica (mirror of the newest entry).
    ready: Vec<Option<TimePs>>,
    counter: u64,
}

impl ReadyHeap {
    /// An empty heap over `n` replicas.
    pub fn new(n: usize) -> Self {
        Self { heap: BinaryHeap::new(), stamps: vec![0; n], ready: vec![None; n], counter: 0 }
    }

    /// Number of replicas the heap tracks.
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// Whether the heap tracks zero replicas.
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// Adds one more replica slot (initially idle) and returns its index
    /// — the scale-up path for elastic fleets.
    pub fn grow(&mut self) -> usize {
        self.stamps.push(0);
        self.ready.push(None);
        self.stamps.len() - 1
    }

    /// Re-keys `replica` after a mutation: its previous entry (if any)
    /// goes stale, and `ready` (when `Some`) becomes its live entry.
    pub fn refresh(&mut self, replica: usize, ready: Option<TimePs>) {
        self.counter += 1;
        self.stamps[replica] = self.counter;
        self.ready[replica] = ready;
        if let Some(t) = ready {
            self.heap.push(Reverse((t, replica, self.counter)));
        }
    }

    /// The earliest live entry, discarding stale ones.
    pub fn peek(&mut self) -> Option<(TimePs, usize)> {
        while let Some(&Reverse((t, idx, stamp))) = self.heap.peek() {
            if self.stamps[idx] == stamp {
                #[cfg(feature = "sanitize")]
                debug_assert!(
                    self.min_live() == Some((t, idx)),
                    "sanitize: ReadyHeap mirror drift — heap answers ({t}, {idx}), \
                     mirror answers {:?}",
                    self.min_live()
                );
                return Some((t, idx));
            }
            self.heap.pop();
        }
        #[cfg(feature = "sanitize")]
        debug_assert!(
            self.min_live().is_none(),
            "sanitize: ReadyHeap drained but mirror still lists {:?}",
            self.min_live()
        );
        None
    }

    /// Removes and returns the earliest live entry. The popped replica
    /// goes idle in the mirror too, so [`min_live`](Self::min_live)
    /// never resurrects an entry that no longer exists in the heap.
    pub fn pop(&mut self) -> Option<(TimePs, usize)> {
        let live = self.peek();
        if let Some((_, idx)) = live {
            self.heap.pop();
            self.ready[idx] = None;
        }
        live
    }

    /// The earliest live ready-time without touching heap state — an
    /// O(replicas) scan of the mirror, for `&self` observability paths.
    /// Ties resolve to the lowest replica index, matching
    /// [`peek`](Self::peek)'s time-then-index ordering.
    pub fn min_live(&self) -> Option<(TimePs, usize)> {
        self.ready.iter().enumerate().filter_map(|(i, r)| r.map(|t| (t, i))).min()
    }

    /// The live ready-time of one replica (`None` = parked/idle) — the
    /// windowed step loop reads the whole mirror to collect the set of
    /// replicas runnable before a barrier without disturbing the heap.
    pub fn ready_of(&self, replica: usize) -> Option<TimePs> {
        self.ready[replica]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refresh_invalidates_previous_entries() {
        let mut h = ReadyHeap::new(2);
        h.refresh(0, Some(100));
        h.refresh(1, Some(50));
        h.refresh(1, Some(200)); // replica 1's earlier entry goes stale
        assert_eq!(h.peek(), Some((100, 0)));
        assert_eq!(h.pop(), Some((100, 0)));
        assert_eq!(h.pop(), Some((200, 1)));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn refresh_to_none_parks_a_replica() {
        let mut h = ReadyHeap::new(1);
        h.refresh(0, Some(10));
        h.refresh(0, None);
        assert_eq!(h.peek(), None);
        assert_eq!(h.min_live(), None);
    }

    #[test]
    fn min_live_matches_peek_without_mutation() {
        let mut h = ReadyHeap::new(3);
        h.refresh(0, Some(30));
        h.refresh(1, Some(10));
        h.refresh(2, Some(10)); // tie: lowest index wins, as in peek
        assert_eq!(h.min_live(), Some((10, 1)));
        assert_eq!(h.peek(), Some((10, 1)));
    }

    #[test]
    fn grow_adds_idle_slots() {
        let mut h = ReadyHeap::new(1);
        h.refresh(0, Some(5));
        let idx = h.grow();
        assert_eq!(idx, 1);
        assert_eq!(h.len(), 2);
        assert_eq!(h.min_live(), Some((5, 0)));
        h.refresh(idx, Some(1));
        assert_eq!(h.pop(), Some((1, 1)));
    }
}
