//! The engine-level fleet report: per-replica outcomes, end-to-end
//! completions (KV handoffs joined back to their original arrivals), and
//! fleet-wide SLO metrics for control planes that reshape the fleet at
//! runtime (flexing, autoscaling).
//!
//! Shape-specific drivers (`ClusterSimulator`, `DisaggSimulator`) keep
//! their own richer report types; [`FleetReport`] is the shape-agnostic
//! view a `[fleet]` scenario produces.

use llmss_sched::{Completion, TimePs};

use crate::chaos::ResilienceStats;
use crate::fabric::FabricStats;
use crate::{percentile, PercentileSummary, ReportOutput, ReuseStats, SimReport, SloSummary};

use super::engine::{FleetParts, FleetTransfer};
use super::route::ReplicaRole;

/// One replica's outcome in a finished fleet run.
#[derive(Debug, Clone)]
pub struct FleetReplica {
    /// The replica's full serving report.
    pub report: SimReport,
    /// The role the replica held when the run finished.
    pub role: ReplicaRole,
    /// The role the replica was created with.
    pub home_role: ReplicaRole,
    /// Fresh arrivals routed here.
    pub routed: usize,
    /// KV handoffs paired to this replica.
    pub paired: usize,
    /// Whether the replica was retired (scaled down) at the end.
    pub retired: bool,
}

/// The aggregated result of one fleet-engine run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The control plane that drove the run.
    pub control: String,
    /// Per-replica outcomes, by fleet index (including replicas the
    /// autoscaler added or retired mid-run).
    pub replicas: Vec<FleetReplica>,
    /// End-to-end completions: one per served request, with KV-handoff
    /// requests joined back to their original front-end arrival (sorted
    /// by request id).
    pub completions: Vec<Completion>,
    /// Committed KV transfers, sorted by request id.
    pub transfers: Vec<(u64, FleetTransfer)>,
    /// `(request id, replica)` admissions in routing order.
    pub assignments: Vec<(u64, usize)>,
    /// Fabric usage when the fleet ran over a fair-sharing fabric
    /// (`None` for the legacy FIFO wire, keeping its reports
    /// byte-identical).
    pub fabric: Option<FabricStats>,
    /// Fault-injection outcome when the run armed a chaos schedule
    /// (`None` for chaos-free runs, keeping their reports
    /// byte-identical).
    pub resilience: Option<ResilienceStats>,
    makespan_ps: TimePs,
}

impl FleetReport {
    /// Assembles the report from a dismantled engine.
    pub fn from_parts(parts: FleetParts) -> Self {
        let makespan_ps =
            parts.replicas.iter().map(|r| r.report.sim_duration_ps).max().unwrap_or(0);
        // End-to-end completions: skip the prefill-side bookkeeping record
        // of each handoff (same id, `from` replica, finishing no later
        // than the KV-ready instant — exactly at it normally, earlier
        // when a partition parked the commit and stamped `ready_ps` at
        // recovery), and restore the original arrival on the decode-side
        // record (its scheduler-local arrival is the transfer-done
        // time). A flexed replica can be both sides of one handoff
        // (`from == to`), so the prefill-side record is keyed by its
        // finish time, not the replica index alone — the decode side
        // always finishes strictly after the transfer completed.
        let mut completions: Vec<Completion> = Vec::new();
        for (index, replica) in parts.replicas.iter().enumerate() {
            for c in &replica.report.completions {
                match parts.transfers.get(&c.id) {
                    Some(t) if t.from == index && c.finish_ps <= t.ready_ps => {}
                    Some(t) if t.to == index => {
                        let mut joined = *c;
                        joined.arrival_ps = parts.requests[&c.id].arrival_ps;
                        completions.push(joined);
                    }
                    Some(t) => {
                        debug_assert!(
                            false,
                            "request {} completed on replica {index}, which is neither \
                             side of its handoff {t:?}",
                            c.id
                        );
                    }
                    None => completions.push(*c),
                }
            }
        }
        // A retried request completed with its *retry* admission as the
        // scheduler-local arrival; latency must span the whole retry
        // chain, so restore the first front-end arrival.
        if let Some(res) = &parts.resilience {
            for c in &mut completions {
                if let Ok(i) = res.original_arrivals.binary_search_by_key(&c.id, |&(id, _)| id)
                {
                    c.arrival_ps = c.arrival_ps.min(res.original_arrivals[i].1);
                }
            }
        }
        completions.sort_by_key(|c| c.id);
        let mut transfers: Vec<(u64, FleetTransfer)> = parts.transfers.into_iter().collect();
        transfers.sort_by_key(|&(id, _)| id);
        Self {
            control: parts.control,
            replicas: parts.replicas,
            completions,
            transfers,
            assignments: parts.assignments,
            fabric: parts.fabric,
            resilience: parts.resilience,
            makespan_ps,
        }
    }

    /// Contention percentiles over delivered transfers: the p50/p95/p99
    /// of the achieved-over-nominal slowdown ratio (1.0 = uncontended).
    /// `None` without any delivered transfer carrying a nominal.
    pub fn contention(&self) -> Option<(f64, f64, f64)> {
        let mut ratios: Vec<f64> =
            self.transfers.iter().filter_map(|(_, t)| t.contention()).collect();
        if ratios.is_empty() {
            return None;
        }
        Some((
            percentile(&mut ratios, 0.50),
            percentile(&mut ratios, 0.95),
            percentile(&mut ratios, 0.99),
        ))
    }

    /// Fleet makespan: the latest replica clock.
    pub fn makespan_ps(&self) -> TimePs {
        self.makespan_ps
    }

    /// Fleet makespan in seconds.
    pub fn makespan_s(&self) -> f64 {
        self.makespan_ps as f64 / 1e12
    }

    /// Requests served end to end.
    pub fn total_completions(&self) -> usize {
        self.completions.len()
    }

    /// Generation throughput in tokens per simulated second, over
    /// end-to-end completions.
    pub fn generation_throughput(&self) -> f64 {
        let s = self.makespan_s();
        if s == 0.0 {
            return 0.0;
        }
        let tokens: usize = self.completions.iter().map(|c| c.output_len).sum();
        tokens as f64 / s
    }

    /// The standard SLO percentile summaries (TTFT / TPOT / latency),
    /// fleet-wide over end-to-end completions.
    pub fn slo(&self) -> SloSummary {
        SloSummary::collect(self.completions.iter())
    }

    /// Fleet availability under fault injection: the fraction of
    /// replica-time outside crash/hang windows, over the whole run.
    /// `None` for chaos-free runs.
    pub fn availability(&self) -> Option<f64> {
        let res = self.resilience.as_ref()?;
        let replicas = self.replicas.len().max(1) as u128;
        let total = replicas * self.makespan_ps.max(1) as u128;
        let down: u128 = res.downtime.iter().map(|&d| d as u128).sum();
        Some(1.0 - down.min(total) as f64 / total as f64)
    }

    /// Re-prefill overhead: virtual time from each KV-destroying fault
    /// to the retried request's first token, summed over lost prefills
    /// that eventually completed. `None` for chaos-free runs.
    pub fn re_prefill_overhead_ps(&self) -> Option<TimePs> {
        let res = self.resilience.as_ref()?;
        let mut total: TimePs = 0;
        for &(id, fault_ps) in &res.lost_prefills {
            if let Ok(i) = self.completions.binary_search_by_key(&id, |c| c.id) {
                total += self.completions[i].first_token_ps.saturating_sub(fault_ps);
            }
        }
        Some(total)
    }

    /// SLO percentiles split by fault exposure: completions finishing
    /// inside any fault window versus in the clear. `None` for
    /// chaos-free runs.
    pub fn slo_by_fault_window(&self) -> Option<(SloSummary, SloSummary)> {
        let res = self.resilience.as_ref()?;
        let hit = |c: &Completion| {
            res.fault_windows.iter().any(|&(s, e)| s <= c.finish_ps && c.finish_ps < e)
        };
        let inside = SloSummary::collect(self.completions.iter().filter(|c| hit(c)));
        let clear = SloSummary::collect(self.completions.iter().filter(|c| !hit(c)));
        Some((inside, clear))
    }

    /// Fleet-wide reuse statistics (all replicas merged).
    pub fn aggregate_reuse(&self) -> ReuseStats {
        let mut total = ReuseStats::default();
        for r in &self.replicas {
            total.merge(&r.report.reuse);
        }
        total
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        let slo = self.slo();
        let ttft = PercentileSummary::display_or_na(slo.ttft);
        let tpot = PercentileSummary::display_or_na(slo.tpot);
        let latency = PercentileSummary::display_or_na(slo.latency);
        let reuse = self.aggregate_reuse();
        let retired = self.replicas.iter().filter(|r| r.retired).count();
        let mut out = format!(
            "fleet control={} replicas={} (retired {}) requests={} transfers={} \
             makespan={:.2}s gen_tput={:.1} tok/s ttft[{ttft}] tpot[{tpot}] \
             latency[{latency}] op_reuse={:.1}% iter_reuse={:.1}%",
            self.control,
            self.replicas.len(),
            retired,
            self.total_completions(),
            self.transfers.len(),
            self.makespan_s(),
            self.generation_throughput(),
            reuse.hit_rate() * 100.0,
            reuse.iteration_hit_rate() * 100.0,
        );
        if reuse.shared_armed {
            out.push_str(&format!(
                " shared_hits={} local_iter_reuse={:.1}%",
                reuse.shared_hits,
                reuse.local_iteration_hit_rate() * 100.0,
            ));
        }
        if let Some(fabric) = &self.fabric {
            out.push_str(&format!(" fabric={}", fabric.label));
            if let Some((p50, _, p99)) = self.contention() {
                out.push_str(&format!(" contention[p50={p50:.2}x p99={p99:.2}x]"));
            }
        }
        if let Some(res) = &self.resilience {
            out.push_str(&format!(
                " chaos faults={} retried={} abandoned={} kv_lost={}B availability={:.2}%",
                res.faults_injected,
                res.requests_retried,
                res.requests_abandoned,
                res.kv_bytes_lost,
                self.availability().unwrap_or(1.0) * 100.0,
            ));
        }
        out
    }

    /// Machine-readable fleet summary as pretty-printed JSON: fleet
    /// totals, SLO percentiles, merged reuse statistics, one entry per
    /// replica, and the fabric section (links + contention) when the run
    /// used a fair-sharing fabric.
    ///
    /// Virtual-time results only, so the artifact is byte-identical
    /// across runs of the same seed.
    pub fn summary_json(&self) -> String {
        use serde::Value;

        use crate::json::obj;

        let makespan = self.makespan_ps.max(1);
        let replicas: Vec<Value> = self
            .replicas
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let busy: TimePs = r.report.iterations.iter().map(|it| it.latency_ps).sum();
                obj(vec![
                    ("index", Value::Int(i as i128)),
                    ("role", Value::Str(r.role.to_string())),
                    ("home_role", Value::Str(r.home_role.to_string())),
                    ("retired", Value::Bool(r.retired)),
                    ("routed", Value::Int(r.routed as i128)),
                    ("paired", Value::Int(r.paired as i128)),
                    ("completed", Value::Int(r.report.completions.len() as i128)),
                    ("iterations", Value::Int(r.report.iterations.len() as i128)),
                    ("busy_s", Value::Float(busy as f64 / 1e12)),
                    ("utilization", Value::Float(busy as f64 / makespan as f64)),
                ])
            })
            .collect();
        let fabric = match &self.fabric {
            None => Value::Null,
            Some(f) => {
                let links: Vec<Value> = f
                    .links
                    .iter()
                    .map(|l| {
                        // Same capacity integral as `to_tsv` (GB/s =
                        // 1e-3 B/ps).
                        let cap_bytes = l.bw_gbps / 1000.0 * makespan as f64;
                        let util =
                            if cap_bytes > 0.0 { l.carried_bytes / cap_bytes } else { 0.0 };
                        obj(vec![
                            ("name", Value::Str(l.name.clone())),
                            ("bw_gbps", Value::Float(l.bw_gbps)),
                            ("carried_bytes", Value::Float(l.carried_bytes)),
                            ("utilization", Value::Float(util)),
                        ])
                    })
                    .collect();
                let contention = match self.contention() {
                    Some((p50, p95, p99)) => obj(vec![
                        ("p50", Value::Float(p50)),
                        ("p95", Value::Float(p95)),
                        ("p99", Value::Float(p99)),
                    ]),
                    None => Value::Null,
                };
                obj(vec![
                    ("label", Value::Str(f.label.clone())),
                    ("links", Value::Array(links)),
                    ("contention", contention),
                ])
            }
        };
        let retired = self.replicas.iter().filter(|r| r.retired).count();
        let mut fields = vec![
            ("shape", Value::Str("fleet".into())),
            ("control", Value::Str(self.control.clone())),
            ("replica_count", Value::Int(self.replicas.len() as i128)),
            ("retired", Value::Int(retired as i128)),
            ("completions", Value::Int(self.total_completions() as i128)),
            ("transfers", Value::Int(self.transfers.len() as i128)),
            ("assignments", Value::Int(self.assignments.len() as i128)),
            ("makespan_ps", Value::Int(self.makespan_ps as i128)),
            ("makespan_s", Value::Float(self.makespan_s())),
            ("generation_tput_tok_s", Value::Float(self.generation_throughput())),
            ("slo", self.slo().json_value()),
            ("reuse", self.aggregate_reuse().json_value()),
            ("replicas", Value::Array(replicas)),
            ("fabric", fabric),
        ];
        // The resilience key exists only for chaos runs; chaos-free
        // summaries stay byte-identical to the pre-chaos engine.
        if let Some(res) = &self.resilience {
            let abandoned: Vec<Value> = res
                .abandoned
                .iter()
                .map(|(id, reason)| {
                    obj(vec![
                        ("id", Value::Int(*id as i128)),
                        ("reason", Value::Str(reason.clone())),
                    ])
                })
                .collect();
            let windows: Vec<Value> = res
                .fault_windows
                .iter()
                .map(|&(s, e)| {
                    obj(vec![
                        ("start_ps", Value::Int(s as i128)),
                        ("end_ps", Value::Int(e as i128)),
                    ])
                })
                .collect();
            let downtime: Vec<Value> =
                res.downtime.iter().map(|&d| Value::Float(d as f64 / 1e12)).collect();
            let (slo_in_fault, slo_clear) =
                self.slo_by_fault_window().expect("resilience is present"); // llmss-lint: allow(p001, reason = "only reached when the resilience section exists")
            fields.push((
                "resilience",
                obj(vec![
                    ("faults_injected", Value::Int(res.faults_injected as i128)),
                    ("requests_retried", Value::Int(res.requests_retried as i128)),
                    ("requests_abandoned", Value::Int(res.requests_abandoned as i128)),
                    ("abandoned", Value::Array(abandoned)),
                    ("kv_bytes_lost", Value::Int(res.kv_bytes_lost as i128)),
                    (
                        "re_prefill_overhead_s",
                        Value::Float(self.re_prefill_overhead_ps().unwrap_or(0) as f64 / 1e12),
                    ),
                    ("availability", Value::Float(self.availability().unwrap_or(1.0))),
                    ("downtime_s", Value::Array(downtime)),
                    ("fault_windows", Value::Array(windows)),
                    ("slo_in_fault", slo_in_fault.json_value()),
                    ("slo_clear", slo_clear.json_value()),
                ]),
            ));
        }
        let v = obj(fields);
        crate::json::pretty(&v) + "\n"
    }

    /// Per-replica TSV (the CLI's `{output}-fleet.tsv`): one row per
    /// replica plus a `fleet` totals row carrying the SLO percentiles.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from(
            "replica\trole\thome_role\tretired\trouted\tpaired\tcompleted\
             \titerations\tbusy_s\tutilization\tttft_p50\tttft_p95\tttft_p99\
             \tlat_p50\tlat_p95\tlat_p99\n",
        );
        let makespan = self.makespan_ps.max(1);
        for (i, r) in self.replicas.iter().enumerate() {
            let busy: TimePs = r.report.iterations.iter().map(|it| it.latency_ps).sum();
            let ttft = PercentileSummary::tsv_fields_or_dashes(r.report.ttft_percentiles());
            let lat = PercentileSummary::tsv_fields_or_dashes(r.report.latency_percentiles());
            out.push_str(&format!(
                "{i}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.4}\t{:.4}\t{ttft}\t{lat}\n",
                r.role,
                r.home_role,
                r.retired,
                r.routed,
                r.paired,
                r.report.completions.len(),
                r.report.iterations.len(),
                busy as f64 / 1e12,
                busy as f64 / makespan as f64,
            ));
        }
        let slo = self.slo();
        let ttft = PercentileSummary::tsv_fields_or_dashes(slo.ttft);
        let lat = PercentileSummary::tsv_fields_or_dashes(slo.latency);
        out.push_str(&format!(
            "fleet\t-\t-\t-\t{}\t{}\t{}\t{}\t{:.4}\t-\t{ttft}\t{lat}\n",
            self.assignments.len(),
            self.transfers.len(),
            self.total_completions(),
            self.replicas.iter().map(|r| r.report.iterations.len()).sum::<usize>(),
            self.replicas
                .iter()
                .flat_map(|r| r.report.iterations.iter())
                .map(|it| it.latency_ps)
                .sum::<TimePs>() as f64
                / 1e12,
        ));
        // The fabric section exists only for fair-sharing runs; the
        // legacy FIFO wire emits exactly the pre-fabric TSV above.
        if let Some(fabric) = &self.fabric {
            out.push_str(&format!(
                "\nfabric\t{}\nlink\tbw_gbps\tcarried_mb\tutilization\n",
                fabric.label
            ));
            for l in &fabric.links {
                // Capacity integral over the run, in bytes (GB/s =
                // 1e-3 B/ps).
                let cap_bytes = l.bw_gbps / 1000.0 * makespan as f64;
                let util = if cap_bytes > 0.0 { l.carried_bytes / cap_bytes } else { 0.0 };
                out.push_str(&format!(
                    "{}\t{:.1}\t{:.3}\t{:.4}\n",
                    l.name,
                    l.bw_gbps,
                    l.carried_bytes / 1e6,
                    util,
                ));
            }
            out.push_str("contention_p50\tcontention_p95\tcontention_p99\n");
            match self.contention() {
                Some((p50, p95, p99)) => {
                    out.push_str(&format!("{p50:.3}\t{p95:.3}\t{p99:.3}\n"));
                }
                None => out.push_str("-\t-\t-\n"),
            }
        }
        // The resilience section exists only for chaos runs; chaos-free
        // TSVs stay byte-identical to the pre-chaos engine.
        if let Some(res) = &self.resilience {
            out.push_str(&format!(
                "\nresilience\nfaults\tretried\tabandoned\tkv_bytes_lost\
                 \tre_prefill_s\tavailability\n{}\t{}\t{}\t{}\t{:.4}\t{:.6}\n",
                res.faults_injected,
                res.requests_retried,
                res.requests_abandoned,
                res.kv_bytes_lost,
                self.re_prefill_overhead_ps().unwrap_or(0) as f64 / 1e12,
                self.availability().unwrap_or(1.0),
            ));
            out.push_str("replica\tdowntime_s\n");
            for (i, &d) in res.downtime.iter().enumerate() {
                out.push_str(&format!("{i}\t{:.4}\n", d as f64 / 1e12));
            }
            if let Some((slo_in, slo_clear)) = self.slo_by_fault_window() {
                out.push_str(
                    "window\tttft_p50\tttft_p95\tttft_p99\tlat_p50\tlat_p95\tlat_p99\n",
                );
                for (label, slo) in [("in_fault", slo_in), ("clear", slo_clear)] {
                    let ttft = PercentileSummary::tsv_fields_or_dashes(slo.ttft);
                    let lat = PercentileSummary::tsv_fields_or_dashes(slo.latency);
                    out.push_str(&format!("{label}\t{ttft}\t{lat}\n"));
                }
            }
        }
        out
    }
}

impl ReportOutput for FleetReport {
    fn summary(&self) -> String {
        FleetReport::summary(self)
    }

    fn artifacts(&self) -> Vec<(&'static str, String)> {
        vec![("-fleet.tsv", self.to_tsv()), ("-summary.json", self.summary_json())]
    }
}
