//! The engine-level fleet report: per-replica outcomes, end-to-end
//! completions (KV handoffs joined back to their original arrivals), and
//! fleet-wide SLO metrics for control planes that reshape the fleet at
//! runtime (flexing, autoscaling).
//!
//! Shape-specific drivers (`ClusterSimulator`, `DisaggSimulator`) keep
//! their own richer report types; [`FleetReport`] is the shape-agnostic
//! view a `[fleet]` scenario produces.

use llmss_sched::{Completion, TimePs};

use crate::fabric::FabricStats;
use crate::{percentile, PercentileSummary, ReportOutput, ReuseStats, SimReport, SloSummary};

use super::engine::{FleetParts, FleetTransfer};
use super::route::ReplicaRole;

/// One replica's outcome in a finished fleet run.
#[derive(Debug, Clone)]
pub struct FleetReplica {
    /// The replica's full serving report.
    pub report: SimReport,
    /// The role the replica held when the run finished.
    pub role: ReplicaRole,
    /// The role the replica was created with.
    pub home_role: ReplicaRole,
    /// Fresh arrivals routed here.
    pub routed: usize,
    /// KV handoffs paired to this replica.
    pub paired: usize,
    /// Whether the replica was retired (scaled down) at the end.
    pub retired: bool,
}

/// The aggregated result of one fleet-engine run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The control plane that drove the run.
    pub control: String,
    /// Per-replica outcomes, by fleet index (including replicas the
    /// autoscaler added or retired mid-run).
    pub replicas: Vec<FleetReplica>,
    /// End-to-end completions: one per served request, with KV-handoff
    /// requests joined back to their original front-end arrival (sorted
    /// by request id).
    pub completions: Vec<Completion>,
    /// Committed KV transfers, sorted by request id.
    pub transfers: Vec<(u64, FleetTransfer)>,
    /// `(request id, replica)` admissions in routing order.
    pub assignments: Vec<(u64, usize)>,
    /// Fabric usage when the fleet ran over a fair-sharing fabric
    /// (`None` for the legacy FIFO wire, keeping its reports
    /// byte-identical).
    pub fabric: Option<FabricStats>,
    makespan_ps: TimePs,
}

impl FleetReport {
    /// Assembles the report from a dismantled engine.
    pub fn from_parts(parts: FleetParts) -> Self {
        let makespan_ps =
            parts.replicas.iter().map(|r| r.report.sim_duration_ps).max().unwrap_or(0);
        // End-to-end completions: skip the prefill-side bookkeeping record
        // of each handoff (same id, `from` replica, finishing exactly at
        // the KV-ready instant), and restore the original arrival on the
        // decode-side record (its scheduler-local arrival is the
        // transfer-done time). A flexed replica can be both sides of one
        // handoff (`from == to`), so the prefill-side record is keyed by
        // its finish time, not the replica index alone — the decode side
        // always finishes strictly after the transfer completed.
        let mut completions: Vec<Completion> = Vec::new();
        for (index, replica) in parts.replicas.iter().enumerate() {
            for c in &replica.report.completions {
                match parts.transfers.get(&c.id) {
                    Some(t) if t.from == index && c.finish_ps == t.ready_ps => {}
                    Some(t) if t.to == index => {
                        let mut joined = *c;
                        joined.arrival_ps = parts.requests[&c.id].arrival_ps;
                        completions.push(joined);
                    }
                    Some(t) => {
                        debug_assert!(
                            false,
                            "request {} completed on replica {index}, which is neither \
                             side of its handoff {t:?}",
                            c.id
                        );
                    }
                    None => completions.push(*c),
                }
            }
        }
        completions.sort_by_key(|c| c.id);
        let mut transfers: Vec<(u64, FleetTransfer)> = parts.transfers.into_iter().collect();
        transfers.sort_by_key(|&(id, _)| id);
        Self {
            control: parts.control,
            replicas: parts.replicas,
            completions,
            transfers,
            assignments: parts.assignments,
            fabric: parts.fabric,
            makespan_ps,
        }
    }

    /// Contention percentiles over delivered transfers: the p50/p95/p99
    /// of the achieved-over-nominal slowdown ratio (1.0 = uncontended).
    /// `None` without any delivered transfer carrying a nominal.
    pub fn contention(&self) -> Option<(f64, f64, f64)> {
        let mut ratios: Vec<f64> =
            self.transfers.iter().filter_map(|(_, t)| t.contention()).collect();
        if ratios.is_empty() {
            return None;
        }
        Some((
            percentile(&mut ratios, 0.50),
            percentile(&mut ratios, 0.95),
            percentile(&mut ratios, 0.99),
        ))
    }

    /// Fleet makespan: the latest replica clock.
    pub fn makespan_ps(&self) -> TimePs {
        self.makespan_ps
    }

    /// Fleet makespan in seconds.
    pub fn makespan_s(&self) -> f64 {
        self.makespan_ps as f64 / 1e12
    }

    /// Requests served end to end.
    pub fn total_completions(&self) -> usize {
        self.completions.len()
    }

    /// Generation throughput in tokens per simulated second, over
    /// end-to-end completions.
    pub fn generation_throughput(&self) -> f64 {
        let s = self.makespan_s();
        if s == 0.0 {
            return 0.0;
        }
        let tokens: usize = self.completions.iter().map(|c| c.output_len).sum();
        tokens as f64 / s
    }

    /// The standard SLO percentile summaries (TTFT / TPOT / latency),
    /// fleet-wide over end-to-end completions.
    pub fn slo(&self) -> SloSummary {
        SloSummary::collect(self.completions.iter())
    }

    /// Fleet-wide reuse statistics (all replicas merged).
    pub fn aggregate_reuse(&self) -> ReuseStats {
        let mut total = ReuseStats::default();
        for r in &self.replicas {
            total.merge(&r.report.reuse);
        }
        total
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        let slo = self.slo();
        let ttft = PercentileSummary::display_or_na(slo.ttft);
        let tpot = PercentileSummary::display_or_na(slo.tpot);
        let latency = PercentileSummary::display_or_na(slo.latency);
        let reuse = self.aggregate_reuse();
        let retired = self.replicas.iter().filter(|r| r.retired).count();
        let mut out = format!(
            "fleet control={} replicas={} (retired {}) requests={} transfers={} \
             makespan={:.2}s gen_tput={:.1} tok/s ttft[{ttft}] tpot[{tpot}] \
             latency[{latency}] op_reuse={:.1}% iter_reuse={:.1}%",
            self.control,
            self.replicas.len(),
            retired,
            self.total_completions(),
            self.transfers.len(),
            self.makespan_s(),
            self.generation_throughput(),
            reuse.hit_rate() * 100.0,
            reuse.iteration_hit_rate() * 100.0,
        );
        if let Some(fabric) = &self.fabric {
            out.push_str(&format!(" fabric={}", fabric.label));
            if let Some((p50, _, p99)) = self.contention() {
                out.push_str(&format!(" contention[p50={p50:.2}x p99={p99:.2}x]"));
            }
        }
        out
    }

    /// Machine-readable fleet summary as pretty-printed JSON: fleet
    /// totals, SLO percentiles, merged reuse statistics, one entry per
    /// replica, and the fabric section (links + contention) when the run
    /// used a fair-sharing fabric.
    ///
    /// Virtual-time results only, so the artifact is byte-identical
    /// across runs of the same seed.
    pub fn summary_json(&self) -> String {
        use serde::Value;

        use crate::json::obj;

        let makespan = self.makespan_ps.max(1);
        let replicas: Vec<Value> = self
            .replicas
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let busy: TimePs = r.report.iterations.iter().map(|it| it.latency_ps).sum();
                obj(vec![
                    ("index", Value::Int(i as i128)),
                    ("role", Value::Str(r.role.to_string())),
                    ("home_role", Value::Str(r.home_role.to_string())),
                    ("retired", Value::Bool(r.retired)),
                    ("routed", Value::Int(r.routed as i128)),
                    ("paired", Value::Int(r.paired as i128)),
                    ("completed", Value::Int(r.report.completions.len() as i128)),
                    ("iterations", Value::Int(r.report.iterations.len() as i128)),
                    ("busy_s", Value::Float(busy as f64 / 1e12)),
                    ("utilization", Value::Float(busy as f64 / makespan as f64)),
                ])
            })
            .collect();
        let fabric = match &self.fabric {
            None => Value::Null,
            Some(f) => {
                let links: Vec<Value> = f
                    .links
                    .iter()
                    .map(|l| {
                        // Same capacity integral as `to_tsv` (GB/s =
                        // 1e-3 B/ps).
                        let cap_bytes = l.bw_gbps / 1000.0 * makespan as f64;
                        let util =
                            if cap_bytes > 0.0 { l.carried_bytes / cap_bytes } else { 0.0 };
                        obj(vec![
                            ("name", Value::Str(l.name.clone())),
                            ("bw_gbps", Value::Float(l.bw_gbps)),
                            ("carried_bytes", Value::Float(l.carried_bytes)),
                            ("utilization", Value::Float(util)),
                        ])
                    })
                    .collect();
                let contention = match self.contention() {
                    Some((p50, p95, p99)) => obj(vec![
                        ("p50", Value::Float(p50)),
                        ("p95", Value::Float(p95)),
                        ("p99", Value::Float(p99)),
                    ]),
                    None => Value::Null,
                };
                obj(vec![
                    ("label", Value::Str(f.label.clone())),
                    ("links", Value::Array(links)),
                    ("contention", contention),
                ])
            }
        };
        let retired = self.replicas.iter().filter(|r| r.retired).count();
        let v = obj(vec![
            ("shape", Value::Str("fleet".into())),
            ("control", Value::Str(self.control.clone())),
            ("replica_count", Value::Int(self.replicas.len() as i128)),
            ("retired", Value::Int(retired as i128)),
            ("completions", Value::Int(self.total_completions() as i128)),
            ("transfers", Value::Int(self.transfers.len() as i128)),
            ("assignments", Value::Int(self.assignments.len() as i128)),
            ("makespan_ps", Value::Int(self.makespan_ps as i128)),
            ("makespan_s", Value::Float(self.makespan_s())),
            ("generation_tput_tok_s", Value::Float(self.generation_throughput())),
            ("slo", self.slo().json_value()),
            ("reuse", self.aggregate_reuse().json_value()),
            ("replicas", Value::Array(replicas)),
            ("fabric", fabric),
        ]);
        crate::json::pretty(&v) + "\n"
    }

    /// Per-replica TSV (the CLI's `{output}-fleet.tsv`): one row per
    /// replica plus a `fleet` totals row carrying the SLO percentiles.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from(
            "replica\trole\thome_role\tretired\trouted\tpaired\tcompleted\
             \titerations\tbusy_s\tutilization\tttft_p50\tttft_p95\tttft_p99\
             \tlat_p50\tlat_p95\tlat_p99\n",
        );
        let makespan = self.makespan_ps.max(1);
        for (i, r) in self.replicas.iter().enumerate() {
            let busy: TimePs = r.report.iterations.iter().map(|it| it.latency_ps).sum();
            let ttft = PercentileSummary::tsv_fields_or_dashes(r.report.ttft_percentiles());
            let lat = PercentileSummary::tsv_fields_or_dashes(r.report.latency_percentiles());
            out.push_str(&format!(
                "{i}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.4}\t{:.4}\t{ttft}\t{lat}\n",
                r.role,
                r.home_role,
                r.retired,
                r.routed,
                r.paired,
                r.report.completions.len(),
                r.report.iterations.len(),
                busy as f64 / 1e12,
                busy as f64 / makespan as f64,
            ));
        }
        let slo = self.slo();
        let ttft = PercentileSummary::tsv_fields_or_dashes(slo.ttft);
        let lat = PercentileSummary::tsv_fields_or_dashes(slo.latency);
        out.push_str(&format!(
            "fleet\t-\t-\t-\t{}\t{}\t{}\t{}\t{:.4}\t-\t{ttft}\t{lat}\n",
            self.assignments.len(),
            self.transfers.len(),
            self.total_completions(),
            self.replicas.iter().map(|r| r.report.iterations.len()).sum::<usize>(),
            self.replicas
                .iter()
                .flat_map(|r| r.report.iterations.iter())
                .map(|it| it.latency_ps)
                .sum::<TimePs>() as f64
                / 1e12,
        ));
        // The fabric section exists only for fair-sharing runs; the
        // legacy FIFO wire emits exactly the pre-fabric TSV above.
        if let Some(fabric) = &self.fabric {
            out.push_str(&format!(
                "\nfabric\t{}\nlink\tbw_gbps\tcarried_mb\tutilization\n",
                fabric.label
            ));
            for l in &fabric.links {
                // Capacity integral over the run, in bytes (GB/s =
                // 1e-3 B/ps).
                let cap_bytes = l.bw_gbps / 1000.0 * makespan as f64;
                let util = if cap_bytes > 0.0 { l.carried_bytes / cap_bytes } else { 0.0 };
                out.push_str(&format!(
                    "{}\t{:.1}\t{:.3}\t{:.4}\n",
                    l.name,
                    l.bw_gbps,
                    l.carried_bytes / 1e6,
                    util,
                ));
            }
            out.push_str("contention_p50\tcontention_p95\tcontention_p99\n");
            match self.contention() {
                Some((p50, p95, p99)) => {
                    out.push_str(&format!("{p50:.3}\t{p95:.3}\t{p99:.3}\n"));
                }
                None => out.push_str("-\t-\t-\n"),
            }
        }
        out
    }
}

impl ReportOutput for FleetReport {
    fn summary(&self) -> String {
        FleetReport::summary(self)
    }

    fn artifacts(&self) -> Vec<(&'static str, String)> {
        vec![("-fleet.tsv", self.to_tsv()), ("-summary.json", self.summary_json())]
    }
}
