//! Replica roles, load snapshots, and pluggable routing policies.
//!
//! Moved here from `llmss-cluster` so the [`FleetEngine`] and its control
//! planes can speak the same vocabulary the router does: the router runs
//! at request-arrival time and sees only what a real front-end would —
//! per-replica queue depth, KV-cache pressure, and completion counts
//! ([`ReplicaSnapshot`]) — never the future of the trace or the internals
//! of an iteration in flight.
//!
//! [`FleetEngine`]: crate::FleetEngine

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use llmss_sched::{Request, SchedulerMode, TimePs};

/// The serving role a replica plays in the fleet.
///
/// A classic cluster is all-[`Unified`](ReplicaRole::Unified); a
/// disaggregated deployment splits the fleet into a prefill pool and a
/// decode pool with a KV-cache handoff in between (`llmss-disagg`). With
/// a flexing control plane ([`FlexPools`](crate::FlexPools)) a replica's
/// role can change at runtime, after a drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplicaRole {
    /// Serves requests end to end (prefill + decode).
    Unified,
    /// Prefill pool member: builds KV caches, completes at end-of-prefill.
    Prefill,
    /// Decode pool member: streams tokens from KV caches shipped to it.
    Decode,
}

impl ReplicaRole {
    /// Whether the front-end router may send *new* requests here. Decode
    /// replicas only receive work through KV-cache handoff, never fresh
    /// arrivals.
    pub fn accepts_arrivals(&self) -> bool {
        !matches!(self, ReplicaRole::Decode)
    }

    /// The scheduler mode a replica of this role runs.
    pub fn scheduler_mode(&self) -> SchedulerMode {
        match self {
            ReplicaRole::Unified => SchedulerMode::Unified,
            ReplicaRole::Prefill => SchedulerMode::PrefillOnly,
            ReplicaRole::Decode => SchedulerMode::DecodeOnly,
        }
    }
}

impl From<SchedulerMode> for ReplicaRole {
    fn from(mode: SchedulerMode) -> Self {
        match mode {
            SchedulerMode::Unified => ReplicaRole::Unified,
            SchedulerMode::PrefillOnly => ReplicaRole::Prefill,
            SchedulerMode::DecodeOnly => ReplicaRole::Decode,
        }
    }
}

impl std::fmt::Display for ReplicaRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReplicaRole::Unified => "unified",
            ReplicaRole::Prefill => "prefill",
            ReplicaRole::Decode => "decode",
        })
    }
}

impl std::str::FromStr for ReplicaRole {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "unified" => Ok(ReplicaRole::Unified),
            "prefill" => Ok(ReplicaRole::Prefill),
            "decode" => Ok(ReplicaRole::Decode),
            other => Err(format!(
                "unknown replica role '{other}' (expected unified | prefill | decode)"
            )),
        }
    }
}

/// What the router can observe about one replica at routing time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaSnapshot {
    /// Replica index in the cluster.
    pub index: usize,
    /// The replica's serving role.
    pub role: ReplicaRole,
    /// The replica's simulated clock.
    pub clock_ps: TimePs,
    /// Requests accepted but not yet finished (queue depth).
    pub outstanding_requests: usize,
    /// Sequences currently in the running batch.
    pub active_sequences: usize,
    /// KV pages in use on the device.
    pub kv_used_pages: usize,
    /// Total KV pages the device holds.
    pub kv_total_pages: usize,
    /// Requests fully served so far.
    pub completed_requests: usize,
}

impl ReplicaSnapshot {
    /// Captures what a front-end can observe about `sim` right now —
    /// the shared snapshot constructor for every driver (cluster router,
    /// disaggregated pairing, fleet control planes) built on
    /// [`ServingSimulator`](crate::ServingSimulator).
    pub fn capture(sim: &crate::ServingSimulator, index: usize, role: ReplicaRole) -> Self {
        let sched = sim.scheduler();
        Self {
            index,
            role,
            clock_ps: sched.clock_ps(),
            outstanding_requests: sched.outstanding(),
            active_sequences: sched.active_len(),
            kv_used_pages: sched.kv().used_pages(),
            kv_total_pages: sched.kv().config().total_pages(),
            completed_requests: sched.completions().len(),
        }
    }

    /// Fraction of KV pages in use (`0.0` when the cache has no pages).
    pub fn kv_load(&self) -> f64 {
        if self.kv_total_pages == 0 {
            return 0.0;
        }
        self.kv_used_pages as f64 / self.kv_total_pages as f64
    }
}

/// A pluggable request-routing policy.
///
/// `route` returns the cluster index of the replica that should serve
/// `request`; the cluster simulator injects the request there. The same
/// trait drives decode-replica *pairing* in disaggregated serving, where
/// the candidate set is the decode pool. Policies may keep state
/// (round-robin cursors, RNGs) — hence `&mut self` — but must be
/// deterministic functions of their construction seed and the observed
/// snapshot sequence, so that cluster runs reproduce exactly.
pub trait RoutingPolicy: std::fmt::Debug {
    /// Human-readable policy name (used in reports and TSV output).
    fn name(&self) -> &'static str;

    /// Chooses a replica for `request`.
    ///
    /// `replicas` is never empty but may be a *subset* of the fleet (for
    /// example, only the replicas whose role accepts arrivals).
    /// Implementations must return the [`ReplicaSnapshot::index`] of one
    /// of the provided snapshots — never a bare position in the slice.
    fn route(&mut self, request: &Request, replicas: &[ReplicaSnapshot]) -> usize;
}

/// The built-in policies, as a value (CLI flags, config files, sweeps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingPolicyKind {
    /// Cycle through replicas in order, ignoring load.
    RoundRobin,
    /// Send to the replica with the fewest unfinished requests.
    LeastOutstanding,
    /// Send to the replica with the lowest KV-cache page usage.
    LeastKvLoad,
    /// Sample two distinct replicas uniformly, send to the less loaded
    /// (Mitzenmacher's "power of two choices").
    PowerOfTwoChoices,
    /// Session affinity: the request id picks the replica, so a request
    /// (or retry of it) always lands on the same place regardless of load.
    Sticky,
}

impl RoutingPolicyKind {
    /// Every built-in policy (for sweeps and exhaustive tests).
    pub const ALL: [RoutingPolicyKind; 5] = [
        RoutingPolicyKind::RoundRobin,
        RoutingPolicyKind::LeastOutstanding,
        RoutingPolicyKind::LeastKvLoad,
        RoutingPolicyKind::PowerOfTwoChoices,
        RoutingPolicyKind::Sticky,
    ];

    /// Instantiates the policy. `seed` feeds randomized policies
    /// (power-of-two-choices); deterministic policies ignore it.
    pub fn build(self, seed: u64) -> Box<dyn RoutingPolicy> {
        match self {
            RoutingPolicyKind::RoundRobin => Box::new(RoundRobin::new()),
            RoutingPolicyKind::LeastOutstanding => Box::new(LeastOutstanding),
            RoutingPolicyKind::LeastKvLoad => Box::new(LeastKvLoad),
            RoutingPolicyKind::PowerOfTwoChoices => Box::new(PowerOfTwoChoices::new(seed)),
            RoutingPolicyKind::Sticky => Box::new(Sticky),
        }
    }

    /// The CLI spelling (`--routing` flag values).
    pub fn as_str(&self) -> &'static str {
        match self {
            RoutingPolicyKind::RoundRobin => "round-robin",
            RoutingPolicyKind::LeastOutstanding => "least-outstanding",
            RoutingPolicyKind::LeastKvLoad => "least-kv",
            RoutingPolicyKind::PowerOfTwoChoices => "power-of-two",
            RoutingPolicyKind::Sticky => "sticky",
        }
    }
}

impl std::fmt::Display for RoutingPolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for RoutingPolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "round-robin" | "rr" => Ok(RoutingPolicyKind::RoundRobin),
            "least-outstanding" | "lor" => Ok(RoutingPolicyKind::LeastOutstanding),
            "least-kv" | "kv" => Ok(RoutingPolicyKind::LeastKvLoad),
            "power-of-two" | "p2c" => Ok(RoutingPolicyKind::PowerOfTwoChoices),
            "sticky" => Ok(RoutingPolicyKind::Sticky),
            other => Err(format!(
                "unknown routing policy '{other}' (expected round-robin | \
                 least-outstanding | least-kv | power-of-two | sticky)"
            )),
        }
    }
}

/// Cycles through replicas in index order.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// A round-robin router starting at replica 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RoutingPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(&mut self, _request: &Request, replicas: &[ReplicaSnapshot]) -> usize {
        // The candidate set may be a filtered subset of the fleet, so the
        // cursor indexes the slice but the *snapshot* names the replica.
        let chosen = replicas[self.next % replicas.len()].index;
        self.next = self.next.wrapping_add(1);
        chosen
    }
}

/// Join-the-shortest-queue on unfinished request count; ties break toward
/// the lower KV load, then the lower index.
#[derive(Debug, Default)]
pub struct LeastOutstanding;

fn less_loaded(a: &ReplicaSnapshot, b: &ReplicaSnapshot) -> std::cmp::Ordering {
    a.outstanding_requests
        .cmp(&b.outstanding_requests)
        .then(a.kv_used_pages.cmp(&b.kv_used_pages))
        .then(a.index.cmp(&b.index))
}

impl RoutingPolicy for LeastOutstanding {
    fn name(&self) -> &'static str {
        "least-outstanding"
    }

    fn route(&mut self, _request: &Request, replicas: &[ReplicaSnapshot]) -> usize {
        // llmss-lint: allow(p001, reason = "routing is never invoked on an empty fleet")
        replicas.iter().min_by(|a, b| less_loaded(a, b)).expect("non-empty").index
    }
}

/// Routes to the replica with the fewest KV pages in use — a memory-
/// pressure signal that discriminates better than queue depth when
/// sequence lengths are highly skewed; ties break toward the lower
/// queue depth, then the lower index.
#[derive(Debug, Default)]
pub struct LeastKvLoad;

impl RoutingPolicy for LeastKvLoad {
    fn name(&self) -> &'static str {
        "least-kv"
    }

    fn route(&mut self, _request: &Request, replicas: &[ReplicaSnapshot]) -> usize {
        replicas
            .iter()
            .min_by(|a, b| {
                a.kv_used_pages
                    .cmp(&b.kv_used_pages)
                    .then(a.outstanding_requests.cmp(&b.outstanding_requests))
                    .then(a.index.cmp(&b.index))
            })
            .expect("non-empty") // llmss-lint: allow(p001, reason = "routing is never invoked on an empty fleet")
            .index
    }
}

/// Samples two distinct replicas uniformly and routes to the less loaded
/// one — near-optimal balance at O(1) state lookups per request.
#[derive(Debug)]
pub struct PowerOfTwoChoices {
    rng: StdRng,
}

impl PowerOfTwoChoices {
    /// A power-of-two-choices router with a deterministic sampling seed.
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }
}

impl RoutingPolicy for PowerOfTwoChoices {
    fn name(&self) -> &'static str {
        "power-of-two"
    }

    fn route(&mut self, _request: &Request, replicas: &[ReplicaSnapshot]) -> usize {
        let n = replicas.len();
        if n == 1 {
            return replicas[0].index;
        }
        let first = self.rng.gen_range(0..n);
        // Offset sampling guarantees the second probe is distinct.
        let second = (first + self.rng.gen_range(1..n)) % n;
        std::cmp::min_by(&replicas[first], &replicas[second], |a, b| less_loaded(a, b)).index
    }
}

/// Session-affinity routing: the request id alone picks the replica.
///
/// Every request (and any retry carrying the same id) lands on the same
/// replica no matter the load — the classic consistent-assignment
/// front-end, and the "sticky" decode-pairing policy for disaggregated
/// serving (KV locality beats load balance when caches are reused).
#[derive(Debug, Default)]
pub struct Sticky;

impl RoutingPolicy for Sticky {
    fn name(&self) -> &'static str {
        "sticky"
    }

    fn route(&mut self, request: &Request, replicas: &[ReplicaSnapshot]) -> usize {
        replicas[(request.id % replicas.len() as u64) as usize].index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(index: usize, outstanding: usize, kv: usize) -> ReplicaSnapshot {
        ReplicaSnapshot {
            index,
            role: ReplicaRole::Unified,
            clock_ps: 0,
            outstanding_requests: outstanding,
            active_sequences: outstanding,
            kv_used_pages: kv,
            kv_total_pages: 100,
            completed_requests: 0,
        }
    }

    fn req(id: u64) -> Request {
        Request::new(id, 16, 4, 0)
    }

    #[test]
    fn round_robin_cycles() {
        let mut p = RoundRobin::new();
        let snaps = [snap(0, 9, 0), snap(1, 0, 0), snap(2, 5, 0)];
        let picks: Vec<usize> = (0..6).map(|i| p.route(&req(i), &snaps)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_outstanding_prefers_empty_replica() {
        let mut p = LeastOutstanding;
        let snaps = [snap(0, 4, 10), snap(1, 2, 90), snap(2, 2, 30)];
        // Replicas 1 and 2 tie on queue depth; 2 has the lower KV load.
        assert_eq!(p.route(&req(0), &snaps), 2);
    }

    #[test]
    fn least_kv_prefers_low_memory_pressure() {
        let mut p = LeastKvLoad;
        let snaps = [snap(0, 1, 80), snap(1, 9, 10), snap(2, 0, 50)];
        assert_eq!(p.route(&req(0), &snaps), 1);
    }

    #[test]
    fn p2c_probes_are_distinct_and_deterministic() {
        let snaps: Vec<ReplicaSnapshot> = (0..8).map(|i| snap(i, i, 0)).collect();
        let run = || {
            let mut p = PowerOfTwoChoices::new(7);
            (0..64).map(|i| p.route(&req(i), &snaps)).collect::<Vec<usize>>()
        };
        let a = run();
        assert_eq!(a, run(), "same seed must reproduce the same choices");
        assert!(a.iter().all(|&i| i < 8));
        // With load increasing in index, replica 7 can only be picked when
        // both probes land on it — impossible with distinct probes.
        assert!(a.iter().all(|&i| i != 7));
    }

    #[test]
    fn p2c_single_replica_is_total() {
        let mut p = PowerOfTwoChoices::new(1);
        assert_eq!(p.route(&req(0), &[snap(0, 3, 3)]), 0);
        // A filtered single-candidate set must still return the snapshot
        // index, not a slice position.
        assert_eq!(p.route(&req(1), &[snap(5, 3, 3)]), 5);
    }

    #[test]
    fn sticky_ignores_load_and_follows_request_id() {
        let mut p = Sticky;
        let snaps = [snap(0, 100, 100), snap(1, 0, 0), snap(2, 50, 50)];
        assert_eq!(p.route(&req(4), &snaps), 1, "4 % 3 == 1 despite replica 1's load");
        assert_eq!(p.route(&req(4), &snaps), 1, "same id always lands the same place");
        assert_eq!(p.route(&req(5), &snaps), 2);
    }

    #[test]
    fn policies_return_snapshot_indices_on_filtered_subsets() {
        // A disaggregated front-end routes over a subset of the fleet
        // (e.g. replicas 2 and 5 of 8): policies must answer with the
        // snapshot's cluster index, not a position in the slice.
        let subset = [snap(2, 1, 1), snap(5, 0, 0)];
        for kind in RoutingPolicyKind::ALL {
            let mut p = kind.build(9);
            for id in 0..16 {
                let chosen = p.route(&req(id), &subset);
                assert!(
                    chosen == 2 || chosen == 5,
                    "{kind} returned {chosen}, not a snapshot index"
                );
            }
        }
    }

    #[test]
    fn decode_role_rejects_arrivals() {
        assert!(ReplicaRole::Unified.accepts_arrivals());
        assert!(ReplicaRole::Prefill.accepts_arrivals());
        assert!(!ReplicaRole::Decode.accepts_arrivals());
        assert_eq!(ReplicaRole::from(SchedulerMode::PrefillOnly), ReplicaRole::Prefill);
        assert_eq!(ReplicaRole::from(SchedulerMode::DecodeOnly), ReplicaRole::Decode);
        assert_eq!(ReplicaRole::from(SchedulerMode::Unified), ReplicaRole::Unified);
    }

    #[test]
    fn role_round_trips_scheduler_mode_and_str() {
        for role in [ReplicaRole::Unified, ReplicaRole::Prefill, ReplicaRole::Decode] {
            assert_eq!(ReplicaRole::from(role.scheduler_mode()), role);
            let parsed: ReplicaRole = role.to_string().parse().unwrap();
            assert_eq!(parsed, role);
        }
        assert!("nope".parse::<ReplicaRole>().is_err());
    }

    #[test]
    fn kind_round_trips_through_str() {
        for kind in RoutingPolicyKind::ALL {
            let parsed: RoutingPolicyKind = kind.as_str().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("nope".parse::<RoutingPolicyKind>().is_err());
    }
}
