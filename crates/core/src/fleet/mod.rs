//! One fleet engine for every multi-replica serving shape.
//!
//! The repo used to run three near-duplicate virtual-time event loops —
//! the single-replica step loop, the cluster's router interleave, and
//! the disaggregated pool/transfer interleave — so every fleet-level
//! feature (heterogeneous hardware, role flexing, autoscaling) would
//! have had to be implemented three times. This module collapses them
//! into one core:
//!
//! ```text
//!             ┌──────────────────────────────────────────────┐
//!             │                 FleetEngine                  │
//!             │  virtual-time loop · ReadyHeap · KV links    │
//!             └──────┬────────────┬──────────────┬───────────┘
//!        admit/pair  │            │ step         │ handoff
//!             ┌──────▼─────┐ ┌────▼───────┐ ┌────▼───────┐
//!             │ControlPlane│ │ Replica 0  │ │ Replica N  │
//!             │ static /   │ │ Serving-   │…│ Serving-   │
//!             │ flex /     │ │ Simulator  │ │ Simulator  │
//!             │ autoscale  │ │ + role     │ │ + role     │
//!             └────────────┘ └────────────┘ └────────────┘
//! ```
//!
//! * [`FleetEngine`] — the event loop: replica slots, KV-transfer links,
//!   control ticks, drain-safe reconfiguration.
//! * [`ControlPlane`] — the policy brain: admission (routing), pairing
//!   (KV handoff targets), and reconfiguration ([`FleetCommand`]).
//!   Shipped planes: [`StaticControl`], [`FlexPools`],
//!   [`AutoscaleControl`].
//! * [`ReadyHeap`] — the shared lazy-invalidation min-heap of replica
//!   ready-times (moved here from `llmss-cluster`).
//! * [`RoutingPolicy`] / [`ReplicaSnapshot`] / [`ReplicaRole`] — the
//!   router vocabulary (also moved from `llmss-cluster`; that crate
//!   re-exports them for compatibility).
//! * [`FleetReport`] — the engine-level report for reshaping fleets;
//!   `ClusterSimulator` and `DisaggSimulator` instead rebuild their
//!   legacy reports from [`FleetEngine::into_parts`].

mod control;
mod engine;
mod heap;
mod report;
mod route;

pub use control::{
    AutoscaleConfig, AutoscaleControl, ControlPlane, FleetCommand, FleetStats, FlexPools,
    FlexPoolsConfig, ReplicaStatus, StaticControl,
};
pub use engine::{FleetEngine, FleetParts, FleetTransfer, ReplicaSlot};
pub use heap::ReadyHeap;
pub use report::{FleetReplica, FleetReport};
pub use route::{
    LeastKvLoad, LeastOutstanding, PowerOfTwoChoices, ReplicaRole, ReplicaSnapshot, RoundRobin,
    RoutingPolicy, RoutingPolicyKind, Sticky,
};
