//! The fleet control plane: admission, pairing, role flexing, and
//! autoscaling decisions over a fleet-wide view.
//!
//! A [`ControlPlane`] is the policy brain of a [`FleetEngine`]: the
//! engine owns virtual time, replicas, and KV-transfer links, and asks
//! the control plane three kinds of questions —
//!
//! * **admission** ([`admit`](ControlPlane::admit)): which replica serves
//!   a fresh arrival (the classic router decision);
//! * **pairing** ([`pair`](ControlPlane::pair)): which decode-role
//!   replica receives a finished prefill's KV cache;
//! * **reconfiguration** ([`on_tick`](ControlPlane::on_tick) /
//!   [`on_completion`](ControlPlane::on_completion)): zero or more
//!   [`FleetCommand`]s — role switches and scale up/down — computed from
//!   a [`FleetStats`] view of the whole fleet.
//!
//! "New serving technique" is now "new `ControlPlane` impl":
//! [`StaticControl`] reproduces the classic router/pairing behavior,
//! [`FlexPools`] flexes idle prefill replicas into the decode pool and
//! back, and [`AutoscaleControl`] grows and shrinks a unified fleet
//! between `min..max` replicas under queue-depth pressure.
//!
//! [`FleetEngine`]: crate::FleetEngine

use llmss_sched::{Request, TimePs};

use super::route::{ReplicaRole, ReplicaSnapshot, RoutingPolicy};

/// One replica's entry in the fleet-wide [`FleetStats`] view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaStatus {
    /// The load snapshot a router would see (queue depth, KV occupancy,
    /// clock, current role).
    pub snapshot: ReplicaSnapshot,
    /// The role the replica was created with (flexing returns here).
    pub home_role: ReplicaRole,
    /// A role switch waiting on drain, if one is in flight.
    pub pending_role: Option<ReplicaRole>,
    /// Virtual time from which the replica admits work (autoscale
    /// warm-up; `0` for replicas that started with the fleet).
    pub active_from_ps: TimePs,
    /// Whether the replica is draining toward deactivation.
    pub retiring: bool,
    /// Simulated time spent executing iterations, cumulative.
    pub busy_ps: TimePs,
    /// Fraction of the window since the previous control tick this
    /// replica spent executing (`0.0` on the first tick or when no
    /// virtual time has passed).
    pub util_window: f64,
    /// Whether the replica is crashed right now (fault injection): its
    /// in-flight work was lost and it serves nothing until recovery.
    pub dead: bool,
    /// Whether the replica is degraded right now (hung or draining under
    /// fault injection): it holds or finishes existing work but takes no
    /// new admissions or pairings.
    pub degraded: bool,
}

impl ReplicaStatus {
    /// Whether the replica currently takes part in serving: not retired,
    /// not mid-drain toward another role, not crashed.
    pub fn in_service(&self) -> bool {
        !self.retiring && self.pending_role.is_none() && !self.dead
    }
}

/// The fleet-wide view a control plane decides from.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// The fleet's virtual clock (the furthest replica clock).
    pub clock_ps: TimePs,
    /// Per-replica status, by replica index (including warming, draining,
    /// and retired replicas).
    pub replicas: Vec<ReplicaStatus>,
    /// Arrivals that have reached the front end by
    /// [`clock_ps`](Self::clock_ps) but are not yet routed — the real
    /// backlog, never the future of the trace.
    pub queued_arrivals: usize,
    /// KV handoffs waiting for the transfer link.
    pub pending_transfers: usize,
}

impl FleetStats {
    /// Replicas currently part of the serving fleet: not retiring and
    /// not dead — a crashed replica is lost capacity, not spare
    /// capacity, so pressure signals must not count it.
    pub fn active(&self) -> impl Iterator<Item = &ReplicaStatus> {
        self.replicas.iter().filter(|r| !r.retiring && !r.dead)
    }

    /// Number of replicas currently part of the serving fleet.
    pub fn active_count(&self) -> usize {
        self.active().count()
    }

    /// Mean outstanding requests per active replica, counting the
    /// front-end queue (the autoscaler's pressure signal). With no
    /// active replicas (a total outage) the backlog itself is the
    /// pressure, so the queue length is returned as the depth.
    pub fn mean_queue_depth(&self) -> f64 {
        let active = self.active_count();
        if active == 0 {
            return self.queued_arrivals as f64;
        }
        let outstanding: usize =
            self.active().map(|r| r.snapshot.outstanding_requests).sum::<usize>()
                + self.queued_arrivals;
        outstanding as f64 / active as f64
    }
}

/// A fleet reconfiguration the control plane asks the engine to apply.
///
/// Commands are requests, not imperatives: the engine applies each under
/// drain semantics (a role switch waits until the replica has no work in
/// flight; a scale-down drains before deactivating), so a control plane
/// can never strand a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetCommand {
    /// Switch `replica` to `role` — immediately if idle, otherwise once
    /// it drains. While draining the replica is offered no new work.
    SetRole {
        /// Replica index.
        replica: usize,
        /// The role to switch to.
        role: ReplicaRole,
    },
    /// Add one replica cloned from `template`'s configuration, admitting
    /// work from `now + warmup_ps`. Reactivates a retired replica when
    /// one is available instead of growing the fleet vector.
    ScaleUp {
        /// Replica index whose configuration the new replica clones.
        template: usize,
        /// Warm-up delay before the replica takes work (model load,
        /// container start — virtual time).
        warmup_ps: TimePs,
    },
    /// Drain `replica` and retire it from the serving fleet. In-flight
    /// work completes; no new work is offered.
    ScaleDown {
        /// Replica index.
        replica: usize,
    },
}

/// The policy brain of a [`FleetEngine`](crate::FleetEngine).
///
/// Implementations must be deterministic functions of their construction
/// parameters and the observed event sequence, so fleet runs reproduce
/// exactly.
pub trait ControlPlane: std::fmt::Debug {
    /// The control plane's name (used in reports; for router-backed
    /// planes this is the routing policy name).
    fn name(&self) -> String;

    /// Routes one fresh arrival over the offered candidates (non-empty;
    /// replicas whose role accepts arrivals and are in service). Must
    /// return the [`ReplicaSnapshot::index`] of one candidate.
    fn admit(&mut self, request: &Request, candidates: &[ReplicaSnapshot]) -> usize;

    /// Picks the decode-side replica for a finished prefill's KV handoff
    /// (candidates: in-service decode-role replicas). Must return the
    /// [`ReplicaSnapshot::index`] of one candidate. Only called on
    /// fleets with prefill-role replicas; the default takes the first
    /// candidate.
    fn pair(&mut self, _request: &Request, candidates: &[ReplicaSnapshot]) -> usize {
        candidates[0].index
    }

    /// The control tick period in virtual time, if this plane wants
    /// periodic [`on_tick`](Self::on_tick) callbacks.
    fn tick_ps(&self) -> Option<TimePs> {
        None
    }

    /// Whether the plane wants [`on_completion`](Self::on_completion)
    /// callbacks (building a [`FleetStats`] per completion is not free,
    /// so purely static planes opt out).
    fn reactive(&self) -> bool {
        false
    }

    /// Periodic reconfiguration callback, fired every
    /// [`tick_ps`](Self::tick_ps) of virtual time.
    fn on_tick(&mut self, _stats: &FleetStats) -> Vec<FleetCommand> {
        Vec::new()
    }

    /// Event callback: a replica finished one or more requests.
    fn on_completion(&mut self, _stats: &FleetStats) -> Vec<FleetCommand> {
        Vec::new()
    }
}

/// Today's behavior as a control plane: a fixed router for admission, a
/// fixed pairer for KV handoffs, no reconfiguration — what
/// `ClusterSimulator` and `DisaggSimulator` compose over the engine.
#[derive(Debug)]
pub struct StaticControl {
    router: Box<dyn RoutingPolicy>,
    pairer: Box<dyn RoutingPolicy>,
}

impl StaticControl {
    /// A static control plane routing with `router` and pairing KV
    /// handoffs with `pairer`.
    pub fn new(router: Box<dyn RoutingPolicy>, pairer: Box<dyn RoutingPolicy>) -> Self {
        Self { router, pairer }
    }
}

impl ControlPlane for StaticControl {
    fn name(&self) -> String {
        self.router.name().to_owned()
    }

    fn admit(&mut self, request: &Request, candidates: &[ReplicaSnapshot]) -> usize {
        self.router.route(request, candidates)
    }

    fn pair(&mut self, request: &Request, candidates: &[ReplicaSnapshot]) -> usize {
        self.pairer.route(request, candidates)
    }
}

/// Prefill/decode pool flexing: an idle prefill replica joins the decode
/// pool while decode is the bottleneck, and returns home when prefill
/// pressure reappears — with drain semantics on every switch.
///
/// Only replicas whose *home* role is prefill flex, so the decode pool
/// never shrinks below its home size and at least
/// [`min_prefill`](FlexPoolsConfig::min_prefill) replicas always hold the
/// prefill role (a burst of arrivals always has somewhere to land while
/// flexed replicas drain back).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlexPoolsConfig {
    /// Control tick period (virtual time).
    pub tick_ps: TimePs,
    /// Consecutive idle ticks before a prefill replica flexes to decode.
    pub idle_ticks: u32,
    /// Prefill-role replicas that must always remain (≥ 1).
    pub min_prefill: usize,
}

impl Default for FlexPoolsConfig {
    fn default() -> Self {
        // 1 ms ticks: coarse enough to see real idleness, fine enough to
        // react within a few decode iterations.
        Self { tick_ps: 1_000_000_000, idle_ticks: 2, min_prefill: 1 }
    }
}

/// The [`FlexPools`] control plane. See [`FlexPoolsConfig`] for knobs.
#[derive(Debug)]
pub struct FlexPools {
    router: Box<dyn RoutingPolicy>,
    pairer: Box<dyn RoutingPolicy>,
    config: FlexPoolsConfig,
    /// Consecutive idle ticks per replica (indexed lazily).
    idle_streak: Vec<u32>,
}

impl FlexPools {
    /// A flexing control plane over the given router/pairer.
    ///
    /// # Panics
    ///
    /// Panics if `config.min_prefill` is zero (arrivals need a landing
    /// spot) or `config.tick_ps` is zero.
    pub fn new(
        router: Box<dyn RoutingPolicy>,
        pairer: Box<dyn RoutingPolicy>,
        config: FlexPoolsConfig,
    ) -> Self {
        assert!(config.min_prefill >= 1, "flexing must keep at least one prefill replica");
        assert!(config.tick_ps > 0, "the flex control tick must be positive");
        Self { router, pairer, config, idle_streak: Vec::new() }
    }

    fn streak(&mut self, replica: usize) -> &mut u32 {
        if self.idle_streak.len() <= replica {
            self.idle_streak.resize(replica + 1, 0);
        }
        &mut self.idle_streak[replica]
    }
}

impl ControlPlane for FlexPools {
    fn name(&self) -> String {
        format!("flex+{}", self.router.name())
    }

    fn admit(&mut self, request: &Request, candidates: &[ReplicaSnapshot]) -> usize {
        self.router.route(request, candidates)
    }

    fn pair(&mut self, request: &Request, candidates: &[ReplicaSnapshot]) -> usize {
        self.pairer.route(request, candidates)
    }

    fn tick_ps(&self) -> Option<TimePs> {
        Some(self.config.tick_ps)
    }

    fn on_tick(&mut self, stats: &FleetStats) -> Vec<FleetCommand> {
        let mut commands = Vec::new();
        // Prefill-side pressure: arrivals waiting at the front end, or
        // prefill work in flight anywhere.
        let prefill_pressure = stats.queued_arrivals > 0
            || stats.replicas.iter().any(|r| {
                r.snapshot.role == ReplicaRole::Prefill && r.snapshot.outstanding_requests > 0
            });
        // Decode-side pressure: transfers queued for the link, or decode
        // work in flight.
        let decode_pressure = stats.pending_transfers > 0
            || stats.replicas.iter().any(|r| {
                r.snapshot.role == ReplicaRole::Decode && r.snapshot.outstanding_requests > 0
            });
        let mut prefill_now = stats
            .replicas
            .iter()
            .filter(|r| r.snapshot.role == ReplicaRole::Prefill && r.in_service())
            .count();

        for status in &stats.replicas {
            if status.home_role != ReplicaRole::Prefill || !status.in_service() {
                continue;
            }
            let idx = status.snapshot.index;
            match status.snapshot.role {
                // Flexed out: come home as soon as prefill pressure
                // reappears (the engine drains the decode work first).
                ReplicaRole::Decode if prefill_pressure => {
                    *self.streak(idx) = 0;
                    commands.push(FleetCommand::SetRole {
                        replica: idx,
                        role: ReplicaRole::Prefill,
                    });
                    prefill_now += 1;
                }
                // At home and idle: flex to decode once the idle streak
                // matures, decode actually needs help, and enough prefill
                // capacity remains.
                ReplicaRole::Prefill
                    if status.snapshot.outstanding_requests == 0 && !prefill_pressure =>
                {
                    *self.streak(idx) += 1;
                    if *self.streak(idx) >= self.config.idle_ticks
                        && decode_pressure
                        && prefill_now > self.config.min_prefill
                    {
                        *self.streak(idx) = 0;
                        commands.push(FleetCommand::SetRole {
                            replica: idx,
                            role: ReplicaRole::Decode,
                        });
                        prefill_now -= 1;
                    }
                }
                _ => *self.streak(idx) = 0,
            }
        }
        commands
    }
}

/// Queue-depth autoscaling over a unified fleet: scale up when the mean
/// queue depth per active replica crosses `queue_high` (until `max`
/// replicas), scale down when it falls under `queue_low` (until `min`),
/// one step per tick, with a warm-up delay before a fresh replica takes
/// work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleConfig {
    /// Control tick period (virtual time).
    pub tick_ps: TimePs,
    /// Fleet-size floor (≥ 1).
    pub min_replicas: usize,
    /// Fleet-size ceiling (≥ `min_replicas`).
    pub max_replicas: usize,
    /// Mean outstanding requests per active replica above which the
    /// fleet grows.
    pub queue_high: f64,
    /// Mean outstanding requests per active replica below which the
    /// fleet shrinks.
    pub queue_low: f64,
    /// Warm-up delay before a scaled-up replica admits work.
    pub warmup_ps: TimePs,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        Self {
            tick_ps: 1_000_000_000, // 1 ms
            min_replicas: 1,
            max_replicas: 4,
            queue_high: 4.0,
            queue_low: 0.5,
            warmup_ps: 5_000_000_000, // 5 ms
        }
    }
}

/// The [`AutoscaleControl`] control plane. See [`AutoscaleConfig`].
#[derive(Debug)]
pub struct AutoscaleControl {
    router: Box<dyn RoutingPolicy>,
    config: AutoscaleConfig,
}

impl AutoscaleControl {
    /// An autoscaling control plane routing with `router`.
    ///
    /// # Panics
    ///
    /// Panics on a zero `min_replicas`, an inverted `min..max` range, a
    /// non-positive tick, or `queue_low >= queue_high` (the policy would
    /// oscillate every tick).
    pub fn new(router: Box<dyn RoutingPolicy>, config: AutoscaleConfig) -> Self {
        assert!(config.min_replicas >= 1, "the fleet floor must be at least one replica");
        assert!(
            config.min_replicas <= config.max_replicas,
            "autoscale bounds are inverted: min {} > max {}",
            config.min_replicas,
            config.max_replicas
        );
        assert!(config.tick_ps > 0, "the autoscale control tick must be positive");
        assert!(
            config.queue_low < config.queue_high,
            "queue_low must be below queue_high (hysteresis)"
        );
        Self { router, config }
    }

    /// The configured bounds (for report banners and tests).
    pub fn bounds(&self) -> (usize, usize) {
        (self.config.min_replicas, self.config.max_replicas)
    }
}

impl ControlPlane for AutoscaleControl {
    fn name(&self) -> String {
        format!("autoscale+{}", self.router.name())
    }

    fn admit(&mut self, request: &Request, candidates: &[ReplicaSnapshot]) -> usize {
        self.router.route(request, candidates)
    }

    fn tick_ps(&self) -> Option<TimePs> {
        Some(self.config.tick_ps)
    }

    fn on_tick(&mut self, stats: &FleetStats) -> Vec<FleetCommand> {
        let active = stats.active_count();
        let depth = stats.mean_queue_depth();
        if depth > self.config.queue_high && active < self.config.max_replicas {
            return vec![FleetCommand::ScaleUp {
                template: 0,
                warmup_ps: self.config.warmup_ps,
            }];
        }
        if depth < self.config.queue_low && active > self.config.min_replicas {
            // Retire the highest-index active replica that is not the
            // template: deterministic, and scale-up reactivates it first.
            // Never a dead replica — it cannot drain until it recovers.
            let victim = stats
                .replicas
                .iter()
                .rev()
                .find(|r| !r.retiring && !r.dead && r.snapshot.index != 0)
                .map(|r| r.snapshot.index);
            if let Some(replica) = victim {
                return vec![FleetCommand::ScaleDown { replica }];
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(index: usize, role: ReplicaRole, outstanding: usize) -> ReplicaStatus {
        ReplicaStatus {
            snapshot: ReplicaSnapshot {
                index,
                role,
                clock_ps: 0,
                outstanding_requests: outstanding,
                active_sequences: outstanding,
                kv_used_pages: 0,
                kv_total_pages: 100,
                completed_requests: 0,
            },
            home_role: role,
            pending_role: None,
            active_from_ps: 0,
            retiring: false,
            busy_ps: 0,
            util_window: 0.0,
            dead: false,
            degraded: false,
        }
    }

    fn stats(replicas: Vec<ReplicaStatus>, queued: usize) -> FleetStats {
        FleetStats { clock_ps: 0, replicas, queued_arrivals: queued, pending_transfers: 0 }
    }

    #[test]
    fn mean_queue_depth_counts_front_end_queue() {
        let s = stats(
            vec![status(0, ReplicaRole::Unified, 3), status(1, ReplicaRole::Unified, 1)],
            4,
        );
        assert!((s.mean_queue_depth() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn autoscale_scales_up_under_pressure_and_down_when_idle() {
        let mut plane = AutoscaleControl::new(
            super::super::route::RoutingPolicyKind::RoundRobin.build(0),
            AutoscaleConfig { queue_high: 2.0, queue_low: 0.5, ..Default::default() },
        );
        let busy = stats(vec![status(0, ReplicaRole::Unified, 9)], 3);
        assert!(matches!(plane.on_tick(&busy)[..], [FleetCommand::ScaleUp { .. }]));
        let idle = stats(
            vec![status(0, ReplicaRole::Unified, 0), status(1, ReplicaRole::Unified, 0)],
            0,
        );
        assert_eq!(plane.on_tick(&idle), vec![FleetCommand::ScaleDown { replica: 1 }]);
        // At the floor, idle pressure issues nothing.
        let floor = stats(vec![status(0, ReplicaRole::Unified, 0)], 0);
        assert!(plane.on_tick(&floor).is_empty());
    }

    #[test]
    fn autoscale_counts_a_dead_replica_as_lost_capacity() {
        let mut plane = AutoscaleControl::new(
            super::super::route::RoutingPolicyKind::RoundRobin.build(0),
            AutoscaleConfig::default(),
        );
        // Two replicas, one crashed, six queued arrivals. Over the one
        // live replica that is depth 6 > queue_high 4, so the scale-up
        // must fire *during* the outage; counting the dead replica as
        // capacity (depth 3) would wrongly wait for recovery.
        let mut dead = status(1, ReplicaRole::Unified, 0);
        dead.dead = true;
        let outage = stats(vec![status(0, ReplicaRole::Unified, 0), dead], 6);
        assert!(matches!(plane.on_tick(&outage)[..], [FleetCommand::ScaleUp { .. }]));
    }

    #[test]
    fn autoscale_backfills_through_a_total_outage() {
        let mut plane = AutoscaleControl::new(
            super::super::route::RoutingPolicyKind::RoundRobin.build(0),
            AutoscaleConfig::default(),
        );
        // Every replica dead: the backlog alone is the pressure signal.
        let mut dead = status(0, ReplicaRole::Unified, 0);
        dead.dead = true;
        let outage = stats(vec![dead], 5);
        assert!(matches!(plane.on_tick(&outage)[..], [FleetCommand::ScaleUp { .. }]));
    }

    #[test]
    fn autoscale_never_retires_a_dead_replica() {
        let mut plane = AutoscaleControl::new(
            super::super::route::RoutingPolicyKind::RoundRobin.build(0),
            AutoscaleConfig::default(),
        );
        // Idle fleet, but the highest-index replica is dead: it cannot
        // drain, so the scale-down must pick the live one below it.
        let mut dead = status(2, ReplicaRole::Unified, 0);
        dead.dead = true;
        let idle = stats(
            vec![status(0, ReplicaRole::Unified, 0), status(1, ReplicaRole::Unified, 0), dead],
            0,
        );
        assert_eq!(plane.on_tick(&idle), vec![FleetCommand::ScaleDown { replica: 1 }]);
    }

    #[test]
    fn autoscale_never_retires_the_template() {
        let mut plane = AutoscaleControl::new(
            super::super::route::RoutingPolicyKind::RoundRobin.build(0),
            AutoscaleConfig::default(),
        );
        let idle = stats(
            vec![status(0, ReplicaRole::Unified, 0), status(1, ReplicaRole::Unified, 0)],
            0,
        );
        for _ in 0..4 {
            for cmd in plane.on_tick(&idle) {
                assert_ne!(cmd, FleetCommand::ScaleDown { replica: 0 });
            }
        }
    }

    #[test]
    fn flex_sends_idle_prefill_to_busy_decode_and_recalls_it() {
        let mut plane = FlexPools::new(
            super::super::route::RoutingPolicyKind::RoundRobin.build(0),
            super::super::route::RoutingPolicyKind::LeastKvLoad.build(0),
            FlexPoolsConfig { idle_ticks: 2, ..Default::default() },
        );
        let quiet_prefill = || {
            stats(
                vec![
                    status(0, ReplicaRole::Prefill, 0),
                    status(1, ReplicaRole::Prefill, 0),
                    status(2, ReplicaRole::Decode, 5),
                ],
                0,
            )
        };
        // Tick 1: streak building, no command yet.
        assert!(plane.on_tick(&quiet_prefill()).is_empty());
        // Tick 2: streak matures — exactly one replica flexes (min_prefill
        // keeps the other home).
        let cmds = plane.on_tick(&quiet_prefill());
        assert_eq!(cmds, vec![FleetCommand::SetRole { replica: 0, role: ReplicaRole::Decode }]);
        // Arrivals reappear: the flexed replica is recalled.
        let mut flexed = quiet_prefill();
        flexed.replicas[0].snapshot.role = ReplicaRole::Decode;
        flexed.queued_arrivals = 3;
        let cmds = plane.on_tick(&flexed);
        assert_eq!(
            cmds,
            vec![FleetCommand::SetRole { replica: 0, role: ReplicaRole::Prefill }]
        );
    }

    #[test]
    fn flex_never_drops_below_min_prefill() {
        let mut plane = FlexPools::new(
            super::super::route::RoutingPolicyKind::RoundRobin.build(0),
            super::super::route::RoutingPolicyKind::LeastKvLoad.build(0),
            FlexPoolsConfig { idle_ticks: 1, min_prefill: 1, ..Default::default() },
        );
        // A 1P x 1D fleet: the single prefill replica may never flex.
        let s = stats(
            vec![status(0, ReplicaRole::Prefill, 0), status(1, ReplicaRole::Decode, 8)],
            0,
        );
        for _ in 0..5 {
            assert!(plane.on_tick(&s).is_empty(), "flexed away the last prefill replica");
        }
    }
}
