//! The fleet engine: one virtual-time event loop for every multi-replica
//! serving shape.
//!
//! A [`FleetEngine`] owns a vector of replica slots (each a
//! [`ServingSimulator`] plus a [`ReplicaRole`] and its own
//! [`SimConfig`]), a set of inter-replica KV-transfer [`LinkSpec`]s, and
//! a [`ControlPlane`]. It advances whichever event is earliest in
//! virtual time:
//!
//! * **request arrival** — the control plane inspects load snapshots of
//!   the replicas whose role accepts arrivals and admits the request
//!   ([`ControlPlane::admit`]);
//! * **replica iteration** — the replica with the smallest
//!   [`next_ready_ps`](ServingSimulator::next_ready_ps) runs one
//!   iteration; a prefill-role replica's fresh completions queue for KV
//!   handoff;
//! * **KV transfer** — finished prefills are committed to the links in
//!   KV-ready order (FIFO by readiness, never by event-discovery order),
//!   paired to a decode replica ([`ControlPlane::pair`]), and injected
//!   there at transfer completion;
//! * **control tick** — on a configurable virtual-time period the
//!   control plane sees a [`FleetStats`] view and may flex roles or
//!   scale the fleet ([`FleetCommand`]), always under drain semantics.
//!
//! `ClusterSimulator` and `DisaggSimulator` are thin compositions over
//! this engine (a router is an admission-side control-plane decision;
//! disaggregation is role-filtered admission plus KV-transfer links);
//! flexing and autoscaling are just different control planes.

// llmss-lint: allow(p001, file, reason = "fleet-engine invariants are asserted, not propagated: a violated invariant is a simulator bug that must halt the run")
use std::collections::{BTreeMap, VecDeque};

use llmss_net::LinkSpec;
use llmss_sched::{Request, TimePs};

use crate::chaos::{ChaosSchedule, FaultEvent, ReplicaFaultKind, ResilienceStats, RetryPolicy};
use crate::fabric::{Fabric, FabricCommit, FabricStats};
use crate::telemetry::{SimEvent, Telemetry};
use crate::{ConfigError, ServingSimulator, SimConfig, Simulate};

use super::control::{ControlPlane, FleetCommand, FleetStats, ReplicaStatus};
use super::heap::ReadyHeap;
use super::report::{FleetReplica, FleetReport};
use super::route::{ReplicaRole, ReplicaSnapshot};

/// One committed KV handoff, in fleet-global replica indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetTransfer {
    /// Prefill-side replica (global index).
    pub from: usize,
    /// Decode-side replica (global index).
    pub to: usize,
    /// Link that carried the transfer (FIFO: the booked link; fair: the
    /// flow's bottleneck link, provisional until delivery).
    pub link: usize,
    /// When the KV cache was ready to ship (end of prefill).
    pub ready_ps: TimePs,
    /// When the transfer won its link (fair: entered the fabric).
    pub start_ps: TimePs,
    /// When the KV cache landed on the decode replica. A fair-mode
    /// transfer still in flight holds [`TimePs::MAX`] until delivery.
    pub done_ps: TimePs,
    /// Uncontended transfer time (no queueing, no sharing) — the
    /// denominator of the contention metric.
    pub nominal_ps: TimePs,
    /// Bytes shipped (prompt tokens × KV bytes per token).
    pub bytes: u64,
}

impl FleetTransfer {
    /// The contention slowdown: end-to-end transfer time (queueing and
    /// bandwidth sharing included) over the uncontended nominal. 1.0
    /// means the wire was all ours; `None` until delivered or for
    /// zero-nominal transfers.
    pub fn contention(&self) -> Option<f64> {
        if self.done_ps == TimePs::MAX || self.nominal_ps == 0 {
            return None;
        }
        Some((self.done_ps - self.ready_ps) as f64 / self.nominal_ps as f64)
    }
}

/// Per-replica engine metadata: everything about a slot that is not the
/// simulator itself (stored struct-of-arrays so `sims` stays a plain
/// slice for inspection APIs).
#[derive(Debug)]
pub struct ReplicaSlot {
    /// The replica's own configuration (autoscale clones the template's).
    pub config: SimConfig,
    /// Current serving role.
    pub role: ReplicaRole,
    /// The role the replica was created with (flexing returns here).
    pub home_role: ReplicaRole,
    /// A role switch waiting on drain.
    pub pending_role: Option<ReplicaRole>,
    /// Virtual time from which the replica admits work (warm-up).
    pub active_from_ps: TimePs,
    /// Draining toward deactivation (autoscale down).
    pub retiring: bool,
    /// Fresh arrivals routed here.
    pub routed: usize,
    /// KV handoffs paired to this replica.
    pub paired: usize,
    /// Completions already drained for KV handoff (index into the
    /// scheduler's completion list).
    handed_off: usize,
    /// `(busy_ps, clock_ps)` at the previous control tick — the
    /// utilization-window baseline.
    window_base: (TimePs, TimePs),
}

impl ReplicaSlot {
    fn new(config: SimConfig) -> Self {
        let role = ReplicaRole::from(config.mode);
        Self {
            config,
            role,
            home_role: role,
            pending_role: None,
            active_from_ps: 0,
            retiring: false,
            routed: 0,
            paired: 0,
            handed_off: 0,
            window_base: (0, 0),
        }
    }

    /// Whether the slot currently takes part in serving.
    pub fn in_service(&self) -> bool {
        !self.retiring && self.pending_role.is_none()
    }
}

/// Live fault-injection state: the compiled schedule plus every counter
/// the resilience report aggregates. Present only when
/// [`FleetEngine::set_chaos`] installed a schedule — a chaos-free
/// engine takes none of these paths, keeping its event order (and all
/// goldens) byte-identical.
#[derive(Debug)]
struct ChaosState {
    /// Remaining fault transitions, earliest first.
    events: VecDeque<FaultEvent>,
    /// Retry policy for knocked-out requests.
    retry: RetryPolicy,
    /// Per-replica active fault (`None` = healthy).
    down: Vec<Option<ReplicaFaultKind>>,
    /// Original bandwidth to restore per degraded link.
    link_restore: Vec<Option<f64>>,
    /// Retry attempts consumed per request id.
    attempts: BTreeMap<u64, u32>,
    /// First-admission arrival per retried request (report latencies
    /// span the whole retry chain).
    original_arrival: BTreeMap<u64, TimePs>,
    /// `(id, reason)` for every abandoned request, in event order.
    abandoned: Vec<(u64, String)>,
    /// Retry admissions performed.
    retried: usize,
    /// Fault windows that actually struck.
    faults_injected: usize,
    /// KV bytes destroyed by crashes.
    kv_bytes_lost: u64,
    /// `request id -> fault time` for prefills a crash destroyed.
    lost_prefill: BTreeMap<u64, TimePs>,
    /// When each replica's current crash/hang window opened.
    down_since: Vec<Option<TimePs>>,
    /// Accumulated per-replica downtime.
    downtime: Vec<TimePs>,
    /// Closed `(start, end)` outage windows.
    fault_windows: Vec<(TimePs, TimePs)>,
}

impl ChaosState {
    fn new(schedule: ChaosSchedule, replicas: usize, links: usize) -> Self {
        Self {
            events: schedule.compile(),
            retry: schedule.retry,
            down: vec![None; replicas],
            link_restore: vec![None; links],
            attempts: BTreeMap::new(),
            original_arrival: BTreeMap::new(),
            abandoned: Vec::new(),
            retried: 0,
            faults_injected: 0,
            kv_bytes_lost: 0,
            lost_prefill: BTreeMap::new(),
            down_since: vec![None; replicas],
            downtime: vec![0; replicas],
            fault_windows: Vec::new(),
        }
    }
}

/// A heterogeneous fleet of serving replicas behind a control plane,
/// advanced in one virtual-time event loop.
#[derive(Debug)]
pub struct FleetEngine {
    sims: Vec<ServingSimulator>,
    slots: Vec<ReplicaSlot>,
    fabric: Fabric,
    control: Box<dyn ControlPlane>,
    /// Global arrival stream, earliest first (online injection source).
    arrivals: VecDeque<Request>,
    /// Original requests by id (handoffs need input/output lengths);
    /// only maintained when the fleet has links.
    requests: BTreeMap<u64, Request>,
    /// Finished prefills whose transfers haven't committed to the
    /// fabric yet: `(KV-ready time, request id, prefill replica)`,
    /// earliest first. The tuple order is the commit order contract:
    /// transfers commit by KV-ready time, and *equal* ready times
    /// commit in request-id order — explicitly, by the tuple's second
    /// field, never by heap insertion or event-discovery order.
    pending: std::collections::BinaryHeap<std::cmp::Reverse<(TimePs, u64, usize)>>,
    /// Committed transfers by request id.
    transfers: BTreeMap<u64, FleetTransfer>,
    /// `(request id, replica index)` in admission order.
    assignments: Vec<(u64, usize)>,
    /// Replica ready-times with lazy invalidation.
    heap: ReadyHeap,
    /// KV bytes shipped per prompt token (0 without links).
    kv_bytes_per_token: u64,
    /// The control tick period, if the plane wants ticks.
    tick_ps: Option<TimePs>,
    /// The next tick boundary.
    next_tick_ps: TimePs,
    /// Prefill completions handed off so far (end-to-end completion
    /// accounting subtracts these).
    handoffs_total: usize,
    /// Fleet-level event sink handle (off by default; replicas carry
    /// their own per-index handles).
    telemetry: Telemetry,
    /// Worker-thread budget for windowed stepping (1 = inline). Values
    /// above 1 opt into the windowed path; outcomes are byte-identical
    /// under any value.
    shards: usize,
    /// The fleet-wide reuse tier, when
    /// [`enable_shared_cache`](Self::enable_shared_cache) armed it.
    shared: Option<crate::SharedReuse>,
    /// Scratch: replica indices runnable inside the current window
    /// (kept on the engine to reuse its allocation across windows).
    window: Vec<usize>,
    /// Replicas that ran iterations since the last publish point —
    /// exactly the set whose `fresh` shared-cache buffers can be
    /// non-empty. Publishing walks only these (ascending), not the
    /// whole fleet: at planet scale the full-fleet pointer chase costs
    /// more than the simulation itself.
    dirty: Vec<usize>,
    /// Live count of prefill-role slots, maintained across role
    /// switches and scale-ups. Zero on every cluster fleet, which lets
    /// the window collector skip the O(replicas) role scan and drain
    /// members straight off the heap.
    prefill_slots: usize,
    /// Fault-injection state; `None` (the default) leaves every code
    /// path byte-identical to a chaos-free engine.
    chaos: Option<ChaosState>,
    /// Sanitizer mirror of each replica's last observed virtual clock:
    /// a replica's clock must never run backwards across `step()`.
    #[cfg(feature = "sanitize")]
    sanitize_clocks: Vec<TimePs>,
    /// Sanitizer mirror of the last committed `(ready time, request id)`:
    /// the commit-order contract on `pending` (KV-ready time, then
    /// request id) must hold globally, across commit passes.
    #[cfg(feature = "sanitize")]
    sanitize_last_commit: Option<(TimePs, u64)>,
}

impl FleetEngine {
    /// Builds a fleet from per-replica configurations (roles derive from
    /// each configuration's scheduler mode), KV-transfer links, a control
    /// plane, and a global request trace.
    ///
    /// The trace is *not* pre-partitioned: requests are injected online,
    /// at their arrival times, into the replica the control plane admits
    /// them to.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when any replica configuration cannot be
    /// realized (invalid parallelism, model does not fit, ...).
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty; if a prefill-role replica exists
    /// without any link to ship its KV caches over; or if replicas serve
    /// different models while links exist (the KV bytes-per-token of the
    /// shipped caches must agree).
    pub fn new(
        configs: Vec<SimConfig>,
        links: Vec<LinkSpec>,
        control: Box<dyn ControlPlane>,
        trace: Vec<Request>,
    ) -> Result<Self, ConfigError> {
        Self::with_fabric(configs, Fabric::fifo(links), control, trace)
    }

    /// Builds a fleet whose KV transfers cross an explicit [`Fabric`]
    /// (topology + sharing discipline) instead of the default FIFO
    /// links. [`new`](Self::new) is exactly
    /// `with_fabric(configs, Fabric::fifo(links), ...)`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when any replica configuration cannot be
    /// realized.
    ///
    /// # Panics
    ///
    /// As [`new`](Self::new); additionally panics when a routed fabric
    /// covers fewer endpoints than the fleet has replicas.
    pub fn with_fabric(
        configs: Vec<SimConfig>,
        fabric: Fabric,
        control: Box<dyn ControlPlane>,
        mut trace: Vec<Request>,
    ) -> Result<Self, ConfigError> {
        assert!(!configs.is_empty(), "a fleet needs at least one replica");
        let has_prefill =
            configs.iter().any(|c| ReplicaRole::from(c.mode) == ReplicaRole::Prefill);
        assert!(
            !has_prefill || fabric.has_links(),
            "prefill-role replicas need a KV-transfer link to ship caches over"
        );
        if let Some(endpoints) = fabric.endpoints() {
            assert!(
                endpoints >= configs.len(),
                "the fabric routes {endpoints} endpoints but the fleet has {} replicas",
                configs.len()
            );
        }
        let kv_bytes_per_token = if !fabric.has_links() {
            0
        } else {
            let per_token = configs[0].model.kv_bytes_per_token();
            assert!(
                configs.iter().all(|c| c.model.name == configs[0].model.name),
                "all replicas of a linked fleet must serve the same model"
            );
            per_token
        };

        let mut sims = Vec::with_capacity(configs.len());
        let mut slots = Vec::with_capacity(configs.len());
        for config in configs {
            sims.push(ServingSimulator::new(config.clone(), Vec::new())?);
            slots.push(ReplicaSlot::new(config));
        }

        trace.sort_by_key(|r| (r.arrival_ps, r.id));
        let requests = if !fabric.has_links() {
            BTreeMap::new()
        } else {
            trace.iter().map(|r| (r.id, *r)).collect()
        };
        let tick_ps = control.tick_ps();
        assert!(tick_ps != Some(0), "a control tick period must be positive");
        Ok(Self {
            heap: ReadyHeap::new(sims.len()),
            fabric,
            control,
            arrivals: trace.into(),
            requests,
            pending: std::collections::BinaryHeap::new(),
            transfers: BTreeMap::new(),
            assignments: Vec::new(),
            kv_bytes_per_token,
            next_tick_ps: tick_ps.unwrap_or(0),
            tick_ps,
            handoffs_total: 0,
            telemetry: Telemetry::off(),
            shards: 1,
            shared: None,
            window: Vec::new(),
            dirty: Vec::new(),
            prefill_slots: slots.iter().filter(|s| s.role == ReplicaRole::Prefill).count(),
            chaos: None,
            #[cfg(feature = "sanitize")]
            sanitize_clocks: vec![0; sims.len()],
            #[cfg(feature = "sanitize")]
            sanitize_last_commit: None,
            sims,
            slots,
        })
    }

    /// Installs a fault-injection schedule. Faults targeting replicas or
    /// links the fleet never materializes are skipped silently at their
    /// fire time. Calling this with an empty schedule still arms the
    /// chaos paths (the report gains an all-zero resilience section);
    /// not calling it keeps the engine byte-identical to a chaos-free
    /// build.
    pub fn set_chaos(&mut self, schedule: ChaosSchedule) {
        self.chaos = Some(ChaosState::new(schedule, self.sims.len(), self.fabric.link_count()));
    }

    /// Sets the worker-thread budget for windowed stepping. Replicas
    /// only interact at admission, transfer-commit, control-tick,
    /// fault, and fabric boundaries; with `shards > 1` the engine
    /// advances every replica runnable strictly before the next such
    /// barrier in bulk, partitioned across up to `shards` threads
    /// (capped by the host's parallelism). Virtual-time outcomes are
    /// byte-identical to the serial loop under any shard count; `1`
    /// (the default) keeps the per-event serial loop, preserving
    /// goldens bit for bit. Values of `0` are treated as `1`.
    ///
    /// Sharding is rejected only dynamically: a step taken while
    /// telemetry is attached or while the control plane is reactive
    /// falls back to the serial loop (both consume the global event
    /// interleaving, which windows do not preserve).
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
    }

    /// The configured worker-thread budget for windowed stepping.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Arms the fleet-wide shared reuse cache: every replica keeps its
    /// private iteration/op cache tiers but, on a local miss, consults
    /// a shared store namespaced by configuration fingerprint — so N
    /// homogeneous replicas pay one cold miss per signature instead of
    /// N. Fresh entries publish at engine-step boundaries in
    /// replica-index order (first write wins), keeping hit/miss
    /// counters byte-deterministic under any shard count.
    ///
    /// Arming the shared cache routes stepping through the windowed
    /// path even at `shards = 1`, so shard counts never disagree on
    /// publish timing.
    pub fn enable_shared_cache(&mut self) {
        let shared = self.shared.get_or_insert_with(crate::SharedReuse::new).clone();
        for (sim, slot) in self.sims.iter_mut().zip(&self.slots) {
            sim.attach_shared_reuse(shared.clone(), slot.config.fingerprint());
        }
    }

    /// Whether [`enable_shared_cache`](Self::enable_shared_cache) armed
    /// the fleet-wide reuse tier.
    pub fn shared_cache_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Attaches an event sink to the whole fleet: every replica gets a
    /// handle stamped with its index, the fabric reports flow events,
    /// and the engine itself emits arrival/admission, transfer, and
    /// control-plane events. Emits one `ReplicaActivated` per existing
    /// replica so consumers know the starting fleet.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        for (i, sim) in self.sims.iter_mut().enumerate() {
            sim.set_telemetry(telemetry.for_replica(i));
        }
        self.fabric.set_telemetry(telemetry.clone());
        for (i, slot) in self.slots.iter().enumerate() {
            telemetry.emit(|| SimEvent::ReplicaActivated {
                t_ps: 0,
                replica: i,
                admit_from_ps: slot.active_from_ps,
            });
        }
        self.telemetry = telemetry;
    }

    /// The replica simulators, by fleet index (for inspection between
    /// steps).
    pub fn sims(&self) -> &[ServingSimulator] {
        &self.sims
    }

    /// The replica slots (role, lifecycle, routing counters), by fleet
    /// index.
    pub fn slots(&self) -> &[ReplicaSlot] {
        &self.slots
    }

    /// The control plane's name.
    pub fn control_name(&self) -> String {
        self.control.name()
    }

    /// `(request id, replica)` admissions made so far, in routing order.
    pub fn assignments(&self) -> &[(u64, usize)] {
        &self.assignments
    }

    /// Committed KV transfers by request id.
    pub fn transfers(&self) -> &BTreeMap<u64, FleetTransfer> {
        &self.transfers
    }

    /// KV bytes shipped per prompt token (0 for fleets without links).
    pub fn kv_bytes_per_token(&self) -> u64 {
        self.kv_bytes_per_token
    }

    /// Replicas currently part of the serving fleet (not retiring).
    pub fn active_replicas(&self) -> usize {
        self.slots.iter().filter(|s| !s.retiring).count()
    }

    /// Injects one request online: it queues at the front end and is
    /// admitted when the fleet's virtual time reaches its arrival
    /// (immediately, if time is already past it).
    pub fn push_request(&mut self, request: Request) {
        if self.fabric.has_links() {
            self.requests.insert(request.id, request);
        }
        let pos = self
            .arrivals
            .iter()
            .position(|r| (r.arrival_ps, r.id) > (request.arrival_ps, request.id))
            .unwrap_or(self.arrivals.len());
        self.arrivals.insert(pos, request);
    }

    /// The earliest virtual time the next [`step`](Self::step) would act
    /// (an arrival to admit, a replica iteration, or a pending KV
    /// transfer), or `None` when the fleet has fully drained.
    pub fn next_ready_ps(&self) -> Option<TimePs> {
        let replica_ready = self.heap.min_live().map(|(t, _)| t);
        let arrival = self.arrivals.front().map(|r| r.arrival_ps);
        let transfer = self.pending.peek().map(|&std::cmp::Reverse((t, _, _))| t);
        let fabric = self.fabric.next_event_ps();
        let fault = self.next_fault_ps();
        [replica_ready, arrival, transfer, fabric, fault].into_iter().flatten().min()
    }

    /// The next pending fault transition, if a chaos schedule is armed.
    fn next_fault_ps(&self) -> Option<TimePs> {
        self.chaos.as_ref().and_then(|c| c.events.front().map(FaultEvent::t_ps))
    }

    /// The fleet's virtual clock: the furthest replica clock.
    pub fn clock_ps(&self) -> TimePs {
        self.sims.iter().map(ServingSimulator::clock_ps).max().unwrap_or(0)
    }

    /// Requests that finished their full lifecycle (prefill-side handoff
    /// completions are bookkeeping, not served requests).
    pub fn completed_requests(&self) -> usize {
        let total: usize = self.sims.iter().map(|s| s.scheduler().completions().len()).sum();
        total - self.handoffs_total
    }

    fn snapshot(&self, index: usize) -> ReplicaSnapshot {
        ReplicaSnapshot::capture(&self.sims[index], index, self.slots[index].role)
    }

    /// Re-keys `replica` in the heap after a mutation.
    fn refresh(&mut self, replica: usize) {
        self.heap.refresh(replica, self.sims[replica].next_ready_ps());
    }

    /// The fleet-wide control view at virtual time `now`.
    fn stats(&self, now: TimePs) -> FleetStats {
        let replicas = (0..self.sims.len())
            .map(|i| {
                let slot = &self.slots[i];
                let busy = self.sims[i].busy_ps();
                let (base_busy, base_clock) = slot.window_base;
                let window = now.saturating_sub(base_clock);
                // A drained retired replica executes nothing: clamp to 0
                // instead of replaying its last live window forever.
                let drained = slot.retiring && self.sims[i].scheduler().outstanding() == 0;
                let util_window = if window == 0 || drained {
                    0.0
                } else {
                    (busy.saturating_sub(base_busy)) as f64 / window as f64
                };
                let fault = self.chaos.as_ref().and_then(|c| c.down[i]);
                ReplicaStatus {
                    snapshot: self.snapshot(i),
                    home_role: slot.home_role,
                    pending_role: slot.pending_role,
                    active_from_ps: slot.active_from_ps,
                    retiring: slot.retiring,
                    busy_ps: busy,
                    util_window,
                    dead: fault == Some(ReplicaFaultKind::Crash),
                    degraded: matches!(
                        fault,
                        Some(ReplicaFaultKind::Hang | ReplicaFaultKind::Drain)
                    ),
                }
            })
            .collect();
        // Only arrivals that have actually reached the front end by
        // `now` are backlog; the rest of the deque is the future of the
        // trace, which a control plane (like a real front-end) must
        // never see. The deque is arrival-sorted, so the backlog is a
        // prefix.
        let queued_arrivals = self.arrivals.iter().take_while(|r| r.arrival_ps <= now).count();
        FleetStats {
            clock_ps: now,
            replicas,
            queued_arrivals,
            pending_transfers: self.pending.len(),
        }
    }

    /// Applies one control command under drain semantics.
    fn apply(&mut self, command: FleetCommand, now: TimePs) {
        self.telemetry
            .emit(|| SimEvent::Command { t_ps: now, command: format!("{command:?}") });
        match command {
            FleetCommand::SetRole { replica, role } => {
                assert!(replica < self.sims.len(), "SetRole names replica {replica}");
                assert!(
                    role != ReplicaRole::Prefill || self.fabric.has_links(),
                    "cannot flex to the prefill role without a KV-transfer link"
                );
                let slot = &mut self.slots[replica];
                if slot.role == role {
                    slot.pending_role = None;
                    return;
                }
                slot.pending_role = Some(role);
                self.try_apply_pending_role(replica);
            }
            FleetCommand::ScaleUp { template, warmup_ps } => {
                assert!(template < self.sims.len(), "ScaleUp names template {template}");
                let active_from = now.saturating_add(warmup_ps);
                // Reactivate a drained retired replica before growing the
                // fleet vector: cheaper, and keeps indices dense.
                if let Some(idx) = (0..self.slots.len()).find(|&i| {
                    self.slots[i].retiring
                        && self.slots[i].pending_role.is_none()
                        && self.sims[i].scheduler().outstanding() == 0
                        // A faulted replica cannot answer a backfill.
                        && self.chaos.as_ref().is_none_or(|c| c.down[i].is_none())
                }) {
                    self.slots[idx].retiring = false;
                    self.slots[idx].active_from_ps = active_from;
                    self.telemetry.emit(|| SimEvent::ReplicaActivated {
                        t_ps: now,
                        replica: idx,
                        admit_from_ps: active_from,
                    });
                    return;
                }
                let config = self.slots[template].config.clone();
                let mut sim = ServingSimulator::new(config.clone(), Vec::new())
                    .expect("the template configuration was already realized once");
                let index = self.sims.len();
                sim.set_telemetry(self.telemetry.for_replica(index));
                if let Some(shared) = &self.shared {
                    sim.attach_shared_reuse(shared.clone(), config.fingerprint());
                }
                self.sims.push(sim);
                let mut slot = ReplicaSlot::new(config);
                slot.active_from_ps = active_from;
                if slot.role == ReplicaRole::Prefill {
                    self.prefill_slots += 1;
                }
                self.slots.push(slot);
                self.heap.grow();
                #[cfg(feature = "sanitize")]
                self.sanitize_clocks.push(0);
                if let Some(chaos) = self.chaos.as_mut() {
                    chaos.down.push(None);
                    chaos.down_since.push(None);
                    chaos.downtime.push(0);
                }
                self.telemetry.emit(|| SimEvent::ReplicaActivated {
                    t_ps: now,
                    replica: index,
                    admit_from_ps: active_from,
                });
            }
            FleetCommand::ScaleDown { replica } => {
                assert!(replica < self.sims.len(), "ScaleDown names replica {replica}");
                if !self.slots[replica].retiring {
                    self.telemetry.emit(|| SimEvent::ReplicaRetired { t_ps: now, replica });
                }
                self.slots[replica].retiring = true;
            }
        }
    }

    /// Completes a deferred role switch once the replica has drained.
    fn try_apply_pending_role(&mut self, replica: usize) {
        let Some(role) = self.slots[replica].pending_role else { return };
        if self.sims[replica].scheduler().outstanding() > 0 {
            return;
        }
        self.sims[replica].set_mode(role.scheduler_mode());
        self.telemetry.emit(|| SimEvent::RoleApplied {
            t_ps: self.sims[replica].clock_ps(),
            replica,
            role: role.to_string(),
        });
        let slot = &mut self.slots[replica];
        match (slot.role == ReplicaRole::Prefill, role == ReplicaRole::Prefill) {
            (true, false) => self.prefill_slots -= 1,
            (false, true) => self.prefill_slots += 1,
            _ => {}
        }
        slot.role = role;
        slot.pending_role = None;
        // Completions produced under the old role are not handoffs of the
        // new one.
        slot.handed_off = self.sims[replica].scheduler().completions().len();
    }

    /// Fires every control tick due before the next event at `horizon`,
    /// applying the commands each produces.
    fn fire_due_ticks(&mut self, horizon: TimePs) {
        let Some(tick) = self.tick_ps else { return };
        while self.next_tick_ps <= horizon {
            let now = self.next_tick_ps;
            let stats = self.stats(now);
            self.telemetry.emit(|| SimEvent::Tick {
                t_ps: now,
                live_replicas: self.slots.iter().filter(|s| !s.retiring).count(),
                queued_arrivals: stats.queued_arrivals,
                pending_transfers: stats.pending_transfers,
            });
            let commands = self.control.on_tick(&stats);
            for command in commands {
                self.apply(command, now);
            }
            // Reset every utilization window at the tick boundary.
            for i in 0..self.sims.len() {
                self.slots[i].window_base = (self.sims[i].busy_ps(), now);
            }
            self.next_tick_ps += tick;
        }
    }

    /// Queues any prefills replica `index` just finished for transfer.
    /// Links are *not* booked here: events are discovered in
    /// iteration-start order, so an earlier-ready transfer from another
    /// replica may still surface — booking waits until it can happen in
    /// KV-ready order ([`commit_ready_transfers`](Self::step)).
    fn hand_off_finished_prefills(&mut self, index: usize) {
        let completions = self.sims[index].scheduler().completions();
        let first_fresh = self.slots[index].handed_off;
        self.slots[index].handed_off = completions.len();
        for done in &completions[first_fresh..] {
            self.pending.push(std::cmp::Reverse((done.finish_ps, done.id, index)));
            self.handoffs_total += 1;
            self.telemetry.emit(|| SimEvent::TransferQueued {
                t_ps: done.finish_ps,
                id: done.id,
                from: index,
            });
        }
    }

    /// The earliest virtual time at which a *new* transfer could still
    /// become ready: any future prefill completion lands strictly after
    /// its replica's next event, and any unadmitted arrival strictly
    /// after its arrival time.
    fn transfer_horizon(&self) -> TimePs {
        let mut horizon = self.arrivals.front().map_or(TimePs::MAX, |r| r.arrival_ps);
        for (i, sim) in self.sims.iter().enumerate() {
            if self.slots[i].role != ReplicaRole::Prefill {
                continue;
            }
            if let Some(t) = sim.next_ready_ps() {
                horizon = horizon.min(t);
            }
        }
        horizon
    }

    /// Commits pending transfers to the fabric in KV-ready order (ties
    /// on the ready time commit in request-id order — the `pending`
    /// tuple contract), pairs each to a decode replica through the
    /// control plane, and hands the bytes to the fabric. Under the FIFO
    /// discipline the booking resolves immediately and the request is
    /// injected with its transfer-completion arrival; under fair
    /// sharing the transfer stays in flight and the injection waits for
    /// [`deliver_fabric_events`](Self::step). The decode pool keeps
    /// executing underneath — only the shipped request waits on the
    /// wire.
    fn commit_ready_transfers(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let mut horizon = self.transfer_horizon();
        if let Some(ft) = self.next_fault_ps() {
            // Faults win ties: a transfer ready exactly at a fault
            // transition commits after the fault applies.
            horizon = horizon.min(ft.saturating_sub(1));
        }
        if self.chaos.is_some() && self.fabric.fully_partitioned() {
            // No link can carry KV right now. Park every due transfer at
            // the next fault transition (schedule validation guarantees a
            // partition recovers); link faults spend no retry budget.
            let next = self
                .next_fault_ps()
                .expect("a full partition always has a pending recovery event");
            let mut parked = Vec::new();
            while let Some(&std::cmp::Reverse((ready_ps, id, from))) = self.pending.peek() {
                if ready_ps > horizon {
                    break;
                }
                self.pending.pop();
                parked.push(std::cmp::Reverse((next.max(ready_ps), id, from)));
            }
            self.pending.extend(parked);
            return;
        }
        while let Some(&std::cmp::Reverse((ready_ps, id, from))) = self.pending.peek() {
            if ready_ps > horizon {
                // A not-yet-simulated prefill or arrival could still beat
                // this transfer onto the fabric; commit later.
                return;
            }
            self.pending.pop();
            let request = self.requests[&id];
            let bytes = request.input_len as u64 * self.kv_bytes_per_token;

            let candidates: Vec<ReplicaSnapshot> = (0..self.sims.len())
                .filter(|&i| {
                    let slot = &self.slots[i];
                    slot.role == ReplicaRole::Decode
                        && slot.in_service()
                        && slot.active_from_ps <= ready_ps
                        && self.chaos.as_ref().is_none_or(|c| c.down[i].is_none())
                })
                .map(|i| self.snapshot(i))
                .collect();
            if candidates.is_empty() {
                assert!(
                    self.chaos.is_some(),
                    "no decode replica available for the KV handoff of request {id}"
                );
                // The head entry changed (re-parked or abandoned):
                // re-enter the commit pass on a later step.
                self.defer_or_abandon_pairing(ready_ps, id, from);
                return;
            }
            let chosen = self.control.pair(&request, &candidates);
            assert!(
                candidates.iter().any(|s| s.index == chosen),
                "control plane paired replica {chosen}, not one of the {} offered",
                candidates.len()
            );
            self.slots[chosen].paired += 1;
            #[cfg(feature = "sanitize")]
            {
                debug_assert!(
                    self.sanitize_last_commit.is_none_or(|last| last <= (ready_ps, id)),
                    "sanitize: commit-order contract violated — transfer {id} commits \
                     at ready time {ready_ps} ps after {:?}",
                    self.sanitize_last_commit
                );
                self.sanitize_last_commit = Some((ready_ps, id));
            }
            let transfer = match self.fabric.commit(id, from, chosen, bytes, ready_ps) {
                FabricCommit::Booked { link, start_ps, done_ps, nominal_ps } => {
                    // Fully booked: the request arrives at the decode
                    // replica the moment its transfer completes.
                    self.sims[chosen].push_request(Request::new(
                        id,
                        request.input_len,
                        request.output_len,
                        done_ps,
                    ));
                    self.refresh(chosen);
                    self.telemetry.emit(|| SimEvent::TransferEnd {
                        t_ps: done_ps,
                        id,
                        from,
                        to: chosen,
                    });
                    FleetTransfer {
                        from,
                        to: chosen,
                        link,
                        ready_ps,
                        start_ps,
                        done_ps,
                        nominal_ps,
                        bytes,
                    }
                }
                FabricCommit::InFlight { start_ps, nominal_ps } => FleetTransfer {
                    from,
                    to: chosen,
                    // Provisional until the flow delivers and reports
                    // its bottleneck link.
                    link: 0,
                    ready_ps,
                    start_ps,
                    done_ps: TimePs::MAX,
                    nominal_ps,
                    bytes,
                },
            };
            self.telemetry.emit(|| SimEvent::TransferStart {
                t_ps: transfer.start_ps,
                id,
                from,
                to: chosen,
                bytes,
                nominal_ps: transfer.nominal_ps,
            });
            self.transfers.insert(id, transfer);
        }
    }

    /// Advances the fair fabric to `t` and injects every delivered KV
    /// cache into its paired decode replica, finalizing the transfer
    /// record (delivery time + bottleneck link).
    fn deliver_fabric_events(&mut self, t: TimePs) {
        for done in self.fabric.advance(t) {
            let transfer = self
                .transfers
                .get_mut(&done.id)
                .expect("every in-flight flow has a committed transfer record");
            transfer.done_ps = done.done_ps;
            transfer.link = done.bottleneck;
            let to = transfer.to;
            let from = transfer.from;
            self.telemetry.emit(|| SimEvent::TransferEnd {
                t_ps: done.done_ps,
                id: done.id,
                from,
                to,
            });
            let dest_crashed = self
                .chaos
                .as_ref()
                .is_some_and(|c| c.down[to] == Some(ReplicaFaultKind::Crash));
            if dest_crashed {
                // The wire finished, but the KV landed on a dead replica:
                // lost on arrival. Unwind the prefill-side bookkeeping and
                // send the request back through admission to re-prefill.
                let tr = self.transfers.remove(&done.id).expect("just finalized above");
                let removed = self.sims[from].retract_completions(&[done.id]);
                self.handoffs_total -= removed;
                if self.slots[from].role == ReplicaRole::Prefill {
                    self.slots[from].handed_off =
                        self.sims[from].scheduler().completions().len();
                }
                let request = self.requests[&done.id];
                {
                    let chaos = self.chaos.as_mut().expect("checked above");
                    chaos.kv_bytes_lost += tr.bytes;
                    chaos.lost_prefill.entry(done.id).or_insert(done.done_ps);
                }
                self.retry_request(
                    request,
                    done.done_ps,
                    "shipped KV landed on a crashed replica",
                );
                continue;
            }
            let request = self.requests[&done.id];
            self.sims[to].push_request(Request::new(
                done.id,
                request.input_len,
                request.output_len,
                done.done_ps,
            ));
            self.refresh(to);
        }
    }

    /// Applies every fault transition due at exactly `t`. The compile
    /// order guarantees recoveries apply before same-instant new faults,
    /// so a replica that recovers at `t` can absorb work displaced by a
    /// crash at `t`.
    fn apply_due_faults(&mut self, t: TimePs) {
        loop {
            let event = {
                let chaos = self.chaos.as_mut().expect("apply_due_faults needs chaos armed");
                if chaos.events.front().is_some_and(|e| e.t_ps() <= t) {
                    chaos.events.pop_front()
                } else {
                    None
                }
            };
            let Some(event) = event else { return };
            match event {
                FaultEvent::ReplicaDown { replica, kind, .. } => {
                    self.fault_replica_down(replica, kind, t);
                }
                FaultEvent::ReplicaUp { replica, .. } => self.fault_replica_up(replica, t),
                FaultEvent::LinkDown { link, degrade_to_gbps, .. } => {
                    self.fault_link_down(link, degrade_to_gbps, t);
                }
                FaultEvent::LinkUp { link, .. } => self.fault_link_up(link, t),
            }
        }
    }

    /// Strikes a replica. Targets the fleet never materialized (an
    /// autoscale index that never spawned) are skipped without counting.
    fn fault_replica_down(&mut self, replica: usize, kind: ReplicaFaultKind, t: TimePs) {
        {
            let chaos = self.chaos.as_mut().expect("chaos armed");
            if replica >= self.sims.len() || chaos.down[replica].is_some() {
                return;
            }
            chaos.faults_injected += 1;
            chaos.down[replica] = Some(kind);
            if kind != ReplicaFaultKind::Drain {
                chaos.down_since[replica] = Some(t);
            }
        }
        self.telemetry.emit(|| SimEvent::ReplicaFault {
            t_ps: t,
            replica,
            kind: kind.to_string(),
        });
        match kind {
            // A drained replica keeps executing what it holds; it is only
            // excluded from new admissions and pairings.
            ReplicaFaultKind::Drain => {}
            // A hung replica freezes mid-flight: its work is preserved
            // but nothing progresses until recovery. Its NIC stays up, so
            // already-queued KV handoffs still ship.
            ReplicaFaultKind::Hang => self.heap.refresh(replica, None),
            ReplicaFaultKind::Crash => {
                self.heap.refresh(replica, None);
                self.crash_replica(replica, t);
            }
        }
    }

    /// A crash loses everything volatile on the replica: in-flight
    /// requests (their KV caches with them) and finished prefills whose
    /// KV never shipped. Each lost request re-enters global admission
    /// through the retry policy.
    fn crash_replica(&mut self, replica: usize, t: TimePs) {
        let per_token = self.slots[replica].config.model.kv_bytes_per_token();
        // Finished prefills still queued for transfer from this replica:
        // the KV cache they would ship just evaporated.
        let mut kept = Vec::new();
        let mut lost_pending = Vec::new();
        while let Some(std::cmp::Reverse(entry)) = self.pending.pop() {
            if entry.2 == replica {
                lost_pending.push(entry);
            } else {
                kept.push(std::cmp::Reverse(entry));
            }
        }
        self.pending.extend(kept);
        if !lost_pending.is_empty() {
            let ids: Vec<u64> = lost_pending.iter().map(|&(_, id, _)| id).collect();
            let removed = self.sims[replica].retract_completions(&ids);
            self.handoffs_total -= removed;
            self.slots[replica].handed_off = self.sims[replica].scheduler().completions().len();
            for &(_, id, _) in &lost_pending {
                let request = self.requests[&id];
                {
                    let chaos = self.chaos.as_mut().expect("chaos armed");
                    chaos.kv_bytes_lost += request.input_len as u64 * per_token;
                    chaos.lost_prefill.entry(id).or_insert(t);
                }
                self.retry_request(request, t, "prefill KV lost to a crash");
            }
        }
        // Everything the scheduler still held dies with the replica.
        let lost = self.sims[replica].crash_drain();
        for work in lost {
            let id = work.request.id;
            let incoming = self.transfers.get(&id).copied().filter(|tr| tr.to == replica);
            if let Some(tr) = incoming {
                // The decode side of a disagg pair: the shipped KV (and
                // any decode progress) is gone. Unwind the prefill-side
                // bookkeeping and re-prefill from the original request.
                let removed = self.sims[tr.from].retract_completions(&[id]);
                self.handoffs_total -= removed;
                if self.slots[tr.from].role == ReplicaRole::Prefill {
                    self.slots[tr.from].handed_off =
                        self.sims[tr.from].scheduler().completions().len();
                }
                self.transfers.remove(&id);
                let request = self.requests[&id];
                {
                    let chaos = self.chaos.as_mut().expect("chaos armed");
                    chaos.kv_bytes_lost += tr.bytes + work.generated as u64 * per_token;
                    chaos.lost_prefill.entry(id).or_insert(t);
                }
                self.retry_request(request, t, "shipped KV lost with its decode replica");
            } else {
                if work.prefill_done {
                    let chaos = self.chaos.as_mut().expect("chaos armed");
                    chaos.kv_bytes_lost +=
                        (work.request.input_len + work.generated) as u64 * per_token;
                    chaos.lost_prefill.entry(id).or_insert(t);
                }
                self.retry_request(work.request, t, "in-flight work lost to a crash");
            }
        }
        // The crash drained the replica: a deferred role switch can land.
        self.try_apply_pending_role(replica);
    }

    /// Clears a replica fault. Crash/hang recoveries close the downtime
    /// window and rejoin the replica's clock to fleet time.
    fn fault_replica_up(&mut self, replica: usize, t: TimePs) {
        let kind = {
            let chaos = self.chaos.as_mut().expect("chaos armed");
            if replica >= self.sims.len() {
                return;
            }
            let Some(kind) = chaos.down[replica].take() else { return };
            if let Some(since) = chaos.down_since[replica].take() {
                chaos.downtime[replica] += t - since;
                chaos.fault_windows.push((since, t));
            }
            kind
        };
        self.telemetry.emit(|| SimEvent::ReplicaRecovered { t_ps: t, replica });
        if kind != ReplicaFaultKind::Drain {
            // The outage is wall time: the replica resumes at recovery,
            // not where its clock stopped.
            self.sims[replica].advance_clock_to(t);
            self.refresh(replica);
        }
    }

    /// Degrades (or partitions, at 0 Gb/s) a link. In-flight fair flows
    /// integrate progress at the old rates up to `t`, then re-price.
    fn fault_link_down(&mut self, link: usize, degrade_to_gbps: f64, t: TimePs) {
        if link >= self.fabric.link_count() {
            return;
        }
        self.deliver_fabric_events(t.max(self.fabric.now_ps()));
        {
            let restore = self.fabric.link_bw_gbps(link);
            let chaos = self.chaos.as_mut().expect("chaos armed");
            chaos.faults_injected += 1;
            // Overlapping windows keep the original bandwidth.
            if chaos.link_restore[link].is_none() {
                chaos.link_restore[link] = Some(restore);
            }
        }
        self.fabric.set_link_bw_gbps(link, degrade_to_gbps);
        self.telemetry.emit(|| SimEvent::LinkFault { t_ps: t, link, bw_gbps: degrade_to_gbps });
    }

    /// Restores a degraded link to its pre-fault bandwidth.
    fn fault_link_up(&mut self, link: usize, t: TimePs) {
        if link >= self.fabric.link_count() {
            return;
        }
        let restore = {
            let chaos = self.chaos.as_mut().expect("chaos armed");
            chaos.link_restore[link].take()
        };
        let Some(bw) = restore else { return };
        self.deliver_fabric_events(t.max(self.fabric.now_ps()));
        self.fabric.set_link_bw_gbps(link, bw);
        self.telemetry.emit(|| SimEvent::LinkRecovered { t_ps: t, link });
    }

    /// Sends a knocked-out request back through global admission with
    /// deterministic virtual-time backoff, or abandons it once its retry
    /// budget is spent.
    fn retry_request(&mut self, request: Request, now: TimePs, reason: &str) {
        let id = request.id;
        let (attempt, max_retries, backoff) = {
            let chaos = self.chaos.as_mut().expect("chaos armed");
            let entry = chaos.attempts.entry(id).or_insert(0);
            *entry += 1;
            (*entry, chaos.retry.max_retries, chaos.retry.backoff_for(*entry))
        };
        if attempt > max_retries {
            self.abandon_request(id, now, reason);
            return;
        }
        {
            let original = self.requests.get(&id).map_or(request.arrival_ps, |r| r.arrival_ps);
            let chaos = self.chaos.as_mut().expect("chaos armed");
            chaos.retried += 1;
            chaos.original_arrival.entry(id).or_insert(original);
        }
        let at = now.saturating_add(backoff);
        self.telemetry.emit(|| SimEvent::RequestRetried {
            t_ps: now,
            id,
            attempt,
            retry_at_ps: at,
        });
        let retry = Request::new(id, request.input_len, request.output_len, at);
        let pos = self
            .arrivals
            .iter()
            .position(|r| (r.arrival_ps, r.id) > (at, id))
            .unwrap_or(self.arrivals.len());
        self.arrivals.insert(pos, retry);
    }

    /// Gives up on a request, recording why.
    fn abandon_request(&mut self, id: u64, now: TimePs, reason: &str) {
        self.telemetry.emit(|| SimEvent::RequestAbandoned {
            t_ps: now,
            id,
            reason: reason.to_string(),
        });
        let chaos = self.chaos.as_mut().expect("chaos armed");
        chaos.abandoned.push((id, reason.to_string()));
    }

    /// The earliest future instant at which serving capacity could
    /// reappear: a fault transition (a recovery, or a crash freeing a
    /// pairing for re-route), a control tick (the plane may scale up),
    /// or a warming replica coming online.
    fn defer_target(&self, now: TimePs) -> Option<TimePs> {
        let mut candidates: Vec<TimePs> = Vec::new();
        if let Some(ft) = self.next_fault_ps() {
            candidates.push(ft);
        }
        if self.tick_ps.is_some() {
            candidates.push(self.next_tick_ps);
        }
        for slot in &self.slots {
            if slot.active_from_ps > now {
                candidates.push(slot.active_from_ps);
            }
        }
        candidates.into_iter().filter(|&t| t > now).min()
    }

    /// No live replica accepts this arrival: push it to the next instant
    /// capacity could reappear, spending one retry, or abandon it.
    fn defer_or_abandon_admission(&mut self, request: Request) {
        let id = request.id;
        let now = request.arrival_ps;
        let (attempt, max_retries) = {
            let chaos = self.chaos.as_mut().expect("chaos armed");
            let entry = chaos.attempts.entry(id).or_insert(0);
            *entry += 1;
            (*entry, chaos.retry.max_retries)
        };
        let target = self.defer_target(now);
        let Some(at) = target.filter(|_| attempt <= max_retries) else {
            self.abandon_request(id, now, "no replica accepts arrivals");
            return;
        };
        {
            let original = self.requests.get(&id).map_or(now, |r| r.arrival_ps);
            let chaos = self.chaos.as_mut().expect("chaos armed");
            chaos.retried += 1;
            chaos.original_arrival.entry(id).or_insert(original);
        }
        self.telemetry.emit(|| SimEvent::RequestRetried {
            t_ps: now,
            id,
            attempt,
            retry_at_ps: at,
        });
        let retry = Request::new(id, request.input_len, request.output_len, at);
        let pos = self
            .arrivals
            .iter()
            .position(|r| (r.arrival_ps, r.id) > (at, id))
            .unwrap_or(self.arrivals.len());
        self.arrivals.insert(pos, retry);
    }

    /// No live decode replica can take this KV handoff: re-park it at
    /// the next instant capacity could reappear, spending one retry, or
    /// abandon it (unwinding the prefill-side bookkeeping for KV that
    /// will never ship).
    fn defer_or_abandon_pairing(&mut self, ready_ps: TimePs, id: u64, from: usize) {
        let (attempt, max_retries) = {
            let chaos = self.chaos.as_mut().expect("chaos armed");
            let entry = chaos.attempts.entry(id).or_insert(0);
            *entry += 1;
            (*entry, chaos.retry.max_retries)
        };
        let target = self.defer_target(ready_ps);
        let Some(at) = target.filter(|_| attempt <= max_retries) else {
            let removed = self.sims[from].retract_completions(&[id]);
            self.handoffs_total -= removed;
            if self.slots[from].role == ReplicaRole::Prefill {
                self.slots[from].handed_off = self.sims[from].scheduler().completions().len();
            }
            let bytes = self.requests[&id].input_len as u64 * self.kv_bytes_per_token;
            {
                let chaos = self.chaos.as_mut().expect("chaos armed");
                chaos.kv_bytes_lost += bytes;
            }
            self.abandon_request(
                id,
                ready_ps,
                "no decode replica available for the KV handoff",
            );
            return;
        };
        {
            let chaos = self.chaos.as_mut().expect("chaos armed");
            chaos.retried += 1;
        }
        self.telemetry.emit(|| SimEvent::RequestRetried {
            t_ps: ready_ps,
            id,
            attempt,
            retry_at_ps: at,
        });
        self.pending.push(std::cmp::Reverse((at, id, from)));
    }

    /// Advances the fleet by one step. Returns `false` when everything
    /// has drained.
    ///
    /// The default path is the per-event serial loop
    /// (`step_serial`). With `shards > 1` or the
    /// shared reuse cache armed — and neither telemetry nor a reactive
    /// control plane consuming the global event interleaving — the
    /// engine instead advances a whole *window*: every replica
    /// iteration strictly before the next cross-replica interaction
    /// point (arrival, control tick, fault, fabric event, pending
    /// KV-transfer readiness, or a prefill replica's next completion)
    /// runs in bulk, partitioned across worker threads when the budget
    /// and the host allow. Replicas cannot interact inside a window,
    /// so outcomes are byte-identical to the serial loop under any
    /// shard count; anything at or past the barrier falls back to one
    /// serial step.
    pub fn step(&mut self) -> bool {
        // Fresh shared-cache entries publish at the top of every step —
        // a virtual-time-determined boundary, identical under any shard
        // count and any thread timing — in replica-index order, so
        // first-write-wins resolves deterministically. Only replicas
        // that stepped since the last publish can hold fresh entries
        // (`dirty` is ascending: one sorted window or one serial step).
        if self.shared.is_some() {
            for &i in &self.dirty {
                self.sims[i].publish_shared_reuse();
            }
        }
        self.dirty.clear();
        if self.windowed_active() {
            if let Some(barrier) = self.collect_window() {
                self.run_window(barrier);
                return true;
            }
        }
        self.step_serial()
    }

    /// Whether stepping may take the windowed path right now.
    fn windowed_active(&self) -> bool {
        (self.shards > 1 || self.shared.is_some())
            && !self.control.reactive()
            && !self.telemetry.is_on()
    }

    /// Computes the next interaction barrier and collects the replicas
    /// runnable strictly before it into `self.window`. Returns the
    /// barrier (`None` meaning unbounded: no future interaction point
    /// exists and runnable replicas may drain completely) when the
    /// window is non-empty, or `None` overall when no replica can step
    /// before the barrier — the caller then takes one serial step,
    /// which handles the barrier event itself (and termination).
    fn collect_window(&mut self) -> Option<Option<TimePs>> {
        let mut barrier = [
            self.arrivals.front().map(|r| r.arrival_ps),
            self.tick_ps.map(|_| self.next_tick_ps),
            self.next_fault_ps(),
            self.fabric.next_event_ps(),
            self.pending.peek().map(|&std::cmp::Reverse((t, _, _))| t),
        ]
        .into_iter()
        .flatten()
        .min();
        // Cheap early-out: if the earliest replica event is not strictly
        // before the global barrier, the window is empty (prefill-ready
        // times below only lower the barrier further) and one serial
        // step handles the barrier event. This keeps dense-arrival
        // phases at O(log replicas) per event instead of paying the
        // O(replicas) membership scan just to find nothing runnable.
        match (self.heap.peek(), barrier) {
            (None, _) => return None,
            (Some((t, _)), Some(b)) if t >= b => return None,
            _ => {}
        }
        #[cfg(feature = "sanitize")]
        debug_assert_eq!(
            self.slots.iter().filter(|s| s.role == ReplicaRole::Prefill).count(),
            self.prefill_slots,
            "sanitize: prefill slot counter drifted from the role column"
        );
        self.window.clear();
        if self.prefill_slots == 0 {
            // Prefill-free fleet (every cluster): drain runnable members
            // straight off the heap in ready order — O(window · log
            // replicas), independent of fleet size. The pops park each
            // member in the mirror; `run_window` re-keys them after
            // stepping. Membership sorts back to replica order so the
            // post-window bookkeeping stays deterministic.
            while let Some((t, i)) = self.heap.peek() {
                if barrier.is_some_and(|b| t >= b) {
                    break;
                }
                self.heap.pop();
                self.window.push(i);
            }
            self.window.sort_unstable();
        } else {
            // A prefill iteration can finish a prefill, which both
            // queues a new pending transfer and moves the commit horizon
            // — so every prefill replica's next event is itself a
            // barrier. (They therefore never step inside windows; linked
            // fleets advance their prefill side through the serial
            // fallback.)
            for (i, slot) in self.slots.iter().enumerate() {
                if slot.role == ReplicaRole::Prefill {
                    if let Some(t) = self.heap.ready_of(i) {
                        barrier = Some(barrier.map_or(t, |b| b.min(t)));
                    }
                }
            }
            for i in 0..self.slots.len() {
                if let Some(t) = self.heap.ready_of(i) {
                    if barrier.is_none_or(|b| t < b) {
                        self.window.push(i);
                    }
                }
            }
        }
        if self.window.is_empty() {
            None
        } else {
            Some(barrier)
        }
    }

    /// Advances every replica in `self.window` through all of its
    /// iterations strictly before `barrier`, then re-keys the heap and
    /// settles per-replica bookkeeping in replica-index order.
    fn run_window(&mut self, barrier: Option<TimePs>) {
        let window = std::mem::take(&mut self.window);
        let workers = if self.shards > 1 {
            host_parallelism().min(self.shards).min(window.len())
        } else {
            1
        };
        {
            // Disjoint `&mut` access to exactly the windowed simulators:
            // `window` is ascending, so chained `split_at_mut` carves
            // them out in O(window) without walking the whole fleet.
            let mut picked: Vec<&mut ServingSimulator> = Vec::with_capacity(window.len());
            let mut rest: &mut [ServingSimulator] = &mut self.sims;
            let mut base = 0usize;
            for &i in &window {
                let (member, tail) = std::mem::take(&mut rest)[i - base..].split_at_mut(1);
                picked.push(&mut member[0]);
                rest = tail;
                base = i + 1;
            }
            if workers <= 1 {
                for sim in picked {
                    step_to_barrier(sim, barrier);
                }
            } else {
                // Round-robin partition: deterministic, and irrelevant
                // to outcomes — windowed replicas share no state.
                let mut shards: Vec<Vec<&mut ServingSimulator>> =
                    (0..workers).map(|_| Vec::new()).collect();
                for (j, sim) in picked.into_iter().enumerate() {
                    shards[j % workers].push(sim);
                }
                std::thread::scope(|scope| {
                    for shard in shards {
                        scope.spawn(move || {
                            for sim in shard {
                                step_to_barrier(sim, barrier);
                            }
                        });
                    }
                });
            }
        }
        for &idx in &window {
            #[cfg(feature = "sanitize")]
            {
                let now = self.sims[idx].clock_ps();
                debug_assert!(
                    now >= self.sanitize_clocks[idx],
                    "sanitize: replica {idx} virtual clock ran backwards across a window \
                     ({} -> {now} ps)",
                    self.sanitize_clocks[idx]
                );
                self.sanitize_clocks[idx] = now;
            }
            debug_assert!(
                self.slots[idx].role != ReplicaRole::Prefill,
                "a prefill replica stepped inside a window"
            );
            if self.shared.is_some() {
                self.dirty.push(idx);
            }
            self.try_apply_pending_role(idx);
            self.refresh(idx);
        }
        self.window = window;
    }

    /// Processes the earliest virtual-time event: fires due control
    /// ticks, commits any transfer whose KV-ready order is settled,
    /// advances the fabric when its next flow event is the earliest
    /// thing in the fleet, then admits one arrival or runs one replica
    /// iteration (queueing any prefills it finishes). Returns `false`
    /// when everything has drained.
    fn step_serial(&mut self) -> bool {
        if self.tick_ps.is_some() {
            if let Some(horizon) = self.next_ready_ps() {
                self.fire_due_ticks(horizon);
            }
        }
        // Faults fire before any same-instant arrival, iteration, or
        // fabric event: a replica that crashes at `t` never serves the
        // batch formed at `t`. Transfers that became ready strictly
        // before the fault still commit first (the commit horizon is
        // capped at `fault - 1`).
        if let Some(ft) = self.next_fault_ps() {
            let beats_replica = self.heap.min_live().is_none_or(|(rt, _)| ft <= rt);
            let beats_arrival = self.arrivals.front().is_none_or(|r| ft <= r.arrival_ps);
            let beats_fabric = self.fabric.next_event_ps().is_none_or(|t| ft <= t);
            if beats_replica && beats_arrival && beats_fabric {
                self.commit_ready_transfers();
                // A commit can leave earlier fabric deliveries overdue;
                // they precede the fault (the capped horizon keeps their
                // start times pre-fault).
                if self.fabric.next_event_ps().is_some_and(|t| t <= self.fabric.now_ps()) {
                    self.deliver_fabric_events(self.fabric.now_ps());
                    return true;
                }
                self.apply_due_faults(ft);
                return true;
            }
        }
        self.commit_ready_transfers();
        // A commit can jump the fabric clock forward (its ready time is
        // only bounded by the *new*-transfer horizon, not by in-flight
        // flows), leaving earlier deliveries overdue — drain those
        // immediately, with their true completion times intact.
        if self.fabric.next_event_ps().is_some_and(|t| t <= self.fabric.now_ps()) {
            self.deliver_fabric_events(self.fabric.now_ps());
            return true;
        }
        let next_ready = self.heap.peek();
        let next_arrival = self.arrivals.front().map(|r| r.arrival_ps);
        // Fair-fabric events (a flow finishing serialization or a
        // delivery) fire before any same-instant arrival or iteration,
        // so a delivered request is visible to its decode replica's
        // batch formed at exactly that time — matching the FIFO
        // discipline, where the arrival time was booked at commit.
        if let Some(t) = self.fabric.next_event_ps() {
            let beats_replica = next_ready.is_none_or(|(rt, _)| t <= rt);
            let beats_arrival = next_arrival.is_none_or(|at| t <= at);
            if beats_replica && beats_arrival {
                self.deliver_fabric_events(t);
                return true;
            }
        }
        // Arrivals admit first on ties so the control plane always sees
        // the request before any replica simulates past its arrival time.
        let admit_arrival = match (next_arrival, next_ready) {
            (Some(at), Some((rt, _))) => at <= rt,
            (Some(_), None) => true,
            (None, _) => false,
        };
        match (admit_arrival, next_ready) {
            (true, _) => {
                let request = self.arrivals.pop_front().expect("checked above");
                // Offer only the in-service replicas whose role takes
                // fresh work and whose warm-up has elapsed.
                let candidates: Vec<ReplicaSnapshot> = (0..self.sims.len())
                    .filter(|&i| {
                        let slot = &self.slots[i];
                        slot.role.accepts_arrivals()
                            && slot.in_service()
                            && slot.active_from_ps <= request.arrival_ps
                            && self.chaos.as_ref().is_none_or(|c| c.down[i].is_none())
                    })
                    .map(|i| self.snapshot(i))
                    .collect();
                if candidates.is_empty() {
                    assert!(
                        self.chaos.is_some(),
                        "no replica accepts arrivals for request {} — the control plane \
                         drained or retired every admission candidate",
                        request.id
                    );
                    self.defer_or_abandon_admission(request);
                    return true;
                }
                let chosen = self.control.admit(&request, &candidates);
                assert!(
                    candidates.iter().any(|s| s.index == chosen),
                    "control plane admitted to replica {chosen}, not one of the {} offered",
                    candidates.len()
                );
                self.assignments.push((request.id, chosen));
                self.slots[chosen].routed += 1;
                self.telemetry.emit(|| SimEvent::Arrival {
                    t_ps: request.arrival_ps,
                    id: request.id,
                    input_len: request.input_len,
                    output_len: request.output_len,
                });
                self.telemetry.emit(|| SimEvent::Admitted {
                    t_ps: request.arrival_ps,
                    id: request.id,
                    replica: chosen,
                });
                self.sims[chosen].push_request(request);
                self.refresh(chosen);
                true
            }
            (false, Some((_, idx))) => {
                self.heap.pop();
                if self.shared.is_some() {
                    self.dirty.push(idx);
                }
                let before = self.sims[idx].scheduler().completions().len();
                self.sims[idx].step();
                let after = self.sims[idx].scheduler().completions().len();
                #[cfg(feature = "sanitize")]
                {
                    let now = self.sims[idx].clock_ps();
                    debug_assert!(
                        now >= self.sanitize_clocks[idx],
                        "sanitize: replica {idx} virtual clock ran backwards \
                         ({} -> {now} ps)",
                        self.sanitize_clocks[idx]
                    );
                    self.sanitize_clocks[idx] = now;
                }
                if self.slots[idx].role == ReplicaRole::Prefill {
                    self.hand_off_finished_prefills(idx);
                }
                self.try_apply_pending_role(idx);
                self.refresh(idx);
                if after > before && self.control.reactive() {
                    let now = self.sims[idx].clock_ps();
                    let stats = self.stats(now);
                    let commands = self.control.on_completion(&stats);
                    for command in commands {
                        self.apply(command, now);
                    }
                }
                true
            }
            (false, None) => {
                // With no arrivals and every replica idle the horizon is
                // unbounded, so the commit pass above drained the queue —
                // and the fabric branch above drained any in-flight flow.
                debug_assert!(self.pending.is_empty(), "drained with transfers still pending");
                debug_assert_eq!(
                    self.fabric.in_flight(),
                    0,
                    "drained with flows still in the fabric"
                );
                false
            }
        }
    }

    /// Runs the fleet to completion and assembles the engine-level
    /// report.
    pub fn run(mut self) -> FleetReport {
        while self.step() {}
        self.into_report()
    }

    /// Finalizes into the engine-level report (a partially drained fleet
    /// yields a partial report). Shape-specific drivers use
    /// [`into_parts`](Self::into_parts) instead and assemble their own
    /// reports.
    pub fn into_report(self) -> FleetReport {
        FleetReport::from_parts(self.into_parts())
    }

    /// Dismantles the engine into the raw per-replica reports, transfer
    /// records, and bookkeeping a shape-specific driver needs to build
    /// its own report (`ClusterReport`, `DisaggReport`, ...).
    pub fn into_parts(mut self) -> FleetParts {
        let clock = self.clock_ps();
        let resilience = self.chaos.take().map(|mut chaos| {
            // A fault window still open at the end of the run counts as
            // downtime up to the final clock.
            for i in 0..chaos.down_since.len() {
                if let Some(since) = chaos.down_since[i].take() {
                    chaos.downtime[i] += clock.max(since) - since;
                    chaos.fault_windows.push((since, clock.max(since)));
                }
            }
            let mut lost_prefills: Vec<(u64, TimePs)> =
                chaos.lost_prefill.into_iter().collect();
            lost_prefills.sort_unstable();
            let mut original_arrivals: Vec<(u64, TimePs)> =
                chaos.original_arrival.into_iter().collect();
            original_arrivals.sort_unstable();
            chaos.fault_windows.sort_unstable();
            ResilienceStats {
                faults_injected: chaos.faults_injected,
                requests_retried: chaos.retried,
                requests_abandoned: chaos.abandoned.len(),
                abandoned: chaos.abandoned,
                kv_bytes_lost: chaos.kv_bytes_lost,
                lost_prefills,
                original_arrivals,
                downtime: chaos.downtime,
                fault_windows: chaos.fault_windows,
            }
        });
        let control = self.control.name();
        let replicas = self
            .sims
            .into_iter()
            .zip(self.slots)
            .map(|(sim, slot)| FleetReplica {
                report: sim.into_report(),
                role: slot.role,
                home_role: slot.home_role,
                routed: slot.routed,
                paired: slot.paired,
                retired: slot.retiring,
            })
            .collect();
        FleetParts {
            control,
            replicas,
            assignments: self.assignments,
            transfers: self.transfers,
            requests: self.requests,
            fabric: self.fabric.stats(),
            resilience,
        }
    }
}

/// The host's thread budget, probed once. `available_parallelism`
/// reads cgroup limits from the filesystem on Linux, far too slow to
/// call per window.
fn host_parallelism() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    })
}

/// Advances one replica through every iteration strictly before
/// `barrier` (all of them when the barrier is `None`). This is the
/// worker-thread body of a sharded window: it touches nothing but the
/// one simulator, and the barrier guarantees no cross-replica
/// interaction falls inside the window.
fn step_to_barrier(sim: &mut ServingSimulator, barrier: Option<TimePs>) {
    while sim.next_ready_ps().is_some_and(|t| barrier.is_none_or(|b| t < b)) {
        #[cfg(feature = "sanitize")]
        let before = sim.clock_ps();
        if !sim.step() {
            break;
        }
        #[cfg(feature = "sanitize")]
        debug_assert!(
            sim.clock_ps() >= before,
            "sanitize: replica virtual clock ran backwards inside a window \
             ({before} -> {} ps)",
            sim.clock_ps()
        );
    }
}

/// The dismantled engine: everything a report assembler needs.
#[derive(Debug)]
pub struct FleetParts {
    /// The control plane's name.
    pub control: String,
    /// Per-replica outcome, by fleet index.
    pub replicas: Vec<FleetReplica>,
    /// `(request id, replica)` admissions in routing order.
    pub assignments: Vec<(u64, usize)>,
    /// Committed KV transfers by request id.
    pub transfers: BTreeMap<u64, FleetTransfer>,
    /// Original requests by id (empty for fleets without links).
    pub requests: BTreeMap<u64, Request>,
    /// Fabric usage, when the fleet ran over a fair-sharing fabric
    /// (`None` keeps FIFO-configured reports byte-identical to the
    /// pre-fabric engine).
    pub fabric: Option<FabricStats>,
    /// Fault-injection outcome, when a chaos schedule was armed (`None`
    /// keeps chaos-free reports byte-identical to the pre-chaos engine).
    pub resilience: Option<ResilienceStats>,
}

impl Simulate for FleetEngine {
    type Report = FleetReport;

    fn push_request(&mut self, request: Request) {
        FleetEngine::push_request(self, request);
    }

    fn next_ready_ps(&self) -> Option<TimePs> {
        FleetEngine::next_ready_ps(self)
    }

    fn clock_ps(&self) -> TimePs {
        FleetEngine::clock_ps(self)
    }

    fn completed_requests(&self) -> usize {
        FleetEngine::completed_requests(self)
    }

    fn step(&mut self) -> bool {
        FleetEngine::step(self)
    }

    fn finalize(self) -> FleetReport {
        self.into_report()
    }
}
