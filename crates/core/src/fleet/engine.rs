//! The fleet engine: one virtual-time event loop for every multi-replica
//! serving shape.
//!
//! A [`FleetEngine`] owns a vector of replica slots (each a
//! [`ServingSimulator`] plus a [`ReplicaRole`] and its own
//! [`SimConfig`]), a set of inter-replica KV-transfer [`LinkSpec`]s, and
//! a [`ControlPlane`]. It advances whichever event is earliest in
//! virtual time:
//!
//! * **request arrival** — the control plane inspects load snapshots of
//!   the replicas whose role accepts arrivals and admits the request
//!   ([`ControlPlane::admit`]);
//! * **replica iteration** — the replica with the smallest
//!   [`next_ready_ps`](ServingSimulator::next_ready_ps) runs one
//!   iteration; a prefill-role replica's fresh completions queue for KV
//!   handoff;
//! * **KV transfer** — finished prefills are committed to the links in
//!   KV-ready order (FIFO by readiness, never by event-discovery order),
//!   paired to a decode replica ([`ControlPlane::pair`]), and injected
//!   there at transfer completion;
//! * **control tick** — on a configurable virtual-time period the
//!   control plane sees a [`FleetStats`] view and may flex roles or
//!   scale the fleet ([`FleetCommand`]), always under drain semantics.
//!
//! `ClusterSimulator` and `DisaggSimulator` are thin compositions over
//! this engine (a router is an admission-side control-plane decision;
//! disaggregation is role-filtered admission plus KV-transfer links);
//! flexing and autoscaling are just different control planes.

use std::collections::{HashMap, VecDeque};

use llmss_net::LinkSpec;
use llmss_sched::{Request, TimePs};

use crate::fabric::{Fabric, FabricCommit, FabricStats};
use crate::telemetry::{SimEvent, Telemetry};
use crate::{ConfigError, ServingSimulator, SimConfig, Simulate};

use super::control::{ControlPlane, FleetCommand, FleetStats, ReplicaStatus};
use super::heap::ReadyHeap;
use super::report::{FleetReplica, FleetReport};
use super::route::{ReplicaRole, ReplicaSnapshot};

/// One committed KV handoff, in fleet-global replica indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetTransfer {
    /// Prefill-side replica (global index).
    pub from: usize,
    /// Decode-side replica (global index).
    pub to: usize,
    /// Link that carried the transfer (FIFO: the booked link; fair: the
    /// flow's bottleneck link, provisional until delivery).
    pub link: usize,
    /// When the KV cache was ready to ship (end of prefill).
    pub ready_ps: TimePs,
    /// When the transfer won its link (fair: entered the fabric).
    pub start_ps: TimePs,
    /// When the KV cache landed on the decode replica. A fair-mode
    /// transfer still in flight holds [`TimePs::MAX`] until delivery.
    pub done_ps: TimePs,
    /// Uncontended transfer time (no queueing, no sharing) — the
    /// denominator of the contention metric.
    pub nominal_ps: TimePs,
    /// Bytes shipped (prompt tokens × KV bytes per token).
    pub bytes: u64,
}

impl FleetTransfer {
    /// The contention slowdown: end-to-end transfer time (queueing and
    /// bandwidth sharing included) over the uncontended nominal. 1.0
    /// means the wire was all ours; `None` until delivered or for
    /// zero-nominal transfers.
    pub fn contention(&self) -> Option<f64> {
        if self.done_ps == TimePs::MAX || self.nominal_ps == 0 {
            return None;
        }
        Some((self.done_ps - self.ready_ps) as f64 / self.nominal_ps as f64)
    }
}

/// Per-replica engine metadata: everything about a slot that is not the
/// simulator itself (stored struct-of-arrays so `sims` stays a plain
/// slice for inspection APIs).
#[derive(Debug)]
pub struct ReplicaSlot {
    /// The replica's own configuration (autoscale clones the template's).
    pub config: SimConfig,
    /// Current serving role.
    pub role: ReplicaRole,
    /// The role the replica was created with (flexing returns here).
    pub home_role: ReplicaRole,
    /// A role switch waiting on drain.
    pub pending_role: Option<ReplicaRole>,
    /// Virtual time from which the replica admits work (warm-up).
    pub active_from_ps: TimePs,
    /// Draining toward deactivation (autoscale down).
    pub retiring: bool,
    /// Fresh arrivals routed here.
    pub routed: usize,
    /// KV handoffs paired to this replica.
    pub paired: usize,
    /// Completions already drained for KV handoff (index into the
    /// scheduler's completion list).
    handed_off: usize,
    /// `(busy_ps, clock_ps)` at the previous control tick — the
    /// utilization-window baseline.
    window_base: (TimePs, TimePs),
}

impl ReplicaSlot {
    fn new(config: SimConfig) -> Self {
        let role = ReplicaRole::from(config.mode);
        Self {
            config,
            role,
            home_role: role,
            pending_role: None,
            active_from_ps: 0,
            retiring: false,
            routed: 0,
            paired: 0,
            handed_off: 0,
            window_base: (0, 0),
        }
    }

    /// Whether the slot currently takes part in serving.
    pub fn in_service(&self) -> bool {
        !self.retiring && self.pending_role.is_none()
    }
}

/// A heterogeneous fleet of serving replicas behind a control plane,
/// advanced in one virtual-time event loop.
#[derive(Debug)]
pub struct FleetEngine {
    sims: Vec<ServingSimulator>,
    slots: Vec<ReplicaSlot>,
    fabric: Fabric,
    control: Box<dyn ControlPlane>,
    /// Global arrival stream, earliest first (online injection source).
    arrivals: VecDeque<Request>,
    /// Original requests by id (handoffs need input/output lengths);
    /// only maintained when the fleet has links.
    requests: HashMap<u64, Request>,
    /// Finished prefills whose transfers haven't committed to the
    /// fabric yet: `(KV-ready time, request id, prefill replica)`,
    /// earliest first. The tuple order is the commit order contract:
    /// transfers commit by KV-ready time, and *equal* ready times
    /// commit in request-id order — explicitly, by the tuple's second
    /// field, never by heap insertion or event-discovery order.
    pending: std::collections::BinaryHeap<std::cmp::Reverse<(TimePs, u64, usize)>>,
    /// Committed transfers by request id.
    transfers: HashMap<u64, FleetTransfer>,
    /// `(request id, replica index)` in admission order.
    assignments: Vec<(u64, usize)>,
    /// Replica ready-times with lazy invalidation.
    heap: ReadyHeap,
    /// KV bytes shipped per prompt token (0 without links).
    kv_bytes_per_token: u64,
    /// The control tick period, if the plane wants ticks.
    tick_ps: Option<TimePs>,
    /// The next tick boundary.
    next_tick_ps: TimePs,
    /// Prefill completions handed off so far (end-to-end completion
    /// accounting subtracts these).
    handoffs_total: usize,
    /// Fleet-level event sink handle (off by default; replicas carry
    /// their own per-index handles).
    telemetry: Telemetry,
}

impl FleetEngine {
    /// Builds a fleet from per-replica configurations (roles derive from
    /// each configuration's scheduler mode), KV-transfer links, a control
    /// plane, and a global request trace.
    ///
    /// The trace is *not* pre-partitioned: requests are injected online,
    /// at their arrival times, into the replica the control plane admits
    /// them to.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when any replica configuration cannot be
    /// realized (invalid parallelism, model does not fit, ...).
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty; if a prefill-role replica exists
    /// without any link to ship its KV caches over; or if replicas serve
    /// different models while links exist (the KV bytes-per-token of the
    /// shipped caches must agree).
    pub fn new(
        configs: Vec<SimConfig>,
        links: Vec<LinkSpec>,
        control: Box<dyn ControlPlane>,
        trace: Vec<Request>,
    ) -> Result<Self, ConfigError> {
        Self::with_fabric(configs, Fabric::fifo(links), control, trace)
    }

    /// Builds a fleet whose KV transfers cross an explicit [`Fabric`]
    /// (topology + sharing discipline) instead of the default FIFO
    /// links. [`new`](Self::new) is exactly
    /// `with_fabric(configs, Fabric::fifo(links), ...)`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when any replica configuration cannot be
    /// realized.
    ///
    /// # Panics
    ///
    /// As [`new`](Self::new); additionally panics when a routed fabric
    /// covers fewer endpoints than the fleet has replicas.
    pub fn with_fabric(
        configs: Vec<SimConfig>,
        fabric: Fabric,
        control: Box<dyn ControlPlane>,
        mut trace: Vec<Request>,
    ) -> Result<Self, ConfigError> {
        assert!(!configs.is_empty(), "a fleet needs at least one replica");
        let has_prefill =
            configs.iter().any(|c| ReplicaRole::from(c.mode) == ReplicaRole::Prefill);
        assert!(
            !has_prefill || fabric.has_links(),
            "prefill-role replicas need a KV-transfer link to ship caches over"
        );
        if let Some(endpoints) = fabric.endpoints() {
            assert!(
                endpoints >= configs.len(),
                "the fabric routes {endpoints} endpoints but the fleet has {} replicas",
                configs.len()
            );
        }
        let kv_bytes_per_token = if !fabric.has_links() {
            0
        } else {
            let per_token = configs[0].model.kv_bytes_per_token();
            assert!(
                configs.iter().all(|c| c.model.name == configs[0].model.name),
                "all replicas of a linked fleet must serve the same model"
            );
            per_token
        };

        let mut sims = Vec::with_capacity(configs.len());
        let mut slots = Vec::with_capacity(configs.len());
        for config in configs {
            sims.push(ServingSimulator::new(config.clone(), Vec::new())?);
            slots.push(ReplicaSlot::new(config));
        }

        trace.sort_by_key(|r| (r.arrival_ps, r.id));
        let requests = if !fabric.has_links() {
            HashMap::new()
        } else {
            trace.iter().map(|r| (r.id, *r)).collect()
        };
        let tick_ps = control.tick_ps();
        assert!(tick_ps != Some(0), "a control tick period must be positive");
        Ok(Self {
            heap: ReadyHeap::new(sims.len()),
            fabric,
            control,
            arrivals: trace.into(),
            requests,
            pending: std::collections::BinaryHeap::new(),
            transfers: HashMap::new(),
            assignments: Vec::new(),
            kv_bytes_per_token,
            next_tick_ps: tick_ps.unwrap_or(0),
            tick_ps,
            handoffs_total: 0,
            telemetry: Telemetry::off(),
            sims,
            slots,
        })
    }

    /// Attaches an event sink to the whole fleet: every replica gets a
    /// handle stamped with its index, the fabric reports flow events,
    /// and the engine itself emits arrival/admission, transfer, and
    /// control-plane events. Emits one `ReplicaActivated` per existing
    /// replica so consumers know the starting fleet.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        for (i, sim) in self.sims.iter_mut().enumerate() {
            sim.set_telemetry(telemetry.for_replica(i));
        }
        self.fabric.set_telemetry(telemetry.clone());
        for (i, slot) in self.slots.iter().enumerate() {
            telemetry.emit(|| SimEvent::ReplicaActivated {
                t_ps: 0,
                replica: i,
                admit_from_ps: slot.active_from_ps,
            });
        }
        self.telemetry = telemetry;
    }

    /// The replica simulators, by fleet index (for inspection between
    /// steps).
    pub fn sims(&self) -> &[ServingSimulator] {
        &self.sims
    }

    /// The replica slots (role, lifecycle, routing counters), by fleet
    /// index.
    pub fn slots(&self) -> &[ReplicaSlot] {
        &self.slots
    }

    /// The control plane's name.
    pub fn control_name(&self) -> String {
        self.control.name()
    }

    /// `(request id, replica)` admissions made so far, in routing order.
    pub fn assignments(&self) -> &[(u64, usize)] {
        &self.assignments
    }

    /// Committed KV transfers by request id.
    pub fn transfers(&self) -> &HashMap<u64, FleetTransfer> {
        &self.transfers
    }

    /// KV bytes shipped per prompt token (0 for fleets without links).
    pub fn kv_bytes_per_token(&self) -> u64 {
        self.kv_bytes_per_token
    }

    /// Replicas currently part of the serving fleet (not retiring).
    pub fn active_replicas(&self) -> usize {
        self.slots.iter().filter(|s| !s.retiring).count()
    }

    /// Injects one request online: it queues at the front end and is
    /// admitted when the fleet's virtual time reaches its arrival
    /// (immediately, if time is already past it).
    pub fn push_request(&mut self, request: Request) {
        if self.fabric.has_links() {
            self.requests.insert(request.id, request);
        }
        let pos = self
            .arrivals
            .iter()
            .position(|r| (r.arrival_ps, r.id) > (request.arrival_ps, request.id))
            .unwrap_or(self.arrivals.len());
        self.arrivals.insert(pos, request);
    }

    /// The earliest virtual time the next [`step`](Self::step) would act
    /// (an arrival to admit, a replica iteration, or a pending KV
    /// transfer), or `None` when the fleet has fully drained.
    pub fn next_ready_ps(&self) -> Option<TimePs> {
        let replica_ready = self.heap.min_live().map(|(t, _)| t);
        let arrival = self.arrivals.front().map(|r| r.arrival_ps);
        let transfer = self.pending.peek().map(|&std::cmp::Reverse((t, _, _))| t);
        let fabric = self.fabric.next_event_ps();
        [replica_ready, arrival, transfer, fabric].into_iter().flatten().min()
    }

    /// The fleet's virtual clock: the furthest replica clock.
    pub fn clock_ps(&self) -> TimePs {
        self.sims.iter().map(ServingSimulator::clock_ps).max().unwrap_or(0)
    }

    /// Requests that finished their full lifecycle (prefill-side handoff
    /// completions are bookkeeping, not served requests).
    pub fn completed_requests(&self) -> usize {
        let total: usize = self.sims.iter().map(|s| s.scheduler().completions().len()).sum();
        total - self.handoffs_total
    }

    fn snapshot(&self, index: usize) -> ReplicaSnapshot {
        ReplicaSnapshot::capture(&self.sims[index], index, self.slots[index].role)
    }

    /// Re-keys `replica` in the heap after a mutation.
    fn refresh(&mut self, replica: usize) {
        self.heap.refresh(replica, self.sims[replica].next_ready_ps());
    }

    /// The fleet-wide control view at virtual time `now`.
    fn stats(&self, now: TimePs) -> FleetStats {
        let replicas = (0..self.sims.len())
            .map(|i| {
                let slot = &self.slots[i];
                let busy = self.sims[i].busy_ps();
                let (base_busy, base_clock) = slot.window_base;
                let window = now.saturating_sub(base_clock);
                // A drained retired replica executes nothing: clamp to 0
                // instead of replaying its last live window forever.
                let drained = slot.retiring && self.sims[i].scheduler().outstanding() == 0;
                let util_window = if window == 0 || drained {
                    0.0
                } else {
                    (busy.saturating_sub(base_busy)) as f64 / window as f64
                };
                ReplicaStatus {
                    snapshot: self.snapshot(i),
                    home_role: slot.home_role,
                    pending_role: slot.pending_role,
                    active_from_ps: slot.active_from_ps,
                    retiring: slot.retiring,
                    busy_ps: busy,
                    util_window,
                }
            })
            .collect();
        // Only arrivals that have actually reached the front end by
        // `now` are backlog; the rest of the deque is the future of the
        // trace, which a control plane (like a real front-end) must
        // never see. The deque is arrival-sorted, so the backlog is a
        // prefix.
        let queued_arrivals = self.arrivals.iter().take_while(|r| r.arrival_ps <= now).count();
        FleetStats {
            clock_ps: now,
            replicas,
            queued_arrivals,
            pending_transfers: self.pending.len(),
        }
    }

    /// Applies one control command under drain semantics.
    fn apply(&mut self, command: FleetCommand, now: TimePs) {
        self.telemetry
            .emit(|| SimEvent::Command { t_ps: now, command: format!("{command:?}") });
        match command {
            FleetCommand::SetRole { replica, role } => {
                assert!(replica < self.sims.len(), "SetRole names replica {replica}");
                assert!(
                    role != ReplicaRole::Prefill || self.fabric.has_links(),
                    "cannot flex to the prefill role without a KV-transfer link"
                );
                let slot = &mut self.slots[replica];
                if slot.role == role {
                    slot.pending_role = None;
                    return;
                }
                slot.pending_role = Some(role);
                self.try_apply_pending_role(replica);
            }
            FleetCommand::ScaleUp { template, warmup_ps } => {
                assert!(template < self.sims.len(), "ScaleUp names template {template}");
                let active_from = now.saturating_add(warmup_ps);
                // Reactivate a drained retired replica before growing the
                // fleet vector: cheaper, and keeps indices dense.
                if let Some(idx) = (0..self.slots.len()).find(|&i| {
                    self.slots[i].retiring
                        && self.slots[i].pending_role.is_none()
                        && self.sims[i].scheduler().outstanding() == 0
                }) {
                    self.slots[idx].retiring = false;
                    self.slots[idx].active_from_ps = active_from;
                    self.telemetry.emit(|| SimEvent::ReplicaActivated {
                        t_ps: now,
                        replica: idx,
                        admit_from_ps: active_from,
                    });
                    return;
                }
                let config = self.slots[template].config.clone();
                let mut sim = ServingSimulator::new(config.clone(), Vec::new())
                    .expect("the template configuration was already realized once");
                let index = self.sims.len();
                sim.set_telemetry(self.telemetry.for_replica(index));
                self.sims.push(sim);
                let mut slot = ReplicaSlot::new(config);
                slot.active_from_ps = active_from;
                self.slots.push(slot);
                self.heap.grow();
                self.telemetry.emit(|| SimEvent::ReplicaActivated {
                    t_ps: now,
                    replica: index,
                    admit_from_ps: active_from,
                });
            }
            FleetCommand::ScaleDown { replica } => {
                assert!(replica < self.sims.len(), "ScaleDown names replica {replica}");
                if !self.slots[replica].retiring {
                    self.telemetry.emit(|| SimEvent::ReplicaRetired { t_ps: now, replica });
                }
                self.slots[replica].retiring = true;
            }
        }
    }

    /// Completes a deferred role switch once the replica has drained.
    fn try_apply_pending_role(&mut self, replica: usize) {
        let Some(role) = self.slots[replica].pending_role else { return };
        if self.sims[replica].scheduler().outstanding() > 0 {
            return;
        }
        self.sims[replica].set_mode(role.scheduler_mode());
        self.telemetry.emit(|| SimEvent::RoleApplied {
            t_ps: self.sims[replica].clock_ps(),
            replica,
            role: role.to_string(),
        });
        let slot = &mut self.slots[replica];
        slot.role = role;
        slot.pending_role = None;
        // Completions produced under the old role are not handoffs of the
        // new one.
        slot.handed_off = self.sims[replica].scheduler().completions().len();
    }

    /// Fires every control tick due before the next event at `horizon`,
    /// applying the commands each produces.
    fn fire_due_ticks(&mut self, horizon: TimePs) {
        let Some(tick) = self.tick_ps else { return };
        while self.next_tick_ps <= horizon {
            let now = self.next_tick_ps;
            let stats = self.stats(now);
            self.telemetry.emit(|| SimEvent::Tick {
                t_ps: now,
                live_replicas: self.slots.iter().filter(|s| !s.retiring).count(),
                queued_arrivals: stats.queued_arrivals,
                pending_transfers: stats.pending_transfers,
            });
            let commands = self.control.on_tick(&stats);
            for command in commands {
                self.apply(command, now);
            }
            // Reset every utilization window at the tick boundary.
            for i in 0..self.sims.len() {
                self.slots[i].window_base = (self.sims[i].busy_ps(), now);
            }
            self.next_tick_ps += tick;
        }
    }

    /// Queues any prefills replica `index` just finished for transfer.
    /// Links are *not* booked here: events are discovered in
    /// iteration-start order, so an earlier-ready transfer from another
    /// replica may still surface — booking waits until it can happen in
    /// KV-ready order ([`commit_ready_transfers`](Self::step)).
    fn hand_off_finished_prefills(&mut self, index: usize) {
        let completions = self.sims[index].scheduler().completions();
        let first_fresh = self.slots[index].handed_off;
        self.slots[index].handed_off = completions.len();
        for done in &completions[first_fresh..] {
            self.pending.push(std::cmp::Reverse((done.finish_ps, done.id, index)));
            self.handoffs_total += 1;
            self.telemetry.emit(|| SimEvent::TransferQueued {
                t_ps: done.finish_ps,
                id: done.id,
                from: index,
            });
        }
    }

    /// The earliest virtual time at which a *new* transfer could still
    /// become ready: any future prefill completion lands strictly after
    /// its replica's next event, and any unadmitted arrival strictly
    /// after its arrival time.
    fn transfer_horizon(&self) -> TimePs {
        let mut horizon = self.arrivals.front().map_or(TimePs::MAX, |r| r.arrival_ps);
        for (i, sim) in self.sims.iter().enumerate() {
            if self.slots[i].role != ReplicaRole::Prefill {
                continue;
            }
            if let Some(t) = sim.next_ready_ps() {
                horizon = horizon.min(t);
            }
        }
        horizon
    }

    /// Commits pending transfers to the fabric in KV-ready order (ties
    /// on the ready time commit in request-id order — the `pending`
    /// tuple contract), pairs each to a decode replica through the
    /// control plane, and hands the bytes to the fabric. Under the FIFO
    /// discipline the booking resolves immediately and the request is
    /// injected with its transfer-completion arrival; under fair
    /// sharing the transfer stays in flight and the injection waits for
    /// [`deliver_fabric_events`](Self::step). The decode pool keeps
    /// executing underneath — only the shipped request waits on the
    /// wire.
    fn commit_ready_transfers(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let horizon = self.transfer_horizon();
        while let Some(&std::cmp::Reverse((ready_ps, id, from))) = self.pending.peek() {
            if ready_ps > horizon {
                // A not-yet-simulated prefill or arrival could still beat
                // this transfer onto the fabric; commit later.
                return;
            }
            self.pending.pop();
            let request = self.requests[&id];
            let bytes = request.input_len as u64 * self.kv_bytes_per_token;

            let candidates: Vec<ReplicaSnapshot> = (0..self.sims.len())
                .filter(|&i| {
                    let slot = &self.slots[i];
                    slot.role == ReplicaRole::Decode
                        && slot.in_service()
                        && slot.active_from_ps <= ready_ps
                })
                .map(|i| self.snapshot(i))
                .collect();
            assert!(
                !candidates.is_empty(),
                "no decode replica available for the KV handoff of request {id}"
            );
            let chosen = self.control.pair(&request, &candidates);
            assert!(
                candidates.iter().any(|s| s.index == chosen),
                "control plane paired replica {chosen}, not one of the {} offered",
                candidates.len()
            );
            self.slots[chosen].paired += 1;
            let transfer = match self.fabric.commit(id, from, chosen, bytes, ready_ps) {
                FabricCommit::Booked { link, start_ps, done_ps, nominal_ps } => {
                    // Fully booked: the request arrives at the decode
                    // replica the moment its transfer completes.
                    self.sims[chosen].push_request(Request::new(
                        id,
                        request.input_len,
                        request.output_len,
                        done_ps,
                    ));
                    self.refresh(chosen);
                    self.telemetry.emit(|| SimEvent::TransferEnd {
                        t_ps: done_ps,
                        id,
                        from,
                        to: chosen,
                    });
                    FleetTransfer {
                        from,
                        to: chosen,
                        link,
                        ready_ps,
                        start_ps,
                        done_ps,
                        nominal_ps,
                        bytes,
                    }
                }
                FabricCommit::InFlight { start_ps, nominal_ps } => FleetTransfer {
                    from,
                    to: chosen,
                    // Provisional until the flow delivers and reports
                    // its bottleneck link.
                    link: 0,
                    ready_ps,
                    start_ps,
                    done_ps: TimePs::MAX,
                    nominal_ps,
                    bytes,
                },
            };
            self.telemetry.emit(|| SimEvent::TransferStart {
                t_ps: transfer.start_ps,
                id,
                from,
                to: chosen,
                bytes,
                nominal_ps: transfer.nominal_ps,
            });
            self.transfers.insert(id, transfer);
        }
    }

    /// Advances the fair fabric to `t` and injects every delivered KV
    /// cache into its paired decode replica, finalizing the transfer
    /// record (delivery time + bottleneck link).
    fn deliver_fabric_events(&mut self, t: TimePs) {
        for done in self.fabric.advance(t) {
            let transfer = self
                .transfers
                .get_mut(&done.id)
                .expect("every in-flight flow has a committed transfer record");
            transfer.done_ps = done.done_ps;
            transfer.link = done.bottleneck;
            let to = transfer.to;
            let from = transfer.from;
            self.telemetry.emit(|| SimEvent::TransferEnd {
                t_ps: done.done_ps,
                id: done.id,
                from,
                to,
            });
            let request = self.requests[&done.id];
            self.sims[to].push_request(Request::new(
                done.id,
                request.input_len,
                request.output_len,
                done.done_ps,
            ));
            self.refresh(to);
        }
    }

    /// Processes the earliest virtual-time event: fires due control
    /// ticks, commits any transfer whose KV-ready order is settled,
    /// advances the fabric when its next flow event is the earliest
    /// thing in the fleet, then admits one arrival or runs one replica
    /// iteration (queueing any prefills it finishes). Returns `false`
    /// when everything has drained.
    pub fn step(&mut self) -> bool {
        if self.tick_ps.is_some() {
            if let Some(horizon) = self.next_ready_ps() {
                self.fire_due_ticks(horizon);
            }
        }
        self.commit_ready_transfers();
        // A commit can jump the fabric clock forward (its ready time is
        // only bounded by the *new*-transfer horizon, not by in-flight
        // flows), leaving earlier deliveries overdue — drain those
        // immediately, with their true completion times intact.
        if self.fabric.next_event_ps().is_some_and(|t| t <= self.fabric.now_ps()) {
            self.deliver_fabric_events(self.fabric.now_ps());
            return true;
        }
        let next_ready = self.heap.peek();
        let next_arrival = self.arrivals.front().map(|r| r.arrival_ps);
        // Fair-fabric events (a flow finishing serialization or a
        // delivery) fire before any same-instant arrival or iteration,
        // so a delivered request is visible to its decode replica's
        // batch formed at exactly that time — matching the FIFO
        // discipline, where the arrival time was booked at commit.
        if let Some(t) = self.fabric.next_event_ps() {
            let beats_replica = next_ready.is_none_or(|(rt, _)| t <= rt);
            let beats_arrival = next_arrival.is_none_or(|at| t <= at);
            if beats_replica && beats_arrival {
                self.deliver_fabric_events(t);
                return true;
            }
        }
        // Arrivals admit first on ties so the control plane always sees
        // the request before any replica simulates past its arrival time.
        let admit_arrival = match (next_arrival, next_ready) {
            (Some(at), Some((rt, _))) => at <= rt,
            (Some(_), None) => true,
            (None, _) => false,
        };
        match (admit_arrival, next_ready) {
            (true, _) => {
                let request = self.arrivals.pop_front().expect("checked above");
                // Offer only the in-service replicas whose role takes
                // fresh work and whose warm-up has elapsed.
                let candidates: Vec<ReplicaSnapshot> = (0..self.sims.len())
                    .filter(|&i| {
                        let slot = &self.slots[i];
                        slot.role.accepts_arrivals()
                            && slot.in_service()
                            && slot.active_from_ps <= request.arrival_ps
                    })
                    .map(|i| self.snapshot(i))
                    .collect();
                assert!(
                    !candidates.is_empty(),
                    "no replica accepts arrivals for request {} — the control plane \
                     drained or retired every admission candidate",
                    request.id
                );
                let chosen = self.control.admit(&request, &candidates);
                assert!(
                    candidates.iter().any(|s| s.index == chosen),
                    "control plane admitted to replica {chosen}, not one of the {} offered",
                    candidates.len()
                );
                self.assignments.push((request.id, chosen));
                self.slots[chosen].routed += 1;
                self.telemetry.emit(|| SimEvent::Arrival {
                    t_ps: request.arrival_ps,
                    id: request.id,
                    input_len: request.input_len,
                    output_len: request.output_len,
                });
                self.telemetry.emit(|| SimEvent::Admitted {
                    t_ps: request.arrival_ps,
                    id: request.id,
                    replica: chosen,
                });
                self.sims[chosen].push_request(request);
                self.refresh(chosen);
                true
            }
            (false, Some((_, idx))) => {
                self.heap.pop();
                let before = self.sims[idx].scheduler().completions().len();
                self.sims[idx].step();
                let after = self.sims[idx].scheduler().completions().len();
                if self.slots[idx].role == ReplicaRole::Prefill {
                    self.hand_off_finished_prefills(idx);
                }
                self.try_apply_pending_role(idx);
                self.refresh(idx);
                if after > before && self.control.reactive() {
                    let now = self.sims[idx].clock_ps();
                    let stats = self.stats(now);
                    let commands = self.control.on_completion(&stats);
                    for command in commands {
                        self.apply(command, now);
                    }
                }
                true
            }
            (false, None) => {
                // With no arrivals and every replica idle the horizon is
                // unbounded, so the commit pass above drained the queue —
                // and the fabric branch above drained any in-flight flow.
                debug_assert!(self.pending.is_empty(), "drained with transfers still pending");
                debug_assert_eq!(
                    self.fabric.in_flight(),
                    0,
                    "drained with flows still in the fabric"
                );
                false
            }
        }
    }

    /// Runs the fleet to completion and assembles the engine-level
    /// report.
    pub fn run(mut self) -> FleetReport {
        while self.step() {}
        self.into_report()
    }

    /// Finalizes into the engine-level report (a partially drained fleet
    /// yields a partial report). Shape-specific drivers use
    /// [`into_parts`](Self::into_parts) instead and assemble their own
    /// reports.
    pub fn into_report(self) -> FleetReport {
        FleetReport::from_parts(self.into_parts())
    }

    /// Dismantles the engine into the raw per-replica reports, transfer
    /// records, and bookkeeping a shape-specific driver needs to build
    /// its own report (`ClusterReport`, `DisaggReport`, ...).
    pub fn into_parts(self) -> FleetParts {
        let control = self.control.name();
        let replicas = self
            .sims
            .into_iter()
            .zip(self.slots)
            .map(|(sim, slot)| FleetReplica {
                report: sim.into_report(),
                role: slot.role,
                home_role: slot.home_role,
                routed: slot.routed,
                paired: slot.paired,
                retired: slot.retiring,
            })
            .collect();
        FleetParts {
            control,
            replicas,
            assignments: self.assignments,
            transfers: self.transfers,
            requests: self.requests,
            fabric: self.fabric.stats(),
        }
    }
}

/// The dismantled engine: everything a report assembler needs.
#[derive(Debug)]
pub struct FleetParts {
    /// The control plane's name.
    pub control: String,
    /// Per-replica outcome, by fleet index.
    pub replicas: Vec<FleetReplica>,
    /// `(request id, replica)` admissions in routing order.
    pub assignments: Vec<(u64, usize)>,
    /// Committed KV transfers by request id.
    pub transfers: HashMap<u64, FleetTransfer>,
    /// Original requests by id (empty for fleets without links).
    pub requests: HashMap<u64, Request>,
    /// Fabric usage, when the fleet ran over a fair-sharing fabric
    /// (`None` keeps FIFO-configured reports byte-identical to the
    /// pre-fabric engine).
    pub fabric: Option<FabricStats>,
}

impl Simulate for FleetEngine {
    type Report = FleetReport;

    fn push_request(&mut self, request: Request) {
        FleetEngine::push_request(self, request);
    }

    fn next_ready_ps(&self) -> Option<TimePs> {
        FleetEngine::next_ready_ps(self)
    }

    fn clock_ps(&self) -> TimePs {
        FleetEngine::clock_ps(self)
    }

    fn completed_requests(&self) -> usize {
        FleetEngine::completed_requests(self)
    }

    fn step(&mut self) -> bool {
        FleetEngine::step(self)
    }

    fn finalize(self) -> FleetReport {
        self.into_report()
    }
}
