//! The execution engine stack: heterogeneous engines behind one pricing
//! interface, with computation reuse.
//!
//! The stack owns one engine per device class, routes each operator to the
//! engine the operator mapper chose, and interposes the [`ReuseCache`] so
//! repeated signatures never re-run a compiler or hardware simulator.
//! It also keeps a wall-clock account of real engine work, which the
//! evaluation harness uses for the paper's Figure 9 breakdown.

use std::time::{Duration, Instant};

use llmss_model::Op;
use llmss_net::TimePs;
use llmss_npu::NpuConfig;
use llmss_pim::PimConfig;

use crate::{
    DeviceKind, ExecutionEngine, NpuPimLocalPlugin, NpuPlugin, PimMode, PimPlugin, ReuseCache,
    ReuseStats,
};

/// Heterogeneous engine stack with result reuse.
///
/// # Examples
///
/// ```
/// use llmss_core::{DeviceKind, EngineStack};
/// use llmss_model::{Op, OpDims, OpKind};
/// use llmss_npu::NpuConfig;
///
/// let mut stack = EngineStack::homogeneous(NpuConfig::table1(), true);
/// let op = Op::new(OpKind::QkvGen, OpDims::matmul(64, 768, 2304), 2);
/// let first = stack.price(&op, DeviceKind::Npu);
/// let second = stack.price(&op, DeviceKind::Npu); // cache hit
/// assert_eq!(first, second);
/// assert_eq!(stack.reuse_stats().hits(), 1);
/// ```
#[derive(Debug)]
pub struct EngineStack {
    npu: Box<dyn ExecutionEngine>,
    pim: Option<Box<dyn ExecutionEngine>>,
    cache: ReuseCache,
    engine_wall: Duration,
}

impl EngineStack {
    /// A homogeneous NPU stack.
    pub fn homogeneous(npu: NpuConfig, reuse: bool) -> Self {
        Self::custom(Box::new(NpuPlugin::new(npu)), None, reuse)
    }

    /// Builds the stack appropriate for a PIM mode (the paper's three
    /// system shapes).
    pub fn for_pim_mode(mode: PimMode, npu: NpuConfig, pim: PimConfig, reuse: bool) -> Self {
        match mode {
            PimMode::None => Self::homogeneous(npu, reuse),
            PimMode::Local => {
                Self::custom(Box::new(NpuPimLocalPlugin::new(npu, pim)), None, reuse)
            }
            PimMode::Pool => Self::custom(
                Box::new(NpuPlugin::new(npu)),
                Some(Box::new(PimPlugin::new(pim))),
                reuse,
            ),
        }
    }

    /// The plugin point: any third-party compiler-and-simulator stacks can
    /// fill the NPU (and optionally PIM) slots.
    pub fn custom(
        npu: Box<dyn ExecutionEngine>,
        pim: Option<Box<dyn ExecutionEngine>>,
        reuse: bool,
    ) -> Self {
        Self { npu, pim, cache: ReuseCache::new(reuse), engine_wall: Duration::ZERO }
    }

    /// Whether the stack has a PIM-pool engine.
    pub fn has_pim(&self) -> bool {
        self.pim.is_some()
    }

    /// Prices one operator on the given device class, consulting the reuse
    /// cache first.
    ///
    /// # Panics
    ///
    /// Panics if `device` is [`DeviceKind::Pim`] but the stack has no PIM
    /// engine, or if the target engine does not support the operator.
    pub fn price(&mut self, op: &Op, device: DeviceKind) -> TimePs {
        let engine: &mut Box<dyn ExecutionEngine> = match device {
            DeviceKind::Npu => &mut self.npu,
            DeviceKind::Pim => self.pim.as_mut().expect("no PIM engine in this stack"), // llmss-lint: allow(p001, reason = "stack construction attaches a PIM engine whenever PIM ops can be scheduled")
        };
        let wall = &mut self.engine_wall;
        self.cache.price(device, &op.signature(), op.kind.is_attention(), || {
            assert!(engine.supports(op), "engine {} cannot execute {op}", engine.name());
            // llmss-lint: allow(d002, reason = "engine_wall measures host wall time for the Figure 9 breakdown, never simulated time")
            let t0 = Instant::now();
            let ps = engine.execute(op);
            *wall += t0.elapsed();
            ps
        })
    }

    /// Attaches the cross-replica shared reuse tier to the op cache
    /// under `fingerprint`'s namespace.
    pub fn attach_shared(&mut self, shared: crate::SharedReuse, fingerprint: u64) {
        self.cache.attach_shared(shared, fingerprint);
    }

    /// Publishes freshly executed op prices to the shared tier (driver
    /// sync points only — see [`SharedReuse`](crate::SharedReuse)).
    pub fn publish_shared(&mut self) {
        self.cache.publish_shared();
    }

    /// Reuse statistics.
    pub fn reuse_stats(&self) -> ReuseStats {
        self.cache.stats()
    }

    /// Wall-clock time spent inside engine compile/simulate work.
    pub fn engine_wall(&self) -> Duration {
        self.engine_wall
    }

    /// Total engine work units (compiles + simulations actually performed).
    pub fn work_units(&self) -> u64 {
        self.npu.work_units() + self.pim.as_ref().map_or(0, |p| p.work_units())
    }

    /// Clears the reuse cache (per-run isolation in benchmarks).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmss_model::{OpDims, OpKind, Phase};

    fn decode_score() -> Op {
        Op::new(OpKind::Score, OpDims::batched(32, 1, 128, 512), 2).in_phase(Phase::Generation)
    }

    #[test]
    fn reuse_avoids_engine_work() {
        let mut s = EngineStack::homogeneous(NpuConfig::table1(), true);
        let op = Op::new(OpKind::FfnUp, OpDims::matmul(256, 768, 3072), 2);
        s.price(&op, DeviceKind::Npu);
        let units_after_first = s.work_units();
        for _ in 0..10 {
            s.price(&op, DeviceKind::Npu);
        }
        assert_eq!(s.work_units(), units_after_first, "cache hits must not re-run engines");
        assert_eq!(s.reuse_stats().hits(), 10);
    }

    #[test]
    fn no_reuse_reruns_engine() {
        let mut s = EngineStack::homogeneous(NpuConfig::table1(), false);
        let op = Op::new(OpKind::FfnUp, OpDims::matmul(256, 768, 3072), 2);
        s.price(&op, DeviceKind::Npu);
        let first = s.work_units();
        s.price(&op, DeviceKind::Npu);
        assert!(s.work_units() > first);
    }

    #[test]
    fn pool_stack_prices_both_devices() {
        let mut s = EngineStack::for_pim_mode(
            PimMode::Pool,
            NpuConfig::table1(),
            PimConfig::table1(),
            true,
        );
        assert!(s.has_pim());
        let op = decode_score();
        let npu = s.price(&op, DeviceKind::Npu);
        let pim = s.price(&op, DeviceKind::Pim);
        assert!(pim < npu, "PIM must beat NPU on decode attention");
    }

    #[test]
    #[should_panic(expected = "no PIM engine")]
    fn pim_pricing_without_pim_panics() {
        let mut s = EngineStack::homogeneous(NpuConfig::table1(), true);
        s.price(&decode_score(), DeviceKind::Pim);
    }

    #[test]
    fn local_mode_stack_is_single_engine() {
        let s = EngineStack::for_pim_mode(
            PimMode::Local,
            NpuConfig::table1(),
            PimConfig::table1(),
            true,
        );
        assert!(!s.has_pim(), "local PIM hides inside the NPU slot");
    }

    #[test]
    fn engine_wall_grows_on_misses_only() {
        let mut s = EngineStack::homogeneous(NpuConfig::table1(), true);
        let op = Op::new(OpKind::FfnUp, OpDims::matmul(1024, 4096, 16_384), 2);
        s.price(&op, DeviceKind::Npu);
        let after_miss = s.engine_wall();
        assert!(after_miss > Duration::ZERO);
        s.price(&op, DeviceKind::Npu);
        assert_eq!(s.engine_wall(), after_miss);
    }
}
