//! Fabric topology graphs: named multi-link layouts and per-pair
//! routing from replica endpoints to link paths.
//!
//! A [`FabricGraph`] maps an ordered replica pair `(from, to)` to the
//! sequence of links a KV transfer crosses. Four named families cover
//! the layouts the paper's disaggregated experiments need, and an
//! explicit link/route list covers everything else:
//!
//! * `single` — one shared link; every pair crosses it (the legacy
//!   shape).
//! * `star{n}` — one access link per endpoint plus a shared trunk;
//!   a transfer crosses `access(from) → trunk → access(to)`. With the
//!   trunk at access bandwidth the core is `n:1` oversubscribed — the
//!   shape that lets a hot pair degrade its neighbors.
//! * `clique{n}` — a dedicated link per unordered endpoint pair; full
//!   isolation, the contention-free baseline.
//! * `hier{pods}x{per_pod}` — endpoints grouped into pods: a pod-local
//!   link for intra-pod pairs, per-pod uplinks (crossed back to back)
//!   for inter-pod pairs.

use std::collections::BTreeMap;

use llmss_net::LinkSpec;

/// A link with a stable display name (reports key per-link utilization
/// on it).
#[derive(Debug, Clone, PartialEq)]
pub struct NamedLink {
    /// Display name, unique within the graph.
    pub name: String,
    /// Bandwidth and latency.
    pub spec: LinkSpec,
}

impl NamedLink {
    /// A named link.
    pub fn new(name: impl Into<String>, spec: LinkSpec) -> Self {
        Self { name: name.into(), spec }
    }
}

/// One explicit route: the link path an ordered endpoint pair uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteSpec {
    /// Source endpoint (fleet-global replica index).
    pub from: usize,
    /// Destination endpoint.
    pub to: usize,
    /// Link names, in hop order.
    pub path: Vec<String>,
}

/// A named topology family, sizes optional until the endpoint count is
/// known (`star` in a scenario file means "star over however many
/// replicas the fleet has"; `star4` pins it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricTopology {
    /// One shared link.
    Single,
    /// Per-endpoint access links around a shared trunk.
    Star {
        /// Endpoint count (validated against the fleet when present).
        endpoints: Option<usize>,
    },
    /// A dedicated link per unordered endpoint pair.
    Clique {
        /// Endpoint count (validated against the fleet when present).
        endpoints: Option<usize>,
    },
    /// Pods of endpoints with pod-local links and per-pod uplinks.
    Hier {
        /// Number of pods.
        pods: usize,
        /// Endpoints per pod (inferred from the fleet when absent).
        per_pod: Option<usize>,
    },
}

impl FabricTopology {
    /// The canonical spelling (`single`, `star4`, `hier2x2`, ...).
    pub fn spelling(&self) -> String {
        let opt = |n: &Option<usize>| n.map(|n| n.to_string()).unwrap_or_default();
        match self {
            FabricTopology::Single => "single".into(),
            FabricTopology::Star { endpoints } => format!("star{}", opt(endpoints)),
            FabricTopology::Clique { endpoints } => format!("clique{}", opt(endpoints)),
            FabricTopology::Hier { pods, per_pod } => match per_pod {
                Some(per) => format!("hier{pods}x{per}"),
                None => format!("hier{pods}"),
            },
        }
    }
}

impl std::fmt::Display for FabricTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.spelling())
    }
}

impl std::str::FromStr for FabricTopology {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || {
            format!(
                "unknown fabric topology '{s}' (expected single | star[N] | clique[N] | \
                 hier[P]x[Q], e.g. star4 or hier2x2)"
            )
        };
        let tail_size = |tail: &str| -> Result<Option<usize>, String> {
            if tail.is_empty() {
                Ok(None)
            } else {
                tail.parse().map(Some).map_err(|_| err())
            }
        };
        if s == "single" {
            Ok(FabricTopology::Single)
        } else if let Some(tail) = s.strip_prefix("star") {
            Ok(FabricTopology::Star { endpoints: tail_size(tail)? })
        } else if let Some(tail) = s.strip_prefix("clique") {
            Ok(FabricTopology::Clique { endpoints: tail_size(tail)? })
        } else if let Some(tail) = s.strip_prefix("hier") {
            let (pods, per_pod) = match tail.split_once('x') {
                Some((p, q)) => {
                    (p.parse().map_err(|_| err())?, Some(q.parse().map_err(|_| err())?))
                }
                None if tail.is_empty() => (2, None),
                None => (tail.parse().map_err(|_| err())?, None),
            };
            if pods == 0 {
                return Err("a hierarchical fabric needs at least one pod".into());
            }
            Ok(FabricTopology::Hier { pods, per_pod })
        } else {
            Err(err())
        }
    }
}

/// How endpoint pairs map to link paths.
#[derive(Debug, Clone, PartialEq)]
enum RouteTable {
    /// Everything crosses link 0.
    Single,
    /// Links `0..n` are access links, link `n` is the trunk.
    Star,
    /// Unordered-pair links in row-major order.
    Clique,
    /// Links `0..pods` are pod-local, `pods..2*pods` are uplinks.
    Hier {
        per_pod: usize,
    },
    Explicit(BTreeMap<(usize, usize), Vec<usize>>),
}

/// A built fabric graph: links plus a per-pair routing function over a
/// fixed endpoint count.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricGraph {
    links: Vec<NamedLink>,
    endpoints: usize,
    routes: RouteTable,
}

impl FabricGraph {
    /// One shared link between every endpoint pair.
    pub fn single(endpoints: usize, link: LinkSpec) -> Self {
        Self { links: vec![NamedLink::new("kv", link)], endpoints, routes: RouteTable::Single }
    }

    /// Per-endpoint access links joined by a shared trunk. With
    /// `trunk == access` the core is `endpoints:1` oversubscribed.
    ///
    /// # Panics
    ///
    /// Panics if `endpoints` is zero.
    pub fn star(endpoints: usize, access: LinkSpec, trunk: LinkSpec) -> Self {
        assert!(endpoints > 0, "a star fabric needs at least one endpoint");
        let mut links: Vec<NamedLink> =
            (0..endpoints).map(|i| NamedLink::new(format!("up{i}"), access)).collect();
        links.push(NamedLink::new("trunk", trunk));
        Self { links, endpoints, routes: RouteTable::Star }
    }

    /// A dedicated link per unordered endpoint pair.
    ///
    /// # Panics
    ///
    /// Panics if `endpoints < 2` (no pair to link).
    pub fn clique(endpoints: usize, link: LinkSpec) -> Self {
        assert!(endpoints >= 2, "a clique fabric needs at least two endpoints");
        let mut links = Vec::with_capacity(endpoints * (endpoints - 1) / 2);
        for a in 0..endpoints {
            for b in (a + 1)..endpoints {
                links.push(NamedLink::new(format!("l{a}-{b}"), link));
            }
        }
        Self { links, endpoints, routes: RouteTable::Clique }
    }

    /// Pods of `per_pod` endpoints: a pod-local link per pod and a
    /// per-pod uplink for inter-pod traffic (an inter-pod path crosses
    /// both pods' uplinks).
    ///
    /// # Panics
    ///
    /// Panics if `pods` or `per_pod` is zero.
    pub fn hier(pods: usize, per_pod: usize, local: LinkSpec, uplink: LinkSpec) -> Self {
        assert!(pods > 0 && per_pod > 0, "a hierarchical fabric needs non-empty pods");
        let mut links: Vec<NamedLink> =
            (0..pods).map(|p| NamedLink::new(format!("pod{p}"), local)).collect();
        links.extend((0..pods).map(|p| NamedLink::new(format!("up{p}"), uplink)));
        Self { links, endpoints: pods * per_pod, routes: RouteTable::Hier { per_pod } }
    }

    /// An explicit graph: links plus per-pair routes. Routes are
    /// bidirectional — `(from, to)` also serves `(to, from)` with the
    /// path reversed — unless the reverse pair declares its own.
    ///
    /// # Errors
    ///
    /// Returns a message for an empty link list, duplicate link names,
    /// a route naming an unknown link, an empty path, an out-of-range
    /// endpoint, or conflicting duplicate routes.
    pub fn explicit(
        endpoints: usize,
        links: Vec<NamedLink>,
        routes: &[RouteSpec],
    ) -> Result<Self, String> {
        if links.is_empty() {
            return Err("an explicit fabric needs at least one [[fabric.link]]".into());
        }
        let mut by_name = BTreeMap::new();
        for (i, l) in links.iter().enumerate() {
            if by_name.insert(l.name.clone(), i).is_some() {
                return Err(format!("duplicate fabric link name '{}'", l.name));
            }
        }
        let mut table: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        let mut declared: Vec<(usize, usize)> = Vec::new();
        for r in routes {
            if r.from >= endpoints || r.to >= endpoints {
                return Err(format!(
                    "route {} -> {} names an endpoint outside the {endpoints}-replica fleet",
                    r.from, r.to
                ));
            }
            if r.path.is_empty() {
                return Err(format!("route {} -> {} has an empty path", r.from, r.to));
            }
            let mut path = Vec::with_capacity(r.path.len());
            for name in &r.path {
                match by_name.get(name) {
                    Some(&i) => path.push(i),
                    None => {
                        return Err(format!(
                            "route {} -> {} crosses unknown link '{name}'",
                            r.from, r.to
                        ))
                    }
                }
            }
            if declared.contains(&(r.from, r.to)) {
                return Err(format!("route {} -> {} declared twice", r.from, r.to));
            }
            declared.push((r.from, r.to));
            // The reverse direction defaults to the reversed path; an
            // explicit reverse route (earlier or later in the list)
            // overrides it.
            table.insert((r.from, r.to), path.clone());
            if !declared.contains(&(r.to, r.from)) {
                path.reverse();
                table.insert((r.to, r.from), path);
            }
        }
        Ok(Self { links, endpoints, routes: RouteTable::Explicit(table) })
    }

    /// Builds a named topology over `endpoints` replicas. `access` is
    /// the leaf/local link; `trunk` the shared core (star trunk, hier
    /// uplinks) — pass the same spec for a uniform fabric.
    ///
    /// # Errors
    ///
    /// Returns a message when the topology's pinned size disagrees with
    /// the fleet's endpoint count.
    pub fn build(
        topology: &FabricTopology,
        endpoints: usize,
        access: LinkSpec,
        trunk: LinkSpec,
    ) -> Result<Self, String> {
        let check = |pinned: Option<usize>| match pinned {
            Some(n) if n != endpoints => Err(format!(
                "fabric topology pins {n} endpoints but the fleet has {endpoints} replicas"
            )),
            _ => Ok(()),
        };
        match topology {
            FabricTopology::Single => Ok(Self::single(endpoints, access)),
            FabricTopology::Star { endpoints: pinned } => {
                check(*pinned)?;
                Ok(Self::star(endpoints, access, trunk))
            }
            FabricTopology::Clique { endpoints: pinned } => {
                check(*pinned)?;
                if endpoints < 2 {
                    return Err("a clique fabric needs at least two replicas".into());
                }
                Ok(Self::clique(endpoints, access))
            }
            FabricTopology::Hier { pods, per_pod } => {
                let per = match per_pod {
                    Some(per) => {
                        check(Some(pods * per))?;
                        *per
                    }
                    None if endpoints.is_multiple_of(*pods) && endpoints > 0 => {
                        endpoints / pods
                    }
                    None => {
                        return Err(format!(
                            "hier{pods}: {endpoints} replicas do not split into {pods} \
                             equal pods"
                        ))
                    }
                };
                Ok(Self::hier(*pods, per, access, trunk))
            }
        }
    }

    /// The graph's links, by index.
    pub fn links(&self) -> &[NamedLink] {
        &self.links
    }

    /// The endpoint (replica) count the routes cover.
    pub fn endpoints(&self) -> usize {
        self.endpoints
    }

    /// The link path an ordered pair crosses, in hop order.
    ///
    /// # Panics
    ///
    /// Panics on an endpoint outside the graph, a clique self-pair (no
    /// dedicated link exists), or an explicit graph without a route for
    /// the pair — all configuration errors that must fail loudly, not
    /// silently misroute a transfer.
    pub fn path(&self, from: usize, to: usize) -> Vec<usize> {
        assert!(
            from < self.endpoints && to < self.endpoints,
            "transfer {from} -> {to} leaves the {}-endpoint fabric",
            self.endpoints
        );
        match &self.routes {
            RouteTable::Single => vec![0],
            RouteTable::Star => {
                let trunk = self.endpoints;
                if from == to {
                    vec![from]
                } else {
                    vec![from, trunk, to]
                }
            }
            RouteTable::Clique => {
                assert!(
                    from != to,
                    "a clique fabric has no link for the self-pair {from} -> {from}"
                );
                let (a, b) = (from.min(to), from.max(to));
                // Row-major unordered-pair index.
                let idx = a * self.endpoints - a * (a + 1) / 2 + (b - a - 1);
                vec![idx]
            }
            RouteTable::Hier { per_pod } => {
                let (pa, pb) = (from / per_pod, to / per_pod);
                let pods = self.links.len() / 2;
                if pa == pb {
                    vec![pa]
                } else {
                    vec![pods + pa, pods + pb]
                }
            }
            RouteTable::Explicit(table) => table
                .get(&(from, to))
                .unwrap_or_else(|| {
                    // llmss-lint: allow(p001, reason = "explicit route tables are validated complete at construction")
                    panic!("the explicit fabric declares no route for {from} -> {to}")
                })
                .clone(),
        }
    }

    /// Summed propagation latency of the pair's path, in picoseconds.
    pub fn path_latency_ps(&self, path: &[usize]) -> llmss_sched::TimePs {
        path.iter().fold(0u64, |acc, &l| acc.saturating_add(self.links[l].spec.latency_ps()))
    }

    /// Uncontended whole-path transfer time: the path latency plus
    /// serialization at the narrowest hop — the nominal the contention
    /// metric compares achieved transfers against.
    pub fn nominal_ps(&self, path: &[usize], bytes: u64) -> llmss_sched::TimePs {
        let narrowest = path
            .iter()
            .map(|&l| &self.links[l].spec)
            .min_by(|a, b| a.bw_gbps.total_cmp(&b.bw_gbps))
            .expect("paths are non-empty"); // llmss-lint: allow(p001, reason = "routes are validated non-empty at construction")
        self.path_latency_ps(path).saturating_add(narrowest.serialize_ps(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(gbps: f64) -> LinkSpec {
        LinkSpec::new(gbps, 100.0)
    }

    #[test]
    fn topology_spellings_round_trip() {
        for s in ["single", "star", "star4", "clique8", "hier2x2", "hier3"] {
            let t: FabricTopology = s.parse().unwrap();
            assert_eq!(t.spelling(), if s == "hier3" { "hier3".to_owned() } else { s.into() });
        }
        assert!("ring4".parse::<FabricTopology>().is_err());
        assert!("starx".parse::<FabricTopology>().is_err());
        assert!("hier0x2".parse::<FabricTopology>().is_err());
    }

    #[test]
    fn single_routes_everything_over_one_link() {
        let g = FabricGraph::single(4, l(1.0));
        assert_eq!(g.links().len(), 1);
        assert_eq!(g.path(0, 3), vec![0]);
        assert_eq!(g.path(2, 1), vec![0]);
    }

    #[test]
    fn star_crosses_both_access_links_and_the_trunk() {
        let g = FabricGraph::star(4, l(2.0), l(1.0));
        assert_eq!(g.links().len(), 5);
        assert_eq!(g.path(0, 3), vec![0, 4, 3]);
        assert_eq!(g.path(3, 0), vec![3, 4, 0]);
        assert_eq!(g.links()[4].name, "trunk");
    }

    #[test]
    fn clique_pairs_get_dedicated_links() {
        let g = FabricGraph::clique(4, l(1.0));
        assert_eq!(g.links().len(), 6);
        // Both directions share the unordered pair's link; every pair
        // distinct.
        let mut seen = std::collections::HashSet::new();
        for a in 0..4 {
            for b in 0..4 {
                if a == b {
                    continue;
                }
                let p = g.path(a, b);
                assert_eq!(p.len(), 1);
                assert_eq!(p, g.path(b, a));
                seen.insert(p[0]);
            }
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn hier_splits_local_and_uplink_traffic() {
        let g = FabricGraph::hier(2, 2, l(4.0), l(1.0));
        assert_eq!(g.links().len(), 4);
        assert_eq!(g.path(0, 1), vec![0], "intra-pod stays on the pod link");
        assert_eq!(g.path(0, 2), vec![2, 3], "inter-pod crosses both uplinks");
        assert_eq!(g.links()[2].name, "up0");
    }

    #[test]
    fn build_validates_pinned_sizes() {
        let t: FabricTopology = "star4".parse().unwrap();
        assert!(FabricGraph::build(&t, 3, l(1.0), l(1.0)).is_err());
        assert!(FabricGraph::build(&t, 4, l(1.0), l(1.0)).is_ok());
        let t: FabricTopology = "hier2".parse().unwrap();
        assert!(FabricGraph::build(&t, 5, l(1.0), l(1.0)).is_err(), "5 into 2 pods");
        assert_eq!(FabricGraph::build(&t, 4, l(1.0), l(1.0)).unwrap().endpoints(), 4);
    }

    #[test]
    fn explicit_routes_reverse_by_default_and_validate() {
        let links = vec![NamedLink::new("a", l(1.0)), NamedLink::new("b", l(1.0))];
        let routes = vec![RouteSpec { from: 0, to: 1, path: vec!["a".into(), "b".into()] }];
        let g = FabricGraph::explicit(2, links.clone(), &routes).unwrap();
        assert_eq!(g.path(0, 1), vec![0, 1]);
        assert_eq!(g.path(1, 0), vec![1, 0], "reverse path is reversed");
        // Unknown link names and duplicate routes fail loudly.
        let bad = vec![RouteSpec { from: 0, to: 1, path: vec!["c".into()] }];
        assert!(FabricGraph::explicit(2, links.clone(), &bad).is_err());
        let dup = vec![routes[0].clone(), routes[0].clone()];
        assert!(FabricGraph::explicit(2, links, &dup).is_err());
    }

    #[test]
    fn nominal_uses_the_narrowest_hop() {
        let g = FabricGraph::star(2, l(2.0), l(1.0));
        let path = g.path(0, 1);
        // 1 MB at the 1-GB/s trunk = 1 ms, plus 3 hops x 100 ns.
        assert_eq!(g.nominal_ps(&path, 1_000_000), 300_000 + 1_000_000_000);
    }

    #[test]
    #[should_panic(expected = "no link for the self-pair")]
    fn clique_self_pair_fails_loudly() {
        let g = FabricGraph::clique(2, l(1.0));
        let _ = g.path(1, 1);
    }
}
