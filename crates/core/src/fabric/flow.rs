//! The max–min fair-sharing flow model: piecewise-constant rates over a
//! multi-link graph, recomputed at every flow start and finish.
//!
//! Each in-flight KV transfer is a *flow* over a path of links. Whenever
//! the set of active flows changes, bandwidth is re-divided by
//! progressive filling (the classic max–min algorithm): repeatedly find
//! the most-contended link, give every unfrozen flow crossing it an
//! equal share of that link's remaining capacity, freeze those flows,
//! and subtract what they consume along their whole paths. Between
//! recompute points every rate is constant, so flow progress — and the
//! completion times the fleet engine schedules against — is exact: the
//! model advances every flow's remaining bytes to the recompute point
//! before re-dividing.
//!
//! Rates are in bytes per picosecond (`bw_gbps / 1000`); remaining bytes
//! are `f64` so a flow can be left mid-byte at a recompute point. Byte
//! accounting clamps at each flow's residue, so the per-link carried
//! integrals conserve bytes exactly (up to float epsilon) — a property
//! the repo's proptests pin.

// llmss-lint: allow(p001, file, reason = "flow bookkeeping asserts its own conservation invariants; a violation is a model bug, not a user error")
use llmss_net::LinkSpec;
use llmss_sched::TimePs;
use std::collections::BTreeMap;

/// Converts a link bandwidth to the model's rate unit.
fn bytes_per_ps(bw_gbps: f64) -> f64 {
    // 1 GB/s = 1e9 B/s = 1e-3 B/ps.
    bw_gbps / 1000.0
}

/// One in-flight flow.
#[derive(Debug, Clone)]
struct Flow {
    /// Link indices the flow crosses, in hop order.
    path: Vec<usize>,
    /// Bytes not yet serialized.
    remaining: f64,
    /// Total bytes (for accounting and the completion record).
    bytes: u64,
    /// Current max–min rate in bytes/ps (0 only once serialized).
    rate: f64,
    /// The link that bounded the flow's most recent allocation.
    bottleneck: usize,
    /// Propagation latency of the whole path, applied after the last
    /// byte serializes.
    latency_ps: TimePs,
    /// When the flow entered the fabric.
    start_ps: TimePs,
    /// Uncontended whole-path transfer time (for contention metrics).
    nominal_ps: TimePs,
    /// Delivery time, fixed once the last byte has serialized.
    done_ps: Option<TimePs>,
}

/// A delivered flow: everything the engine needs to finish the transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowDone {
    /// The flow's id (the KV transfer's request id).
    pub id: u64,
    /// When the flow entered the fabric.
    pub start_ps: TimePs,
    /// When the last byte landed (serialization end + path latency).
    pub done_ps: TimePs,
    /// Uncontended whole-path transfer time.
    pub nominal_ps: TimePs,
    /// The link that bounded the flow's final allocation.
    pub bottleneck: usize,
    /// Bytes carried.
    pub bytes: u64,
}

/// The fair-sharing flow model over a fixed set of links.
#[derive(Debug, Clone)]
pub struct FlowModel {
    /// Per-link capacity in bytes/ps.
    caps: Vec<f64>,
    /// Per-link allocated rate under the current division.
    alloc: Vec<f64>,
    /// Per-link carried-byte integral (for utilization accounting).
    carried: Vec<f64>,
    /// Active flows by id. A `BTreeMap` keeps every iteration — and
    /// therefore the whole allocation — deterministic in id order.
    flows: BTreeMap<u64, Flow>,
    /// The last recompute point.
    now_ps: TimePs,
    /// Sanitizer: total bytes ever admitted (`start`).
    #[cfg(feature = "sanitize")]
    sanitize_admitted: u64,
    /// Sanitizer: total bytes delivered out of `advance`.
    #[cfg(feature = "sanitize")]
    sanitize_delivered: u64,
}

impl FlowModel {
    /// A flow model over the given links.
    ///
    /// # Panics
    ///
    /// Panics if `links` is empty.
    pub fn new(links: &[LinkSpec]) -> Self {
        assert!(!links.is_empty(), "a flow model needs at least one link");
        Self {
            caps: links.iter().map(|l| bytes_per_ps(l.bw_gbps)).collect(),
            alloc: vec![0.0; links.len()],
            carried: vec![0.0; links.len()],
            flows: BTreeMap::new(),
            now_ps: 0,
            #[cfg(feature = "sanitize")]
            sanitize_admitted: 0,
            #[cfg(feature = "sanitize")]
            sanitize_delivered: 0,
        }
    }

    /// Flows currently in the fabric (serializing or in their latency
    /// tail).
    pub fn in_flight(&self) -> usize {
        self.flows.len()
    }

    /// The model's clock: the last recompute point.
    pub fn now_ps(&self) -> TimePs {
        self.now_ps
    }

    /// Per-link carried bytes so far (the utilization integral).
    pub fn carried_bytes(&self) -> &[f64] {
        &self.carried
    }

    /// Per-link allocated rate in bytes/ps under the current division
    /// (diagnostics and the capacity-bound proptest).
    pub fn allocated(&self) -> &[f64] {
        &self.alloc
    }

    /// Per-link capacity in bytes/ps.
    pub fn capacities(&self) -> &[f64] {
        &self.caps
    }

    /// Re-prices link `link` to `gbps` mid-run (chaos degradation;
    /// zero partitions the link) and immediately re-divides bandwidth,
    /// so in-flight flows crossing it speed up, slow down, or stall
    /// until a later capacity change. The caller advances the model to
    /// the fault time first so earlier progress is integrated at the
    /// old rates.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range link or a non-finite/negative
    /// bandwidth.
    pub fn set_capacity(&mut self, link: usize, gbps: f64) {
        assert!(link < self.caps.len(), "link {link} outside the fabric");
        assert!(gbps.is_finite() && gbps >= 0.0, "link {link} given invalid bandwidth {gbps}");
        self.caps[link] = bytes_per_ps(gbps);
        self.recompute();
    }

    /// Admits a flow of `bytes` over `path` at `start_ps`, with the
    /// path's summed `latency_ps` applied after serialization and
    /// `nominal_ps` recorded for contention metrics. Advances every
    /// other flow to the admission point, then re-divides bandwidth.
    ///
    /// # Panics
    ///
    /// Panics on an empty path, an out-of-range link, a duplicate id, or
    /// an admission before the model's clock (the engine commits flows
    /// in nondecreasing virtual time).
    pub fn start(
        &mut self,
        id: u64,
        path: &[usize],
        bytes: u64,
        latency_ps: TimePs,
        nominal_ps: TimePs,
        start_ps: TimePs,
    ) {
        assert!(!path.is_empty(), "flow {id} has an empty path");
        assert!(
            path.iter().all(|&l| l < self.caps.len()),
            "flow {id} crosses a link outside the fabric"
        );
        assert!(
            start_ps >= self.now_ps,
            "flow {id} starts at {start_ps} ps, before the fabric clock {} ps",
            self.now_ps
        );
        self.advance_to(start_ps);
        let previous = self.flows.insert(
            id,
            Flow {
                path: path.to_vec(),
                remaining: bytes as f64,
                bytes,
                rate: 0.0,
                bottleneck: path[0],
                latency_ps,
                start_ps,
                nominal_ps,
                done_ps: if bytes == 0 {
                    // A zero-byte flow serializes instantly: only the
                    // path latency stands between it and delivery.
                    Some(start_ps.saturating_add(latency_ps))
                } else {
                    None
                },
            },
        );
        assert!(previous.is_none(), "flow {id} admitted twice");
        #[cfg(feature = "sanitize")]
        {
            self.sanitize_admitted += bytes;
        }
        self.recompute();
    }

    /// The next time anything happens inside the fabric: a flow finishes
    /// serializing (freeing its bandwidth) or a serialized flow's
    /// latency tail expires (delivery). `None` when the fabric is idle.
    pub fn next_event_ps(&self) -> Option<TimePs> {
        self.flows.values().map(|f| self.flow_event_ps(f)).min()
    }

    /// Advances the model to `t` and returns every flow delivered at or
    /// before `t`, in id order. Bandwidth freed by flows that finished
    /// serializing is re-divided among the rest.
    ///
    /// # Panics
    ///
    /// Panics if `t` is before the model's clock.
    pub fn advance(&mut self, t: TimePs) -> Vec<FlowDone> {
        self.advance_to(t);
        let delivered: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.done_ps.is_some_and(|d| d <= t))
            .map(|(&id, _)| id)
            .collect();
        let mut out = Vec::with_capacity(delivered.len());
        for id in delivered {
            let f = self.flows.remove(&id).expect("collected above");
            #[cfg(feature = "sanitize")]
            {
                // A delivered flow has serialized its very last byte: the
                // clamp in `advance_segment` guarantees exactness, not
                // just epsilon-closeness.
                debug_assert!(
                    f.remaining == 0.0,
                    "sanitize: flow {id} delivered with {} bytes unserialized",
                    f.remaining
                );
                self.sanitize_delivered += f.bytes;
            }
            out.push(FlowDone {
                id,
                start_ps: f.start_ps,
                done_ps: f.done_ps.expect("filtered on done"),
                nominal_ps: f.nominal_ps,
                bottleneck: f.bottleneck,
                bytes: f.bytes,
            });
        }
        // Whether flows were delivered or merely finished serializing,
        // the active set may have changed — re-divide.
        self.recompute();
        #[cfg(feature = "sanitize")]
        {
            // Exact KV-byte conservation in u64: every byte ever admitted
            // is either delivered or still attached to an in-flight flow.
            let in_flight: u64 = self.flows.values().map(|f| f.bytes).sum();
            debug_assert!(
                self.sanitize_admitted == self.sanitize_delivered + in_flight,
                "sanitize: fabric bytes leaked (admitted {} != delivered {} + in-flight {})",
                self.sanitize_admitted,
                self.sanitize_delivered,
                in_flight
            );
        }
        out
    }

    /// When flow `f` next needs attention: its serialization end while
    /// bytes remain, its delivery time once serialized. Never before the
    /// model clock — a delivery the clock has already passed (a flow
    /// admission jumped time forward) is due *now*, with its true
    /// earlier completion time preserved in the [`FlowDone`] record.
    fn flow_event_ps(&self, f: &Flow) -> TimePs {
        match f.done_ps {
            Some(done) => done.max(self.now_ps),
            None if f.rate <= 0.0 => {
                // Stalled by a zero-capacity (partitioned) link: no
                // event until capacity returns.
                TimePs::MAX
            }
            None => self.now_ps.saturating_add((f.remaining / f.rate).ceil() as TimePs),
        }
    }

    /// The next serialization end among active flows, under the current
    /// rates (internal recompute points; deliveries excluded).
    fn next_serialize_end_ps(&self) -> Option<TimePs> {
        self.flows.values().filter(|f| f.done_ps.is_none()).map(|f| self.flow_event_ps(f)).min()
    }

    /// Moves every flow's progress from the model clock to `t`, stopping
    /// at every intermediate serialization end to re-divide the freed
    /// bandwidth — rates are only constant *between* recompute points,
    /// so a single-leap integration past one would under-serve the
    /// surviving flows.
    fn advance_to(&mut self, t: TimePs) {
        assert!(t >= self.now_ps, "fabric time moved backwards ({t} < {})", self.now_ps);
        while let Some(event) = self.next_serialize_end_ps() {
            if event >= t {
                break;
            }
            self.advance_segment(event);
            self.recompute();
        }
        self.advance_segment(t);
    }

    /// Integrates one constant-rate segment from the model clock to `t`,
    /// fixing delivery times for flows whose last byte serializes in the
    /// segment.
    fn advance_segment(&mut self, t: TimePs) {
        let dt = (t - self.now_ps) as f64;
        if dt > 0.0 {
            for f in self.flows.values_mut() {
                if f.done_ps.is_some() {
                    continue;
                }
                // Clamp at the flow's residue: the ceil in the event
                // time can overshoot the exact serialization end by a
                // fraction of a picosecond, and byte conservation must
                // not drift.
                let moved = (f.rate * dt).min(f.remaining);
                f.remaining -= moved;
                for &l in &f.path {
                    self.carried[l] += moved;
                }
                if f.remaining <= 0.0 {
                    f.remaining = 0.0;
                    f.done_ps = Some(t.saturating_add(f.latency_ps));
                }
            }
            self.now_ps = t;
        }
    }

    /// Progressive filling: re-divides every link's capacity among the
    /// flows still serializing. Deterministic — flows fill in id order
    /// and ties between equally-contended links break toward the lowest
    /// link index.
    fn recompute(&mut self) {
        self.alloc.iter_mut().for_each(|a| *a = 0.0);
        let mut spare = self.caps.clone();
        // (id, path) of flows still serializing, in id order.
        let unfrozen: Vec<u64> =
            self.flows.iter().filter(|(_, f)| f.done_ps.is_none()).map(|(&id, _)| id).collect();
        let mut frozen: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        while frozen.len() < unfrozen.len() {
            // Count unfrozen flows per link.
            let mut load = vec![0usize; self.caps.len()];
            for &id in &unfrozen {
                if frozen.contains(&id) {
                    continue;
                }
                for &l in &self.flows[&id].path {
                    load[l] += 1;
                }
            }
            // The most-contended link: smallest equal share.
            let (bottleneck, share) = load
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n > 0)
                .map(|(l, &n)| (l, spare[l] / n as f64))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("unfrozen flows cross at least one link");
            // Freeze every unfrozen flow crossing it at that share.
            for &id in &unfrozen {
                if frozen.contains(&id) {
                    continue;
                }
                let crosses = self.flows[&id].path.contains(&bottleneck);
                if !crosses {
                    continue;
                }
                let f = self.flows.get_mut(&id).expect("active flow");
                f.rate = share;
                f.bottleneck = bottleneck;
                frozen.insert(id);
                for &l in &f.path {
                    spare[l] = (spare[l] - share).max(0.0);
                    self.alloc[l] += share;
                }
            }
        }
        #[cfg(feature = "sanitize")]
        for (l, (&a, &c)) in self.alloc.iter().zip(&self.caps).enumerate() {
            // Progressive filling must never oversubscribe a link; the
            // epsilon covers float summation of per-flow shares.
            debug_assert!(
                a <= c * (1.0 + 1e-9) + 1e-12,
                "sanitize: link {l} allocated {a} B/ps over its {c} B/ps capacity"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(gbps: f64) -> LinkSpec {
        LinkSpec::new(gbps, 0.0)
    }

    #[test]
    fn lone_flow_gets_the_whole_link() {
        let mut m = FlowModel::new(&[link(1.0)]); // 0.001 B/ps
        m.start(1, &[0], 1_000_000, 0, 0, 0);
        // 1 MB at 1 GB/s = 1 ms = 1e9 ps.
        assert_eq!(m.next_event_ps(), Some(1_000_000_000));
        let done = m.advance(1_000_000_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].done_ps, 1_000_000_000);
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn two_flows_halve_and_finish_late() {
        let mut m = FlowModel::new(&[link(1.0)]);
        m.start(1, &[0], 1_000_000, 0, 0, 0);
        m.start(2, &[0], 1_000_000, 0, 0, 0);
        // Each gets half the link: 2 ms for both.
        assert_eq!(m.next_event_ps(), Some(2_000_000_000));
        let done = m.advance(2_000_000_000);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].id, 1);
        assert_eq!(done[1].id, 2);
    }

    #[test]
    fn finishing_flow_speeds_up_the_survivor() {
        let mut m = FlowModel::new(&[link(1.0)]);
        m.start(1, &[0], 1_000_000, 0, 0, 0);
        // Halfway through, a second equal flow joins.
        let half = 500_000_000;
        assert!(m.advance(half).is_empty());
        m.start(2, &[0], 1_000_000, 0, 0, half);
        // Shared phase: flow 1's 0.5 MB residue at 0.5 GB/s = 1 ms.
        assert_eq!(m.next_event_ps(), Some(half + 1_000_000_000));
        let done = m.advance(half + 1_000_000_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 1);
        // Flow 2's 0.5 MB residue now runs at full rate: 0.5 ms more.
        assert_eq!(m.next_event_ps(), Some(half + 1_500_000_000));
        assert_eq!(m.advance(half + 1_500_000_000).len(), 1);
    }

    #[test]
    fn latency_tail_frees_bandwidth_at_serialize_end() {
        let lat = 150_000; // 150 ns
        let mut m = FlowModel::new(&[LinkSpec::new(1.0, 150.0)]);
        m.start(1, &[0], 1_000_000, lat, 0, 0);
        m.start(2, &[0], 1_000_000, lat, 0, 0);
        // Both serialize by 2 ms; deliveries trail by the latency.
        let serialized = 2_000_000_000;
        assert_eq!(m.next_event_ps(), Some(serialized));
        assert!(m.advance(serialized).is_empty(), "latency tail still pending");
        assert_eq!(m.next_event_ps(), Some(serialized + lat));
        assert_eq!(m.advance(serialized + lat).len(), 2);
    }

    #[test]
    fn multi_link_path_bottlenecks_on_the_narrowest_hop() {
        // Path over a fat access link and a thin trunk: rate = trunk.
        let mut m = FlowModel::new(&[link(10.0), link(1.0)]);
        m.start(1, &[0, 1], 1_000_000, 0, 0, 0);
        assert_eq!(m.next_event_ps(), Some(1_000_000_000));
        let done = m.advance(1_000_000_000);
        assert_eq!(done[0].bottleneck, 1);
    }

    #[test]
    fn disjoint_flows_do_not_contend() {
        let mut m = FlowModel::new(&[link(1.0), link(1.0)]);
        m.start(1, &[0], 1_000_000, 0, 0, 0);
        m.start(2, &[1], 1_000_000, 0, 0, 0);
        // Each owns its link: both finish at 1 ms.
        assert_eq!(m.next_event_ps(), Some(1_000_000_000));
        assert_eq!(m.advance(1_000_000_000).len(), 2);
    }

    #[test]
    fn max_min_gives_the_unbottlenecked_flow_the_leftovers() {
        // Flows A and B share link 0; B also crosses thin link 1.
        // B freezes at 0.2 (link 1's cap), A takes the rest of link 0.
        let mut m = FlowModel::new(&[link(1.0), link(0.2)]);
        m.start(1, &[0], 8_000_000, 0, 0, 0); // A
        m.start(2, &[0, 1], 1_000_000, 0, 0, 0); // B
                                                 // B: 1 MB at 0.2 GB/s = 5 ms. A runs at 0.8 GB/s meanwhile (4 MB
                                                 // done), then reclaims the whole link for its last 4 MB: 4 ms.
        assert_eq!(m.next_event_ps(), Some(5_000_000_000));
        assert_eq!(m.advance(5_000_000_000)[0].id, 2);
        assert_eq!(m.next_event_ps(), Some(9_000_000_000));
        assert_eq!(m.advance(9_000_000_000)[0].id, 1);
    }

    #[test]
    fn zero_byte_flow_costs_latency_only() {
        let mut m = FlowModel::new(&[LinkSpec::new(1.0, 100.0)]);
        m.start(1, &[0], 0, 100_000, 100_000, 7);
        assert_eq!(m.next_event_ps(), Some(100_007));
        let done = m.advance(100_007);
        assert_eq!(done[0].done_ps, 100_007);
    }

    #[test]
    fn carried_bytes_integrate_per_link() {
        let mut m = FlowModel::new(&[link(1.0), link(1.0)]);
        m.start(1, &[0, 1], 1_000_000, 0, 0, 0);
        m.start(2, &[0], 1_000_000, 0, 0, 0);
        while let Some(t) = m.next_event_ps() {
            m.advance(t);
        }
        let carried = m.carried_bytes();
        assert!((carried[0] - 2_000_000.0).abs() < 1.0, "link 0 carried {}", carried[0]);
        assert!((carried[1] - 1_000_000.0).abs() < 1.0, "link 1 carried {}", carried[1]);
    }

    #[test]
    fn admission_jump_integrates_through_earlier_completions() {
        let mut m = FlowModel::new(&[link(1.0)]);
        m.start(1, &[0], 1_000_000, 0, 0, 0); // alone: done at 1 ms
                                              // Admitting a flow far past flow 1's completion must not leap
                                              // over it: flow 1 keeps its true (earlier) completion time and
                                              // surfaces as due immediately.
        m.start(2, &[0], 1_000_000, 0, 0, 5_000_000_000);
        assert_eq!(m.next_event_ps(), Some(5_000_000_000), "overdue delivery is due now");
        let done = m.advance(5_000_000_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 1);
        assert_eq!(done[0].done_ps, 1_000_000_000, "true completion time preserved");
        // Flow 2 then owns the link: 1 ms from its admission.
        assert_eq!(m.next_event_ps(), Some(6_000_000_000));
        assert_eq!(m.advance(6_000_000_000)[0].id, 2);
    }

    #[test]
    fn capacity_change_reprices_in_flight_flows() {
        let mut m = FlowModel::new(&[link(1.0)]);
        m.start(1, &[0], 1_000_000, 0, 0, 0);
        // Halfway through, the link degrades to a quarter bandwidth: the
        // remaining 0.5 MB takes 2 ms instead of 0.5 ms.
        let half = 500_000_000;
        assert!(m.advance(half).is_empty());
        m.set_capacity(0, 0.25);
        assert_eq!(m.next_event_ps(), Some(half + 2_000_000_000));
        assert_eq!(m.advance(half + 2_000_000_000).len(), 1);
    }

    #[test]
    fn partition_stalls_flows_until_capacity_returns() {
        let mut m = FlowModel::new(&[link(1.0)]);
        m.start(1, &[0], 1_000_000, 0, 0, 0);
        let half = 500_000_000;
        assert!(m.advance(half).is_empty());
        m.set_capacity(0, 0.0);
        assert_eq!(m.next_event_ps(), Some(TimePs::MAX), "stalled: no event until recovery");
        // Time passes with no progress.
        assert!(m.advance(half + 1_000_000_000).is_empty());
        m.set_capacity(0, 1.0);
        // The surviving 0.5 MB finishes 0.5 ms after restoration.
        assert_eq!(m.next_event_ps(), Some(half + 1_500_000_000));
        assert_eq!(m.advance(half + 1_500_000_000).len(), 1);
    }

    #[test]
    #[should_panic(expected = "admitted twice")]
    fn duplicate_flow_ids_rejected() {
        let mut m = FlowModel::new(&[link(1.0)]);
        m.start(1, &[0], 10, 0, 0, 0);
        m.start(1, &[0], 10, 0, 0, 0);
    }
}
