//! The inter-replica KV-transfer fabric: named multi-link topologies
//! with a max–min fair-sharing flow model, plus the legacy FIFO wire as
//! a byte-identical discipline.
//!
//! A [`Fabric`] answers one question for the fleet engine: when does a
//! KV transfer committed at its ready time actually land on the decode
//! replica? Two disciplines exist:
//!
//! * **FIFO** ([`Fabric::fifo`]) — the legacy model: each link serves
//!   one transfer at a time, transfers pick the earliest-free link, and
//!   the completion time is known at commit. This replicates the
//!   pre-fabric engine exactly, so existing goldens stay byte-identical.
//! * **Fair** ([`Fabric::fair`]) — transfers become flows over a
//!   [`FabricGraph`] path and share bandwidth max–min fairly
//!   ([`FlowModel`]); completion times emerge from contention and are
//!   delivered through [`Fabric::advance`].
//!
//! The facade keeps the engine's event loop oblivious to which
//! discipline runs: it commits transfers, folds
//! [`next_event_ps`](Fabric::next_event_ps) into its virtual-time
//! horizon, and drains deliveries.

mod flow;
mod graph;

pub use flow::{FlowDone, FlowModel};
pub use graph::{FabricGraph, FabricTopology, NamedLink, RouteSpec};

use llmss_net::LinkSpec;
use llmss_sched::TimePs;

use crate::telemetry::{SimEvent, Telemetry};

/// One legacy FIFO link: serves a single transfer at a time.
#[derive(Debug, Clone, Copy, PartialEq)]
struct FifoLink {
    spec: LinkSpec,
    /// When the link frees up.
    free_ps: TimePs,
    /// Whether a chaos fault has partitioned the link (no bookings
    /// until it recovers).
    down: bool,
}

/// The outcome of committing a transfer to the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricCommit {
    /// FIFO discipline: the transfer is fully booked — the engine can
    /// schedule its arrival immediately.
    Booked {
        /// The link that carries the transfer.
        link: usize,
        /// When the transfer won its link.
        start_ps: TimePs,
        /// When the KV cache lands on the decode replica.
        done_ps: TimePs,
        /// Uncontended transfer time on that link (queueing excluded).
        nominal_ps: TimePs,
    },
    /// Fair discipline: the transfer is a flow in flight — its delivery
    /// arrives later through [`Fabric::advance`].
    InFlight {
        /// When the flow entered the fabric.
        start_ps: TimePs,
        /// Uncontended whole-path transfer time.
        nominal_ps: TimePs,
    },
}

/// Per-link usage for the report's fabric section.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkUsage {
    /// The link's display name.
    pub name: String,
    /// Nominal bandwidth in GB/s.
    pub bw_gbps: f64,
    /// Bytes the link carried over the whole run.
    pub carried_bytes: f64,
}

/// The fabric's contribution to the fleet report: what ran, over which
/// links, carrying how much. Only the fair discipline produces stats —
/// the FIFO wire keeps legacy reports byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricStats {
    /// The topology's display label (`star4`, `hier2x2`, ...).
    pub label: String,
    /// Per-link usage, in link order.
    pub links: Vec<LinkUsage>,
}

/// The transfer discipline behind the facade.
#[derive(Debug)]
enum FabricMode {
    Fifo { links: Vec<FifoLink> },
    Fair { label: String, graph: FabricGraph, model: FlowModel },
}

/// The inter-replica KV-transfer fabric behind the fleet engine.
#[derive(Debug)]
pub struct Fabric {
    mode: FabricMode,
    /// Flow/link event sink handle (off by default).
    telemetry: Telemetry,
}

impl Fabric {
    /// The legacy FIFO discipline over independent links: each transfer
    /// books the earliest-free link (lowest index on ties) whole. An
    /// empty link list means "no fabric" (a fleet without KV handoffs).
    pub fn fifo(links: Vec<LinkSpec>) -> Self {
        Self {
            mode: FabricMode::Fifo {
                links: links
                    .into_iter()
                    .map(|spec| FifoLink { spec, free_ps: 0, down: false })
                    .collect(),
            },
            telemetry: Telemetry::off(),
        }
    }

    /// The fair-sharing discipline over a topology graph, displayed
    /// under `label` in reports.
    pub fn fair(label: impl Into<String>, graph: FabricGraph) -> Self {
        let model = FlowModel::new(&graph.links().iter().map(|l| l.spec).collect::<Vec<_>>());
        Self {
            mode: FabricMode::Fair { label: label.into(), graph, model },
            telemetry: Telemetry::off(),
        }
    }

    /// Attaches an event sink: the fabric emits flow start/finish and
    /// per-link carried-bytes (re-share) events.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Whether the fabric has any link to ship KV caches over.
    pub fn has_links(&self) -> bool {
        match &self.mode {
            FabricMode::Fifo { links } => !links.is_empty(),
            FabricMode::Fair { .. } => true,
        }
    }

    /// The replica count the fabric routes between — `None` for the
    /// FIFO discipline, whose links are endpoint-agnostic.
    pub fn endpoints(&self) -> Option<usize> {
        match &self.mode {
            FabricMode::Fifo { .. } => None,
            FabricMode::Fair { graph, .. } => Some(graph.endpoints()),
        }
    }

    /// Commits one KV transfer of `bytes` from replica `from` to
    /// replica `to`, ready to ship at `ready_ps`. FIFO returns the full
    /// booking; fair admits a flow whose delivery surfaces later via
    /// [`advance`](Self::advance).
    ///
    /// # Panics
    ///
    /// Panics when the fabric has no links, or (fair) when an endpoint
    /// lies outside the graph or the id was committed twice.
    pub fn commit(
        &mut self,
        id: u64,
        from: usize,
        to: usize,
        bytes: u64,
        ready_ps: TimePs,
    ) -> FabricCommit {
        match &mut self.mode {
            FabricMode::Fifo { links } => {
                // Earliest-free link, lowest index on ties (a single
                // link degenerates to the classic shared-FIFO wire).
                let link = links
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| !l.down)
                    .min_by_key(|(i, l)| (l.free_ps, *i))
                    .map(|(i, _)| i)
                    .expect("a transfer committed with every link partitioned"); // llmss-lint: allow(p001, reason = "commit only books transfers whose path has a live link")
                let start_ps = ready_ps.max(links[link].free_ps);
                let nominal_ps = links[link].spec.transfer_ps(bytes);
                let done_ps = start_ps + nominal_ps;
                links[link].free_ps = done_ps;
                // FIFO bookings resolve at commit, so the whole flow
                // lifecycle (and its link occupancy) is emitted here.
                self.telemetry.emit(|| SimEvent::FlowStart { t_ps: start_ps, id, bytes });
                self.telemetry.emit(|| SimEvent::FlowEnd { t_ps: done_ps, id });
                self.telemetry.emit(|| SimEvent::LinkShare {
                    from_ps: start_ps,
                    to_ps: done_ps,
                    link: format!("link{link}"),
                    bw_gbps: links[link].spec.bw_gbps,
                    bytes: bytes as f64,
                });
                FabricCommit::Booked { link, start_ps, done_ps, nominal_ps }
            }
            FabricMode::Fair { graph, model, .. } => {
                let path = graph.path(from, to);
                let latency_ps = graph.path_latency_ps(&path);
                let nominal_ps = graph.nominal_ps(&path, bytes);
                // The engine commits in nondecreasing ready order, but a
                // burst of same-instant commits may interleave with
                // deliveries; never start behind the fabric clock.
                let start_ps = ready_ps.max(model.now_ps());
                model.start(id, &path, bytes, latency_ps, nominal_ps, start_ps);
                self.telemetry.emit(|| SimEvent::FlowStart { t_ps: start_ps, id, bytes });
                FabricCommit::InFlight { start_ps, nominal_ps }
            }
        }
    }

    /// The next time anything happens inside the fabric (fair only:
    /// a flow finishes serializing or gets delivered). `None` for FIFO
    /// — bookings resolve at commit — or an idle fabric.
    pub fn next_event_ps(&self) -> Option<TimePs> {
        match &self.mode {
            FabricMode::Fifo { .. } => None,
            FabricMode::Fair { model, .. } => model.next_event_ps(),
        }
    }

    /// Advances the fair fabric to `t`, returning every flow delivered
    /// by then in id order. A no-op (empty) for FIFO.
    pub fn advance(&mut self, t: TimePs) -> Vec<FlowDone> {
        match &mut self.mode {
            FabricMode::Fifo { .. } => Vec::new(),
            FabricMode::Fair { graph, model, .. } => {
                if !self.telemetry.is_on() {
                    return model.advance(t);
                }
                // Deltas of the carried-bytes integrals over this
                // advance are exactly what each link shipped in
                // [now, t] under the current fair shares.
                let from_ps = model.now_ps();
                let before: Vec<f64> = model.carried_bytes().to_vec();
                let done = model.advance(t);
                let to_ps = model.now_ps();
                for d in &done {
                    self.telemetry.emit(|| SimEvent::FlowEnd { t_ps: d.done_ps, id: d.id });
                }
                for (i, (link, &after)) in
                    graph.links().iter().zip(model.carried_bytes()).enumerate()
                {
                    let delta = after - before[i];
                    if delta > 0.0 {
                        self.telemetry.emit(|| SimEvent::LinkShare {
                            from_ps,
                            to_ps,
                            link: link.name.clone(),
                            bw_gbps: link.spec.bw_gbps,
                            bytes: delta,
                        });
                    }
                }
                done
            }
        }
    }

    /// The fair fabric's clock — the last recompute point (0 for FIFO,
    /// which keeps no clock).
    pub fn now_ps(&self) -> TimePs {
        match &self.mode {
            FabricMode::Fifo { .. } => 0,
            FabricMode::Fair { model, .. } => model.now_ps(),
        }
    }

    /// Flows currently in the fair fabric (always 0 for FIFO).
    pub fn in_flight(&self) -> usize {
        match &self.mode {
            FabricMode::Fifo { .. } => 0,
            FabricMode::Fair { model, .. } => model.in_flight(),
        }
    }

    /// How many links the fabric runs over (0 = no fabric).
    pub fn link_count(&self) -> usize {
        match &self.mode {
            FabricMode::Fifo { links } => links.len(),
            FabricMode::Fair { graph, .. } => graph.links().len(),
        }
    }

    /// The current bandwidth of link `link` in GB/s — zero for a
    /// partitioned FIFO link or a zero-capacity fair link.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range link.
    pub fn link_bw_gbps(&self, link: usize) -> f64 {
        match &self.mode {
            FabricMode::Fifo { links } => {
                if links[link].down {
                    0.0
                } else {
                    links[link].spec.bw_gbps
                }
            }
            FabricMode::Fair { model, .. } => model.capacities()[link] * 1000.0,
        }
    }

    /// Re-prices link `link` to `gbps` mid-run (chaos degradation).
    /// Zero partitions the link: FIFO stops booking it until a non-zero
    /// bandwidth restores it; the fair model stalls flows crossing it.
    /// FIFO degradation re-prices future bookings only — a booked FIFO
    /// transfer models an already-scheduled DMA.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range link or an invalid bandwidth.
    pub fn set_link_bw_gbps(&mut self, link: usize, gbps: f64) {
        assert!(gbps.is_finite() && gbps >= 0.0, "link {link} given invalid bandwidth {gbps}");
        match &mut self.mode {
            FabricMode::Fifo { links } => {
                let l = links.get_mut(link).expect("link index inside the fabric"); // llmss-lint: allow(p001, reason = "link indices come from the fabric's own route table")
                if gbps > 0.0 {
                    l.spec.bw_gbps = gbps;
                    l.down = false;
                } else {
                    l.down = true;
                }
            }
            FabricMode::Fair { model, .. } => model.set_capacity(link, gbps),
        }
    }

    /// Whether every FIFO link is partitioned — no booking can proceed
    /// until one recovers. Always `false` for the fair discipline,
    /// whose commits admit flows that simply stall.
    pub fn fully_partitioned(&self) -> bool {
        match &self.mode {
            FabricMode::Fifo { links } => !links.is_empty() && links.iter().all(|l| l.down),
            FabricMode::Fair { .. } => false,
        }
    }

    /// The fabric's report contribution — `Some` only for the fair
    /// discipline, so FIFO-configured fleets keep byte-identical legacy
    /// reports.
    pub fn stats(&self) -> Option<FabricStats> {
        match &self.mode {
            FabricMode::Fifo { .. } => None,
            FabricMode::Fair { label, graph, model } => Some(FabricStats {
                label: label.clone(),
                links: graph
                    .links()
                    .iter()
                    .zip(model.carried_bytes())
                    .map(|(l, &carried)| LinkUsage {
                        name: l.name.clone(),
                        bw_gbps: l.spec.bw_gbps,
                        carried_bytes: carried,
                    })
                    .collect(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_books_earliest_free_link_with_tie_toward_lowest_index() {
        let link = LinkSpec::new(1.0, 0.0);
        let mut f = Fabric::fifo(vec![link, link]);
        // 1 MB at 1 GB/s = 1 ms on either link.
        let FabricCommit::Booked { link: l0, start_ps, done_ps, .. } =
            f.commit(1, 0, 1, 1_000_000, 0)
        else {
            panic!("fifo commits book");
        };
        assert_eq!((l0, start_ps, done_ps), (0, 0, 1_000_000_000));
        // Second transfer takes the idle link 1; third queues behind
        // whichever frees first (link 0).
        let FabricCommit::Booked { link: l1, .. } = f.commit(2, 0, 1, 1_000_000, 0) else {
            panic!()
        };
        assert_eq!(l1, 1);
        let FabricCommit::Booked { link: l2, start_ps, .. } = f.commit(3, 0, 1, 1_000_000, 0)
        else {
            panic!()
        };
        assert_eq!((l2, start_ps), (0, 1_000_000_000));
        assert!(f.stats().is_none(), "FIFO contributes no report section");
        assert_eq!(f.next_event_ps(), None);
    }

    #[test]
    fn fifo_partition_diverts_bookings_until_restored() {
        let link = LinkSpec::new(1.0, 0.0);
        let mut f = Fabric::fifo(vec![link, link]);
        f.set_link_bw_gbps(0, 0.0);
        assert!(!f.fully_partitioned());
        assert_eq!(f.link_bw_gbps(0), 0.0);
        let FabricCommit::Booked { link: l, .. } = f.commit(1, 0, 1, 1_000_000, 0) else {
            panic!()
        };
        assert_eq!(l, 1, "bookings avoid the partitioned link");
        f.set_link_bw_gbps(1, 0.0);
        assert!(f.fully_partitioned());
        // Recovery at a degraded bandwidth re-prices future bookings.
        f.set_link_bw_gbps(0, 2.0);
        assert!(!f.fully_partitioned());
        assert_eq!(f.link_bw_gbps(0), 2.0);
        let FabricCommit::Booked { link: l, nominal_ps, .. } = f.commit(2, 0, 1, 1_000_000, 0)
        else {
            panic!()
        };
        assert_eq!(l, 0);
        assert_eq!(nominal_ps, 500_000_000, "1 MB at 2 GB/s");
    }

    #[test]
    fn fair_flows_round_trip_through_the_facade() {
        let g = FabricGraph::single(2, LinkSpec::new(1.0, 0.0));
        let mut f = Fabric::fair("single", g);
        let FabricCommit::InFlight { start_ps, nominal_ps } = f.commit(7, 0, 1, 1_000_000, 5)
        else {
            panic!("fair commits stay in flight");
        };
        assert_eq!((start_ps, nominal_ps), (5, 1_000_000_000));
        assert_eq!(f.in_flight(), 1);
        let t = f.next_event_ps().expect("one flow pending");
        let done = f.advance(t);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 7);
        assert_eq!(done[0].done_ps, 5 + 1_000_000_000);
        let stats = f.stats().expect("fair reports per-link usage");
        assert_eq!(stats.label, "single");
        assert_eq!(stats.links.len(), 1);
        assert!((stats.links[0].carried_bytes - 1_000_000.0).abs() < 1.0);
    }
}
