//! Computation-reuse caches (paper Section IV-C), at two granularities.
//!
//! LLMServingSim avoids re-running the compiler and hardware simulator by
//! caching results keyed on operator signatures. Two redundancies feed the
//! per-operator [`ReuseCache`]:
//!
//! * **Model redundancy**: all transformer blocks share one template, so a
//!   block compiles once and replicates (`n_layers - 1` free hits per op).
//! * **Iteration redundancy**: non-attention operators keep the same shapes
//!   across decode iterations (only attention shapes track the KV length),
//!   so prior iterations' results keep serving.
//!
//! The [`IterationCache`] extends the same idea from operators to whole
//! iterations: a [`BatchSignature`] keys the complete outcome (makespan,
//! event/op counts, per-stage timing) of an iteration, so a steady-state
//! decode step whose signature recurs skips graph construction *and* the
//! network DES entirely. With unit KV buckets the signature is exact and
//! memoized runs are bit-identical to unmemoized ones; coarser buckets
//! trade bounded fidelity for hit rate.
//!
//! Both caches hash through the hand-rolled FNV-1a hasher
//! ([`llmss_model::FnvHashMap`]) — these are trusted, short, deterministic
//! keys on the hottest path in the simulator, where SipHash is wasted
//! defense.

use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use llmss_model::{BatchSignature, FnvHashMap, OpSignature, SigLayout, SignatureBuilder};
use llmss_net::{SimOutcome, TimePs};
use llmss_sched::IterationBatch;
use serde::{Deserialize, Serialize};

use crate::DeviceKind;

/// Poison-tolerant read lock: a poisoned shared cache only means
/// another thread panicked mid-publish, and the map itself is always
/// left consistent (publishes are per-entry inserts) — propagating a
/// second panic would just mask the first.
fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    match lock.read() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Poison-tolerant write lock — see [`read_lock`].
fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    match lock.write() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Folds a signature-layout KV bucket into a configuration fingerprint.
///
/// Replicas annealing under [`BucketAdaptivity`] can reach different
/// bucket widths at the same virtual time; a signature built under a
/// 4-token bucket must never answer for one built under 8 tokens even
/// though the two `BatchSignature` values can collide. Namespacing the
/// shared maps by `(config fingerprint ⊕ bucket)` makes cross-bucket
/// aliasing structurally impossible.
fn bucket_fingerprint(base: u64, kv_bucket: u32) -> u64 {
    const FNV_PRIME: u64 = 0x1000_0000_01b3;
    let mut hash = base;
    for byte in kv_bucket.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The cross-replica shared reuse tier: one iteration-outcome map and
/// one operator-price map, shared by every replica of a fleet. Entries
/// are namespaced by a [`SimConfig::fingerprint`](crate::SimConfig::fingerprint)
/// (mixed with the live KV bucket width), so only replicas whose
/// configurations agree — for which cached outcomes are pure functions
/// of the signature — ever exchange entries.
///
/// # Determinism contract
///
/// Replicas never write through this handle mid-iteration. Locally
/// discovered entries accumulate in a per-replica `fresh` buffer and
/// publish (first write wins) only when the owning driver calls
/// `publish_shared` — the fleet engine does so at its global sync
/// points (admission, transfer commit, control ticks, faults), in
/// replica-index order. Between sync points every lookup sees the same
/// frozen snapshot regardless of replica stepping order or thread
/// count, which keeps hit/miss counters byte-deterministic under
/// sharded stepping.
#[derive(Debug, Clone, Default)]
pub struct SharedReuse {
    /// `fingerprint → batch signature → iteration outcome`.
    iterations: Arc<RwLock<FnvHashMap<u64, FnvHashMap<BatchSignature, IterationOutcome>>>>,
    /// `fingerprint → (device, op signature) → price`.
    ops: Arc<RwLock<FnvHashMap<u64, OpPriceMap>>>,
}

/// Published operator prices for one config fingerprint.
type OpPriceMap = FnvHashMap<(DeviceKind, OpSignature), TimePs>;

impl SharedReuse {
    /// An empty shared tier, ready to be attached to any number of
    /// replica caches (the handle clones cheaply — it is two `Arc`s).
    pub fn new() -> Self {
        Self::default()
    }

    /// Iteration outcomes currently published, across all fingerprints.
    pub fn iteration_entries(&self) -> usize {
        read_lock(&self.iterations).values().map(FnvHashMap::len).sum()
    }

    /// Operator prices currently published, across all fingerprints.
    pub fn op_entries(&self) -> usize {
        read_lock(&self.ops).values().map(FnvHashMap::len).sum()
    }
}

/// Hit/miss counters, split by attention vs non-attention operators so the
/// evaluation can show where the savings come from, plus whole-iteration
/// memoization counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReuseStats {
    /// Cache hits on attention operators.
    pub attention_hits: u64,
    /// Cache misses on attention operators.
    pub attention_misses: u64,
    /// Cache hits on non-attention operators.
    pub other_hits: u64,
    /// Cache misses on non-attention operators.
    pub other_misses: u64,
    /// Iterations served wholesale from the iteration-outcome cache
    /// (graph construction and network DES skipped).
    pub iteration_hits: u64,
    /// Iterations simulated in full and inserted into the cache.
    pub iteration_misses: u64,
    /// Iterations that bypassed the cache (KV paging traffic in the
    /// batch, or memoization disabled).
    pub iteration_uncacheable: u64,
    /// KV bucket granularity at the end of the run, in tokens (0 when no
    /// iteration cache reported; annealed upward by adaptive bucketing —
    /// fleet merges take the maximum across replicas).
    pub kv_bucket_end: u32,
    /// Iterations answered by the fleet-wide shared tier after a local
    /// miss — a subset of `iteration_hits`. Zero (and absent from
    /// summaries) unless a [`SharedReuse`] handle was attached.
    pub shared_hits: u64,
    /// Whether a cross-replica shared cache was attached this run. Gates
    /// the shared-tier fields out of summaries so artifacts from
    /// un-shared runs stay byte-identical.
    pub shared_armed: bool,
}

impl ReuseStats {
    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.attention_hits + self.other_hits
    }

    /// Total misses (engine executions actually performed).
    pub fn misses(&self) -> u64 {
        self.attention_misses + self.other_misses
    }

    /// Hit rate in [0, 1] (0 when nothing was priced).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            return 0.0;
        }
        self.hits() as f64 / total as f64
    }

    /// Total iterations the simulator ran.
    pub fn iterations(&self) -> u64 {
        self.iteration_hits + self.iteration_misses + self.iteration_uncacheable
    }

    /// Fraction of iterations served wholesale from the iteration cache
    /// (0 when no iterations ran). Uncacheable iterations count against
    /// the rate — they paid the full miss path. With a shared cache
    /// attached this is the *fleet-wide* rate (local + shared tiers);
    /// [`local_iteration_hit_rate`](Self::local_iteration_hit_rate)
    /// isolates what each replica's private cache answered alone.
    pub fn iteration_hit_rate(&self) -> f64 {
        let total = self.iterations();
        if total == 0 {
            return 0.0;
        }
        self.iteration_hits as f64 / total as f64
    }

    /// Fraction of iterations the replica-private cache tier answered by
    /// itself (shared-tier hits excluded) — the per-replica half of the
    /// split that shows how much of the win the shared cache added.
    pub fn local_iteration_hit_rate(&self) -> f64 {
        let total = self.iterations();
        if total == 0 {
            return 0.0;
        }
        (self.iteration_hits - self.shared_hits) as f64 / total as f64
    }

    /// JSON object with raw counters and derived rates, for the
    /// machine-readable `-summary.json` artifacts.
    pub fn json_value(&self) -> serde::Value {
        use serde::Value;
        let mut fields = vec![
            ("attention_hits", Value::Int(i128::from(self.attention_hits))),
            ("attention_misses", Value::Int(i128::from(self.attention_misses))),
            ("other_hits", Value::Int(i128::from(self.other_hits))),
            ("other_misses", Value::Int(i128::from(self.other_misses))),
            ("iteration_hits", Value::Int(i128::from(self.iteration_hits))),
            ("iteration_misses", Value::Int(i128::from(self.iteration_misses))),
            ("iteration_uncacheable", Value::Int(i128::from(self.iteration_uncacheable))),
            ("hit_rate", Value::Float(self.hit_rate())),
            ("iteration_hit_rate", Value::Float(self.iteration_hit_rate())),
            ("kv_bucket_end", Value::Int(i128::from(self.kv_bucket_end))),
        ];
        // Shared-tier fields appear only when a shared cache was armed,
        // so artifacts from un-shared runs keep their historical bytes.
        if self.shared_armed {
            fields.push(("shared_hits", Value::Int(i128::from(self.shared_hits))));
            fields.push((
                "local_iteration_hit_rate",
                Value::Float(self.local_iteration_hit_rate()),
            ));
        }
        crate::json::obj(fields)
    }

    /// Folds another stats block into this one (fleet-level aggregation).
    pub fn merge(&mut self, other: &ReuseStats) {
        self.attention_hits += other.attention_hits;
        self.attention_misses += other.attention_misses;
        self.other_hits += other.other_hits;
        self.other_misses += other.other_misses;
        self.iteration_hits += other.iteration_hits;
        self.iteration_misses += other.iteration_misses;
        self.iteration_uncacheable += other.iteration_uncacheable;
        self.kv_bucket_end = self.kv_bucket_end.max(other.kv_bucket_end);
        self.shared_hits += other.shared_hits;
        self.shared_armed |= other.shared_armed;
    }
}

/// The compile+simulation result cache.
///
/// Keys combine the target device with the operator signature, so an op
/// priced on the NPU never answers for the same shape on PIM. The cache can
/// be disabled (`enabled = false`) to reproduce the paper's "w/o reuse"
/// configurations — lookups then always miss but statistics still count.
///
/// # Examples
///
/// ```
/// use llmss_core::{DeviceKind, ReuseCache};
/// use llmss_model::{Op, OpDims, OpKind};
///
/// let mut cache = ReuseCache::new(true);
/// let op = Op::new(OpKind::QkvGen, OpDims::matmul(64, 768, 2304), 2);
/// let mut executions = 0;
/// for _ in 0..10 {
///     cache.price(DeviceKind::Npu, &op.signature(), op.kind.is_attention(), || {
///         executions += 1;
///         12_345
///     });
/// }
/// assert_eq!(executions, 1); // nine hits
/// assert_eq!(cache.stats().hits(), 9);
/// ```
#[derive(Debug, Clone)]
pub struct ReuseCache {
    enabled: bool,
    entries: FnvHashMap<(DeviceKind, OpSignature), TimePs>,
    stats: ReuseStats,
    /// The cross-replica tier, consulted after a local miss. Shared op
    /// hits count as ordinary hits — an op price is a pure function of
    /// `(device, signature)` within one config fingerprint, so where the
    /// answer came from is invisible to simulated outcomes.
    shared: Option<SharedReuse>,
    /// The fingerprint namespace this cache publishes under.
    fingerprint: u64,
    /// Locally executed prices not yet published to the shared tier.
    fresh: Vec<(DeviceKind, OpSignature, TimePs)>,
}

impl ReuseCache {
    /// Creates a cache; `enabled = false` forces every lookup to miss.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            entries: FnvHashMap::default(),
            stats: ReuseStats::default(),
            shared: None,
            fingerprint: 0,
            fresh: Vec::new(),
        }
    }

    /// Attaches the cross-replica tier under `fingerprint`'s namespace.
    /// A disabled cache ignores the tier (lookups never consult it).
    pub fn attach_shared(&mut self, shared: SharedReuse, fingerprint: u64) {
        self.shared = Some(shared);
        self.fingerprint = fingerprint;
    }

    /// Publishes locally executed prices to the shared tier (first
    /// write wins) — called by drivers at global sync points only; see
    /// [`SharedReuse`]'s determinism contract.
    pub fn publish_shared(&mut self) {
        let Some(shared) = &self.shared else {
            return;
        };
        if self.fresh.is_empty() {
            return;
        }
        let mut map = write_lock(&shared.ops);
        let namespace = map.entry(self.fingerprint).or_default();
        for (device, signature, ps) in self.fresh.drain(..) {
            namespace.entry((device, signature)).or_insert(ps);
        }
    }

    /// Whether reuse is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Returns the cached latency or computes it via `execute`.
    pub fn price(
        &mut self,
        device: DeviceKind,
        signature: &OpSignature,
        is_attention: bool,
        execute: impl FnOnce() -> TimePs,
    ) -> TimePs {
        if self.enabled {
            if let Some(&ps) = self.entries.get(&(device, *signature)) {
                if is_attention {
                    self.stats.attention_hits += 1;
                } else {
                    self.stats.other_hits += 1;
                }
                return ps;
            }
            // Local miss: the fleet may already have priced this op.
            // Promote shared answers into the local tier so the read
            // lock is taken at most once per (device, signature).
            if let Some(shared) = &self.shared {
                let answer = read_lock(&shared.ops)
                    .get(&self.fingerprint)
                    .and_then(|ns| ns.get(&(device, *signature)).copied());
                if let Some(ps) = answer {
                    self.entries.insert((device, *signature), ps);
                    if is_attention {
                        self.stats.attention_hits += 1;
                    } else {
                        self.stats.other_hits += 1;
                    }
                    return ps;
                }
            }
        }
        if is_attention {
            self.stats.attention_misses += 1;
        } else {
            self.stats.other_misses += 1;
        }
        let ps = execute();
        if self.enabled {
            self.entries.insert((device, *signature), ps);
            if self.shared.is_some() {
                self.fresh.push((device, *signature, ps));
            }
        }
        ps
    }

    /// Cached entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> ReuseStats {
        self.stats
    }

    /// Clears entries and statistics (unpublished fresh prices too; the
    /// shared tier itself is untouched — other replicas own it equally).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.stats = ReuseStats::default();
        self.fresh.clear();
    }
}

/// Everything a driver needs to record an iteration without re-deriving
/// it: the simulated makespan plus the bookkeeping the reports surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IterationOutcome {
    /// Simulated iteration latency (graph makespan).
    pub makespan_ps: TimePs,
    /// Execution-graph operations the iteration comprised.
    pub graph_ops: usize,
    /// Network-simulator events the DES processed.
    pub net_events: u64,
    /// Aggregate time in compute operators.
    pub compute_ps: TimePs,
    /// Aggregate time in communication operators (collectives + P2P).
    pub comm_ps: TimePs,
    /// Aggregate time in host memory transfers.
    pub host_ps: TimePs,
}

impl IterationOutcome {
    /// Captures the cacheable facts of a simulated graph.
    pub fn capture(outcome: &SimOutcome, graph_ops: usize) -> Self {
        Self {
            makespan_ps: outcome.makespan_ps,
            graph_ops,
            net_events: outcome.events,
            compute_ps: outcome.compute_ps,
            comm_ps: outcome.comm_ps,
            host_ps: outcome.host_ps,
        }
    }
}

/// Annealing policy for the iteration-signature KV bucket (the
/// [`KvBucket::Adaptive`](crate::KvBucket) machinery).
///
/// The cache starts at `min_tokens`-wide buckets. Every `window`
/// cacheable iterations it checks the window's hit rate: below
/// `target_hit_rate` the bucket doubles (clamped to the `max_tokens`
/// drift budget) and the cache clears — keys built under the old
/// granularity would alias under the new one. The bucket only grows, so
/// a trace that settles into steady state keeps its fidelity while a
/// signature-diverse trace anneals toward reuse.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketAdaptivity {
    /// Starting (and minimum) bucket width in tokens.
    pub min_tokens: u32,
    /// The drift budget: the bucket never grows beyond this width.
    pub max_tokens: u32,
    /// Window hit rate below which the bucket doubles.
    pub target_hit_rate: f64,
    /// Cacheable iterations per observation window.
    pub window: u64,
}

/// What [`IterationCache::lookup_batch`] found for an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterationLookup {
    /// The outcome was cached: skip graph construction and the DES.
    Hit(IterationOutcome),
    /// The batch is cacheable but cold — simulate, then call
    /// [`IterationCache::insert_current`].
    Miss,
    /// The batch cannot be cached (memoization disabled, or KV paging
    /// traffic in the batch) — simulate, nothing to insert.
    Uncacheable,
}

/// The iteration-outcome memoization cache.
///
/// Holds the [`SigLayout`] describing what the owning simulator's graph
/// converter is sensitive to, and maps [`BatchSignature`]s to
/// [`IterationOutcome`]s. The driver protocol per iteration is
/// [`lookup_batch`](Self::lookup_batch) on the freshly formed batch,
/// then — only on [`IterationLookup::Miss`] — simulate in full and
/// [`insert_current`](Self::insert_current) the outcome. The signature
/// is built into a scratch key reused across iterations and only cloned
/// on the (rare) miss path, so the hit path allocates nothing.
///
/// # Examples
///
/// ```
/// use llmss_core::{IterationCache, IterationLookup};
/// use llmss_model::{SeqSlot, SigLayout};
/// use llmss_sched::IterationBatch;
///
/// let mut cache = IterationCache::new(true, SigLayout::exact());
/// let batch = IterationBatch {
///     slots: vec![SeqSlot::decode(0, 128)],
///     evictions: vec![],
///     reloads: vec![],
/// };
/// assert_eq!(cache.lookup_batch(&batch), IterationLookup::Miss); // cold
/// ```
#[derive(Debug, Clone)]
pub struct IterationCache {
    enabled: bool,
    layout: SigLayout,
    entries: FnvHashMap<BatchSignature, IterationOutcome>,
    /// Reusable signature builder (sort-permutation scratch).
    builder: SignatureBuilder,
    /// The current batch's signature, rebuilt in place each iteration.
    key: BatchSignature,
    hits: u64,
    misses: u64,
    uncacheable: u64,
    /// Bucket annealing policy (`None`: the bucket stays fixed).
    adapt: Option<BucketAdaptivity>,
    /// Cacheable lookups and hits in the current observation window.
    window_lookups: u64,
    window_hits: u64,
    /// The cross-replica tier, consulted after a local miss.
    shared: Option<SharedReuse>,
    /// The configuration fingerprint this cache shares under (mixed
    /// with the live KV bucket — see [`bucket_fingerprint`]).
    fingerprint: u64,
    /// Hits answered by the shared tier (subset of `hits`).
    shared_hits: u64,
    /// Locally simulated outcomes not yet published to the shared tier,
    /// stamped with the bucket fingerprint they were signed under.
    fresh: Vec<(u64, BatchSignature, IterationOutcome)>,
}

impl IterationCache {
    /// Creates a cache for a simulator whose converter matches `layout`;
    /// `enabled = false` turns every iteration into an uncacheable one.
    pub fn new(enabled: bool, layout: SigLayout) -> Self {
        Self {
            enabled,
            layout,
            entries: FnvHashMap::default(),
            builder: SignatureBuilder::new(),
            key: BatchSignature::empty(),
            hits: 0,
            misses: 0,
            uncacheable: 0,
            adapt: None,
            window_lookups: 0,
            window_hits: 0,
            shared: None,
            fingerprint: 0,
            shared_hits: 0,
            fresh: Vec::new(),
        }
    }

    /// Attaches the cross-replica tier under `fingerprint`'s namespace.
    /// A disabled cache ignores the tier (lookups never consult it).
    pub fn attach_shared(&mut self, shared: SharedReuse, fingerprint: u64) {
        self.shared = Some(shared);
        self.fingerprint = fingerprint;
    }

    /// Whether a shared tier is attached.
    pub fn shared_armed(&self) -> bool {
        self.shared.is_some()
    }

    /// Publishes locally simulated outcomes to the shared tier (first
    /// write wins) — called by drivers at global sync points only; see
    /// [`SharedReuse`]'s determinism contract.
    pub fn publish_shared(&mut self) {
        let Some(shared) = &self.shared else {
            return;
        };
        if self.fresh.is_empty() {
            return;
        }
        let mut map = write_lock(&shared.iterations);
        for (fingerprint, signature, outcome) in self.fresh.drain(..) {
            map.entry(fingerprint).or_default().entry(signature).or_insert(outcome);
        }
    }

    /// Enables KV-bucket annealing: the layout's bucket starts at
    /// `adapt.min_tokens` and doubles toward `adapt.max_tokens` whenever
    /// an observation window's hit rate falls below the target.
    pub fn with_adaptivity(mut self, adapt: BucketAdaptivity) -> Self {
        self.layout = self.layout.kv_bucket(adapt.min_tokens);
        self.adapt = Some(adapt);
        self
    }

    /// The KV bucket the cache currently signs under, in tokens.
    pub fn kv_bucket_tokens(&self) -> u32 {
        self.layout.kv_bucket
    }

    /// Closes an observation window if it is full: doubles the bucket
    /// (and drops the now-aliasing entries) when the window's hit rate
    /// missed the target. Runs *before* the next signature is built, so
    /// a lookup and its paired [`insert_current`](Self::insert_current)
    /// always share one granularity.
    fn maybe_adapt(&mut self) {
        let Some(adapt) = self.adapt else {
            return;
        };
        if self.window_lookups < adapt.window {
            return;
        }
        let rate = self.window_hits as f64 / self.window_lookups as f64;
        if rate < adapt.target_hit_rate && self.layout.kv_bucket < adapt.max_tokens {
            let next = self.layout.kv_bucket.saturating_mul(2).min(adapt.max_tokens);
            self.layout = self.layout.kv_bucket(next);
            // Keys built under the old granularity would alias under the
            // new one — a stale entry must never answer for a batch it
            // does not represent.
            self.entries.clear();
        }
        self.window_lookups = 0;
        self.window_hits = 0;
    }

    /// Whether memoization is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The signature layout this cache keys under.
    pub fn layout(&self) -> &SigLayout {
        &self.layout
    }

    /// Signs `batch` into the reusable scratch key and looks it up,
    /// counting a hit, miss, or uncacheable iteration.
    pub fn lookup_batch(&mut self, batch: &IterationBatch) -> IterationLookup {
        if !self.enabled || !batch.is_steady() {
            self.uncacheable += 1;
            return IterationLookup::Uncacheable;
        }
        self.maybe_adapt();
        self.window_lookups += 1;
        self.builder.build_into(&batch.slots, &self.layout, &mut self.key);
        if let Some(out) = self.entries.get(&self.key) {
            self.hits += 1;
            self.window_hits += 1;
            return IterationLookup::Hit(*out);
        }
        // Local miss: another replica may already have simulated this
        // signature. A shared answer is promoted into the local tier so
        // recurring steady-state signatures stop taking the read lock.
        if let Some(shared) = &self.shared {
            let namespace = bucket_fingerprint(self.fingerprint, self.layout.kv_bucket);
            let answer = read_lock(&shared.iterations)
                .get(&namespace)
                .and_then(|ns| ns.get(&self.key).copied());
            if let Some(out) = answer {
                self.entries.insert(self.key.clone(), out);
                self.hits += 1;
                self.window_hits += 1;
                self.shared_hits += 1;
                return IterationLookup::Hit(out);
            }
        }
        self.misses += 1;
        IterationLookup::Miss
    }

    /// Stores `outcome` under the signature built by the last
    /// [`lookup_batch`](Self::lookup_batch) (which must have returned
    /// [`IterationLookup::Miss`]); the scratch key is cloned here, on
    /// the one path that has to own it.
    pub fn insert_current(&mut self, outcome: IterationOutcome) {
        self.entries.insert(self.key.clone(), outcome);
        if self.shared.is_some() {
            let namespace = bucket_fingerprint(self.fingerprint, self.layout.kv_bucket);
            self.fresh.push((namespace, self.key.clone(), outcome));
        }
    }

    /// Cached iteration count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Folds this cache's counters into a stats block.
    pub fn fill_stats(&self, stats: &mut ReuseStats) {
        stats.iteration_hits = self.hits;
        stats.iteration_misses = self.misses;
        stats.iteration_uncacheable = self.uncacheable;
        stats.kv_bucket_end = self.layout.kv_bucket;
        stats.shared_hits = self.shared_hits;
        stats.shared_armed = self.shared.is_some();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmss_model::{Op, OpDims, OpKind};

    fn sig(m: usize) -> OpSignature {
        Op::new(OpKind::QkvGen, OpDims::matmul(m, 64, 192), 2).signature()
    }

    #[test]
    fn disabled_cache_always_misses() {
        let mut c = ReuseCache::new(false);
        let mut execs = 0;
        for _ in 0..5 {
            c.price(DeviceKind::Npu, &sig(8), false, || {
                execs += 1;
                1
            });
        }
        assert_eq!(execs, 5);
        assert_eq!(c.stats().hits(), 0);
        assert_eq!(c.stats().misses(), 5);
        assert!(c.is_empty());
    }

    #[test]
    fn device_keys_are_distinct() {
        let mut c = ReuseCache::new(true);
        let s = sig(8);
        c.price(DeviceKind::Npu, &s, false, || 100);
        let pim = c.price(DeviceKind::Pim, &s, false, || 200);
        assert_eq!(pim, 200);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn attention_split_in_stats() {
        let mut c = ReuseCache::new(true);
        c.price(DeviceKind::Npu, &sig(1), true, || 1);
        c.price(DeviceKind::Npu, &sig(1), true, || 1);
        c.price(DeviceKind::Npu, &sig(2), false, || 1);
        let s = c.stats();
        assert_eq!(s.attention_misses, 1);
        assert_eq!(s.attention_hits, 1);
        assert_eq!(s.other_misses, 1);
        assert!((c.stats().hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = ReuseCache::new(true);
        c.price(DeviceKind::Npu, &sig(4), false, || 9);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats(), ReuseStats::default());
    }

    use llmss_model::{SeqSlot, SigLayout};
    use llmss_sched::{IterationBatch, KvTransfer};

    fn steady(slots: Vec<SeqSlot>) -> IterationBatch {
        IterationBatch { slots, evictions: vec![], reloads: vec![] }
    }

    fn outcome(makespan: TimePs) -> IterationOutcome {
        IterationOutcome {
            makespan_ps: makespan,
            graph_ops: 10,
            net_events: 20,
            compute_ps: makespan,
            comm_ps: 0,
            host_ps: 0,
        }
    }

    #[test]
    fn iteration_cache_hits_on_recurring_signatures() {
        let mut c = IterationCache::new(true, SigLayout::exact());
        let batch = steady(vec![SeqSlot::decode(0, 100)]);
        assert_eq!(c.lookup_batch(&batch), IterationLookup::Miss);
        c.insert_current(outcome(42));
        // A later iteration with the same shape (different request id,
        // placement-insensitive layout) hits.
        match c.lookup_batch(&steady(vec![SeqSlot::decode(7, 100)])) {
            IterationLookup::Hit(out) => assert_eq!(out.makespan_ps, 42),
            other => panic!("expected a hit, got {other:?}"),
        }
        let mut stats = ReuseStats::default();
        c.fill_stats(&mut stats);
        assert_eq!((stats.iteration_hits, stats.iteration_misses), (1, 1));
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn paging_batches_are_uncacheable() {
        let mut c = IterationCache::new(true, SigLayout::exact());
        let batch = IterationBatch {
            slots: vec![SeqSlot::decode(0, 64)],
            evictions: vec![KvTransfer { request: 1, bytes: 1 << 20, pages: 16 }],
            reloads: vec![],
        };
        assert_eq!(c.lookup_batch(&batch), IterationLookup::Uncacheable);
        let mut stats = ReuseStats::default();
        c.fill_stats(&mut stats);
        assert_eq!(stats.iteration_uncacheable, 1);
        assert_eq!(stats.iteration_hit_rate(), 0.0);
    }

    #[test]
    fn disabled_iteration_cache_never_signs() {
        let mut c = IterationCache::new(false, SigLayout::exact());
        assert!(!c.enabled());
        assert_eq!(
            c.lookup_batch(&steady(vec![SeqSlot::decode(0, 64)])),
            IterationLookup::Uncacheable
        );
    }

    #[test]
    fn stats_merge_sums_every_counter() {
        let a = ReuseStats {
            attention_hits: 1,
            attention_misses: 2,
            other_hits: 3,
            other_misses: 4,
            iteration_hits: 5,
            iteration_misses: 6,
            iteration_uncacheable: 7,
            kv_bucket_end: 8,
            shared_hits: 2,
            shared_armed: true,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.hits(), 2 * a.hits());
        assert_eq!(b.iterations(), 2 * a.iterations());
        assert!((a.iteration_hit_rate() - 5.0 / 18.0).abs() < 1e-12);
        assert!((a.local_iteration_hit_rate() - 3.0 / 18.0).abs() < 1e-12);
        // The bucket is a granularity, not a count: merge takes the max.
        assert_eq!(b.kv_bucket_end, 8);
        assert_eq!(b.shared_hits, 4);
        assert!(b.shared_armed);
    }

    #[test]
    fn adaptive_bucket_grows_on_cold_windows_and_clears_entries() {
        let adapt =
            BucketAdaptivity { min_tokens: 1, max_tokens: 8, target_hit_rate: 0.9, window: 4 };
        let mut c = IterationCache::new(true, SigLayout::exact()).with_adaptivity(adapt);
        assert_eq!(c.kv_bucket_tokens(), 1);
        // Four all-miss lookups with distinct KV lengths: a cold window.
        for kv in [10, 20, 30, 40] {
            assert_eq!(
                c.lookup_batch(&steady(vec![SeqSlot::decode(0, kv)])),
                IterationLookup::Miss
            );
            c.insert_current(outcome(kv as TimePs));
        }
        assert_eq!(c.len(), 4);
        // The next lookup closes the window: bucket doubles, cache drops.
        let _ = c.lookup_batch(&steady(vec![SeqSlot::decode(0, 50)]));
        assert_eq!(c.kv_bucket_tokens(), 2);
        assert_eq!(c.len(), 0, "stale exact-bucket keys must not survive the re-bucket");
        let mut stats = ReuseStats::default();
        c.fill_stats(&mut stats);
        assert_eq!(stats.kv_bucket_end, 2);
    }

    #[test]
    fn adaptive_bucket_respects_the_drift_budget() {
        let adapt =
            BucketAdaptivity { min_tokens: 2, max_tokens: 8, target_hit_rate: 1.0, window: 1 };
        let mut c = IterationCache::new(true, SigLayout::exact()).with_adaptivity(adapt);
        // Every window misses (fresh KV length each time): the bucket
        // doubles 2 -> 4 -> 8 and then pins at the budget.
        for (i, kv) in (0..10).map(|i| (i, 100 + 17 * i)).collect::<Vec<_>>() {
            let _ = c.lookup_batch(&steady(vec![SeqSlot::decode(0, kv)]));
            assert!(c.kv_bucket_tokens() <= 8, "iteration {i} exceeded the budget");
        }
        assert_eq!(c.kv_bucket_tokens(), 8);
    }

    #[test]
    fn shared_tier_answers_only_after_publish_and_within_fingerprint() {
        let shared = SharedReuse::new();
        let mut a = IterationCache::new(true, SigLayout::exact());
        a.attach_shared(shared.clone(), 0xAAAA);
        let mut b = IterationCache::new(true, SigLayout::exact());
        b.attach_shared(shared.clone(), 0xAAAA);
        let mut other = IterationCache::new(true, SigLayout::exact());
        other.attach_shared(shared.clone(), 0xBBBB);

        let batch = steady(vec![SeqSlot::decode(0, 100)]);
        assert_eq!(a.lookup_batch(&batch), IterationLookup::Miss);
        a.insert_current(outcome(42));
        // Unpublished fresh entries are invisible fleet-wide: the map
        // stays a frozen snapshot between sync points.
        assert_eq!(b.lookup_batch(&batch), IterationLookup::Miss);
        assert_eq!(shared.iteration_entries(), 0);

        a.publish_shared();
        assert_eq!(shared.iteration_entries(), 1);
        match b.lookup_batch(&batch) {
            IterationLookup::Hit(out) => assert_eq!(out.makespan_ps, 42),
            got => panic!("expected a shared hit, got {got:?}"),
        }
        let mut stats = ReuseStats::default();
        b.fill_stats(&mut stats);
        assert_eq!((stats.iteration_hits, stats.shared_hits), (1, 1));
        assert!(stats.shared_armed);
        // A replica under a different fingerprint never sees the entry.
        assert_eq!(other.lookup_batch(&batch), IterationLookup::Miss);
    }

    #[test]
    fn shared_publish_is_first_write_wins() {
        let shared = SharedReuse::new();
        let mut a = IterationCache::new(true, SigLayout::exact());
        a.attach_shared(shared.clone(), 7);
        let mut b = IterationCache::new(true, SigLayout::exact());
        b.attach_shared(shared.clone(), 7);
        let batch = steady(vec![SeqSlot::decode(0, 50)]);
        assert_eq!(a.lookup_batch(&batch), IterationLookup::Miss);
        a.insert_current(outcome(10));
        assert_eq!(b.lookup_batch(&batch), IterationLookup::Miss);
        b.insert_current(outcome(99));
        a.publish_shared();
        b.publish_shared(); // loses: a's entry is already present
        let mut probe = IterationCache::new(true, SigLayout::exact());
        probe.attach_shared(shared, 7);
        match probe.lookup_batch(&batch) {
            IterationLookup::Hit(out) => assert_eq!(out.makespan_ps, 10),
            got => panic!("expected a hit, got {got:?}"),
        }
    }

    #[test]
    fn shared_tier_namespaces_by_bucket_width() {
        // KV 100 under a 4-token bucket and KV 200 under an 8-token
        // bucket both sign as bucket index 25 — the bucket fingerprint
        // must keep them apart.
        let shared = SharedReuse::new();
        let mut coarse4 = IterationCache::new(true, SigLayout::exact().kv_bucket(4));
        coarse4.attach_shared(shared.clone(), 1);
        let mut coarse8 = IterationCache::new(true, SigLayout::exact().kv_bucket(8));
        coarse8.attach_shared(shared.clone(), 1);
        assert_eq!(
            coarse4.lookup_batch(&steady(vec![SeqSlot::decode(0, 100)])),
            IterationLookup::Miss
        );
        coarse4.insert_current(outcome(444));
        coarse4.publish_shared();
        assert_eq!(
            coarse8.lookup_batch(&steady(vec![SeqSlot::decode(0, 200)])),
            IterationLookup::Miss,
            "a bucket-4 outcome must not answer under bucket 8"
        );
    }

    #[test]
    fn shared_op_tier_prices_cross_replica() {
        let shared = SharedReuse::new();
        let mut a = ReuseCache::new(true);
        a.attach_shared(shared.clone(), 5);
        let mut b = ReuseCache::new(true);
        b.attach_shared(shared.clone(), 5);
        let mut execs = 0;
        a.price(DeviceKind::Npu, &sig(8), false, || {
            execs += 1;
            77
        });
        a.publish_shared();
        assert_eq!(shared.op_entries(), 1);
        let ps = b.price(DeviceKind::Npu, &sig(8), false, || {
            execs += 1;
            0
        });
        assert_eq!(ps, 77, "b must answer from the shared tier");
        assert_eq!(execs, 1);
        assert_eq!(b.stats().hits(), 1);
    }

    #[test]
    fn adaptive_bucket_holds_when_windows_hit() {
        let adapt =
            BucketAdaptivity { min_tokens: 1, max_tokens: 64, target_hit_rate: 0.5, window: 2 };
        let mut c = IterationCache::new(true, SigLayout::exact()).with_adaptivity(adapt);
        // Prime one signature, then hit it repeatedly: every window is
        // warm, so the bucket must stay exact.
        assert_eq!(
            c.lookup_batch(&steady(vec![SeqSlot::decode(0, 64)])),
            IterationLookup::Miss
        );
        c.insert_current(outcome(1));
        for _ in 0..10 {
            match c.lookup_batch(&steady(vec![SeqSlot::decode(0, 64)])) {
                IterationLookup::Hit(_) => {}
                other => panic!("expected a hit, got {other:?}"),
            }
        }
        assert_eq!(c.kv_bucket_tokens(), 1);
    }
}
