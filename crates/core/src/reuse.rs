//! Computation-reuse caches (paper Section IV-C).
//!
//! LLMServingSim avoids re-running the compiler and hardware simulator by
//! caching results keyed on operator signatures. Two redundancies feed the
//! cache:
//!
//! * **Model redundancy**: all transformer blocks share one template, so a
//!   block compiles once and replicates (`n_layers - 1` free hits per op).
//! * **Iteration redundancy**: non-attention operators keep the same shapes
//!   across decode iterations (only attention shapes track the KV length),
//!   so prior iterations' results keep serving.

use std::collections::HashMap;

use llmss_model::OpSignature;
use llmss_net::TimePs;
use serde::{Deserialize, Serialize};

use crate::DeviceKind;

/// Hit/miss counters, split by attention vs non-attention operators so the
/// evaluation can show where the savings come from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReuseStats {
    /// Cache hits on attention operators.
    pub attention_hits: u64,
    /// Cache misses on attention operators.
    pub attention_misses: u64,
    /// Cache hits on non-attention operators.
    pub other_hits: u64,
    /// Cache misses on non-attention operators.
    pub other_misses: u64,
}

impl ReuseStats {
    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.attention_hits + self.other_hits
    }

    /// Total misses (engine executions actually performed).
    pub fn misses(&self) -> u64 {
        self.attention_misses + self.other_misses
    }

    /// Hit rate in [0, 1] (0 when nothing was priced).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            return 0.0;
        }
        self.hits() as f64 / total as f64
    }
}

/// The compile+simulation result cache.
///
/// Keys combine the target device with the operator signature, so an op
/// priced on the NPU never answers for the same shape on PIM. The cache can
/// be disabled (`enabled = false`) to reproduce the paper's "w/o reuse"
/// configurations — lookups then always miss but statistics still count.
///
/// # Examples
///
/// ```
/// use llmss_core::{DeviceKind, ReuseCache};
/// use llmss_model::{Op, OpDims, OpKind};
///
/// let mut cache = ReuseCache::new(true);
/// let op = Op::new(OpKind::QkvGen, OpDims::matmul(64, 768, 2304), 2);
/// let mut executions = 0;
/// for _ in 0..10 {
///     cache.price(DeviceKind::Npu, &op.signature(), op.kind.is_attention(), || {
///         executions += 1;
///         12_345
///     });
/// }
/// assert_eq!(executions, 1); // nine hits
/// assert_eq!(cache.stats().hits(), 9);
/// ```
#[derive(Debug, Clone)]
pub struct ReuseCache {
    enabled: bool,
    entries: HashMap<(DeviceKind, OpSignature), TimePs>,
    stats: ReuseStats,
}

impl ReuseCache {
    /// Creates a cache; `enabled = false` forces every lookup to miss.
    pub fn new(enabled: bool) -> Self {
        Self { enabled, entries: HashMap::new(), stats: ReuseStats::default() }
    }

    /// Whether reuse is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Returns the cached latency or computes it via `execute`.
    pub fn price(
        &mut self,
        device: DeviceKind,
        signature: &OpSignature,
        is_attention: bool,
        execute: impl FnOnce() -> TimePs,
    ) -> TimePs {
        if self.enabled {
            if let Some(&ps) = self.entries.get(&(device, *signature)) {
                if is_attention {
                    self.stats.attention_hits += 1;
                } else {
                    self.stats.other_hits += 1;
                }
                return ps;
            }
        }
        if is_attention {
            self.stats.attention_misses += 1;
        } else {
            self.stats.other_misses += 1;
        }
        let ps = execute();
        if self.enabled {
            self.entries.insert((device, *signature), ps);
        }
        ps
    }

    /// Cached entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> ReuseStats {
        self.stats
    }

    /// Clears entries and statistics.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.stats = ReuseStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmss_model::{Op, OpDims, OpKind};

    fn sig(m: usize) -> OpSignature {
        Op::new(OpKind::QkvGen, OpDims::matmul(m, 64, 192), 2).signature()
    }

    #[test]
    fn disabled_cache_always_misses() {
        let mut c = ReuseCache::new(false);
        let mut execs = 0;
        for _ in 0..5 {
            c.price(DeviceKind::Npu, &sig(8), false, || {
                execs += 1;
                1
            });
        }
        assert_eq!(execs, 5);
        assert_eq!(c.stats().hits(), 0);
        assert_eq!(c.stats().misses(), 5);
        assert!(c.is_empty());
    }

    #[test]
    fn device_keys_are_distinct() {
        let mut c = ReuseCache::new(true);
        let s = sig(8);
        c.price(DeviceKind::Npu, &s, false, || 100);
        let pim = c.price(DeviceKind::Pim, &s, false, || 200);
        assert_eq!(pim, 200);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn attention_split_in_stats() {
        let mut c = ReuseCache::new(true);
        c.price(DeviceKind::Npu, &sig(1), true, || 1);
        c.price(DeviceKind::Npu, &sig(1), true, || 1);
        c.price(DeviceKind::Npu, &sig(2), false, || 1);
        let s = c.stats();
        assert_eq!(s.attention_misses, 1);
        assert_eq!(s.attention_hits, 1);
        assert_eq!(s.other_misses, 1);
        assert!((c.stats().hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = ReuseCache::new(true);
        c.price(DeviceKind::Npu, &sig(4), false, || 9);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats(), ReuseStats::default());
    }
}
