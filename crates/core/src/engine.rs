//! The pluggable execution-engine interface (the paper's "skeleton").
//!
//! LLMServingSim treats accelerator compiler-and-simulator stacks as
//! plugins: any engine that can price a model operator can join the engine
//! stack. This module defines the [`ExecutionEngine`] trait and provides
//! the three engines the paper evaluates with: the GeneSys-analog NPU, the
//! in-house-analog PIM, and a combined NPU+PIM device whose internal
//! scheduler does the operator mapping (the paper's Figure 5a).

use llmss_model::{Op, Phase};
use llmss_net::TimePs;
use llmss_npu::{NpuConfig, NpuEngine};
use llmss_pim::{PimConfig, PimEngine};

/// A pluggable accelerator compiler-and-simulator stack.
///
/// Implementations price one operator at a time: `execute` runs the full
/// compile + hardware-simulation pipeline and returns the operator latency
/// in picoseconds. Result reuse is handled *outside* the engine by the
/// engine stack's cache, so implementations should always do the real work.
pub trait ExecutionEngine: std::fmt::Debug + Send {
    /// Engine name for traces and reports.
    fn name(&self) -> &str;

    /// Whether this engine can execute the operator.
    fn supports(&self, op: &Op) -> bool;

    /// Compiles and simulates the operator, returning its latency.
    fn execute(&mut self, op: &Op) -> TimePs;

    /// Abstract work units performed so far (compiles + simulations),
    /// used by evaluation harnesses to attribute simulation cost.
    fn work_units(&self) -> u64;
}

/// The GeneSys-analog NPU engine as a plugin.
#[derive(Debug)]
pub struct NpuPlugin {
    engine: NpuEngine,
}

impl NpuPlugin {
    /// Creates the plugin from an NPU configuration.
    pub fn new(config: NpuConfig) -> Self {
        Self { engine: NpuEngine::new(config) }
    }

    /// Access to the wrapped engine (for stats).
    pub fn engine(&self) -> &NpuEngine {
        &self.engine
    }
}

impl ExecutionEngine for NpuPlugin {
    fn name(&self) -> &str {
        "npu"
    }

    fn supports(&self, _op: &Op) -> bool {
        // The NPU runs every operator kind (GEMM, GEMV, vector, DMA).
        true
    }

    fn execute(&mut self, op: &Op) -> TimePs {
        let r = self.engine.run(op);
        self.engine.cycles_to_ps(r.cycles)
    }

    fn work_units(&self) -> u64 {
        let s = self.engine.stats();
        s.compiles + s.simulations
    }
}

/// The PIM engine as a plugin.
#[derive(Debug)]
pub struct PimPlugin {
    engine: PimEngine,
}

impl PimPlugin {
    /// Creates the plugin from a PIM configuration.
    pub fn new(config: PimConfig) -> Self {
        Self { engine: PimEngine::new(config) }
    }

    /// Access to the wrapped engine (for stats).
    pub fn engine(&self) -> &PimEngine {
        &self.engine
    }
}

impl ExecutionEngine for PimPlugin {
    fn name(&self) -> &str {
        "pim"
    }

    fn supports(&self, op: &Op) -> bool {
        PimEngine::supports(op)
    }

    fn execute(&mut self, op: &Op) -> TimePs {
        let r = self.engine.run(op);
        self.engine.cycles_to_ps(r.cycles)
    }

    fn work_units(&self) -> u64 {
        let s = self.engine.stats();
        s.compiles + s.simulations
    }
}

/// A combined NPU+PIM device (paper Figure 5a): one system-level node whose
/// *internal* scheduler maps decode-phase attention GEMVs to the attached
/// PIM and everything else to the NPU.
#[derive(Debug)]
pub struct NpuPimLocalPlugin {
    npu: NpuEngine,
    pim: PimEngine,
}

impl NpuPimLocalPlugin {
    /// Creates the combined device from both configurations.
    pub fn new(npu: NpuConfig, pim: PimConfig) -> Self {
        Self { npu: NpuEngine::new(npu), pim: PimEngine::new(pim) }
    }

    /// Whether the internal mapper sends this op to the PIM side.
    pub fn maps_to_pim(op: &Op) -> bool {
        op.phase == Phase::Generation && PimEngine::supports(op) && op.kind.is_matmul()
    }
}

impl ExecutionEngine for NpuPimLocalPlugin {
    fn name(&self) -> &str {
        "npu+pim"
    }

    fn supports(&self, _op: &Op) -> bool {
        true
    }

    fn execute(&mut self, op: &Op) -> TimePs {
        if Self::maps_to_pim(op) {
            let r = self.pim.run(op);
            self.pim.cycles_to_ps(r.cycles)
        } else {
            let r = self.npu.run(op);
            self.npu.cycles_to_ps(r.cycles)
        }
    }

    fn work_units(&self) -> u64 {
        let n = self.npu.stats();
        let p = self.pim.stats();
        n.compiles + n.simulations + p.compiles + p.simulations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmss_model::{OpDims, OpKind};

    fn decode_score() -> Op {
        Op::new(OpKind::Score, OpDims::batched(32, 1, 128, 1024), 2).in_phase(Phase::Generation)
    }

    fn prefill_score() -> Op {
        Op::new(OpKind::Score, OpDims::batched(32, 256, 128, 256), 2)
            .in_phase(Phase::Initiation)
    }

    #[test]
    fn npu_plugin_supports_everything() {
        let p = NpuPlugin::new(NpuConfig::table1());
        let ffn = Op::new(OpKind::FfnUp, OpDims::matmul(64, 512, 2048), 2);
        assert!(p.supports(&ffn));
        assert!(p.supports(&decode_score()));
    }

    #[test]
    fn pim_plugin_rejects_gemm_kinds() {
        let p = PimPlugin::new(PimConfig::table1());
        assert!(p.supports(&decode_score()));
        assert!(!p.supports(&Op::new(OpKind::FfnUp, OpDims::matmul(64, 512, 2048), 2)));
    }

    #[test]
    fn local_mapper_routes_decode_attention_to_pim() {
        assert!(NpuPimLocalPlugin::maps_to_pim(&decode_score()));
        assert!(!NpuPimLocalPlugin::maps_to_pim(&prefill_score()));
        let ln = Op::new(OpKind::LayerNorm, OpDims::elementwise(32, 4096), 2)
            .in_phase(Phase::Generation);
        assert!(!NpuPimLocalPlugin::maps_to_pim(&ln));
    }

    #[test]
    fn local_device_beats_npu_only_on_decode_attention() {
        let mut combined = NpuPimLocalPlugin::new(NpuConfig::table1(), PimConfig::table1());
        let mut npu_only = NpuPlugin::new(NpuConfig::table1());
        let op = decode_score();
        assert!(combined.execute(&op) < npu_only.execute(&op));
    }

    #[test]
    fn work_units_accumulate() {
        let mut p = NpuPlugin::new(NpuConfig::table1());
        assert_eq!(p.work_units(), 0);
        p.execute(&decode_score());
        assert_eq!(p.work_units(), 2); // one compile + one simulate
    }

    #[test]
    fn engines_are_object_safe() {
        let engines: Vec<Box<dyn ExecutionEngine>> = vec![
            Box::new(NpuPlugin::new(NpuConfig::table1())),
            Box::new(PimPlugin::new(PimConfig::table1())),
            Box::new(NpuPimLocalPlugin::new(NpuConfig::table1(), PimConfig::table1())),
        ];
        let names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["npu", "pim", "npu+pim"]);
    }
}
