//! Operator mapping across heterogeneous accelerators (Algorithm 1 line 6).
//!
//! Depending on the system's topology, mapping decisions happen in
//! different components (paper Section IV-B):
//!
//! * `PimMode::None` — homogeneous NPUs; everything maps to NPU.
//! * `PimMode::Local` — NPU+PIM devices; the *engine's internal scheduler*
//!   maps decode attention to the attached PIM
//!   ([`crate::NpuPimLocalPlugin`]), so the system-level mapper still says
//!   "NPU node".
//! * `PimMode::Pool` — separate NPU and PIM pools; the *scheduler-level*
//!   mapper routes memory-bound GEMVs to the PIM pool and the graph
//!   converter inserts the inter-pool transfers.

use llmss_model::{Op, OpKind, Phase};
use serde::{Deserialize, Serialize};

/// How PIM participates in the system (the artifact's `pim_type`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PimMode {
    /// No PIM: homogeneous NPU system.
    None,
    /// PIM attached to every NPU device (one node at system level,
    /// paper Figure 5a).
    Local,
    /// A separate PIM pool joined by a high-bandwidth interconnect
    /// (paper Figure 5b).
    Pool,
}

/// The device class an operator is mapped to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Compute-centric accelerator.
    Npu,
    /// Processing-in-memory device.
    Pim,
}

/// Decides which device class executes `op` under the given PIM mode.
///
/// Memory-bound decode-phase attention GEMVs (Score/Attend with a single
/// query row) go to PIM when a pool exists; prefill attention is a GEMM and
/// stays on the NPU. In `Local` mode the split is internal to the combined
/// engine, so the system-level answer is always `Npu`.
///
/// # Examples
///
/// ```
/// use llmss_core::{map_op, DeviceKind, PimMode};
/// use llmss_model::{Op, OpDims, OpKind, Phase};
///
/// let decode_score = Op::new(OpKind::Score, OpDims::batched(32, 1, 128, 512), 2)
///     .in_phase(Phase::Generation);
/// assert_eq!(map_op(&decode_score, PimMode::Pool), DeviceKind::Pim);
/// assert_eq!(map_op(&decode_score, PimMode::None), DeviceKind::Npu);
/// ```
pub fn map_op(op: &Op, mode: PimMode) -> DeviceKind {
    match mode {
        PimMode::None | PimMode::Local => DeviceKind::Npu,
        PimMode::Pool => {
            let gemv_attention = matches!(op.kind, OpKind::Score | OpKind::Attend)
                && op.phase == Phase::Generation;
            if gemv_attention {
                DeviceKind::Pim
            } else {
                DeviceKind::Npu
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmss_model::OpDims;

    fn op(kind: OpKind, phase: Phase) -> Op {
        Op::new(kind, OpDims::batched(8, 1, 64, 256), 2).in_phase(phase)
    }

    #[test]
    fn pool_mode_offloads_decode_attention_only() {
        assert_eq!(
            map_op(&op(OpKind::Score, Phase::Generation), PimMode::Pool),
            DeviceKind::Pim
        );
        assert_eq!(
            map_op(&op(OpKind::Attend, Phase::Generation), PimMode::Pool),
            DeviceKind::Pim
        );
        assert_eq!(
            map_op(&op(OpKind::Softmax, Phase::Generation), PimMode::Pool),
            DeviceKind::Npu
        );
        assert_eq!(
            map_op(&op(OpKind::Score, Phase::Initiation), PimMode::Pool),
            DeviceKind::Npu
        );
        assert_eq!(
            map_op(&op(OpKind::FfnUp, Phase::Generation), PimMode::Pool),
            DeviceKind::Npu
        );
    }

    #[test]
    fn non_pool_modes_stay_on_npu() {
        for mode in [PimMode::None, PimMode::Local] {
            assert_eq!(map_op(&op(OpKind::Score, Phase::Generation), mode), DeviceKind::Npu);
        }
    }
}
