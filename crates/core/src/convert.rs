//! The graph converter: engine traces → Chakra-like execution graphs.
//!
//! Implements the paper's Section IV-A/IV-B conversion rules:
//!
//! * **Tensor parallelism** shards matmuls across the group's nodes and
//!   inserts ALL-REDUCE operators after the attention projection and the
//!   FFN down-projection (plus ALL-GATHERs around selective-batching
//!   attention, which redistributes whole requests instead of head shards).
//! * **Pipeline parallelism** assigns contiguous layer ranges to stage
//!   groups and inserts point-to-point activation transfers at stage
//!   boundaries.
//! * **Selective batching** fans per-request attention operators out to the
//!   nodes of the group (round-robin by request id), so variable KV lengths
//!   imbalance — and overlap — realistically.
//! * **PIM pool mode** sends decode attention GEMVs to PIM nodes with
//!   explicit inter-pool transfers before and after each offloaded operator
//!   (paper Figure 5b).
//! * **KV paging** materializes the scheduler's eviction/reload decisions
//!   as host memory-transfer operators gating the iteration.

use std::borrow::Cow;

use llmss_model::{IterationWorkload, ModelSpec, Op, OpKind, SeqSlot, SigLayout};
use llmss_net::{CollectiveKind, ExecGraph, ExecNodeId, ExecPayload, NodeId, Topology};
use llmss_sched::{partition_sub_batches, IterationBatch, PartitionCriteria};

use crate::{map_op, DeviceKind, EngineStack, ParallelismSpec, PimMode};

/// Reusable working buffers for graph construction, persisted across
/// iterations so the steady-state convert path allocates nothing.
#[derive(Debug, Clone, Default)]
struct ConvertScratch {
    /// Per-node id of the last emitted op in the current sub-batch.
    chain: Vec<Option<ExecNodeId>>,
    /// Dependency-collection buffer for collectives and joins.
    deps: Vec<ExecNodeId>,
    /// Final attention op per request (selective batching join inputs).
    att_final: Vec<ExecNodeId>,
    /// KV-reload ops gating the iteration's entry.
    entry_deps: Vec<ExecNodeId>,
}

/// Converts scheduler iterations into execution graphs for the system
/// simulator.
#[derive(Debug, Clone)]
pub struct GraphConverter {
    spec: ModelSpec,
    parallelism: ParallelismSpec,
    pim_mode: PimMode,
    selective: bool,
    sub_batches: usize,
    stage_groups: Vec<Vec<NodeId>>,
    pim_pool: Vec<NodeId>,
    stage_layers: Vec<std::ops::Range<u32>>,
    scratch: ConvertScratch,
}

impl GraphConverter {
    /// Creates a converter for the given model, layout and topology.
    ///
    /// # Panics
    ///
    /// Panics if the topology does not provide `pp` NPU groups of `tp`
    /// nodes, or if pool mode is configured without PIM nodes.
    pub fn new(
        spec: ModelSpec,
        parallelism: ParallelismSpec,
        topology: &Topology,
        pim_mode: PimMode,
        selective_batching: bool,
        sub_batch: bool,
    ) -> Self {
        let pp = parallelism.pp;
        let tp = parallelism.tp;
        assert!(
            topology.groups().len() >= pp,
            "topology has {} groups, need {pp} stages",
            topology.groups().len()
        );
        let stage_groups: Vec<Vec<NodeId>> = topology.groups()[..pp].to_vec();
        for g in &stage_groups {
            assert_eq!(g.len(), tp, "every stage group must have tp={tp} nodes");
        }
        let pim_pool = topology.nodes_of_class(llmss_net::NodeClass::Pim);
        if pim_mode == PimMode::Pool {
            assert!(!pim_pool.is_empty(), "pool mode requires PIM nodes in the topology");
        }

        // Contiguous layer ranges per stage, distributing remainders to the
        // earliest stages.
        let layers = spec.n_layers as u32;
        let base = layers / pp as u32;
        let extra = layers % pp as u32;
        let mut stage_layers = Vec::with_capacity(pp);
        let mut start = 0u32;
        for s in 0..pp as u32 {
            let len = base + u32::from(s < extra);
            stage_layers.push(start..start + len);
            start += len;
        }

        Self {
            spec,
            parallelism,
            pim_mode,
            selective: selective_batching,
            sub_batches: if sub_batch { 2 } else { 1 },
            stage_groups,
            pim_pool,
            stage_layers,
            scratch: ConvertScratch::default(),
        }
    }

    /// The resolved layer range of each pipeline stage.
    pub fn stage_layers(&self) -> &[std::ops::Range<u32>] {
        &self.stage_layers
    }

    /// The [`SigLayout`] describing everything this converter's graphs
    /// are sensitive to beyond per-slot shapes, for iteration-outcome
    /// memoization: the request-placement modulus (selective batching
    /// fans attention out by `request % tp`, PIM-pool offload by
    /// `request % pool_size`) and whether sub-batch partitioning makes
    /// the weight/request-id sort order graph-relevant.
    pub fn sig_layout(&self, kv_bucket: usize) -> SigLayout {
        fn gcd(a: u64, b: u64) -> u64 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        let placement_mod = if self.selective {
            let tp = self.parallelism.tp as u64;
            let pim = self.pim_pool.len().max(1) as u64;
            tp / gcd(tp, pim) * pim
        } else {
            1
        };
        SigLayout::exact()
            .kv_bucket(kv_bucket as u32)
            .placement_mod(placement_mod)
            .ranked(self.sub_batches > 1)
    }

    /// Shards an operator for tensor parallelism (per-node shape).
    /// Borrows the template unchanged when there is nothing to shard
    /// (`tp == 1`), so the hot single-node path never clones.
    fn shard<'a>(&self, op: &'a Op) -> Cow<'a, Op> {
        let tp = self.parallelism.tp;
        if tp == 1 {
            return Cow::Borrowed(op);
        }
        let mut out = op.clone();
        match op.kind {
            // Column-parallel projections: output columns sharded.
            OpKind::QkvGen | OpKind::FfnUp | OpKind::LmHead => {
                out.dims.n = op.dims.n.div_ceil(tp);
            }
            // Row-parallel projections: contraction sharded.
            OpKind::OutProj | OpKind::FfnDown => {
                out.dims.k = op.dims.k.div_ceil(tp);
            }
            // FFN activation follows the column shard.
            OpKind::Activation => {
                out.dims.n = op.dims.n.div_ceil(tp);
            }
            // Head-sharded attention (non-selective mode only).
            OpKind::Score | OpKind::Attend => {
                out.dims.batch = op.dims.batch.div_ceil(tp);
            }
            OpKind::Softmax => {
                out.dims.m = op.dims.m.div_ceil(tp);
            }
            // LayerNorm / residual / embedding replicate.
            _ => {}
        }
        Cow::Owned(out)
    }

    /// Converts one scheduler iteration into a freshly allocated graph
    /// (convenience over [`convert_into`](Self::convert_into)).
    ///
    /// `stack` prices every (sharded) operator, consulting its reuse cache.
    pub fn convert(&mut self, batch: &IterationBatch, stack: &mut EngineStack) -> ExecGraph {
        let mut graph =
            ExecGraph::with_capacity(16 + self.spec.n_layers * self.parallelism.n_nodes() * 10);
        self.convert_into(batch, stack, &mut graph);
        graph
    }

    /// Converts one scheduler iteration into `graph`, which is cleared
    /// first and whose arena is reused — the zero-realloc path a serving
    /// loop drives every iteration.
    pub fn convert_into(
        &mut self,
        batch: &IterationBatch,
        stack: &mut EngineStack,
        graph: &mut ExecGraph,
    ) {
        graph.clear();
        // The scratch moves out so `&self` methods can run while its
        // buffers are mutably borrowed; it moves back at the end.
        let mut scratch = std::mem::take(&mut self.scratch);

        // KV paging transfers gate the iteration (paper: the converter
        // inserts memory store/load operators based on scheduler decisions).
        let tp = self.parallelism.tp;
        let stage0 = &self.stage_groups[0];
        scratch.entry_deps.clear();
        for t in &batch.evictions {
            let owner = stage0[(t.request as usize) % tp];
            graph.add(owner, ExecPayload::HostStore { bytes: t.bytes }, &[], "kv_evict");
        }
        for t in &batch.reloads {
            let owner = stage0[(t.request as usize) % tp];
            let id =
                graph.add(owner, ExecPayload::HostLoad { bytes: t.bytes }, &[], "kv_reload");
            scratch.entry_deps.push(id);
        }

        if self.sub_batches > 1 && batch.slots.len() > 1 {
            let sub_slots = partition_sub_batches(
                &batch.slots,
                self.sub_batches,
                PartitionCriteria::MemoryAccess,
            );
            for slots in &sub_slots {
                self.emit_sub_batch(graph, stack, slots, &mut scratch);
            }
        } else {
            // Single sub-batch: emit straight from the batch, no copy.
            self.emit_sub_batch(graph, stack, &batch.slots, &mut scratch);
        }
        self.scratch = scratch;
    }

    fn emit_sub_batch(
        &self,
        graph: &mut ExecGraph,
        stack: &mut EngineStack,
        slots: &[SeqSlot],
        scratch: &mut ConvertScratch,
    ) {
        let workload = IterationWorkload::build(&self.spec, slots);
        let t = workload.new_tokens_total();
        let w = self.spec.elem_bytes as u64;
        let d = self.spec.d_model as u64;
        let tp = self.parallelism.tp;

        // Per-node chain of the last emitted op in this sub-batch.
        let n_total = self.stage_groups.iter().flatten().copied().max().unwrap_or(0) + 1;
        scratch.chain.clear();
        scratch.chain.resize(n_total.max(1), None);

        // Stage 0 entry: embedding, gated by KV reloads.
        let embed = &workload.pre_ops()[0];
        for &node in &self.stage_groups[0] {
            let ps = stack.price(embed, DeviceKind::Npu);
            let id =
                graph.add(node, ExecPayload::Compute { ps }, &scratch.entry_deps, "embedding");
            scratch.chain[node] = Some(id);
        }

        for (stage, nodes) in self.stage_groups.iter().enumerate() {
            // Pipeline-stage boundary: activation shards hop to the
            // corresponding node of the next group.
            if stage > 0 {
                let prev = &self.stage_groups[stage - 1];
                let bytes = (t as u64 * d * w).div_ceil(tp as u64);
                for (i, &src) in prev.iter().enumerate() {
                    let dst = nodes[i];
                    let id = graph.add(
                        src,
                        ExecPayload::P2p { bytes, dst },
                        scratch.chain[src].as_slice(),
                        "stage_xfer",
                    );
                    scratch.chain[dst] = Some(id);
                }
            }
            for _blk in self.stage_layers[stage].clone() {
                self.emit_block(graph, stack, &workload, slots, nodes, stage, scratch);
            }
        }

        // Final norm + LM head on the last stage.
        let last = &self.stage_groups[self.parallelism.pp - 1];
        for op in workload.post_ops() {
            for &node in last {
                let sharded = self.shard(op);
                let ps = stack.price(&sharded, DeviceKind::Npu);
                let id = graph.add(
                    node,
                    ExecPayload::Compute { ps },
                    scratch.chain[node].as_slice(),
                    op.kind.label(),
                );
                scratch.chain[node] = Some(id);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_block(
        &self,
        graph: &mut ExecGraph,
        stack: &mut EngineStack,
        workload: &IterationWorkload,
        slots: &[SeqSlot],
        nodes: &[NodeId],
        stage: usize,
        scratch: &mut ConvertScratch,
    ) {
        let tp = nodes.len();
        let group = stage; // topology group id of this stage
        let t = workload.new_tokens_total() as u64;
        let d = self.spec.d_model as u64;
        let w = self.spec.elem_bytes as u64;

        // Parse the canonical block template (single source of truth for
        // operator shapes lives in llmss-model).
        let ops = workload.block_ops();
        let n_att = 3 * slots.len();
        let (ln1, qkv) = (&ops[0], &ops[1]);
        debug_assert_eq!(ln1.kind, OpKind::LayerNorm);
        debug_assert_eq!(qkv.kind, OpKind::QkvGen);
        let attention = &ops[2..2 + n_att];
        let tail = &ops[2 + n_att..];
        debug_assert_eq!(tail[0].kind, OpKind::OutProj);

        let emit_replicated = |graph: &mut ExecGraph,
                               stack: &mut EngineStack,
                               op: &Op,
                               scratch: &mut ConvertScratch| {
            for &node in nodes {
                let ps = stack.price(op, DeviceKind::Npu);
                let id = graph.add(
                    node,
                    ExecPayload::Compute { ps },
                    scratch.chain[node].as_slice(),
                    op.kind.label(),
                );
                scratch.chain[node] = Some(id);
            }
        };
        let emit_sharded = |graph: &mut ExecGraph,
                            stack: &mut EngineStack,
                            op: &Op,
                            scratch: &mut ConvertScratch| {
            let sharded = self.shard(op);
            for &node in nodes {
                let ps = stack.price(&sharded, DeviceKind::Npu);
                let id = graph.add(
                    node,
                    ExecPayload::Compute { ps },
                    scratch.chain[node].as_slice(),
                    op.kind.label(),
                );
                scratch.chain[node] = Some(id);
            }
        };
        let emit_collective = |graph: &mut ExecGraph,
                               kind: CollectiveKind,
                               bytes: u64,
                               label: &'static str,
                               scratch: &mut ConvertScratch| {
            scratch.deps.clear();
            scratch.deps.extend(nodes.iter().filter_map(|&n| scratch.chain[n]));
            let id = graph.add(
                nodes[0],
                ExecPayload::Collective { kind, bytes, group },
                &scratch.deps,
                label,
            );
            for &n in nodes {
                scratch.chain[n] = Some(id);
            }
            id
        };

        emit_replicated(graph, stack, ln1, scratch); // LayerNorm 1
        emit_sharded(graph, stack, qkv, scratch); // QKV projection

        if self.selective {
            // Redistribute QKV so each request's heads land on its owner.
            if tp > 1 {
                emit_collective(
                    graph,
                    CollectiveKind::AllGather,
                    (t * 3 * d * w).div_ceil(tp as u64),
                    "qkv_gather",
                    scratch,
                );
            }
            scratch.att_final.clear();
            for (si, slot) in slots.iter().enumerate() {
                let owner = nodes[(slot.request as usize) % tp];
                let trio = &attention[3 * si..3 * si + 3];
                debug_assert_eq!(trio[0].kind, OpKind::Score);
                let last =
                    self.emit_request_attention(graph, stack, trio, slot, owner, scratch);
                scratch.att_final.push(last);
            }
            // Re-shard attention outputs for the row-parallel projection.
            if tp > 1 {
                let id = graph.add(
                    nodes[0],
                    ExecPayload::Collective {
                        kind: CollectiveKind::AllGather,
                        bytes: (t * d * w).div_ceil(tp as u64),
                        group,
                    },
                    &scratch.att_final,
                    "att_gather",
                );
                for &n in nodes {
                    scratch.chain[n] = Some(id);
                }
            } else {
                // Single node: join the per-request chains on a zero-cost op.
                let id = graph.add(
                    nodes[0],
                    ExecPayload::Compute { ps: 0 },
                    &scratch.att_final,
                    "att_join",
                );
                scratch.chain[nodes[0]] = Some(id);
            }
        } else {
            // Head-sharded attention: one fused per-node attention op whose
            // latency sums the (head-sharded) per-request costs.
            let mut ps_total = 0;
            for op in attention {
                let sharded = self.shard(op);
                let device = map_op(&sharded, self.pim_mode);
                let device = if device == DeviceKind::Pim && !stack.has_pim() {
                    DeviceKind::Npu
                } else {
                    device
                };
                ps_total += stack.price(&sharded, device);
            }
            for &node in nodes {
                let id = graph.add(
                    node,
                    ExecPayload::Compute { ps: ps_total },
                    scratch.chain[node].as_slice(),
                    "attention",
                );
                scratch.chain[node] = Some(id);
            }
        }

        // OutProj, residual, LN2, FFN, residual — with all-reduces after
        // the two row-parallel projections.
        emit_sharded(graph, stack, &tail[0], scratch); // OutProj
        if tp > 1 {
            emit_collective(graph, CollectiveKind::AllReduce, t * d * w, "all_reduce", scratch);
        }
        emit_replicated(graph, stack, &tail[1], scratch); // residual
        emit_replicated(graph, stack, &tail[2], scratch); // LayerNorm 2
        emit_sharded(graph, stack, &tail[3], scratch); // FFN up
        emit_sharded(graph, stack, &tail[4], scratch); // activation
        emit_sharded(graph, stack, &tail[5], scratch); // FFN down
        if tp > 1 {
            emit_collective(graph, CollectiveKind::AllReduce, t * d * w, "all_reduce", scratch);
        }
        emit_replicated(graph, stack, &tail[6], scratch); // residual
    }

    /// Emits one request's Score/Softmax/Attend, offloading the GEMVs to a
    /// PIM node (with inter-pool transfers) when the mapper says so.
    fn emit_request_attention(
        &self,
        graph: &mut ExecGraph,
        stack: &mut EngineStack,
        trio: &[Op],
        slot: &SeqSlot,
        owner: NodeId,
        scratch: &mut ConvertScratch,
    ) -> ExecNodeId {
        let (score, softmax, attend) = (&trio[0], &trio[1], &trio[2]);
        let w = self.spec.elem_bytes as u64;
        let pre = scratch.chain[owner];

        let offload = self.pim_mode == PimMode::Pool
            && map_op(score, self.pim_mode) == DeviceKind::Pim
            && stack.has_pim();

        if !offload {
            let mut last: Option<ExecNodeId> = None;
            for op in [score, softmax, attend] {
                let ps = stack.price(op, DeviceKind::Npu);
                // The first op of the trio chains off the owner's tail;
                // the rest chain sequentially within the trio.
                let dep = if last.is_some() { last } else { pre };
                last = Some(graph.add(
                    owner,
                    ExecPayload::Compute { ps },
                    dep.as_slice(),
                    op.kind.label(),
                ));
            }
            return last.expect("attention trio emitted"); // llmss-lint: allow(p001, reason = "the attention lowering emits its trio unconditionally just above")
        }

        // PIM-pool offload: Q to PIM, Score there, scores back for softmax,
        // probabilities to PIM, Attend there, output back (Figure 5b data
        // movement; this link/sync detail is why LLMServingSim trails the
        // NeuPIMs reference in Figure 7).
        let pim = self.pim_pool[(slot.request as usize) % self.pim_pool.len()];
        let q_bytes = (slot.new_tokens * self.spec.d_model) as u64 * w;
        let score_bytes = (self.spec.n_heads * slot.new_tokens * slot.kv_total()) as u64 * w;

        let q_send = graph.add(
            owner,
            ExecPayload::P2p { bytes: q_bytes, dst: pim },
            pre.as_slice(),
            "q_xfer",
        );
        let score_ps = stack.price(score, DeviceKind::Pim);
        let score_c = graph.add(pim, ExecPayload::Compute { ps: score_ps }, &[q_send], "score");
        let s_back = graph.add(
            pim,
            ExecPayload::P2p { bytes: score_bytes, dst: owner },
            &[score_c],
            "score_xfer",
        );
        let sm_ps = stack.price(softmax, DeviceKind::Npu);
        let sm = graph.add(owner, ExecPayload::Compute { ps: sm_ps }, &[s_back], "softmax");
        let p_send = graph.add(
            owner,
            ExecPayload::P2p { bytes: score_bytes, dst: pim },
            &[sm],
            "prob_xfer",
        );
        let at_ps = stack.price(attend, DeviceKind::Pim);
        let at = graph.add(pim, ExecPayload::Compute { ps: at_ps }, &[p_send], "attend");
        graph.add(pim, ExecPayload::P2p { bytes: q_bytes, dst: owner }, &[at], "out_xfer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmss_net::{simulate_graph, LinkSpec};
    use llmss_npu::NpuConfig;
    use llmss_pim::PimConfig;
    use llmss_sched::KvTransfer;

    fn spec() -> ModelSpec {
        ModelSpec::gpt2()
    }

    fn batch(slots: Vec<SeqSlot>) -> IterationBatch {
        IterationBatch { slots, evictions: vec![], reloads: vec![] }
    }

    fn homogeneous(tp: usize, pp: usize) -> (GraphConverter, Topology, EngineStack) {
        let topo = Topology::grouped_npus(tp * pp, pp, LinkSpec::pcie4_x16());
        let conv = GraphConverter::new(
            spec(),
            ParallelismSpec { tp, pp },
            &topo,
            PimMode::None,
            true,
            false,
        );
        let stack = EngineStack::homogeneous(NpuConfig::table1(), true);
        (conv, topo, stack)
    }

    #[test]
    fn single_node_graph_simulates() {
        let (mut conv, topo, mut stack) = homogeneous(1, 1);
        let g = conv.convert(&batch(vec![SeqSlot::prefill(0, 64)]), &mut stack);
        let out = simulate_graph(&g, &topo).unwrap();
        assert!(out.makespan_ps > 0);
        // 12 GPT-2 blocks with attention join + bookends.
        assert!(g.len() > 12 * 10);
    }

    #[test]
    fn tensor_parallel_inserts_collectives() {
        let (mut conv, _, mut stack) = homogeneous(4, 1);
        let g = conv.convert(&batch(vec![SeqSlot::prefill(0, 64)]), &mut stack);
        let collectives = g
            .iter()
            .filter(|(_, o)| matches!(o.payload, ExecPayload::Collective { .. }))
            .count();
        // Per block: qkv_gather + att_gather + 2 all_reduce = 4.
        assert_eq!(collectives, 12 * 4);
    }

    #[test]
    fn pipeline_parallel_inserts_stage_transfers() {
        let (mut conv, topo, mut stack) = homogeneous(1, 4);
        let g = conv.convert(&batch(vec![SeqSlot::prefill(0, 64)]), &mut stack);
        let xfers = g.iter().filter(|(_, o)| o.label == "stage_xfer").count();
        assert_eq!(xfers, 3, "pp=4 has 3 stage boundaries");
        let out = simulate_graph(&g, &topo).unwrap();
        assert!(out.makespan_ps > 0);
        // Layers split 3+3+3+3.
        assert_eq!(conv.stage_layers(), &[0..3, 3..6, 6..9, 9..12]);
    }

    #[test]
    fn tp_speeds_up_prefill_vs_single_node() {
        let (mut c1, t1, mut s1) = homogeneous(1, 1);
        let (mut c4, t4, mut s4) = homogeneous(4, 1);
        let b = batch(vec![SeqSlot::prefill(0, 512)]);
        let m1 = simulate_graph(&c1.convert(&b, &mut s1), &t1).unwrap().makespan_ps;
        let m4 = simulate_graph(&c4.convert(&b, &mut s4), &t4).unwrap().makespan_ps;
        assert!(m4 < m1, "tp4 {m4} must beat tp1 {m1}");
        assert!(m4 > m1 / 4, "tp4 cannot be super-linear (collectives cost)");
    }

    #[test]
    fn selective_batching_distributes_attention() {
        let (mut conv, _, mut stack) = homogeneous(4, 1);
        let slots: Vec<_> = (0..8).map(|i| SeqSlot::decode(i, 128 + 64 * i as usize)).collect();
        let g = conv.convert(&batch(slots), &mut stack);
        // Attention computes must appear on all 4 nodes.
        let mut att_nodes: Vec<NodeId> =
            g.iter().filter(|(_, o)| o.label == "score").map(|(_, o)| o.node).collect();
        att_nodes.sort_unstable();
        att_nodes.dedup();
        assert_eq!(att_nodes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn non_selective_shards_heads_instead() {
        let topo = Topology::grouped_npus(4, 1, LinkSpec::pcie4_x16());
        let mut conv = GraphConverter::new(
            spec(),
            ParallelismSpec { tp: 4, pp: 1 },
            &topo,
            PimMode::None,
            false,
            false,
        );
        let mut stack = EngineStack::homogeneous(NpuConfig::table1(), true);
        let g = conv.convert(&batch(vec![SeqSlot::decode(0, 256)]), &mut stack);
        assert_eq!(g.iter().filter(|(_, o)| o.label == "score").count(), 0);
        assert_eq!(g.iter().filter(|(_, o)| o.label == "attention").count(), 12 * 4);
        // Only the two Megatron all-reduces per block.
        let collectives = g
            .iter()
            .filter(|(_, o)| matches!(o.payload, ExecPayload::Collective { .. }))
            .count();
        assert_eq!(collectives, 12 * 2);
    }

    #[test]
    fn pool_mode_offloads_decode_attention_with_transfers() {
        let topo = Topology::npu_pim_pools(2, 2, 1, LinkSpec::pcie4_x16(), LinkSpec::cxl());
        let mut conv = GraphConverter::new(
            spec(),
            ParallelismSpec { tp: 2, pp: 1 },
            &topo,
            PimMode::Pool,
            true,
            false,
        );
        let mut stack = EngineStack::for_pim_mode(
            PimMode::Pool,
            NpuConfig::table1(),
            PimConfig::table1(),
            true,
        );
        let g = conv.convert(&batch(vec![SeqSlot::decode(0, 256)]), &mut stack);
        // Score/Attend land on PIM nodes (ids 2,3), with 4 transfers each.
        let pim_computes: Vec<_> = g
            .iter()
            .filter(|(_, o)| matches!(o.payload, ExecPayload::Compute { .. }) && o.node >= 2)
            .collect();
        assert_eq!(pim_computes.len(), 12 * 2, "score+attend per block on PIM");
        let xfers = g
            .iter()
            .filter(|(_, o)| o.label.ends_with("_xfer") && o.label != "stage_xfer")
            .count();
        assert_eq!(xfers, 12 * 4, "4 inter-pool transfers per block");
        let out = simulate_graph(&g, &topo).unwrap();
        assert!(out.makespan_ps > 0);
    }

    #[test]
    fn prefill_attention_stays_on_npu_in_pool_mode() {
        let topo = Topology::npu_pim_pools(1, 1, 1, LinkSpec::pcie4_x16(), LinkSpec::cxl());
        let mut conv = GraphConverter::new(
            spec(),
            ParallelismSpec { tp: 1, pp: 1 },
            &topo,
            PimMode::Pool,
            true,
            false,
        );
        let mut stack = EngineStack::for_pim_mode(
            PimMode::Pool,
            NpuConfig::table1(),
            PimConfig::table1(),
            true,
        );
        let g = conv.convert(&batch(vec![SeqSlot::prefill(0, 128)]), &mut stack);
        // All computes on node 0 (the NPU); nothing on the PIM node 1.
        assert!(g.iter().all(|(_, o)| o.node == 0));
    }

    #[test]
    fn kv_transfers_materialize_as_host_ops() {
        let (mut conv, topo, mut stack) = homogeneous(2, 1);
        let b = IterationBatch {
            slots: vec![SeqSlot::decode(0, 128)],
            evictions: vec![KvTransfer { request: 5, bytes: 1 << 20, pages: 64 }],
            reloads: vec![KvTransfer { request: 7, bytes: 2 << 20, pages: 128 }],
        };
        let g = conv.convert(&b, &mut stack);
        assert_eq!(g.iter().filter(|(_, o)| o.label == "kv_evict").count(), 1);
        assert_eq!(g.iter().filter(|(_, o)| o.label == "kv_reload").count(), 1);
        // Embedding depends on the reload.
        let reload_id = g.iter().find(|(_, o)| o.label == "kv_reload").unwrap().0;
        let embed = g.iter().find(|(_, o)| o.label == "embedding").unwrap().1;
        assert!(embed.deps.contains(&reload_id));
        simulate_graph(&g, &topo).unwrap();
    }

    #[test]
    fn sub_batch_mode_duplicates_chains_for_overlap() {
        let topo = Topology::npu_pim_pools(1, 1, 1, LinkSpec::pcie4_x16(), LinkSpec::cxl());
        let mk = |sub: bool| {
            GraphConverter::new(
                spec(),
                ParallelismSpec { tp: 1, pp: 1 },
                &topo,
                PimMode::Pool,
                true,
                sub,
            )
        };
        // A PIM-heavy regime (long KV, many sequences): the attention GEMVs
        // dominate, so overlapping them against the other sub-batch's
        // GEMMs wins despite streaming the weights once per sub-batch.
        let slots: Vec<_> = (0..32).map(|i| SeqSlot::decode(i, 2048)).collect();
        let mut stack = EngineStack::for_pim_mode(
            PimMode::Pool,
            NpuConfig::table1(),
            PimConfig::table1(),
            true,
        );
        let g_mono = mk(false).convert(&batch(slots.clone()), &mut stack);
        let g_sub = mk(true).convert(&batch(slots), &mut stack);
        // Sub-batching doubles the independent chains (2 embeddings).
        let embeds = |g: &ExecGraph| g.iter().filter(|(_, o)| o.label == "embedding").count();
        assert_eq!(embeds(&g_mono), 1);
        assert_eq!(embeds(&g_sub), 2);
        // The PIM work of one sub-batch overlaps the other's GEMMs, paying
        // for the per-sub-batch weight re-streaming: in this PIM-heavy
        // regime the makespans stay within a few percent of each other.
        let m_mono = simulate_graph(&g_mono, &topo).unwrap().makespan_ps;
        let m_sub = simulate_graph(&g_sub, &topo).unwrap().makespan_ps;
        let ratio = m_sub as f64 / m_mono as f64;
        assert!(
            ratio < 1.15,
            "sub-batch interleaving should roughly break even here: {ratio:.2}"
        );
    }

    #[test]
    fn deterministic_conversion() {
        let (mut conv, _, mut stack) = homogeneous(2, 2);
        let slots = vec![SeqSlot::prefill(0, 64), SeqSlot::decode(1, 100)];
        let a = conv.convert(&batch(slots.clone()), &mut stack);
        let b = conv.convert(&batch(slots), &mut stack);
        assert_eq!(a, b);
    }
}
