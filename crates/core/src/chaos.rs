//! Deterministic, seeded fault injection for fleet simulations.
//!
//! A [`ChaosSchedule`] is a declarative list of replica and link faults
//! compiled into a time-ordered queue of [`FaultEvent`]s that the
//! [`FleetEngine`](crate::FleetEngine) consumes inside its virtual-time
//! loop. Faults are a *pure extension* of the event order: a run with an
//! empty schedule is byte-identical to a run without one, and two runs
//! with the same schedule (including seeded, rate-based injection) are
//! byte-identical to each other.
//!
//! Three replica fault kinds are modelled:
//!
//! * **Crash** — the replica loses every in-flight request and every
//!   un-shipped KV handoff; lost requests re-enter admission through the
//!   schedule's [`RetryPolicy`].
//! * **Hang** — the replica freezes (no iterations complete) but keeps
//!   its work; it resumes where it left off at recovery.
//! * **Drain** — the replica stops accepting new work but finishes what
//!   it holds (a graceful maintenance window).
//!
//! Link faults degrade a fabric link to `degrade_to_gbps` (zero = a full
//! partition) for a window, re-pricing transfers that cross it.

use llmss_sched::TimePs;
use std::collections::VecDeque;

/// What a replica fault does to the replica while it is down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaFaultKind {
    /// The replica dies: in-flight requests and un-shipped KV are lost
    /// and must be retried (re-prefilled) elsewhere.
    Crash,
    /// The replica freezes but keeps its state; work resumes at
    /// recovery. A hang without a recovery time would stall forever, so
    /// hangs require `recover_ps`.
    Hang,
    /// The replica stops accepting new work but completes what it
    /// holds — a graceful maintenance drain.
    Drain,
}

impl std::fmt::Display for ReplicaFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Crash => "crash",
            Self::Hang => "hang",
            Self::Drain => "drain",
        })
    }
}

impl std::str::FromStr for ReplicaFaultKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "crash" => Ok(Self::Crash),
            "hang" => Ok(Self::Hang),
            "drain" => Ok(Self::Drain),
            other => {
                Err(format!("unknown fault kind {other:?} (expected crash | hang | drain)"))
            }
        }
    }
}

/// One declarative replica fault window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaFault {
    /// The replica the fault hits.
    pub replica: usize,
    /// What the fault does while the replica is down.
    pub kind: ReplicaFaultKind,
    /// When the fault strikes, in virtual picoseconds.
    pub at_ps: TimePs,
    /// When the replica recovers; `None` leaves it down for the rest of
    /// the run (invalid for [`ReplicaFaultKind::Hang`]).
    pub recover_ps: Option<TimePs>,
}

/// One declarative fabric-link fault window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// The fabric link index the fault hits.
    pub link: usize,
    /// When the degradation starts, in virtual picoseconds.
    pub at_ps: TimePs,
    /// When the link's original bandwidth is restored; `None` leaves it
    /// degraded for the rest of the run (invalid for a full partition).
    pub recover_ps: Option<TimePs>,
    /// Bandwidth while degraded, in GB/s. Zero partitions the link
    /// outright, which requires `recover_ps`.
    pub degrade_to_gbps: f64,
}

/// Bounded retries with deterministic virtual-time backoff for requests
/// a fault knocked out of the fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts beyond the first admission before a request is
    /// abandoned (recorded with a reason in the resilience report).
    pub max_retries: u32,
    /// Backoff before the first retry, in virtual picoseconds.
    pub backoff_ps: TimePs,
    /// Multiplier applied to the backoff on each further retry.
    pub backoff_multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_retries: 3, backoff_ps: 1_000_000_000, backoff_multiplier: 2.0 }
    }
}

impl RetryPolicy {
    /// The virtual-time backoff before retry number `attempt` (1-based).
    pub fn backoff_for(&self, attempt: u32) -> TimePs {
        let scale = self.backoff_multiplier.powi(attempt.saturating_sub(1) as i32);
        (self.backoff_ps as f64 * scale).round() as TimePs
    }
}

/// One fault transition the engine applies at a point in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// A replica goes down with the given fault semantics.
    ReplicaDown {
        /// The replica index.
        replica: usize,
        /// What the fault does while the replica is down.
        kind: ReplicaFaultKind,
        /// When the fault strikes.
        t_ps: TimePs,
    },
    /// A replica recovers.
    ReplicaUp {
        /// The replica index.
        replica: usize,
        /// When the replica is back.
        t_ps: TimePs,
    },
    /// A fabric link degrades (or partitions, at zero bandwidth).
    LinkDown {
        /// The fabric link index.
        link: usize,
        /// When the degradation starts.
        t_ps: TimePs,
        /// Bandwidth while degraded, in GB/s (zero = partition).
        degrade_to_gbps: f64,
    },
    /// A fabric link returns to its original bandwidth.
    LinkUp {
        /// The fabric link index.
        link: usize,
        /// When the link is restored.
        t_ps: TimePs,
    },
}

impl FaultEvent {
    /// When the transition fires.
    pub fn t_ps(&self) -> TimePs {
        match *self {
            Self::ReplicaDown { t_ps, .. }
            | Self::ReplicaUp { t_ps, .. }
            | Self::LinkDown { t_ps, .. }
            | Self::LinkUp { t_ps, .. } => t_ps,
        }
    }

    /// Ordering rank at equal times: recoveries apply before new faults,
    /// so a back-to-back window (recover at `t`, fail again at `t`)
    /// resolves as two distinct outages.
    fn rank(&self) -> u8 {
        match self {
            Self::ReplicaUp { .. } | Self::LinkUp { .. } => 0,
            Self::ReplicaDown { .. } | Self::LinkDown { .. } => 1,
        }
    }
}

/// A declarative fault plan: replica and link fault windows plus the
/// retry policy governing knocked-out requests.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosSchedule {
    /// Replica fault windows, in declaration order.
    pub replica_faults: Vec<ReplicaFault>,
    /// Link fault windows, in declaration order.
    pub link_faults: Vec<LinkFault>,
    /// Retry policy for requests lost to a crash or a failed pairing.
    pub retry: RetryPolicy,
}

impl ChaosSchedule {
    /// An empty schedule with the default retry policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a replica fault window (builder style).
    pub fn replica_fault(mut self, fault: ReplicaFault) -> Self {
        self.replica_faults.push(fault);
        self
    }

    /// Adds a link fault window (builder style).
    pub fn link_fault(mut self, fault: LinkFault) -> Self {
        self.link_faults.push(fault);
        self
    }

    /// Replaces the retry policy (builder style).
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Whether the schedule injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.replica_faults.is_empty() && self.link_faults.is_empty()
    }

    /// Seeded rate-based crash injection: each of `replicas` draws an
    /// independent Poisson crash process at `rate_per_s` faults per
    /// virtual second over `[0, horizon_ps)`, each crash recovering
    /// after `mttr_ps`. The generator is an inline splitmix64 stream, so
    /// the same seed always produces the same schedule.
    pub fn seeded(
        seed: u64,
        rate_per_s: f64,
        mttr_ps: TimePs,
        horizon_ps: TimePs,
        replicas: usize,
    ) -> Self {
        assert!(rate_per_s.is_finite() && rate_per_s >= 0.0, "crash rate must be non-negative");
        assert!(mttr_ps > 0, "mean time to recovery must be positive");
        let mut schedule = Self::new();
        if rate_per_s == 0.0 {
            return schedule;
        }
        let rate_per_ps = rate_per_s / 1e12;
        for replica in 0..replicas {
            // One independent, replayable stream per replica.
            let mut state = seed ^ (replica as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut t = 0.0f64;
            loop {
                let u = uniform(&mut state);
                t += -(1.0 - u).ln() / rate_per_ps;
                if !t.is_finite() || t >= horizon_ps as f64 {
                    break;
                }
                let at_ps = t.round() as TimePs;
                schedule.replica_faults.push(ReplicaFault {
                    replica,
                    kind: ReplicaFaultKind::Crash,
                    at_ps,
                    recover_ps: Some(at_ps.saturating_add(mttr_ps)),
                });
                // The replica is down until recovery; the next crash can
                // only strike after it is back.
                t = at_ps.saturating_add(mttr_ps) as f64;
            }
        }
        schedule
    }

    /// Compiles the schedule into a time-ordered event queue. Equal-time
    /// ties resolve recoveries before new faults, then declaration
    /// order, so the queue — and every run consuming it — is fully
    /// deterministic.
    ///
    /// # Panics
    ///
    /// Panics on a window that recovers at or before it starts, a hang
    /// without a recovery time, or a full partition (zero bandwidth)
    /// without a recovery time.
    pub fn compile(&self) -> VecDeque<FaultEvent> {
        let mut events = Vec::new();
        for fault in &self.replica_faults {
            if let Some(recover) = fault.recover_ps {
                assert!(
                    recover > fault.at_ps,
                    "replica {} fault recovers at {} ps, not after it strikes at {} ps",
                    fault.replica,
                    recover,
                    fault.at_ps
                );
                events.push(FaultEvent::ReplicaUp { replica: fault.replica, t_ps: recover });
            } else {
                assert!(
                    fault.kind != ReplicaFaultKind::Hang,
                    "replica {} hangs forever — a hang needs a recovery time",
                    fault.replica
                );
            }
            events.push(FaultEvent::ReplicaDown {
                replica: fault.replica,
                kind: fault.kind,
                t_ps: fault.at_ps,
            });
        }
        for fault in &self.link_faults {
            assert!(
                fault.degrade_to_gbps.is_finite() && fault.degrade_to_gbps >= 0.0,
                "link {} degrades to an invalid bandwidth {}",
                fault.link,
                fault.degrade_to_gbps
            );
            if let Some(recover) = fault.recover_ps {
                assert!(
                    recover > fault.at_ps,
                    "link {} fault recovers at {} ps, not after it strikes at {} ps",
                    fault.link,
                    recover,
                    fault.at_ps
                );
                events.push(FaultEvent::LinkUp { link: fault.link, t_ps: recover });
            } else {
                assert!(
                    fault.degrade_to_gbps > 0.0,
                    "link {} partitions forever — a partition needs a recovery time",
                    fault.link
                );
            }
            events.push(FaultEvent::LinkDown {
                link: fault.link,
                t_ps: fault.at_ps,
                degrade_to_gbps: fault.degrade_to_gbps,
            });
        }
        let mut indexed: Vec<(usize, FaultEvent)> = events.into_iter().enumerate().collect();
        indexed.sort_by(|(ia, a), (ib, b)| {
            (a.t_ps(), a.rank(), *ia).cmp(&(b.t_ps(), b.rank(), *ib))
        });
        indexed.into_iter().map(|(_, e)| e).collect()
    }
}

/// The next uniform draw in `[0, 1)` from a splitmix64 stream.
fn uniform(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Everything the resilience report needs from a chaotic run: raw
/// counters collected by the engine, aggregated into availability and
/// SLO splits by [`FleetReport`](crate::FleetReport).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResilienceStats {
    /// Fault windows that actually struck (targets that never
    /// materialized — e.g. an autoscale replica that was never spawned —
    /// are skipped, not counted).
    pub faults_injected: usize,
    /// Retry admissions performed (a request retried twice counts
    /// twice).
    pub requests_retried: usize,
    /// Requests that exhausted their retries or had nowhere to go.
    pub requests_abandoned: usize,
    /// `(request id, reason)` for every abandoned request.
    pub abandoned: Vec<(u64, String)>,
    /// KV-cache bytes destroyed by crashes (resident, queued, and
    /// in-flight KV whose destination died).
    pub kv_bytes_lost: u64,
    /// `(request id, fault time)` for every prefill a crash destroyed —
    /// the report turns these into re-prefill overhead.
    pub lost_prefills: Vec<(u64, TimePs)>,
    /// `(request id, original arrival)` for every retried request, so
    /// report latencies span the whole retry chain.
    pub original_arrivals: Vec<(u64, TimePs)>,
    /// Per-replica downtime (crash + hang windows), in picoseconds.
    pub downtime: Vec<TimePs>,
    /// Merged-at-report-time `(start, end)` windows during which at
    /// least one replica was down.
    pub fault_windows: Vec<(TimePs, TimePs)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_geometrically() {
        let retry = RetryPolicy::default();
        assert_eq!(retry.backoff_for(1), 1_000_000_000);
        assert_eq!(retry.backoff_for(2), 2_000_000_000);
        assert_eq!(retry.backoff_for(3), 4_000_000_000);
        let flat = RetryPolicy { backoff_multiplier: 1.0, ..retry };
        assert_eq!(flat.backoff_for(5), 1_000_000_000);
    }

    #[test]
    fn compile_orders_by_time_with_recoveries_first() {
        let schedule = ChaosSchedule::new()
            .replica_fault(ReplicaFault {
                replica: 0,
                kind: ReplicaFaultKind::Crash,
                at_ps: 100,
                recover_ps: Some(200),
            })
            .replica_fault(ReplicaFault {
                replica: 1,
                kind: ReplicaFaultKind::Drain,
                at_ps: 200,
                recover_ps: None,
            })
            .link_fault(LinkFault {
                link: 0,
                at_ps: 50,
                recover_ps: Some(150),
                degrade_to_gbps: 1.0,
            });
        let events: Vec<FaultEvent> = schedule.compile().into();
        assert_eq!(events.len(), 5);
        assert!(matches!(events[0], FaultEvent::LinkDown { link: 0, t_ps: 50, .. }));
        assert!(matches!(events[1], FaultEvent::ReplicaDown { replica: 0, t_ps: 100, .. }));
        assert!(matches!(events[2], FaultEvent::LinkUp { link: 0, t_ps: 150 }));
        // At t=200 the recovery applies before the new fault.
        assert!(matches!(events[3], FaultEvent::ReplicaUp { replica: 0, t_ps: 200 }));
        assert!(matches!(events[4], FaultEvent::ReplicaDown { replica: 1, t_ps: 200, .. }));
    }

    #[test]
    #[should_panic(expected = "hang needs a recovery time")]
    fn compile_rejects_a_hang_without_recovery() {
        ChaosSchedule::new()
            .replica_fault(ReplicaFault {
                replica: 0,
                kind: ReplicaFaultKind::Hang,
                at_ps: 10,
                recover_ps: None,
            })
            .compile();
    }

    #[test]
    #[should_panic(expected = "partition needs a recovery time")]
    fn compile_rejects_an_unrecovered_partition() {
        ChaosSchedule::new()
            .link_fault(LinkFault {
                link: 0,
                at_ps: 10,
                recover_ps: None,
                degrade_to_gbps: 0.0,
            })
            .compile();
    }

    #[test]
    fn seeded_injection_is_replayable_and_bounded() {
        let horizon = 1_000_000_000_000; // 1 s
        let a = ChaosSchedule::seeded(7, 5.0, 10_000_000_000, horizon, 3);
        let b = ChaosSchedule::seeded(7, 5.0, 10_000_000_000, horizon, 3);
        assert_eq!(a, b, "same seed must reproduce the same schedule");
        assert!(!a.is_empty(), "5 faults/s over 1 s across 3 replicas should strike");
        for fault in &a.replica_faults {
            assert!(fault.at_ps < horizon);
            assert_eq!(fault.recover_ps, Some(fault.at_ps + 10_000_000_000));
            assert_eq!(fault.kind, ReplicaFaultKind::Crash);
        }
        let c = ChaosSchedule::seeded(8, 5.0, 10_000_000_000, horizon, 3);
        assert_ne!(a, c, "different seeds should diverge");
        assert!(ChaosSchedule::seeded(7, 0.0, 1, horizon, 3).is_empty());
    }

    #[test]
    fn fault_kinds_round_trip_through_strings() {
        for kind in [ReplicaFaultKind::Crash, ReplicaFaultKind::Hang, ReplicaFaultKind::Drain] {
            assert_eq!(kind.to_string().parse::<ReplicaFaultKind>().unwrap(), kind);
        }
        assert!("explode".parse::<ReplicaFaultKind>().is_err());
    }
}
