//! The unified driving surface every serving shape implements.
//!
//! Single-replica serving, multi-replica clusters, and disaggregated
//! prefill/decode deployments all expose the same lifecycle — push
//! requests, advance virtual time one event at a time, watch progress,
//! finalize into a report — but each used to spell it differently, so
//! every driver (CLI, sweep runner, benches, tests) was written three
//! times. [`Simulate`] names that lifecycle once:
//!
//! ```text
//! push_request*  →  (step | next_ready_ps | clock_ps)*  →  finalize
//! ```
//!
//! `llmss-core`'s `ServingSimulator` implements it directly;
//! `llmss-cluster` and `llmss-disagg` implement it for their fleet
//! simulators; and the `llmss-scenario` crate's `AnySimulator` folds all
//! three behind one value, which is what the `Scenario` API hands back.

use llmss_sched::{Request, TimePs};

use crate::ReportOutput;

/// A virtual-time serving simulation that can be driven event by event.
///
/// Implementations are *online*: requests may be pushed between steps and
/// join the simulation at their arrival times. `step` processes exactly
/// one virtual-time event (one replica iteration, one routing decision,
/// one transfer commit — whatever is earliest) and returns `false` once
/// all injected work has drained.
///
/// # Examples
///
/// Drive any serving shape through the one surface:
///
/// ```
/// use llmss_core::{ServingSimulator, SimConfig, Simulate};
/// use llmss_model::ModelSpec;
/// use llmss_sched::{Dataset, TraceGenerator};
///
/// let config = SimConfig::new(ModelSpec::gpt2()).npu_num(1).tensor_parallel();
/// let trace = TraceGenerator::new(Dataset::Alpaca, 7).rate_per_s(50.0).generate(4);
/// let mut sim = ServingSimulator::new(config, Vec::new())?;
/// for request in trace {
///     Simulate::push_request(&mut sim, request);
/// }
/// let report = Simulate::run_to_completion(sim);
/// assert_eq!(report.completions.len(), 4);
/// # Ok::<(), llmss_core::ConfigError>(())
/// ```
pub trait Simulate {
    /// The finished-simulation report this shape produces.
    type Report: ReportOutput;

    /// Injects one request; it joins the simulation at its arrival time
    /// (immediately, if virtual time is already past it).
    fn push_request(&mut self, request: Request);

    /// The earliest virtual time the next [`step`](Self::step) would act,
    /// or `None` when all injected work has drained. Drivers juggling
    /// several simulators step whichever reports the smallest ready time.
    fn next_ready_ps(&self) -> Option<TimePs>;

    /// The simulation's current virtual clock (for a fleet: the furthest
    /// replica clock — virtual time never runs backwards).
    fn clock_ps(&self) -> TimePs;

    /// Requests fully served so far (the drain-progress observable;
    /// completion records themselves ship with the final report).
    fn completed_requests(&self) -> usize;

    /// Processes the earliest virtual-time event; returns `false` when
    /// everything injected has drained.
    fn step(&mut self) -> bool;

    /// Finalizes into the report, consuming the simulator. Callable at
    /// any point — a partially drained simulation yields a partial
    /// report.
    fn finalize(self) -> Self::Report
    where
        Self: Sized;

    /// Steps until drained, then finalizes (the common whole-trace run).
    fn run_to_completion(mut self) -> Self::Report
    where
        Self: Sized,
    {
        while self.step() {}
        self.finalize()
    }
}
