//! The serving simulator: the paper's Figure 4 loop.
//!
//! Each iteration: the scheduler forms a batch under KV-memory constraints,
//! the engine stack prices the (sharded) operators through the reuse
//! caches, the graph converter builds the execution graph, and the system
//! simulator returns the iteration latency, which advances the scheduler's
//! clock. Wall-clock spent in each component is recorded for the Figure 9
//! breakdown.
//!
//! Two levels of work avoidance keep the loop fast at serving scale:
//!
//! * **Iteration-outcome memoization** — a [`BatchSignature`] computed in
//!   O(batch) keys the whole iteration's result, so recurring steady-state
//!   decode batches skip graph construction *and* the network DES (see
//!   [`IterationCache`]).
//! * **A zero-realloc miss path** — one [`ExecGraph`] arena and one
//!   [`GraphSimulator`] (event heap, dependency buffers) persist across
//!   steps, cleared and refilled instead of rebuilt.
//!
//! [`BatchSignature`]: llmss_model::BatchSignature

use std::time::Instant;

use llmss_model::FnvHashSet;
use llmss_net::{ExecGraph, GraphSimulator, Topology};
use llmss_sched::{Request, Scheduler, TimePs};

use crate::telemetry::{SimEvent, Telemetry};
use crate::{
    BucketAdaptivity, ConfigError, EngineStack, GraphConverter, IterationCache,
    IterationLookup, IterationOutcome, IterationRecord, KvBucket, SimConfig, SimReport,
    Simulate, WallBreakdown,
};

/// An end-to-end LLM serving simulation.
///
/// # Examples
///
/// ```no_run
/// use llmss_core::{ServingSimulator, SimConfig};
/// use llmss_model::ModelSpec;
/// use llmss_sched::{Dataset, TraceGenerator};
///
/// let config = SimConfig::new(ModelSpec::gpt2()).npu_num(1).tensor_parallel();
/// let trace = TraceGenerator::new(Dataset::Alpaca, 42).rate_per_s(8.0).generate(32);
/// let report = ServingSimulator::new(config, trace)?.run();
/// println!("{}", report.summary());
/// # Ok::<(), llmss_core::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct ServingSimulator {
    topology: Topology,
    converter: GraphConverter,
    stack: EngineStack,
    scheduler: Scheduler,
    records: Vec<IterationRecord>,
    wall: WallBreakdown,
    /// Persistent graph arena, cleared and refilled every miss.
    graph: ExecGraph,
    /// Persistent DES working state (event heap, CSR buffers).
    des: GraphSimulator,
    /// Whole-iteration outcome memoization.
    memo: IterationCache,
    /// Simulated time spent executing iterations (cumulative).
    busy_ps: TimePs,
    /// Event sink handle; off by default, in which case the tracing
    /// hooks below reduce to an early-out branch.
    telemetry: Telemetry,
    /// Requests whose prefill phase has opened (traced runs only).
    traced_prefill: FnvHashSet<u64>,
    /// Requests whose decode phase has opened (traced runs only).
    traced_decode: FnvHashSet<u64>,
    /// Completion records already emitted as events.
    completions_emitted: usize,
}

impl ServingSimulator {
    /// Builds a simulator from a configuration and a request trace.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration cannot be realized
    /// (invalid parallelism, model does not fit in memory, ...).
    pub fn new(config: SimConfig, requests: Vec<Request>) -> Result<Self, ConfigError> {
        let parallelism = config.parallelism()?;
        let topology = config.topology()?;
        let kv = config.kv_cache()?;
        let converter = GraphConverter::new(
            config.model.clone(),
            parallelism,
            &topology,
            config.pim_mode,
            config.selective_batching,
            config.sub_batch,
        );
        let stack = EngineStack::for_pim_mode(
            config.pim_mode,
            config.npu_config.clone(),
            config.pim_config.clone(),
            config.reuse,
        );
        let scheduler = Scheduler::new(config.scheduler_config(), kv, requests);
        config.kv_bucket.validate()?;
        let mut memo = IterationCache::new(
            config.reuse && config.iteration_memo,
            converter.sig_layout(config.kv_bucket.initial_tokens()),
        );
        if let KvBucket::Adaptive { min_tokens, max_tokens, target_hit_rate, window } =
            config.kv_bucket
        {
            memo = memo.with_adaptivity(BucketAdaptivity {
                min_tokens: min_tokens as u32,
                max_tokens: max_tokens as u32,
                target_hit_rate,
                window,
            });
        }
        Ok(Self {
            topology,
            converter,
            stack,
            scheduler,
            records: Vec::new(),
            wall: WallBreakdown::default(),
            graph: ExecGraph::new(),
            des: GraphSimulator::new(),
            memo,
            busy_ps: 0,
            telemetry: Telemetry::off(),
            traced_prefill: FnvHashSet::default(),
            traced_decode: FnvHashSet::default(),
            completions_emitted: 0,
        })
    }

    /// Attaches (or detaches, with [`Telemetry::off`]) the event sink
    /// this simulator reports to. The handle carries the replica index
    /// stamped on every event.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Attaches the fleet-wide [`SharedReuse`](crate::SharedReuse) tier
    /// to both cache levels (iteration outcomes and op prices) under
    /// `fingerprint`'s namespace. Lookups fall through to the shared
    /// snapshot after a local miss; locally simulated results stay
    /// private until [`publish_shared_reuse`](Self::publish_shared_reuse).
    pub fn attach_shared_reuse(&mut self, shared: crate::SharedReuse, fingerprint: u64) {
        self.memo.attach_shared(shared.clone(), fingerprint);
        self.stack.attach_shared(shared, fingerprint);
    }

    /// Publishes fresh cache entries to the shared tier. The fleet
    /// engine calls this at global sync points in replica-index order,
    /// which is what keeps shared-tier hit counters byte-deterministic
    /// under sharded stepping.
    pub fn publish_shared_reuse(&mut self) {
        self.memo.publish_shared();
        self.stack.publish_shared();
    }

    /// Runs one iteration; returns `false` when the trace is drained.
    ///
    /// # Panics
    ///
    /// Panics if the generated execution graph is inconsistent with the
    /// topology (a bug, not a user error).
    pub fn step(&mut self) -> bool {
        let t0 = Instant::now(); // llmss-lint: allow(d002, reason = "WallBreakdown measures host wall time (Figure 9), never simulated time")
        let Some(batch) = self.scheduler.next_batch() else {
            return false;
        };

        // Iteration-outcome memoization: a recurring steady-state batch
        // signature answers from the cache, skipping graph construction
        // and the network DES entirely.
        let lookup = self.memo.lookup_batch(&batch);
        if let IterationLookup::Hit(cached) = lookup {
            self.record_iteration(&batch, &cached);
            self.emit_iteration(&batch, cached.makespan_ps, true);
            self.scheduler.complete_iteration(cached.makespan_ps);
            self.emit_completions();
            self.wall.scheduler += t0.elapsed();
            return true;
        }
        let sched_elapsed = t0.elapsed();

        let engine_before = self.stack.engine_wall();
        let t1 = Instant::now(); // llmss-lint: allow(d002, reason = "WallBreakdown measures host wall time (Figure 9), never simulated time")
        self.converter.convert_into(&batch, &mut self.stack, &mut self.graph);
        let convert_total = t1.elapsed();
        let engine_elapsed = self.stack.engine_wall() - engine_before;

        let t2 = Instant::now(); // llmss-lint: allow(d002, reason = "WallBreakdown measures host wall time (Figure 9), never simulated time")
        let outcome = self
            .des
            .simulate(&self.graph, &self.topology)
            .expect("converter emits valid graphs"); // llmss-lint: allow(p001, reason = "documented panic: an inconsistent graph is a converter bug, not a user error")
        let iteration = IterationOutcome::capture(outcome, self.graph.len());
        let net_elapsed = t2.elapsed();
        if lookup == IterationLookup::Miss {
            self.memo.insert_current(iteration);
        }

        self.record_iteration(&batch, &iteration);
        self.emit_iteration(&batch, iteration.makespan_ps, false);

        let t3 = Instant::now(); // llmss-lint: allow(d002, reason = "WallBreakdown measures host wall time (Figure 9), never simulated time")
        self.scheduler.complete_iteration(iteration.makespan_ps);
        self.emit_completions();
        self.wall.scheduler += sched_elapsed + t3.elapsed();
        self.wall.engine += engine_elapsed;
        self.wall.converter += convert_total.saturating_sub(engine_elapsed);
        self.wall.network += net_elapsed;
        true
    }

    /// Appends the iteration record shared by the memoized and simulated
    /// paths (identical fields either way — that is the exactness
    /// contract the bucket-1 equivalence tests pin down).
    fn record_iteration(
        &mut self,
        batch: &llmss_sched::IterationBatch,
        outcome: &IterationOutcome,
    ) {
        self.busy_ps += outcome.makespan_ps;
        self.records.push(IterationRecord {
            index: self.scheduler.iterations(),
            start_ps: self.scheduler.clock_ps(),
            latency_ps: outcome.makespan_ps,
            batch_size: batch.batch_size(),
            prompt_tokens: batch.prompt_tokens(),
            generated_tokens: batch.generated_tokens(),
            evictions: batch.evictions.len(),
            reloads: batch.reloads.len(),
            graph_ops: outcome.graph_ops,
            net_events: outcome.net_events,
            compute_ps: outcome.compute_ps,
            comm_ps: outcome.comm_ps,
            host_ps: outcome.host_ps,
        });
    }

    /// Emits the iteration's telemetry: phase opens for slots seen for
    /// the first time, the iteration record itself (with its batch
    /// signature and memo outcome), and prefill closes. A no-op branch
    /// when no sink is attached.
    fn emit_iteration(
        &mut self,
        batch: &llmss_sched::IterationBatch,
        latency_ps: TimePs,
        memo_hit: bool,
    ) {
        if !self.telemetry.is_on() {
            return;
        }
        let telemetry = self.telemetry.clone();
        let replica = telemetry.replica();
        let start_ps = self.scheduler.clock_ps();
        let end_ps = start_ps + latency_ps;
        for slot in &batch.slots {
            if slot.kv_past == 0 {
                if self.traced_prefill.insert(slot.request) {
                    telemetry.emit(|| SimEvent::PrefillStart {
                        t_ps: start_ps,
                        id: slot.request,
                        replica,
                    });
                }
            } else if self.traced_decode.insert(slot.request) {
                telemetry.emit(|| SimEvent::DecodeStart {
                    t_ps: start_ps,
                    id: slot.request,
                    replica,
                });
            }
        }
        let prefill_slots = batch.slots.iter().filter(|s| s.kv_past == 0).count();
        let kv = self.scheduler.kv();
        telemetry.emit(|| SimEvent::Iteration {
            replica,
            index: self.scheduler.iterations(),
            start_ps,
            end_ps,
            batch_size: batch.batch_size(),
            prefill_slots,
            prompt_tokens: batch.prompt_tokens(),
            gen_tokens: batch.generated_tokens(),
            queue_depth: self.scheduler.pending_len(),
            kv_used_pages: kv.used_pages(),
            kv_total_pages: kv.config().total_pages(),
            memo_hit,
            signature: format!(
                "{}p+{}d/{}t",
                prefill_slots,
                batch.batch_size() - prefill_slots,
                batch.prompt_tokens() + batch.generated_tokens(),
            ),
        });
        for slot in &batch.slots {
            if slot.kv_past == 0 {
                telemetry.emit(|| SimEvent::PrefillEnd {
                    t_ps: end_ps,
                    id: slot.request,
                    replica,
                });
            }
        }
    }

    /// Emits `Completed` events for completion records appended since
    /// the last call.
    fn emit_completions(&mut self) {
        if !self.telemetry.is_on() {
            return;
        }
        let telemetry = self.telemetry.clone();
        let replica = telemetry.replica();
        let completions = self.scheduler.completions();
        for c in &completions[self.completions_emitted..] {
            telemetry.emit(|| SimEvent::Completed {
                t_ps: c.finish_ps,
                id: c.id,
                replica,
                arrival_ps: c.arrival_ps,
                first_token_ps: c.first_token_ps,
                input_len: c.input_len,
                output_len: c.output_len,
            });
        }
        self.completions_emitted = completions.len();
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(mut self) -> SimReport {
        while self.step() {}
        self.into_report()
    }

    /// Runs at most `max_iterations` and returns the (possibly partial)
    /// report — useful for long traces in benchmarks.
    pub fn run_bounded(mut self, max_iterations: u64) -> SimReport {
        let mut n = 0;
        while n < max_iterations && self.step() {
            n += 1;
        }
        self.into_report()
    }

    /// Injects one request online (the cluster router's entry point).
    ///
    /// The simulator does not have to be idle: the request queues at the
    /// scheduler and joins batch formation once the replica's clock
    /// reaches its arrival time (immediately, if the clock is already
    /// past it).
    pub fn push_request(&mut self, request: Request) {
        self.scheduler.push_request(request);
    }

    /// The earliest simulated time the next [`step`](Self::step) would
    /// act, or `None` when the simulator has drained all injected work.
    ///
    /// This is the interleaving key for multi-replica simulation: a
    /// cluster driver repeatedly steps whichever replica reports the
    /// smallest ready time, keeping all replica clocks loosely
    /// synchronized without a global lockstep barrier.
    pub fn next_ready_ps(&self) -> Option<TimePs> {
        self.scheduler.next_ready_ps()
    }

    /// The replica's current simulated clock.
    pub fn clock_ps(&self) -> TimePs {
        self.scheduler.clock_ps()
    }

    /// The replica's current serving role (derived from its scheduler
    /// mode).
    pub fn mode(&self) -> llmss_sched::SchedulerMode {
        self.scheduler.mode()
    }

    /// Role-switch hook: re-targets the replica at a different serving
    /// phase. Only legal once the replica has drained — see
    /// [`Scheduler::set_mode`].
    ///
    /// # Panics
    ///
    /// Panics if any request is still pending, active, or evicted.
    pub fn set_mode(&mut self, mode: llmss_sched::SchedulerMode) {
        self.scheduler.set_mode(mode);
    }

    /// Simulated time this replica has spent executing iterations — the
    /// control plane's utilization signal.
    pub fn busy_ps(&self) -> TimePs {
        self.busy_ps
    }

    /// The scheduler (for inspection between steps).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Crash semantics for fault injection: drops every request the
    /// replica holds (releasing their KV) and returns them so a fleet
    /// driver can retry them elsewhere. Request-lifecycle trace state is
    /// forgotten too — a retried request re-emits its prefill/decode
    /// markers wherever it lands next.
    pub fn crash_drain(&mut self) -> Vec<llmss_sched::LostWork> {
        let lost = self.scheduler.crash_drain();
        for work in &lost {
            self.traced_prefill.remove(&work.request.id);
            self.traced_decode.remove(&work.request.id);
        }
        lost
    }

    /// Retracts completions by id (finished-but-unshipped prefill KV
    /// that died with a crash). The completion-event cursor clamps so
    /// later completions still emit exactly once.
    pub fn retract_completions(&mut self, ids: &[u64]) -> usize {
        let removed = self.scheduler.retract_completions(ids);
        self.completions_emitted =
            self.completions_emitted.min(self.scheduler.completions().len());
        for id in ids {
            self.traced_prefill.remove(id);
            self.traced_decode.remove(id);
        }
        removed
    }

    /// Jumps the replica clock to `t` (no-op if already past it) — the
    /// fault-recovery path: a replica back from an outage must not run
    /// iterations in its past.
    pub fn advance_clock_to(&mut self, t: TimePs) {
        self.scheduler.advance_clock_to(t);
    }

    /// The engine stack (for reuse statistics between steps).
    pub fn stack(&self) -> &EngineStack {
        &self.stack
    }

    /// Combined reuse statistics: per-operator counters from the engine
    /// stack plus iteration-level memoization counters.
    pub fn reuse_stats(&self) -> crate::ReuseStats {
        let mut stats = self.stack.reuse_stats();
        self.memo.fill_stats(&mut stats);
        stats
    }

    /// Finalizes the simulator into its report (used directly by drivers
    /// that interleave [`step`](Self::step) calls, e.g. the cluster
    /// simulator; [`run`](Self::run) is the single-replica shorthand).
    pub fn into_report(mut self) -> SimReport {
        let reuse = self.reuse_stats();
        SimReport {
            sim_duration_ps: self.scheduler.clock_ps(),
            // Ownership moves from the scheduler — no copy of what can be
            // millions of completion records.
            completions: self.scheduler.take_completions(),
            iterations: self.records,
            wall: self.wall,
            reuse,
        }
    }
}

impl Simulate for ServingSimulator {
    type Report = SimReport;

    fn push_request(&mut self, request: Request) {
        ServingSimulator::push_request(self, request);
    }

    fn next_ready_ps(&self) -> Option<TimePs> {
        ServingSimulator::next_ready_ps(self)
    }

    fn clock_ps(&self) -> TimePs {
        ServingSimulator::clock_ps(self)
    }

    fn completed_requests(&self) -> usize {
        self.scheduler.completions().len()
    }

    fn step(&mut self) -> bool {
        ServingSimulator::step(self)
    }

    fn finalize(self) -> SimReport {
        self.into_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmss_model::ModelSpec;
    use llmss_sched::{Dataset, TraceGenerator};

    fn small_trace(n: usize) -> Vec<Request> {
        TraceGenerator::new(Dataset::Alpaca, 11).rate_per_s(50.0).generate(n)
    }

    fn config() -> SimConfig {
        SimConfig::new(ModelSpec::gpt2()).npu_num(1).tensor_parallel()
    }

    #[test]
    fn completes_all_requests() {
        let report = ServingSimulator::new(config(), small_trace(6)).unwrap().run();
        assert_eq!(report.completions.len(), 6);
        assert!(report.sim_duration_ps > 0);
        assert!(!report.iterations.is_empty());
    }

    #[test]
    fn iteration_latencies_are_positive_and_clock_advances() {
        let report = ServingSimulator::new(config(), small_trace(4)).unwrap().run();
        for it in &report.iterations {
            assert!(it.latency_ps > 0, "iteration {} has zero latency", it.index);
        }
        let last = report.iterations.last().unwrap();
        assert_eq!(report.sim_duration_ps, last.start_ps + last.latency_ps);
    }

    #[test]
    fn reuse_dramatically_reduces_engine_work() {
        let with = ServingSimulator::new(config().reuse(true), small_trace(4)).unwrap().run();
        let without =
            ServingSimulator::new(config().reuse(false), small_trace(4)).unwrap().run();
        assert!(with.reuse.hit_rate() > 0.8, "hit rate {:.2}", with.reuse.hit_rate());
        assert_eq!(without.reuse.hits(), 0);
        // Same simulated results either way: reuse is a speed optimization.
        assert_eq!(with.sim_duration_ps, without.sim_duration_ps);
        assert!(without.reuse.misses() > 5 * with.reuse.misses());
    }

    #[test]
    fn tensor_parallel_run_is_faster_in_sim_time() {
        let trace = small_trace(4);
        let tp1 = ServingSimulator::new(config(), trace.clone()).unwrap().run();
        let tp4 = ServingSimulator::new(
            SimConfig::new(ModelSpec::gpt2()).npu_num(4).tensor_parallel(),
            trace,
        )
        .unwrap()
        .run();
        assert!(tp4.sim_duration_ps < tp1.sim_duration_ps);
    }

    #[test]
    fn run_bounded_stops_early() {
        let sim = ServingSimulator::new(config(), small_trace(32)).unwrap();
        let report = sim.run_bounded(3);
        assert_eq!(report.iterations.len(), 3);
    }

    #[test]
    fn pim_pool_config_runs_end_to_end() {
        let cfg = SimConfig::new(ModelSpec::gpt2())
            .npu_num(2)
            .tensor_parallel()
            .pim_pool(2)
            .sub_batch(true);
        let report = ServingSimulator::new(cfg, small_trace(4)).unwrap().run();
        assert_eq!(report.completions.len(), 4);
    }

    #[test]
    fn adaptive_kv_bucket_anneals_and_still_serves_everything() {
        use llmss_sched::{bursty_trace, BurstyTraceSpec};
        let mut spec = BurstyTraceSpec::decode_heavy_mix(0.9, 7);
        spec.bursts = 2;
        spec.burst_size = 24;
        spec.heavy = (32, 128);
        spec.light = (32, 24);
        let trace = bursty_trace(&spec);
        let base = config().max_batch(16);
        let exact = ServingSimulator::new(base.clone(), trace.clone()).unwrap().run();
        let adaptive_bucket = KvBucket::Adaptive {
            min_tokens: 1,
            max_tokens: 64,
            target_hit_rate: 0.8,
            window: 32,
        };
        let adaptive =
            ServingSimulator::new(base.kv_bucket(adaptive_bucket), trace).unwrap().run();

        // The lockstep decode cohorts rarely repeat exact signatures, so
        // the annealer must have grown the bucket and beaten exact reuse.
        assert!(adaptive.reuse.kv_bucket_end > 1, "bucket never annealed");
        assert!(adaptive.reuse.kv_bucket_end <= 64, "drift budget exceeded");
        assert!(
            adaptive.reuse.iteration_hit_rate() > exact.reuse.iteration_hit_rate(),
            "adaptive ({:.2}) should beat exact ({:.2}) on this trace",
            adaptive.reuse.iteration_hit_rate(),
            exact.reuse.iteration_hit_rate()
        );
        // Fidelity stays bounded: every request completes, and the
        // simulated duration drifts no more than coarse-bucket pricing
        // allows.
        assert_eq!(adaptive.completions.len(), exact.completions.len());
        let drift = (adaptive.sim_duration_ps as f64 - exact.sim_duration_ps as f64).abs()
            / exact.sim_duration_ps as f64;
        assert!(drift < 0.25, "adaptive-bucket duration drift {drift:.3} out of bounds");
    }

    #[test]
    fn deterministic_end_to_end() {
        let a = ServingSimulator::new(config(), small_trace(5)).unwrap().run();
        let b = ServingSimulator::new(config(), small_trace(5)).unwrap().run();
        assert_eq!(a.sim_duration_ps, b.sim_duration_ps);
        assert_eq!(a.iterations.len(), b.iterations.len());
    }
}
