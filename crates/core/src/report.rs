//! Results collection: throughput series, latency statistics, and the
//! per-component simulation-time breakdown.
//!
//! Mirrors the artifact's three outputs: standard-output summary,
//! `*-throughput.tsv` (prompt and generation token rates over time), and
//! `*-simulation-time.tsv` (wall-clock per simulator component — the
//! paper's Figure 9 breakdown).

use std::time::Duration;

use llmss_net::TimePs;
use llmss_sched::Completion;
use serde::{Deserialize, Serialize, Value};

use crate::json::obj;
use crate::ReuseStats;

/// Per-iteration record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Iteration index.
    pub index: u64,
    /// Simulated start time.
    pub start_ps: TimePs,
    /// Simulated iteration latency (graph makespan).
    pub latency_ps: TimePs,
    /// Sequences in the batch.
    pub batch_size: usize,
    /// Prompt tokens processed.
    pub prompt_tokens: usize,
    /// Tokens generated.
    pub generated_tokens: usize,
    /// KV evictions this iteration.
    pub evictions: usize,
    /// KV reloads this iteration.
    pub reloads: usize,
    /// Execution-graph operations simulated.
    pub graph_ops: usize,
    /// Network-simulator events processed.
    pub net_events: u64,
    /// Aggregate simulated time in compute operators.
    pub compute_ps: TimePs,
    /// Aggregate simulated time in communication operators.
    pub comm_ps: TimePs,
    /// Aggregate simulated time in host memory transfers.
    pub host_ps: TimePs,
}

/// Wall-clock time spent in each simulator component (Figure 9's stack).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WallBreakdown {
    /// Scheduler (batching, KV management).
    pub scheduler: Duration,
    /// Execution engine stack (compiles + hardware simulation).
    pub engine: Duration,
    /// Graph converter.
    pub converter: Duration,
    /// System/network simulation (ASTRA-sim analog).
    pub network: Duration,
}

impl WallBreakdown {
    /// Total wall-clock across components.
    pub fn total(&self) -> Duration {
        self.scheduler + self.engine + self.converter + self.network
    }

    /// TSV rows matching the artifact's `*-simulation-time.tsv`.
    pub fn to_tsv(&self) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        format!(
            "component\tms\nscheduler\t{:.3}\nexecution_engine\t{:.3}\ngraph_converter\t{:.3}\nastra_sim\t{:.3}\ntotal\t{:.3}\n",
            ms(self.scheduler),
            ms(self.engine),
            ms(self.converter),
            ms(self.network),
            ms(self.total()),
        )
    }
}

/// One bin of the throughput-over-time series (Figure 6's y values).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputBin {
    /// Bin start, seconds of simulated time.
    pub t_s: f64,
    /// Prompt tokens per second in this bin.
    pub prompt_tps: f64,
    /// Generated tokens per second in this bin.
    pub gen_tps: f64,
}

/// p50/p95/p99 summary of one latency metric, in seconds of simulated
/// time — the serving-SLO shape (median, tail, extreme tail).
///
/// Built by [`percentiles_from_ps`], which yields `None` for an empty
/// sample set (a run with zero completions has no percentiles — callers
/// skip the row or print placeholders instead of NaN); used for
/// single-replica metrics via [`SimReport::ttft_percentiles`] and
/// friends, and for cluster-level SLOs by `llmss-cluster`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PercentileSummary {
    /// Median (50th percentile).
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
}

impl PercentileSummary {
    /// TSV fragment `p50\tp95\tp99` with values in seconds.
    pub fn to_tsv_fields(&self) -> String {
        format!("{:.4}\t{:.4}\t{:.4}", self.p50_s, self.p95_s, self.p99_s)
    }

    /// TSV fragment for an optional summary: `-` placeholders keep the
    /// columns aligned when the sample set was empty, instead of emitting
    /// NaN into the output.
    pub fn tsv_fields_or_dashes(summary: Option<PercentileSummary>) -> String {
        match summary {
            Some(s) => s.to_tsv_fields(),
            None => "-\t-\t-".to_owned(),
        }
    }

    /// Human-readable rendering of an optional summary (`n/a` when the
    /// sample set was empty).
    pub fn display_or_na(summary: Option<PercentileSummary>) -> String {
        match summary {
            Some(s) => s.to_string(),
            None => "n/a".to_owned(),
        }
    }

    /// JSON object `{p50_s, p95_s, p99_s}` for machine-readable
    /// summaries.
    pub fn json_value(&self) -> Value {
        obj(vec![
            ("p50_s", Value::Float(self.p50_s)),
            ("p95_s", Value::Float(self.p95_s)),
            ("p99_s", Value::Float(self.p99_s)),
        ])
    }

    /// JSON for an optional summary: `null` when the sample set was
    /// empty, mirroring [`Self::tsv_fields_or_dashes`].
    pub fn json_or_null(summary: Option<PercentileSummary>) -> Value {
        summary.map_or(Value::Null, |s| s.json_value())
    }
}

impl std::fmt::Display for PercentileSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p50={:.3}s p95={:.3}s p99={:.3}s", self.p50_s, self.p95_s, self.p99_s)
    }
}

/// A completion record that carries the standard serving-SLO signals.
///
/// Implemented by single-replica [`Completion`]s here and by
/// `llmss-disagg`'s lifecycle records, so [`SloSummary::collect`] can
/// derive one set of percentile metrics for every serving shape instead
/// of each report crate re-plumbing `percentiles_from_ps` by hand.
pub trait SloCompletion {
    /// Time to first token, in picoseconds.
    fn ttft_ps(&self) -> TimePs;
    /// End-to-end request latency, in picoseconds.
    fn latency_ps(&self) -> TimePs;
    /// Mean time per output token after the first, in picoseconds.
    fn tpot_ps(&self) -> f64;
    /// Tokens the request generated (TPOT is undefined at 1).
    fn output_len(&self) -> usize;
}

impl SloCompletion for Completion {
    fn ttft_ps(&self) -> TimePs {
        Completion::ttft_ps(self)
    }

    fn latency_ps(&self) -> TimePs {
        Completion::latency_ps(self)
    }

    fn tpot_ps(&self) -> f64 {
        Completion::tpot_ps(self)
    }

    fn output_len(&self) -> usize {
        self.output_len
    }
}

/// The three serving-SLO percentile summaries every report exposes:
/// TTFT, TPOT, and end-to-end latency (each `None` when its sample set
/// is empty — see [`percentiles_from_ps`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSummary {
    /// Time to first token.
    pub ttft: Option<PercentileSummary>,
    /// Time per output token (single-token requests excluded).
    pub tpot: Option<PercentileSummary>,
    /// End-to-end request latency.
    pub latency: Option<PercentileSummary>,
}

impl SloSummary {
    /// Derives the summary from any completion stream. This is the one
    /// percentile pipeline shared by single-replica, cluster, and
    /// disaggregated reports.
    pub fn collect<'a, C, I>(completions: I) -> Self
    where
        C: SloCompletion + 'a,
        I: Iterator<Item = &'a C> + Clone,
    {
        Self {
            ttft: Self::ttft_of(completions.clone()),
            tpot: Self::tpot_of(completions.clone()),
            latency: Self::latency_of(completions),
        }
    }

    /// TTFT percentiles alone (for accessors that need one metric
    /// without paying for the other two sorts).
    pub fn ttft_of<'a, C: SloCompletion + 'a>(
        completions: impl Iterator<Item = &'a C>,
    ) -> Option<PercentileSummary> {
        percentiles_from_ps(completions.map(|c| c.ttft_ps() as f64))
    }

    /// TPOT percentiles alone (single-token requests excluded).
    pub fn tpot_of<'a, C: SloCompletion + 'a>(
        completions: impl Iterator<Item = &'a C>,
    ) -> Option<PercentileSummary> {
        percentiles_from_ps(
            completions.filter(|c| c.output_len() > 1).map(SloCompletion::tpot_ps),
        )
    }

    /// End-to-end latency percentiles alone.
    pub fn latency_of<'a, C: SloCompletion + 'a>(
        completions: impl Iterator<Item = &'a C>,
    ) -> Option<PercentileSummary> {
        percentiles_from_ps(completions.map(|c| c.latency_ps() as f64))
    }

    /// JSON object `{ttft, tpot, latency}` with `null` for metrics whose
    /// sample set was empty.
    pub fn json_value(&self) -> Value {
        obj(vec![
            ("ttft", PercentileSummary::json_or_null(self.ttft)),
            ("tpot", PercentileSummary::json_or_null(self.tpot)),
            ("latency", PercentileSummary::json_or_null(self.latency)),
        ])
    }
}

/// A finished simulation's output surface: the one-paragraph summary and
/// the named TSV artifacts the CLI writes.
///
/// Implemented by `SimReport`, `ClusterReport`, and `DisaggReport`, and
/// delegated through the scenario layer's `AnyReport`, so the binary (and
/// any other driver) writes results identically for every serving shape.
pub trait ReportOutput {
    /// One-paragraph human summary (what the CLI prints).
    fn summary(&self) -> String;

    /// `(file-name suffix, TSV content)` pairs, e.g.
    /// `("-throughput.tsv", ...)`. Suffixes are appended to the run's
    /// output prefix.
    fn artifacts(&self) -> Vec<(&'static str, String)>;

    /// Writes every artifact under `prefix` (creating parent directories)
    /// and returns the paths written.
    ///
    /// # Errors
    ///
    /// Propagates the first filesystem error.
    fn write_artifacts(&self, prefix: &str) -> std::io::Result<Vec<String>> {
        if let Some(dir) = std::path::Path::new(prefix).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut paths = Vec::new();
        for (suffix, content) in self.artifacts() {
            let path = format!("{prefix}{suffix}");
            std::fs::write(&path, content)?;
            paths.push(path);
        }
        Ok(paths)
    }
}

impl ReportOutput for SimReport {
    fn summary(&self) -> String {
        SimReport::summary(self)
    }

    fn artifacts(&self) -> Vec<(&'static str, String)> {
        vec![
            ("-throughput.tsv", self.throughput_tsv(1.0)),
            ("-simulation-time.tsv", self.wall.to_tsv()),
            ("-summary.json", self.summary_json()),
        ]
    }
}

/// Nearest-rank percentile over an unsorted sample (`p` in `[0, 1]`);
/// zero for an empty sample. The index rule matches
/// [`SimReport::latency_percentile_s`] so single-run and cluster metrics
/// agree.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn percentile(values: &mut [f64], p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.total_cmp(b));
    let idx = ((values.len() - 1) as f64 * p).round() as usize;
    values[idx]
}

/// Summarizes picosecond samples into p50/p95/p99 seconds, or `None` for
/// an empty sample set (no completions means the metric is undefined —
/// never a zero or NaN masquerading as a measurement).
pub fn percentiles_from_ps(
    values_ps: impl IntoIterator<Item = f64>,
) -> Option<PercentileSummary> {
    let mut v: Vec<f64> = values_ps.into_iter().collect();
    if v.is_empty() {
        return None;
    }
    // One sort would do, but `percentile` re-sorting keeps it
    // self-contained and the samples here are per-request, not per-token.
    Some(PercentileSummary {
        p50_s: percentile(&mut v, 0.50) / 1e12,
        p95_s: percentile(&mut v, 0.95) / 1e12,
        p99_s: percentile(&mut v, 0.99) / 1e12,
    })
}

/// The full result of one serving simulation.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-iteration records, in order.
    pub iterations: Vec<IterationRecord>,
    /// Per-request completion records.
    pub completions: Vec<Completion>,
    /// Wall-clock breakdown by component.
    pub wall: WallBreakdown,
    /// Reuse-cache statistics.
    pub reuse: ReuseStats,
    /// Total simulated time (scheduler clock at the end).
    pub sim_duration_ps: TimePs,
}

impl SimReport {
    /// Total prompt tokens processed.
    pub fn total_prompt_tokens(&self) -> u64 {
        self.iterations.iter().map(|i| i.prompt_tokens as u64).sum()
    }

    /// Total tokens generated.
    pub fn total_generated_tokens(&self) -> u64 {
        self.iterations.iter().map(|i| i.generated_tokens as u64).sum()
    }

    /// Simulated duration in seconds.
    pub fn sim_duration_s(&self) -> f64 {
        self.sim_duration_ps as f64 / 1e12
    }

    /// Overall generation throughput (tokens/s of simulated time).
    pub fn generation_throughput(&self) -> f64 {
        let s = self.sim_duration_s();
        if s == 0.0 {
            return 0.0;
        }
        self.total_generated_tokens() as f64 / s
    }

    /// Overall prompt throughput (tokens/s of simulated time).
    pub fn prompt_throughput(&self) -> f64 {
        let s = self.sim_duration_s();
        if s == 0.0 {
            return 0.0;
        }
        self.total_prompt_tokens() as f64 / s
    }

    /// Mean end-to-end request latency in seconds.
    pub fn mean_latency_s(&self) -> f64 {
        if self.completions.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.completions.iter().map(|c| c.latency_ps() as f64).sum();
        sum / self.completions.len() as f64 / 1e12
    }

    /// Latency percentile (e.g. `0.5`, `0.99`) in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn latency_percentile_s(&self, p: f64) -> f64 {
        let mut lat: Vec<f64> =
            self.completions.iter().map(|c| c.latency_ps() as f64).collect();
        percentile(&mut lat, p) / 1e12
    }

    /// The standard SLO percentile summaries (TTFT / TPOT / latency) in
    /// one value, via the shared [`SloSummary`] pipeline.
    pub fn slo(&self) -> SloSummary {
        SloSummary::collect(self.completions.iter())
    }

    /// p50/p95/p99 end-to-end request latency (`None` with zero
    /// completions).
    pub fn latency_percentiles(&self) -> Option<PercentileSummary> {
        SloSummary::latency_of(self.completions.iter())
    }

    /// p50/p95/p99 time to first token (`None` with zero completions).
    pub fn ttft_percentiles(&self) -> Option<PercentileSummary> {
        SloSummary::ttft_of(self.completions.iter())
    }

    /// p50/p95/p99 mean time per output token (requests generating a
    /// single token, whose TPOT is undefined, are excluded; `None` when
    /// no request generated more than one token).
    pub fn tpot_percentiles(&self) -> Option<PercentileSummary> {
        SloSummary::tpot_of(self.completions.iter())
    }

    /// Bins token production over simulated time (Figure 6's series).
    ///
    /// Tokens are attributed to the bin containing their iteration's end.
    ///
    /// # Panics
    ///
    /// Panics if `bin_s` is not strictly positive.
    pub fn throughput_series(&self, bin_s: f64) -> Vec<ThroughputBin> {
        assert!(bin_s > 0.0, "bin width must be positive");
        let end_s = self.sim_duration_s();
        let n_bins = (end_s / bin_s).ceil().max(1.0) as usize;
        let mut prompt = vec![0u64; n_bins];
        let mut gen = vec![0u64; n_bins];
        for it in &self.iterations {
            let t = (it.start_ps + it.latency_ps) as f64 / 1e12;
            let b = ((t / bin_s) as usize).min(n_bins - 1);
            prompt[b] += it.prompt_tokens as u64;
            gen[b] += it.generated_tokens as u64;
        }
        (0..n_bins)
            .map(|b| ThroughputBin {
                t_s: b as f64 * bin_s,
                prompt_tps: prompt[b] as f64 / bin_s,
                gen_tps: gen[b] as f64 / bin_s,
            })
            .collect()
    }

    /// TSV matching the artifact's `*-throughput.tsv`.
    pub fn throughput_tsv(&self, bin_s: f64) -> String {
        let mut out = String::from("time_s\tprompt_tps\tgeneration_tps\n");
        for b in self.throughput_series(bin_s) {
            out.push_str(&format!("{:.1}\t{:.2}\t{:.2}\n", b.t_s, b.prompt_tps, b.gen_tps));
        }
        out
    }

    /// Machine-readable run summary as pretty-printed JSON.
    ///
    /// Virtual-time results only — wall-clock components stay in
    /// `-simulation-time.tsv` so this artifact is byte-identical across
    /// runs of the same seed.
    pub fn summary_json(&self) -> String {
        let v = obj(vec![
            ("shape", Value::Str("single".into())),
            ("iterations", Value::Int(self.iterations.len() as i128)),
            ("completions", Value::Int(self.completions.len() as i128)),
            ("sim_duration_ps", Value::Int(self.sim_duration_ps as i128)),
            ("sim_duration_s", Value::Float(self.sim_duration_s())),
            ("prompt_tokens", Value::Int(self.total_prompt_tokens() as i128)),
            ("generated_tokens", Value::Int(self.total_generated_tokens() as i128)),
            ("generation_tput_tok_s", Value::Float(self.generation_throughput())),
            ("prompt_tput_tok_s", Value::Float(self.prompt_throughput())),
            ("mean_latency_s", Value::Float(self.mean_latency_s())),
            ("slo", self.slo().json_value()),
            ("reuse", self.reuse.json_value()),
        ]);
        crate::json::pretty(&v) + "\n"
    }

    /// One-paragraph human summary (the artifact's standard output).
    pub fn summary(&self) -> String {
        let mut out = format!(
            "iterations={} requests={} sim_time={:.2}s prompt_tok={} gen_tok={} \
             gen_tput={:.1} tok/s mean_lat={:.2}s reuse_hit_rate={:.1}% \
             iter_reuse={:.1}% wall={:.2}s \
             (sched {:.2}s, engine {:.2}s, convert {:.2}s, net {:.2}s)",
            self.iterations.len(),
            self.completions.len(),
            self.sim_duration_s(),
            self.total_prompt_tokens(),
            self.total_generated_tokens(),
            self.generation_throughput(),
            self.mean_latency_s(),
            self.reuse.hit_rate() * 100.0,
            self.reuse.iteration_hit_rate() * 100.0,
            self.wall.total().as_secs_f64(),
            self.wall.scheduler.as_secs_f64(),
            self.wall.engine.as_secs_f64(),
            self.wall.converter.as_secs_f64(),
            self.wall.network.as_secs_f64(),
        );
        // The per-replica vs fleet-wide split only means something (and
        // only stays byte-stable) when a shared cache ran.
        if self.reuse.shared_armed {
            out.push_str(&format!(
                " shared_hits={} local_iter_reuse={:.1}%",
                self.reuse.shared_hits,
                self.reuse.local_iteration_hit_rate() * 100.0,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        index: u64,
        start: TimePs,
        lat: TimePs,
        prompt: usize,
        gen: usize,
    ) -> IterationRecord {
        IterationRecord {
            index,
            start_ps: start,
            latency_ps: lat,
            batch_size: 1,
            prompt_tokens: prompt,
            generated_tokens: gen,
            evictions: 0,
            reloads: 0,
            graph_ops: 10,
            net_events: 20,
            compute_ps: lat,
            comm_ps: 0,
            host_ps: 0,
        }
    }

    fn report() -> SimReport {
        SimReport {
            iterations: vec![
                record(0, 0, 500_000_000_000, 100, 0),
                record(1, 500_000_000_000, 500_000_000_000, 0, 5),
                record(2, 1_000_000_000_000, 1_000_000_000_000, 0, 5),
            ],
            completions: vec![Completion {
                id: 0,
                arrival_ps: 0,
                first_token_ps: 500_000_000_000,
                finish_ps: 2_000_000_000_000,
                input_len: 100,
                output_len: 11,
            }],
            wall: WallBreakdown {
                scheduler: Duration::from_millis(1),
                engine: Duration::from_millis(20),
                converter: Duration::from_millis(4),
                network: Duration::from_millis(10),
            },
            reuse: ReuseStats::default(),
            sim_duration_ps: 2_000_000_000_000,
        }
    }

    #[test]
    fn token_totals() {
        let r = report();
        assert_eq!(r.total_prompt_tokens(), 100);
        assert_eq!(r.total_generated_tokens(), 10);
        assert_eq!(r.generation_throughput(), 5.0);
        assert_eq!(r.prompt_throughput(), 50.0);
    }

    #[test]
    fn throughput_series_bins_by_completion_time() {
        let r = report();
        let bins = r.throughput_series(1.0);
        assert_eq!(bins.len(), 2);
        // Iteration 0 ends at 0.5 s (bin 0); iterations 1 and 2 end at
        // 1.0 s and 2.0 s, both landing in the final bin.
        assert_eq!(bins[0].prompt_tps, 100.0);
        assert_eq!(bins[0].gen_tps, 0.0);
        assert_eq!(bins[1].gen_tps, 10.0);
    }

    #[test]
    fn latency_stats() {
        let r = report();
        assert!((r.mean_latency_s() - 2.0).abs() < 1e-9);
        assert!((r.latency_percentile_s(0.5) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_uses_nearest_rank() {
        let mut v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&mut v, 0.0), 1.0);
        assert_eq!(percentile(&mut v, 1.0), 100.0);
        assert_eq!(percentile(&mut v, 0.5), 51.0); // round(99 * 0.5) = 50
        assert_eq!(percentile(&mut v, 0.99), 99.0);
        assert_eq!(percentile(&mut [], 0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn out_of_range_percentile_rejected() {
        percentile(&mut [1.0], 1.5);
    }

    #[test]
    fn percentile_summaries_convert_ps_to_seconds() {
        let s = percentiles_from_ps((1..=100).map(|i| i as f64 * 1e12)).unwrap();
        assert_eq!(s.p50_s, 51.0);
        assert_eq!(s.p95_s, 95.0);
        assert_eq!(s.p99_s, 99.0);
        assert_eq!(s.to_tsv_fields().split('\t').count(), 3);
    }

    #[test]
    fn empty_sample_sets_have_no_percentiles() {
        assert_eq!(percentiles_from_ps(std::iter::empty()), None);
        let empty = SimReport {
            iterations: Vec::new(),
            completions: Vec::new(),
            wall: WallBreakdown::default(),
            reuse: ReuseStats::default(),
            sim_duration_ps: 0,
        };
        assert_eq!(empty.latency_percentiles(), None);
        assert_eq!(empty.ttft_percentiles(), None);
        assert_eq!(empty.tpot_percentiles(), None);
        // The placeholder renderings never contain NaN.
        assert_eq!(PercentileSummary::tsv_fields_or_dashes(None), "-\t-\t-");
        assert_eq!(PercentileSummary::display_or_na(None), "n/a");
    }

    #[test]
    fn report_percentiles_cover_all_metrics() {
        let r = report();
        // Single completion: every percentile equals its one sample.
        assert!((r.latency_percentiles().unwrap().p99_s - 2.0).abs() < 1e-9);
        assert!((r.ttft_percentiles().unwrap().p50_s - 0.5).abs() < 1e-9);
        // TPOT: (finish - first token) / (output_len - 1) = 1.5s / 10.
        assert!((r.tpot_percentiles().unwrap().p50_s - 0.15).abs() < 1e-9);
    }

    #[test]
    fn tpot_percentiles_skip_single_token_requests() {
        let mut r = report();
        r.completions.push(Completion {
            id: 1,
            arrival_ps: 0,
            first_token_ps: 1,
            finish_ps: 1,
            input_len: 4,
            output_len: 1,
        });
        // The single-token request would contribute a bogus 0.0 sample.
        assert!(r.tpot_percentiles().unwrap().p50_s > 0.0);
    }

    #[test]
    fn breakdown_tsv_has_all_components() {
        let tsv = report().wall.to_tsv();
        for c in ["scheduler", "execution_engine", "graph_converter", "astra_sim", "total"] {
            assert!(tsv.contains(c), "missing {c} in {tsv}");
        }
    }

    #[test]
    fn summary_mentions_throughput() {
        let s = report().summary();
        assert!(s.contains("gen_tput"), "{s}");
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_bin_rejected() {
        report().throughput_series(0.0);
    }
}
