//! Graph-converter edge cases: hybrid layouts with PIM pools, uneven
//! layer splits, non-power-of-two shapes, and degenerate batches.

use llmss_core::{EngineStack, GraphConverter, ParallelismSpec, PimMode, SimConfig};
use llmss_model::{ModelSpec, SeqSlot};
use llmss_net::{simulate_graph, ExecPayload, LinkSpec, Topology};
use llmss_npu::NpuConfig;
use llmss_pim::PimConfig;
use llmss_sched::IterationBatch;

fn batch(slots: Vec<SeqSlot>) -> IterationBatch {
    IterationBatch { slots, evictions: vec![], reloads: vec![] }
}

#[test]
fn hybrid_with_pim_pool_runs_and_routes_attention() {
    // 2 stages x 2 TP with a 2-node PIM pool: decode attention must hop to
    // pool nodes from whichever stage owns the block.
    let topo = Topology::npu_pim_pools(4, 2, 2, LinkSpec::pcie4_x16(), LinkSpec::cxl());
    let mut conv = GraphConverter::new(
        ModelSpec::gpt2(),
        ParallelismSpec { tp: 2, pp: 2 },
        &topo,
        PimMode::Pool,
        true,
        false,
    );
    let mut stack = EngineStack::for_pim_mode(
        PimMode::Pool,
        NpuConfig::table1(),
        PimConfig::table1(),
        true,
    );
    let g = conv
        .convert(&batch(vec![SeqSlot::decode(0, 100), SeqSlot::decode(1, 200)]), &mut stack);
    // PIM nodes are 4 and 5.
    let pim_ops = g
        .iter()
        .filter(|(_, o)| matches!(o.payload, ExecPayload::Compute { .. }) && o.node >= 4)
        .count();
    assert_eq!(pim_ops, 12 * 2 * 2, "score+attend per block per request on PIM");
    let out = simulate_graph(&g, &topo).unwrap();
    assert!(out.makespan_ps > 0);
}

#[test]
fn uneven_layer_split_assigns_remainders_to_early_stages() {
    // 12 layers over 5 stages: 3+3+2+2+2.
    let topo = Topology::grouped_npus(5, 5, LinkSpec::pcie4_x16());
    let conv = GraphConverter::new(
        ModelSpec::gpt2(),
        ParallelismSpec { tp: 1, pp: 5 },
        &topo,
        PimMode::None,
        true,
        false,
    );
    let lens: Vec<u32> = conv.stage_layers().iter().map(|r| r.end - r.start).collect();
    assert_eq!(lens, vec![3, 3, 2, 2, 2]);
    assert_eq!(conv.stage_layers().last().unwrap().end, 12);
}

#[test]
fn single_token_prompt_converts() {
    let topo = Topology::flat_npus(2, LinkSpec::pcie4_x16());
    let mut conv = GraphConverter::new(
        ModelSpec::gpt2(),
        ParallelismSpec { tp: 2, pp: 1 },
        &topo,
        PimMode::None,
        true,
        false,
    );
    let mut stack = EngineStack::homogeneous(NpuConfig::table1(), true);
    let g = conv.convert(&batch(vec![SeqSlot::prefill(0, 1)]), &mut stack);
    let out = simulate_graph(&g, &topo).unwrap();
    assert!(out.makespan_ps > 0);
}

#[test]
fn odd_tp_degree_shards_with_ceiling() {
    // tp = 3 does not divide d_model-derived shapes evenly; sharding must
    // round up rather than lose columns.
    let topo = Topology::flat_npus(3, LinkSpec::pcie4_x16());
    let mut conv = GraphConverter::new(
        ModelSpec::gpt2(),
        ParallelismSpec { tp: 3, pp: 1 },
        &topo,
        PimMode::None,
        true,
        false,
    );
    let mut stack = EngineStack::homogeneous(NpuConfig::table1(), true);
    let g = conv.convert(&batch(vec![SeqSlot::prefill(0, 32)]), &mut stack);
    let out = simulate_graph(&g, &topo).unwrap();
    assert!(out.makespan_ps > 0);
    assert!(out.utilization() > 0.0);
}

#[test]
fn very_long_kv_contexts_convert_and_scale() {
    let topo = Topology::flat_npus(1, LinkSpec::pcie4_x16());
    let mut conv = GraphConverter::new(
        ModelSpec::gpt2(),
        ParallelismSpec { tp: 1, pp: 1 },
        &topo,
        PimMode::None,
        true,
        false,
    );
    let mut stack = EngineStack::homogeneous(NpuConfig::table1(), true);
    let short = conv.convert(&batch(vec![SeqSlot::decode(0, 128)]), &mut stack);
    let long = conv.convert(&batch(vec![SeqSlot::decode(0, 2047)]), &mut stack);
    let t_short = simulate_graph(&short, &topo).unwrap().makespan_ps;
    let t_long = simulate_graph(&long, &topo).unwrap().makespan_ps;
    assert!(t_long > t_short, "longer KV must cost more: {t_short} vs {t_long}");
}

#[test]
fn sim_config_end_to_end_consistency_for_all_pim_modes() {
    // The SimConfig-driven path must build converters whose graphs
    // simulate cleanly for every PIM mode.
    for (mode_name, cfg) in [
        ("none", SimConfig::new(ModelSpec::gpt2()).npu_num(2).tensor_parallel()),
        ("local", SimConfig::new(ModelSpec::gpt2()).npu_num(2).tensor_parallel().pim_local()),
        ("pool", SimConfig::new(ModelSpec::gpt2()).npu_num(2).tensor_parallel().pim_pool(1)),
    ] {
        let topo = cfg.topology().unwrap();
        let parallelism = cfg.parallelism().unwrap();
        let mut conv = GraphConverter::new(
            cfg.model.clone(),
            parallelism,
            &topo,
            cfg.pim_mode,
            cfg.selective_batching,
            cfg.sub_batch,
        );
        let mut stack = EngineStack::for_pim_mode(
            cfg.pim_mode,
            cfg.npu_config.clone(),
            cfg.pim_config.clone(),
            cfg.reuse,
        );
        let g = conv
            .convert(&batch(vec![SeqSlot::prefill(0, 16), SeqSlot::decode(1, 64)]), &mut stack);
        let out = simulate_graph(&g, &topo).unwrap_or_else(|e| panic!("{mode_name}: {e}"));
        assert!(out.makespan_ps > 0, "{mode_name}");
    }
}
