//! Baseline simulators and reference systems for the LLMServingSim
//! evaluation.
//!
//! Two families live here:
//!
//! * **Simulation-time baselines** (Figures 2a and 8): [`mnpusim_like`],
//!   [`genesys_like`] and [`neupims_like`] re-create the *cost profile* of
//!   the existing accelerator simulators the paper compares against — no
//!   result reuse, full per-block recompilation, and progressively finer
//!   stepping granularity (cycle quanta → PIM command streams → individual
//!   cache lines). Their measured wall-clock reproduces the paper's
//!   ordering: mNPUsim >> NeuPIMs > GeneSys >> LLMServingSim.
//! * **Reference serving systems** (Figures 6 and 7): [`gpu_ref`] is the
//!   vLLM-on-RTX-3090 stand-in (independent roofline/FlashAttention kernel
//!   model over the same Orca/paged-KV schedule); [`neupims_ref`] is the
//!   idealized NeuPIMs NPU+PIM system that LLMServingSim slightly trails
//!   because it models inter-device links and synchronization.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod common;
pub mod genesys_like;
pub mod gpu_ref;
pub mod mnpusim_like;
pub mod neupims_like;
pub mod neupims_ref;

pub use common::{uniform_prefill_workload, BaselineReport};
pub use gpu_ref::{run_gpu_reference, GpuRefConfig};
pub use neupims_ref::{run_neupims_reference, NeuPimsRefConfig};
