//! GeneSys-like baseline: full recompilation and cycle-quantum simulation
//! of every layer of every block, with no result reuse.
//!
//! This is what running the raw GeneSys stack on a full LLM iteration
//! costs: the PolyMath-style compiler runs its tile search for *each* of
//! the `n_layers` block replicas (LLMServingSim compiles one block and
//! replicates it), and the timing simulator steps through every array pass
//! in 64-cycle quanta rather than pricing whole tiles analytically.

use std::time::Instant;

use llmss_model::{IterationWorkload, Op};
use llmss_npu::{simulate_codelet, NpuCompiler, NpuConfig};

use crate::BaselineReport;

/// Cycle-quantum the stepping loop advances per event.
pub const GENESYS_QUANTUM: u64 = 64;

/// Runs the GeneSys-like baseline over one iteration's full op list.
pub fn simulate_iteration(config: &NpuConfig, workload: &IterationWorkload) -> BaselineReport {
    // llmss-lint: allow(d002, reason = "baseline harness reports its own host wall cost alongside simulated cycles")
    let t0 = Instant::now();
    let compiler = NpuCompiler::new(config.clone());
    let mut cycles = 0u64;
    let mut steps = 0u64;
    let mut checksum = 0u64;

    for op in workload.flatten() {
        let (c, s, k) = simulate_op(&compiler, config, &op);
        cycles += c;
        steps += s;
        checksum = checksum.wrapping_add(k);
    }

    BaselineReport { wall: t0.elapsed(), simulated_cycles: cycles, steps, checksum }
}

/// Compiles and quantum-steps a single operator.
pub fn simulate_op(compiler: &NpuCompiler, config: &NpuConfig, op: &Op) -> (u64, u64, u64) {
    // Full compile: the tile search runs for every op instance.
    let codelet = compiler.compile(op);
    let result = simulate_codelet(config, &codelet);
    // Cycle-quantum stepping: walk the op's duration in 64-cycle events,
    // the granularity an RTL-ish simulator pays per pipeline snapshot.
    let quanta = result.cycles.div_ceil(GENESYS_QUANTUM);
    let mut checksum = 0x9E37_79B9_7F4A_7C15u64;
    let mut steps = 0u64;
    let mut q = quanta;
    while q > 0 {
        // A tiny amount of per-quantum state evolution (PE-utilization
        // bookkeeping stand-in); wrapping arithmetic keeps it honest and
        // un-elidable.
        checksum = checksum.wrapping_mul(0x2545_F491_4F6C_DD1D).rotate_left(7) ^ q;
        steps += 1;
        q -= 1;
    }
    (result.cycles, steps, checksum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform_prefill_workload;
    use llmss_model::ModelSpec;

    #[test]
    fn steps_track_simulated_cycles() {
        let w = uniform_prefill_workload(&ModelSpec::gpt2(), 1, 64);
        let r = simulate_iteration(&NpuConfig::table1(), &w);
        assert!(r.simulated_cycles > 0);
        assert!(r.steps >= r.simulated_cycles / GENESYS_QUANTUM / 2);
        assert_ne!(r.checksum, 0);
    }

    #[test]
    fn bigger_batch_means_more_steps() {
        let cfg = NpuConfig::table1();
        let small =
            simulate_iteration(&cfg, &uniform_prefill_workload(&ModelSpec::gpt2(), 1, 32));
        let large =
            simulate_iteration(&cfg, &uniform_prefill_workload(&ModelSpec::gpt2(), 4, 32));
        assert!(large.steps > 2 * small.steps);
    }
}
