//! vLLM-on-GPU reference serving model (the Figure 6 ground truth).
//!
//! The paper validates LLMServingSim against a real vLLM deployment on
//! 4x RTX 3090. Without the hardware, this module provides the stand-in:
//! an *independent* kernel-level timing model of the same Orca/paged-KV
//! schedule. Kernels are priced on a GPU roofline with empirical
//! efficiency factors and FlashAttention semantics (attention reads the KV
//! cache once, never materializing the score matrix) — precisely the
//! kernel optimization the paper notes its NPU model lacks, which is where
//! the residual sim-vs-real error comes from.

use llmss_core::{IterationRecord, ReuseStats, SimReport, WallBreakdown};
use llmss_model::{IterationWorkload, ModelSpec, OpKind, Phase, Roofline};
use llmss_net::{collective_time_ps, CollectiveKind, LinkSpec, TimePs};
use llmss_sched::{KvCache, KvCacheConfig, Request, Scheduler, SchedulerConfig};

/// Timing parameters of the GPU reference system.
#[derive(Debug, Clone)]
pub struct GpuRefConfig {
    /// Per-GPU roofline.
    pub roofline: Roofline,
    /// Tensor-parallel GPU count.
    pub n_gpus: usize,
    /// Device memory per GPU, bytes.
    pub mem_per_gpu: u64,
    /// Fraction of peak FLOPs large GEMMs achieve.
    pub gemm_efficiency: f64,
    /// Fraction of peak bandwidth streaming kernels achieve.
    pub bw_efficiency: f64,
    /// Per-kernel launch overhead in nanoseconds.
    pub kernel_overhead_ns: f64,
    /// Inter-GPU link for tensor-parallel all-reduces.
    pub link: LinkSpec,
    /// Host link for KV swaps.
    pub host_link: LinkSpec,
}

impl GpuRefConfig {
    /// The paper's validation platform: `n` RTX 3090s over PCIe 4.0.
    pub fn rtx3090(n_gpus: usize) -> Self {
        Self {
            roofline: Roofline::rtx3090(),
            n_gpus,
            mem_per_gpu: 24 * (1 << 30),
            gemm_efficiency: 0.72,
            bw_efficiency: 0.82,
            kernel_overhead_ns: 4_000.0,
            link: LinkSpec::pcie4_x16(),
            host_link: LinkSpec::host_pcie(),
        }
    }

    fn peak_flops(&self) -> f64 {
        self.roofline.peak_flops * self.gemm_efficiency
    }

    fn eff_bw(&self) -> f64 {
        self.roofline.mem_bw * self.bw_efficiency
    }
}

/// Prices one iteration of the workload on the GPU system, in picoseconds.
pub fn iteration_latency_ps(
    cfg: &GpuRefConfig,
    spec: &ModelSpec,
    workload: &IterationWorkload,
    swap_bytes: u64,
) -> TimePs {
    let n = cfg.n_gpus as f64;
    let mut block_s = 0.0f64;
    let mut kernels_per_block = 0.0f64;

    for op in workload.block_ops() {
        match op.kind {
            // Sharded GEMMs: compute or weight-streaming bound.
            OpKind::QkvGen | OpKind::OutProj | OpKind::FfnUp | OpKind::FfnDown => {
                let flops = op.flops() as f64 / n;
                let bytes = op.bytes_total() as f64 / n;
                block_s += (flops / cfg.peak_flops()).max(bytes / cfg.eff_bw());
                kernels_per_block += 1.0;
            }
            // FlashAttention: fused Score+Softmax+Attend; decode reads the
            // KV cache once, prefill is compute bound.
            OpKind::Score => {
                kernels_per_block += 1.0 / workload.slots().len().max(1) as f64;
                if op.phase == Phase::Generation {
                    let kv = op.dims.n; // cached tokens
                    let bytes = (2 * kv * spec.d_model * spec.elem_bytes) as f64 / n;
                    block_s += bytes / cfg.eff_bw();
                } else {
                    // 2 * (score + attend) flops, counted on Score only.
                    let flops = 2.0 * op.flops() as f64 / n;
                    // FlashAttention prefill sustains about half of GEMM
                    // efficiency (recomputation + softmax interleaving).
                    block_s += flops / (0.5 * cfg.peak_flops());
                }
            }
            // Folded into the FlashAttention kernel.
            OpKind::Softmax | OpKind::Attend => {}
            // Streaming element-wise kernels.
            OpKind::LayerNorm | OpKind::Residual | OpKind::Activation => {
                block_s += op.bytes_total() as f64 / n / cfg.eff_bw();
                kernels_per_block += 1.0;
            }
            _ => {}
        }
    }
    kernels_per_block += 1.0; // the fused attention launch
    block_s += kernels_per_block * cfg.kernel_overhead_ns * 1e-9;

    // Two ring all-reduces per block under tensor parallelism.
    let t = workload.new_tokens_total();
    let ar_bytes = (t * spec.d_model * spec.elem_bytes) as u64;
    let ar_s = if cfg.n_gpus > 1 {
        2.0 * collective_time_ps(CollectiveKind::AllReduce, cfg.n_gpus, ar_bytes, &cfg.link)
            as f64
            / 1e12
    } else {
        0.0
    };

    let mut total_s = spec.n_layers as f64 * (block_s + ar_s);

    // Bookends: embedding read + final norm + LM head.
    for op in workload.pre_ops().iter().chain(workload.post_ops()) {
        let flops = op.flops() as f64 / n;
        let bytes = op.bytes_total() as f64 / n;
        total_s += (flops / cfg.peak_flops()).max(bytes / cfg.eff_bw());
    }

    // KV swaps serialize on the host link.
    total_s += cfg.host_link.transfer_ps(swap_bytes) as f64 / 1e12;

    (total_s * 1e12) as TimePs
}

/// Runs the reference system over a request trace, producing a report in
/// the same shape as the simulator's for apples-to-apples comparison.
///
/// # Panics
///
/// Panics if the model does not fit in the GPUs' aggregate memory.
pub fn run_gpu_reference(
    cfg: &GpuRefConfig,
    spec: &ModelSpec,
    requests: Vec<Request>,
) -> SimReport {
    let total_mem = cfg.n_gpus as u64 * cfg.mem_per_gpu;
    let weights = spec.weight_bytes();
    let reserve = cfg.n_gpus as u64 * (1 << 30);
    assert!(weights + reserve < total_mem, "model does not fit on the GPU system");
    let kv_budget = total_mem - weights - reserve;
    let kv = KvCache::new(KvCacheConfig::paged(kv_budget, spec.kv_bytes_per_token()));
    let mut sched = Scheduler::new(SchedulerConfig::default(), kv, requests);

    let mut iterations = Vec::new();
    while let Some(batch) = sched.next_batch() {
        let workload = IterationWorkload::build(spec, &batch.slots);
        let latency = iteration_latency_ps(cfg, spec, &workload, batch.swap_bytes());
        iterations.push(IterationRecord {
            index: sched.iterations(),
            start_ps: sched.clock_ps(),
            latency_ps: latency,
            batch_size: batch.batch_size(),
            prompt_tokens: batch.prompt_tokens(),
            generated_tokens: batch.generated_tokens(),
            evictions: batch.evictions.len(),
            reloads: batch.reloads.len(),
            graph_ops: 0,
            net_events: 0,
            compute_ps: latency,
            comm_ps: 0,
            host_ps: 0,
        });
        sched.complete_iteration(latency);
    }

    SimReport {
        sim_duration_ps: sched.clock_ps(),
        completions: sched.take_completions(),
        iterations,
        wall: WallBreakdown::default(),
        reuse: ReuseStats::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmss_model::SeqSlot;
    use llmss_sched::{Dataset, TraceGenerator};

    #[test]
    fn decode_iteration_is_weight_stream_bound() {
        // GPT3-7B decode at batch 32: the 13.4 GB of weights dominate;
        // latency must exceed weights / effective bandwidth.
        let cfg = GpuRefConfig::rtx3090(1);
        let spec = ModelSpec::gpt3_7b();
        let slots: Vec<_> = (0..32).map(|i| SeqSlot::decode(i, 512)).collect();
        let w = IterationWorkload::build(&spec, &slots);
        let ps = iteration_latency_ps(&cfg, &spec, &w, 0);
        let floor_s = spec.weight_bytes() as f64 / cfg.eff_bw();
        assert!(ps as f64 / 1e12 > floor_s);
        assert!((ps as f64 / 1e12) < 4.0 * floor_s, "decode should stay near the floor");
    }

    #[test]
    fn prefill_latency_tracks_flops() {
        let cfg = GpuRefConfig::rtx3090(1);
        let spec = ModelSpec::gpt2();
        let short = IterationWorkload::build(&spec, &[SeqSlot::prefill(0, 128)]);
        let long = IterationWorkload::build(&spec, &[SeqSlot::prefill(0, 1024)]);
        let a = iteration_latency_ps(&cfg, &spec, &short, 0);
        let b = iteration_latency_ps(&cfg, &spec, &long, 0);
        assert!(b > 4 * a, "8x tokens must be >4x slower: {a} vs {b}");
    }

    #[test]
    fn tensor_parallel_helps_until_allreduce_dominates() {
        let spec = ModelSpec::gpt3_7b();
        let slots: Vec<_> = (0..8).map(|i| SeqSlot::decode(i, 256)).collect();
        let w = IterationWorkload::build(&spec, &slots);
        let t1 = iteration_latency_ps(&GpuRefConfig::rtx3090(1), &spec, &w, 0);
        let t4 = iteration_latency_ps(&GpuRefConfig::rtx3090(4), &spec, &w, 0);
        assert!(t4 < t1);
        assert!(t4 > t1 / 4, "all-reduce cost prevents ideal scaling");
    }

    #[test]
    fn reference_run_completes_trace() {
        let trace = TraceGenerator::new(Dataset::Alpaca, 3).rate_per_s(20.0).generate(6);
        let report = run_gpu_reference(&GpuRefConfig::rtx3090(1), &ModelSpec::gpt2(), trace);
        assert_eq!(report.completions.len(), 6);
        assert!(report.sim_duration_ps > 0);
    }
}
