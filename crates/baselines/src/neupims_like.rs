//! NeuPIMs-like baseline: joint NPU+PIM simulation without result reuse.
//!
//! NeuPIMs co-simulates a compute NPU with an HBM-PIM at high fidelity:
//! non-attention operators step through the NPU pipeline (like the
//! GeneSys-class simulator) while attention operators replay PIM command
//! streams — row activations and burst groups across every bank — with a
//! synchronization barrier between the two devices per operator. The paper
//! measures ~2 hours per iteration for the real tool, between mNPUsim and
//! GeneSys.

use std::time::Instant;

use llmss_model::IterationWorkload;
use llmss_npu::{NpuCompiler, NpuConfig};
use llmss_pim::{simulate_gemv, PimConfig};

use crate::{genesys_like, BaselineReport};

/// Bursts replayed per PIM stepping event.
pub const BURST_GROUP: u64 = 8;

const BURST_BYTES: u64 = 32;

/// Runs the NeuPIMs-like baseline over one iteration's full op list.
pub fn simulate_iteration(
    npu_config: &NpuConfig,
    pim_config: &PimConfig,
    workload: &IterationWorkload,
) -> BaselineReport {
    // llmss-lint: allow(d002, reason = "baseline harness reports its own host wall cost alongside simulated cycles")
    let t0 = Instant::now();
    let compiler = NpuCompiler::new(npu_config.clone());
    let mut cycles = 0u64;
    let mut steps = 0u64;
    let mut checksum = 0u64;

    for op in workload.flatten() {
        if op.kind.is_attention() && op.kind.is_matmul() {
            // PIM side: replay the command stream bank by bank.
            let sig = op.signature();
            let r = simulate_gemv(pim_config, &sig);
            cycles += r.cycles;
            let bytes = r.matrix_bytes;
            let rows = bytes.div_ceil(pim_config.timing.row_buffer_bytes as u64);
            let burst_groups = bytes.div_ceil(BURST_BYTES * BURST_GROUP);
            let mut events = rows + burst_groups;
            let mut h = 0xDEAD_BEEF_CAFE_F00Du64;
            while events > 0 {
                h = h.wrapping_mul(0x5851_F42D_4C95_7F2D).rotate_left(13) ^ events;
                steps += 1;
                events -= 1;
            }
            checksum = checksum.wrapping_add(h);
        } else {
            // NPU side: GeneSys-class quantum stepping.
            let (c, s, k) = genesys_like::simulate_op(&compiler, npu_config, &op);
            cycles += c;
            steps += s;
            checksum = checksum.wrapping_add(k);
        }
        // Device synchronization barrier per operator handoff.
        checksum = checksum.rotate_left(3).wrapping_add(0x9E37);
        steps += 1;
    }

    BaselineReport { wall: t0.elapsed(), simulated_cycles: cycles, steps, checksum }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform_prefill_workload;
    use llmss_model::ModelSpec;

    #[test]
    fn does_more_work_than_genesys_like() {
        // Figure 2(a) ordering: NeuPIMs (2 h) sits above GeneSys (1.5 h).
        let w = uniform_prefill_workload(&ModelSpec::gpt2(), 2, 128);
        let n = simulate_iteration(&NpuConfig::table1(), &PimConfig::table1(), &w);
        let g = genesys_like::simulate_iteration(&NpuConfig::table1(), &w);
        assert!(n.steps > g.steps, "neupims {} vs genesys {}", n.steps, g.steps);
    }

    #[test]
    fn produces_cycles_for_mixed_batches() {
        let w = uniform_prefill_workload(&ModelSpec::gpt2(), 1, 64);
        let r = simulate_iteration(&NpuConfig::table1(), &PimConfig::table1(), &w);
        assert!(r.simulated_cycles > 0);
        assert_ne!(r.checksum, 0);
    }
}
