//! NeuPIMs-system reference model (the Figure 7 ground truth).
//!
//! Figure 7 compares LLMServingSim's throughput against the NeuPIMs
//! heterogeneous NPU+PIM system across models and parallelization schemes.
//! This module models that system analytically and *optimistically*: NPU
//! and PIM work overlap perfectly via sub-batch interleaving, pipeline
//! stages scale ideally, and — crucially — inter-device link transfers and
//! synchronization are free. LLMServingSim models those costs, which is
//! exactly why the paper reports it trailing NeuPIMs by a margin under 20%
//! (geometric-mean error 8.88%).

use llmss_core::{IterationRecord, ReuseStats, SimReport, WallBreakdown};
use llmss_model::{IterationWorkload, ModelSpec, OpKind, Phase};
use llmss_net::{collective_time_ps, CollectiveKind, LinkSpec, TimePs};
use llmss_npu::NpuConfig;
use llmss_pim::PimConfig;
use llmss_sched::{KvCache, KvCacheConfig, Request, Scheduler, SchedulerConfig};

/// The NeuPIMs reference system: `tp x pp` NPU+PIM devices.
#[derive(Debug, Clone)]
pub struct NeuPimsRefConfig {
    /// NPU hardware (Table I).
    pub npu: NpuConfig,
    /// PIM hardware (Table I).
    pub pim: PimConfig,
    /// Tensor-parallel degree.
    pub tp: usize,
    /// Pipeline-parallel degree.
    pub pp: usize,
    /// Per-operator device-synchronization cost in nanoseconds.
    pub sync_ns: f64,
    /// Inter-device link for tensor-parallel all-reduces.
    pub link: LinkSpec,
}

impl NeuPimsRefConfig {
    /// Table-I devices in a `tp x pp` layout.
    pub fn table1(tp: usize, pp: usize) -> Self {
        Self {
            npu: NpuConfig::table1(),
            pim: PimConfig::table1(),
            tp,
            pp,
            sync_ns: 2_000.0,
            link: LinkSpec::pcie4_x16(),
        }
    }

    /// Total devices.
    pub fn n_devices(&self) -> usize {
        self.tp * self.pp
    }
}

/// Prices one iteration on the idealized NeuPIMs system, in picoseconds.
pub fn iteration_latency_ps(
    cfg: &NeuPimsRefConfig,
    spec: &ModelSpec,
    workload: &IterationWorkload,
) -> TimePs {
    let npu_peak = cfg.npu.peak_tflops() * 1e12 * 0.75;
    let npu_bw = cfg.npu.mem_bw_gbps * 1e9 * 0.85;
    let pim_bw = cfg.pim.internal_bw_gbps * 1e9 * 0.9;
    let tp = cfg.tp as f64;

    let mut npu_s = 0.0f64;
    let mut pim_s = 0.0f64;
    for op in workload.block_ops() {
        let is_pim_op =
            op.kind.is_attention() && op.kind.is_matmul() && op.phase == Phase::Generation;
        if is_pim_op {
            pim_s += op.bytes_total() as f64 / tp / pim_bw;
        } else if op.kind == OpKind::Softmax && op.phase == Phase::Generation {
            // Softmax rides the NPU vector unit between PIM GEMVs.
            npu_s += op.bytes_total() as f64 / tp / npu_bw;
        } else {
            let flops = op.flops() as f64 / tp;
            let bytes = op.bytes_total() as f64 / tp;
            npu_s += (flops / npu_peak).max(bytes / npu_bw);
        }
    }
    // Tensor parallelism pays two ring all-reduces per block (the real
    // NeuPIMs system communicates too; what it does *not* model is the
    // per-request inter-pool transfers and link contention LLMServingSim
    // adds on top).
    let t = workload.new_tokens_total();
    let comm_s = if cfg.tp > 1 {
        let bytes = (t * spec.d_model * spec.elem_bytes) as u64;
        2.0 * collective_time_ps(CollectiveKind::AllReduce, cfg.tp, bytes, &cfg.link) as f64
            / 1e12
    } else {
        0.0
    };
    // Sub-batch interleaving overlaps the two devices; the barrier costs a
    // sync per block.
    let block_s = npu_s.max(pim_s) + comm_s + cfg.sync_ns * 1e-9;

    let mut total_s = spec.n_layers as f64 * block_s;
    for op in workload.pre_ops().iter().chain(workload.post_ops()) {
        let flops = op.flops() as f64 / tp;
        let bytes = op.bytes_total() as f64 / tp;
        total_s += (flops / npu_peak).max(bytes / npu_bw);
    }
    // Pipeline stages process disjoint layer ranges serially within one
    // iteration (decode is dominated by weight streaming, which pipelining
    // cannot reduce: every stage's weights are read once per iteration
    // either way). `pp` therefore does not divide the iteration latency;
    // its benefit is the tensor-parallel width it frees within each stage.
    let _ = cfg.pp;

    (total_s * 1e12) as TimePs
}

/// Runs the NeuPIMs reference over a request trace.
///
/// # Panics
///
/// Panics if the model does not fit in the devices' aggregate memory.
pub fn run_neupims_reference(
    cfg: &NeuPimsRefConfig,
    spec: &ModelSpec,
    requests: Vec<Request>,
) -> SimReport {
    let per_dev = (cfg.npu.mem_capacity_gib * (1u64 << 30) as f64) as u64
        + (cfg.pim.mem_capacity_gib * (1u64 << 30) as f64) as u64;
    let total_mem = cfg.n_devices() as u64 * per_dev;
    let weights = spec.weight_bytes();
    let reserve = cfg.n_devices() as u64 * (1 << 30);
    assert!(weights + reserve < total_mem, "model does not fit on the NeuPIMs system");
    let kv = KvCache::new(KvCacheConfig::paged(
        total_mem - weights - reserve,
        spec.kv_bytes_per_token(),
    ));
    let mut sched = Scheduler::new(SchedulerConfig::default(), kv, requests);

    let mut iterations = Vec::new();
    while let Some(batch) = sched.next_batch() {
        let workload = IterationWorkload::build(spec, &batch.slots);
        let latency = iteration_latency_ps(cfg, spec, &workload);
        iterations.push(IterationRecord {
            index: sched.iterations(),
            start_ps: sched.clock_ps(),
            latency_ps: latency,
            batch_size: batch.batch_size(),
            prompt_tokens: batch.prompt_tokens(),
            generated_tokens: batch.generated_tokens(),
            evictions: batch.evictions.len(),
            reloads: batch.reloads.len(),
            graph_ops: 0,
            net_events: 0,
            compute_ps: latency,
            comm_ps: 0,
            host_ps: 0,
        });
        sched.complete_iteration(latency);
    }

    SimReport {
        sim_duration_ps: sched.clock_ps(),
        completions: sched.take_completions(),
        iterations,
        wall: WallBreakdown::default(),
        reuse: ReuseStats::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmss_model::SeqSlot;
    use llmss_sched::{Dataset, TraceGenerator};

    #[test]
    fn pim_overlap_bounds_decode_latency() {
        // With attention on PIM overlapped against NPU weight streaming,
        // the decode block is bounded by the larger of the two, not the sum.
        let cfg = NeuPimsRefConfig::table1(1, 1);
        let spec = ModelSpec::gpt3_7b();
        let slots: Vec<_> = (0..32).map(|i| SeqSlot::decode(i, 1024)).collect();
        let w = IterationWorkload::build(&spec, &slots);
        let latency_s = iteration_latency_ps(&cfg, &spec, &w) as f64 / 1e12;
        let weights_s = spec.weight_bytes() as f64 / (936e9 * 0.85);
        assert!(latency_s < 2.2 * weights_s, "{latency_s} vs floor {weights_s}");
    }

    #[test]
    fn parallelism_scales_throughput() {
        let spec = ModelSpec::gpt3_7b();
        let slots: Vec<_> = (0..16).map(|i| SeqSlot::decode(i, 512)).collect();
        let w = IterationWorkload::build(&spec, &slots);
        let base = iteration_latency_ps(&NeuPimsRefConfig::table1(1, 1), &spec, &w);
        let tp4 = iteration_latency_ps(&NeuPimsRefConfig::table1(4, 1), &spec, &w);
        let hybrid = iteration_latency_ps(&NeuPimsRefConfig::table1(2, 2), &spec, &w);
        // TP shards compute almost ideally (minus all-reduce cost); hybrid
        // only shards by its tensor width — stages serialize.
        assert!(tp4 < (base * 4) / 10);
        assert!(hybrid < (base * 7) / 10);
        assert!(hybrid > tp4, "stage serialization cannot beat full TP here");
    }

    #[test]
    fn reference_completes_trace() {
        let trace = TraceGenerator::new(Dataset::Alpaca, 1).generate_burst(8);
        let cfg = NeuPimsRefConfig::table1(2, 1);
        let report = run_neupims_reference(&cfg, &ModelSpec::gpt2(), trace);
        assert_eq!(report.completions.len(), 8);
    }
}
