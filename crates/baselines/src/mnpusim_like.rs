//! mNPUsim-like baseline: multi-core NPU simulation at cache-line
//! granularity.
//!
//! mNPUsim models shared-resource contention between NPU cores, which
//! requires tracking individual memory accesses. This baseline reproduces
//! that cost profile: every operator's DRAM traffic is replayed line by
//! line (64 B) through a direct-mapped cache model and a banked DRAM row
//! model, with round-robin arbitration across the simulated cores. It is
//! by far the slowest baseline — the paper measures ~10 hours per
//! iteration for the real tool, ~491x slower than LLMServingSim.

use std::time::Instant;

use llmss_model::IterationWorkload;
use llmss_npu::{NpuCompiler, NpuConfig};

use crate::BaselineReport;

/// Bytes per simulated memory access.
pub const CACHE_LINE_BYTES: u64 = 64;

/// Simulated NPU cores contending for memory.
pub const CORES: usize = 4;

const CACHE_SETS: usize = 4096;
const DRAM_BANKS: usize = 16;
const ROW_BYTES: u64 = 2048;

/// Per-core cache + DRAM bank state.
#[derive(Debug)]
struct MemoryModel {
    tags: Vec<u64>,
    open_rows: [u64; DRAM_BANKS],
    hits: u64,
    row_misses: u64,
}

impl MemoryModel {
    fn new() -> Self {
        Self {
            tags: vec![u64::MAX; CACHE_SETS],
            open_rows: [u64::MAX; DRAM_BANKS],
            hits: 0,
            row_misses: 0,
        }
    }

    /// Simulates one line access; returns its cost in cycles.
    #[inline]
    fn access(&mut self, addr: u64) -> u64 {
        let line = addr / CACHE_LINE_BYTES;
        let set = (line as usize) & (CACHE_SETS - 1);
        if self.tags[set] == line {
            self.hits += 1;
            return 1;
        }
        self.tags[set] = line;
        let bank = (addr / ROW_BYTES) as usize % DRAM_BANKS;
        let row = addr / (ROW_BYTES * DRAM_BANKS as u64);
        if self.open_rows[bank] == row {
            4
        } else {
            self.open_rows[bank] = row;
            self.row_misses += 1;
            18
        }
    }
}

/// Runs the mNPUsim-like baseline over one iteration's full op list.
pub fn simulate_iteration(config: &NpuConfig, workload: &IterationWorkload) -> BaselineReport {
    // llmss-lint: allow(d002, reason = "baseline harness reports its own host wall cost alongside simulated cycles")
    let t0 = Instant::now();
    let compiler = NpuCompiler::new(config.clone());
    let mut mems: Vec<MemoryModel> = (0..CORES).map(|_| MemoryModel::new()).collect();
    let mut cycles = 0u64;
    let mut steps = 0u64;
    let mut checksum = 0u64;
    let mut addr_base = 0u64;

    for op in workload.flatten() {
        // mNPUsim also compiles a mapping per op (no reuse across blocks).
        let codelet = compiler.compile(&op);
        let bytes = op.bytes_total();
        let lines = bytes / CACHE_LINE_BYTES;
        // Replay the op's traffic line by line, arbitrating across cores.
        let mut op_cycles = 0u64;
        let mut line = 0u64;
        while line < lines {
            let core = (line as usize) % CORES;
            // Strided address pattern: operands interleave, which exercises
            // both cache hits (sequential runs) and row misses (strides).
            let addr = addr_base
                .wrapping_add(line * CACHE_LINE_BYTES)
                .wrapping_add((line % 3) * 1_048_576);
            op_cycles += mems[core].access(addr);
            steps += 1;
            line += 1;
        }
        checksum =
            checksum.wrapping_add(op_cycles).wrapping_add(codelet.est_cycles).rotate_left(11);
        // Arbitration: cores share the DRAM channel; contention stretches
        // the op by the serialized access time across cores.
        cycles += codelet.est_cycles.max(op_cycles / CORES as u64);
        addr_base = addr_base.wrapping_add(bytes);
    }

    let hits: u64 = mems.iter().map(|m| m.hits).sum();
    BaselineReport {
        wall: t0.elapsed(),
        simulated_cycles: cycles,
        steps,
        checksum: checksum ^ hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{genesys_like, uniform_prefill_workload};
    use llmss_model::ModelSpec;

    #[test]
    fn replays_every_line() {
        let w = uniform_prefill_workload(&ModelSpec::gpt2(), 1, 32);
        let r = simulate_iteration(&NpuConfig::table1(), &w);
        let total_bytes: u64 = w.flatten().iter().map(|o| o.bytes_total()).sum();
        assert_eq!(r.steps, w.flatten().iter().map(|o| o.bytes_total() / 64).sum::<u64>());
        assert!(total_bytes / 64 >= r.steps);
    }

    #[test]
    fn slower_than_genesys_like() {
        // The ordering the paper's Figure 2(a)/8 shows: mNPUsim does the
        // most work per iteration.
        let cfg = NpuConfig::table1();
        let w = uniform_prefill_workload(&ModelSpec::gpt2(), 2, 128);
        let m = simulate_iteration(&cfg, &w);
        let g = genesys_like::simulate_iteration(&cfg, &w);
        assert!(
            m.steps > g.steps,
            "mNPUsim-like ({}) must out-step GeneSys-like ({})",
            m.steps,
            g.steps
        );
    }
}
