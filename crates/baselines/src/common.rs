//! Shared pieces for the baseline simulators.

use std::time::Duration;

use llmss_model::{IterationWorkload, ModelSpec, SeqSlot};

/// Result of running a baseline simulator for one serving iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineReport {
    /// Wall-clock the baseline simulator itself consumed.
    pub wall: Duration,
    /// Simulated accelerator cycles for the iteration.
    pub simulated_cycles: u64,
    /// Fine-grained simulation steps executed (events / lines / quanta).
    pub steps: u64,
    /// Checksum accumulated across steps (prevents the stepping loops from
    /// being optimized away; has no semantic meaning).
    pub checksum: u64,
}

/// Builds the standard "one iteration" workload the simulation-time
/// experiments use: `batch` prefill requests of `seq_len` tokens each
/// (the paper's batch-32 / seq-512 and batch-64 / seq-1024 points).
pub fn uniform_prefill_workload(
    spec: &ModelSpec,
    batch: usize,
    seq_len: usize,
) -> IterationWorkload {
    let slots: Vec<SeqSlot> =
        (0..batch as u64).map(|id| SeqSlot::prefill(id, seq_len)).collect();
    IterationWorkload::build(spec, &slots)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_workload_shapes() {
        let w = uniform_prefill_workload(&ModelSpec::gpt2(), 4, 128);
        assert_eq!(w.new_tokens_total(), 512);
        assert_eq!(w.slots().len(), 4);
    }
}
