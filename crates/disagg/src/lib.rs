//! Disaggregated prefill/decode serving with KV-cache transfer modeling.
//!
//! LLMServingSim 2.0, DistServe, and TokenSim all point the same way:
//! under bursty, prefill-heavy traffic, co-locating prefill and decode on
//! one engine lets long prompt passes stall every co-batched decoder, and
//! the fix is to *disaggregate* — prefill on one replica pool, decode on
//! another, with the prompt's KV cache shipped across an interconnect in
//! between. This crate models that deployment end to end:
//!
//! * [`DisaggSimulator`] drives a **prefill pool** and a **decode pool**
//!   of [`ServingSimulator`](llmss_core::ServingSimulator) replicas in one
//!   virtual-time event loop (the same min-heap interleaving as
//!   `llmss-cluster`). Fresh requests route to the prefill pool; at
//!   end-of-prefill the request's KV cache is transferred to a decode
//!   replica and decoding streams from the shipped cache.
//! * The **KV transfer** is priced by the existing link model
//!   ([`LinkSpec`](llmss_net::LinkSpec)): bytes = prompt tokens ×
//!   `kv_bytes_per_token`, serialized FIFO over a configurable inter-pool
//!   link, overlapping in virtual time with whatever the decode pool is
//!   already running.
//! * **Pairing policies** ([`PairingPolicyKind`]) pick the decode replica
//!   at prefill-completion time, reusing the cluster
//!   [`RoutingPolicy`](llmss_cluster::RoutingPolicy) trait: least KV
//!   load, least outstanding, or sticky (session affinity).
//! * [`DisaggReport`] splits TTFT into prefill / transfer / decode
//!   components, reports transfer-time percentiles, per-pool utilization,
//!   and TPOT — the numbers that show when disaggregation wins.
//!
//! # Examples
//!
//! ```
//! use llmss_cluster::{bursty_trace, BurstyTraceSpec};
//! use llmss_core::SimConfig;
//! use llmss_disagg::{DisaggConfig, DisaggSimulator};
//! use llmss_model::ModelSpec;
//!
//! let replica = SimConfig::new(ModelSpec::gpt2()).npu_num(1).tensor_parallel();
//! let trace = bursty_trace(&BurstyTraceSpec {
//!     bursts: 2,
//!     burst_size: 6,
//!     ..BurstyTraceSpec::default()
//! });
//! let config = DisaggConfig::new(1, 1).kv_link_gbps(128.0);
//! let report =
//!     DisaggSimulator::new(replica.clone(), replica, config, trace)?.run();
//! assert_eq!(report.total_completions(), 12);
//! println!("{}", report.summary());
//! # Ok::<(), llmss_core::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod report;
mod sim;

pub use report::{DisaggCompletion, DisaggReport, PoolStats, TtftSplit};
pub use sim::{DisaggConfig, DisaggSimulator, PairingPolicyKind};
