//! Disaggregated-serving results: per-request lifecycle records with the
//! TTFT split into prefill / transfer / decode components, transfer-time
//! percentiles, and per-pool utilization.

use llmss_core::{
    percentile, percentiles_from_ps, FabricStats, PercentileSummary, ReportOutput, SimReport,
    SloCompletion, SloSummary,
};
use llmss_sched::TimePs;

/// Internal per-request transfer record captured at prefill completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Transfer {
    pub prefill_replica: usize,
    pub decode_replica: usize,
    pub prefill_done_ps: TimePs,
    pub start_ps: TimePs,
    pub done_ps: TimePs,
    pub bytes: u64,
}

/// One request's full disaggregated lifecycle: arrival → prefill-pool
/// completion → KV transfer → decode-pool streaming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisaggCompletion {
    /// The request id.
    pub id: u64,
    /// Arrival at the front end.
    pub arrival_ps: TimePs,
    /// Prompt length.
    pub input_len: usize,
    /// Tokens generated (all on the decode pool).
    pub output_len: usize,
    /// Prefill-pool replica that built the KV cache.
    pub prefill_replica: usize,
    /// Decode-pool replica that streamed the tokens.
    pub decode_replica: usize,
    /// When the prefill pass finished (KV ready to ship).
    pub prefill_done_ps: TimePs,
    /// When the KV transfer won the shared link.
    pub transfer_start_ps: TimePs,
    /// When the KV cache landed on the decode replica.
    pub transfer_done_ps: TimePs,
    /// When the first decode token was produced.
    pub first_token_ps: TimePs,
    /// When the final token was produced.
    pub finish_ps: TimePs,
    /// KV bytes shipped (prompt tokens × bytes per token).
    pub kv_bytes: u64,
}

impl DisaggCompletion {
    /// End-to-end latency.
    pub fn latency_ps(&self) -> TimePs {
        self.finish_ps.saturating_sub(self.arrival_ps)
    }

    /// Time to first token — in a disaggregated deployment the first
    /// user-visible token leaves the *decode* pool, so TTFT spans
    /// prefill, transfer, and decode-side queueing.
    pub fn ttft_ps(&self) -> TimePs {
        self.first_token_ps.saturating_sub(self.arrival_ps)
    }

    /// Mean time per output token after the first.
    pub fn tpot_ps(&self) -> f64 {
        if self.output_len <= 1 {
            return 0.0;
        }
        self.finish_ps.saturating_sub(self.first_token_ps) as f64 / (self.output_len - 1) as f64
    }

    /// TTFT's prefill component: front-end arrival to end-of-prefill
    /// (prefill-pool queueing + the prefill pass itself).
    pub fn prefill_component_ps(&self) -> TimePs {
        self.prefill_done_ps.saturating_sub(self.arrival_ps)
    }

    /// TTFT's transfer component: end-of-prefill to KV landed (link
    /// queueing + wire time).
    pub fn transfer_component_ps(&self) -> TimePs {
        self.transfer_done_ps.saturating_sub(self.prefill_done_ps)
    }

    /// TTFT's decode component: KV landed to first token (decode-pool
    /// queueing + the first decode step).
    pub fn decode_component_ps(&self) -> TimePs {
        self.first_token_ps.saturating_sub(self.transfer_done_ps)
    }
}

impl SloCompletion for DisaggCompletion {
    fn ttft_ps(&self) -> TimePs {
        DisaggCompletion::ttft_ps(self)
    }

    fn latency_ps(&self) -> TimePs {
        DisaggCompletion::latency_ps(self)
    }

    fn tpot_ps(&self) -> f64 {
        DisaggCompletion::tpot_ps(self)
    }

    fn output_len(&self) -> usize {
        self.output_len
    }
}

/// Mean TTFT decomposition across all completed requests, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TtftSplit {
    /// Mean prefill component (queueing + prefill pass).
    pub prefill_s: f64,
    /// Mean transfer component (link queueing + wire time).
    pub transfer_s: f64,
    /// Mean decode component (queueing + first decode step).
    pub decode_s: f64,
}

impl TtftSplit {
    /// Total mean TTFT.
    pub fn total_s(&self) -> f64 {
        self.prefill_s + self.transfer_s + self.decode_s
    }
}

impl std::fmt::Display for TtftSplit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "prefill={:.4}s transfer={:.4}s decode={:.4}s",
            self.prefill_s, self.transfer_s, self.decode_s
        )
    }
}

/// Per-replica aggregate statistics for one pool member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Replica index within its pool.
    pub replica: usize,
    /// Requests routed (prefill pool) or paired (decode pool) here.
    pub routed_requests: usize,
    /// Requests it finished.
    pub completions: usize,
    /// Serving iterations it ran.
    pub iterations: usize,
    /// Simulated time spent executing iterations.
    pub busy_ps: TimePs,
    /// The replica's final clock.
    pub final_clock_ps: TimePs,
}

impl PoolStats {
    /// Fraction of the deployment makespan spent executing iterations.
    pub fn utilization(&self, makespan_ps: TimePs) -> f64 {
        if makespan_ps == 0 {
            return 0.0;
        }
        self.busy_ps as f64 / makespan_ps as f64
    }
}

/// The aggregated result of one disaggregated serving simulation.
#[derive(Debug, Clone)]
pub struct DisaggReport {
    /// Front-end routing policy over the prefill pool.
    pub routing: String,
    /// Decode-pairing policy.
    pub pairing: String,
    /// One full serving report per prefill replica.
    pub prefill_reports: Vec<SimReport>,
    /// One full serving report per decode replica.
    pub decode_reports: Vec<SimReport>,
    /// Per-request lifecycle records, sorted by id.
    pub completions: Vec<DisaggCompletion>,
    /// Fabric usage when the deployment ran over a fair-sharing fabric
    /// (`None` on the legacy FIFO wire, keeping those reports
    /// byte-identical).
    pub fabric: Option<FabricStats>,
    routed_prefill: Vec<usize>,
    routed_decode: Vec<usize>,
    /// Per-transfer achieved-over-nominal slowdown ratios (fair fabric
    /// only).
    contention_ratios: Vec<f64>,
    makespan_ps: TimePs,
}

impl DisaggReport {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        routing: String,
        pairing: String,
        prefill_reports: Vec<SimReport>,
        decode_reports: Vec<SimReport>,
        completions: Vec<DisaggCompletion>,
        fabric: Option<FabricStats>,
        contention_ratios: Vec<f64>,
        routed_prefill: Vec<usize>,
        routed_decode: Vec<usize>,
    ) -> Self {
        let makespan_ps = prefill_reports
            .iter()
            .chain(&decode_reports)
            .map(|r| r.sim_duration_ps)
            .max()
            .unwrap_or(0);
        Self {
            routing,
            pairing,
            prefill_reports,
            decode_reports,
            completions,
            fabric,
            routed_prefill,
            routed_decode,
            contention_ratios,
            makespan_ps,
        }
    }

    /// Contention percentiles over delivered transfers: the p50/p95/p99
    /// of the achieved-over-nominal slowdown ratio (1.0 = uncontended).
    /// `None` without any delivered transfer.
    pub fn contention(&self) -> Option<(f64, f64, f64)> {
        if self.contention_ratios.is_empty() {
            return None;
        }
        let mut ratios = self.contention_ratios.clone();
        Some((
            percentile(&mut ratios, 0.50),
            percentile(&mut ratios, 0.95),
            percentile(&mut ratios, 0.99),
        ))
    }

    /// Deployment makespan: the latest replica clock in either pool.
    pub fn makespan_ps(&self) -> TimePs {
        self.makespan_ps
    }

    /// Deployment makespan in seconds.
    pub fn makespan_s(&self) -> f64 {
        self.makespan_ps as f64 / 1e12
    }

    /// Requests that completed their full lifecycle (decode finished).
    pub fn total_completions(&self) -> usize {
        self.completions.len()
    }

    /// Total KV bytes shipped across the inter-pool link.
    pub fn total_kv_bytes(&self) -> u64 {
        self.completions.iter().map(|c| c.kv_bytes).sum()
    }

    /// Generation throughput (decode-pool tokens per simulated second).
    pub fn generation_throughput(&self) -> f64 {
        let s = self.makespan_s();
        if s == 0.0 {
            return 0.0;
        }
        let tokens: u64 =
            self.decode_reports.iter().map(SimReport::total_generated_tokens).sum();
        tokens as f64 / s
    }

    /// The standard SLO percentile summaries (TTFT / TPOT / latency) via
    /// the shared [`SloSummary`] pipeline.
    pub fn slo(&self) -> SloSummary {
        SloSummary::collect(self.completions.iter())
    }

    /// p50/p95/p99 time to first token (arrival → first decode token).
    pub fn ttft_percentiles(&self) -> Option<PercentileSummary> {
        SloSummary::ttft_of(self.completions.iter())
    }

    /// p50/p95/p99 time per output token (single-token requests
    /// excluded).
    pub fn tpot_percentiles(&self) -> Option<PercentileSummary> {
        SloSummary::tpot_of(self.completions.iter())
    }

    /// p50/p95/p99 end-to-end request latency.
    pub fn latency_percentiles(&self) -> Option<PercentileSummary> {
        SloSummary::latency_of(self.completions.iter())
    }

    /// p50/p95/p99 of TTFT's prefill component.
    pub fn prefill_component_percentiles(&self) -> Option<PercentileSummary> {
        percentiles_from_ps(self.completions.iter().map(|c| c.prefill_component_ps() as f64))
    }

    /// p50/p95/p99 of TTFT's KV-transfer component (link queueing + wire
    /// time — the number a bandwidth-starved link inflates).
    pub fn transfer_percentiles(&self) -> Option<PercentileSummary> {
        percentiles_from_ps(self.completions.iter().map(|c| c.transfer_component_ps() as f64))
    }

    /// p50/p95/p99 of TTFT's decode component.
    pub fn decode_component_percentiles(&self) -> Option<PercentileSummary> {
        percentiles_from_ps(self.completions.iter().map(|c| c.decode_component_ps() as f64))
    }

    /// Mean TTFT decomposition (`None` with zero completions).
    pub fn ttft_split(&self) -> Option<TtftSplit> {
        if self.completions.is_empty() {
            return None;
        }
        let n = self.completions.len() as f64;
        let sum = |f: fn(&DisaggCompletion) -> TimePs| {
            self.completions.iter().map(|c| f(c) as f64).sum::<f64>() / n / 1e12
        };
        Some(TtftSplit {
            prefill_s: sum(DisaggCompletion::prefill_component_ps),
            transfer_s: sum(DisaggCompletion::transfer_component_ps),
            decode_s: sum(DisaggCompletion::decode_component_ps),
        })
    }

    /// Per-replica statistics for the prefill pool.
    pub fn prefill_stats(&self) -> Vec<PoolStats> {
        pool_stats(&self.prefill_reports, &self.routed_prefill)
    }

    /// Per-replica statistics for the decode pool.
    pub fn decode_stats(&self) -> Vec<PoolStats> {
        pool_stats(&self.decode_reports, &self.routed_decode)
    }

    /// Mean utilization of the prefill pool over the makespan.
    pub fn prefill_utilization(&self) -> f64 {
        mean_utilization(&self.prefill_stats(), self.makespan_ps)
    }

    /// Mean utilization of the decode pool over the makespan.
    pub fn decode_utilization(&self) -> f64 {
        mean_utilization(&self.decode_stats(), self.makespan_ps)
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        let ttft = PercentileSummary::display_or_na(self.ttft_percentiles());
        let tpot = PercentileSummary::display_or_na(self.tpot_percentiles());
        let transfer = PercentileSummary::display_or_na(self.transfer_percentiles());
        let split = self.ttft_split().map_or_else(|| "n/a".to_owned(), |s| s.to_string());
        let reuse = self.aggregate_reuse();
        let mut out = format!(
            "disagg {}P x {}D routing={} pairing={} requests={} makespan={:.2}s \
             gen_tput={:.1} tok/s kv_shipped={:.1} MiB ttft[{ttft}] ttft_split[{split}] \
             transfer[{transfer}] tpot[{tpot}] util[prefill={:.2} decode={:.2}] \
             op_reuse={:.1}% iter_reuse={:.1}%",
            self.prefill_reports.len(),
            self.decode_reports.len(),
            self.routing,
            self.pairing,
            self.total_completions(),
            self.makespan_s(),
            self.generation_throughput(),
            self.total_kv_bytes() as f64 / (1u64 << 20) as f64,
            self.prefill_utilization(),
            self.decode_utilization(),
            reuse.hit_rate() * 100.0,
            reuse.iteration_hit_rate() * 100.0,
        );
        if reuse.shared_armed {
            out.push_str(&format!(
                " shared_hits={} local_iter_reuse={:.1}%",
                reuse.shared_hits,
                reuse.local_iteration_hit_rate() * 100.0,
            ));
        }
        if let Some(fabric) = &self.fabric {
            out.push_str(&format!(" fabric={}", fabric.label));
            if let Some((p50, _, p99)) = self.contention() {
                out.push_str(&format!(" contention[p50={p50:.2}x p99={p99:.2}x]"));
            }
        }
        out
    }

    /// Deployment-wide reuse statistics: both pools' operator- and
    /// iteration-level counters merged.
    pub fn aggregate_reuse(&self) -> llmss_core::ReuseStats {
        let mut total = llmss_core::ReuseStats::default();
        for r in self.prefill_reports.iter().chain(&self.decode_reports) {
            total.merge(&r.reuse);
        }
        total
    }

    /// Machine-readable deployment summary as pretty-printed JSON:
    /// totals, the SLO percentiles with the disaggregation-specific TTFT
    /// component split, per-pool replica statistics, merged reuse
    /// statistics, and the fabric section when the run used a
    /// fair-sharing fabric.
    ///
    /// Virtual-time results only, so the artifact is byte-identical
    /// across runs of the same seed.
    pub fn summary_json(&self) -> String {
        use llmss_core::json::obj;
        use serde::Value;

        let makespan = self.makespan_ps;
        let pool = |stats: Vec<PoolStats>| -> Value {
            Value::Array(
                stats
                    .iter()
                    .map(|s| {
                        obj(vec![
                            ("index", Value::Int(s.replica as i128)),
                            ("routed", Value::Int(s.routed_requests as i128)),
                            ("completed", Value::Int(s.completions as i128)),
                            ("iterations", Value::Int(s.iterations as i128)),
                            ("busy_s", Value::Float(s.busy_ps as f64 / 1e12)),
                            ("utilization", Value::Float(s.utilization(makespan))),
                        ])
                    })
                    .collect(),
            )
        };
        let split = match self.ttft_split() {
            Some(s) => obj(vec![
                ("prefill_s", Value::Float(s.prefill_s)),
                ("transfer_s", Value::Float(s.transfer_s)),
                ("decode_s", Value::Float(s.decode_s)),
            ]),
            None => Value::Null,
        };
        let contention = match self.contention() {
            Some((p50, p95, p99)) => obj(vec![
                ("p50", Value::Float(p50)),
                ("p95", Value::Float(p95)),
                ("p99", Value::Float(p99)),
            ]),
            None => Value::Null,
        };
        let fabric = match &self.fabric {
            None => Value::Null,
            Some(f) => {
                let links: Vec<Value> = f
                    .links
                    .iter()
                    .map(|l| {
                        // Same capacity integral as the fleet TSV (GB/s
                        // = 1e-3 B/ps).
                        let cap_bytes = l.bw_gbps / 1000.0 * makespan.max(1) as f64;
                        let util =
                            if cap_bytes > 0.0 { l.carried_bytes / cap_bytes } else { 0.0 };
                        obj(vec![
                            ("name", Value::Str(l.name.clone())),
                            ("bw_gbps", Value::Float(l.bw_gbps)),
                            ("carried_bytes", Value::Float(l.carried_bytes)),
                            ("utilization", Value::Float(util)),
                        ])
                    })
                    .collect();
                obj(vec![
                    ("label", Value::Str(f.label.clone())),
                    ("links", Value::Array(links)),
                ])
            }
        };
        let v = obj(vec![
            ("shape", Value::Str("disagg".into())),
            ("routing", Value::Str(self.routing.clone())),
            ("pairing", Value::Str(self.pairing.clone())),
            ("prefill_replicas", Value::Int(self.prefill_reports.len() as i128)),
            ("decode_replicas", Value::Int(self.decode_reports.len() as i128)),
            ("completions", Value::Int(self.total_completions() as i128)),
            ("kv_bytes", Value::Int(i128::from(self.total_kv_bytes()))),
            ("makespan_ps", Value::Int(self.makespan_ps as i128)),
            ("makespan_s", Value::Float(self.makespan_s())),
            ("generation_tput_tok_s", Value::Float(self.generation_throughput())),
            ("prefill_utilization", Value::Float(self.prefill_utilization())),
            ("decode_utilization", Value::Float(self.decode_utilization())),
            ("slo", self.slo().json_value()),
            (
                "ttft_prefill",
                PercentileSummary::json_or_null(self.prefill_component_percentiles()),
            ),
            ("ttft_transfer", PercentileSummary::json_or_null(self.transfer_percentiles())),
            (
                "ttft_decode",
                PercentileSummary::json_or_null(self.decode_component_percentiles()),
            ),
            ("ttft_split", split),
            ("contention", contention),
            ("reuse", self.aggregate_reuse().json_value()),
            ("prefill_pool", pool(self.prefill_stats())),
            ("decode_pool", pool(self.decode_stats())),
            ("fabric", fabric),
        ]);
        llmss_core::json::pretty(&v) + "\n"
    }

    /// Per-replica TSV (the CLI's `{output}-disagg.tsv`): one row per
    /// pool member plus a `total` row per pool (utilization in the
    /// totals rows is the pool mean, so it stays in `[0, 1]`).
    pub fn to_tsv(&self) -> String {
        let mut out =
            String::from("pool\treplica\trouted\tcompleted\titerations\tbusy_s\tutilization\n");
        let makespan = self.makespan_ps;
        for (pool, stats) in
            [("prefill", self.prefill_stats()), ("decode", self.decode_stats())]
        {
            for s in &stats {
                out.push_str(&format!(
                    "{pool}\t{}\t{}\t{}\t{}\t{:.4}\t{:.4}\n",
                    s.replica,
                    s.routed_requests,
                    s.completions,
                    s.iterations,
                    s.busy_ps as f64 / 1e12,
                    s.utilization(makespan),
                ));
            }
            out.push_str(&format!(
                "{pool}\ttotal\t{}\t{}\t{}\t{:.4}\t{:.4}\n",
                stats.iter().map(|s| s.routed_requests).sum::<usize>(),
                stats.iter().map(|s| s.completions).sum::<usize>(),
                stats.iter().map(|s| s.iterations).sum::<usize>(),
                stats.iter().map(|s| s.busy_ps).sum::<TimePs>() as f64 / 1e12,
                mean_utilization(&stats, makespan),
            ));
        }
        // The fabric section exists only for fair-sharing runs; the
        // legacy FIFO wire emits exactly the pre-fabric TSV above.
        if let Some(fabric) = &self.fabric {
            out.push_str(&format!(
                "\nfabric\t{}\nlink\tbw_gbps\tcarried_mb\tutilization\n",
                fabric.label
            ));
            for l in &fabric.links {
                // Capacity integral over the run, in bytes (GB/s =
                // 1e-3 B/ps).
                let cap_bytes = l.bw_gbps / 1000.0 * makespan as f64;
                let util = if cap_bytes > 0.0 { l.carried_bytes / cap_bytes } else { 0.0 };
                out.push_str(&format!(
                    "{}\t{:.1}\t{:.3}\t{:.4}\n",
                    l.name,
                    l.bw_gbps,
                    l.carried_bytes / 1e6,
                    util,
                ));
            }
            out.push_str("contention_p50\tcontention_p95\tcontention_p99\n");
            match self.contention() {
                Some((p50, p95, p99)) => {
                    out.push_str(&format!("{p50:.3}\t{p95:.3}\t{p99:.3}\n"));
                }
                None => out.push_str("-\t-\t-\n"),
            }
        }
        out
    }

    /// Metric TSV (the CLI's `{output}-disagg-metrics.tsv`): TTFT and its
    /// prefill/transfer/decode split, TPOT, and latency percentiles —
    /// dashes (never NaN) for undefined rows.
    pub fn metrics_tsv(&self) -> String {
        let mut out = String::from("metric\tp50_s\tp95_s\tp99_s\n");
        let rows: [(&str, Option<PercentileSummary>); 6] = [
            ("ttft", self.ttft_percentiles()),
            ("ttft_prefill", self.prefill_component_percentiles()),
            ("ttft_transfer", self.transfer_percentiles()),
            ("ttft_decode", self.decode_component_percentiles()),
            ("tpot", self.tpot_percentiles()),
            ("latency", self.latency_percentiles()),
        ];
        for (name, summary) in rows {
            out.push_str(&format!(
                "{name}\t{}\n",
                PercentileSummary::tsv_fields_or_dashes(summary)
            ));
        }
        out
    }
}

impl ReportOutput for DisaggReport {
    fn summary(&self) -> String {
        DisaggReport::summary(self)
    }

    fn artifacts(&self) -> Vec<(&'static str, String)> {
        vec![
            ("-disagg.tsv", self.to_tsv()),
            ("-disagg-metrics.tsv", self.metrics_tsv()),
            ("-summary.json", self.summary_json()),
        ]
    }
}

fn pool_stats(reports: &[SimReport], routed: &[usize]) -> Vec<PoolStats> {
    reports
        .iter()
        .enumerate()
        .map(|(i, r)| PoolStats {
            replica: i,
            routed_requests: routed.get(i).copied().unwrap_or(0),
            completions: r.completions.len(),
            iterations: r.iterations.len(),
            busy_ps: r.iterations.iter().map(|it| it.latency_ps).sum(),
            final_clock_ps: r.sim_duration_ps,
        })
        .collect()
}

fn mean_utilization(stats: &[PoolStats], makespan_ps: TimePs) -> f64 {
    if stats.is_empty() {
        return 0.0;
    }
    stats.iter().map(|s| s.utilization(makespan_ps)).sum::<f64>() / stats.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmss_core::{ReuseStats, WallBreakdown};

    fn completion(id: u64) -> DisaggCompletion {
        DisaggCompletion {
            id,
            arrival_ps: 0,
            input_len: 100,
            output_len: 4,
            prefill_replica: 0,
            decode_replica: 0,
            prefill_done_ps: 1_000,
            transfer_start_ps: 1_200,
            transfer_done_ps: 2_000,
            first_token_ps: 2_500,
            finish_ps: 5_500,
            kv_bytes: 100 * 64,
        }
    }

    fn empty_sim_report(duration: TimePs) -> SimReport {
        SimReport {
            iterations: Vec::new(),
            completions: Vec::new(),
            wall: WallBreakdown::default(),
            reuse: ReuseStats::default(),
            sim_duration_ps: duration,
        }
    }

    fn report() -> DisaggReport {
        DisaggReport::new(
            "least-outstanding".into(),
            "least-kv".into(),
            vec![empty_sim_report(3_000)],
            vec![empty_sim_report(5_500)],
            vec![completion(0), completion(1)],
            None,
            Vec::new(),
            vec![2],
            vec![2],
        )
    }

    #[test]
    fn components_partition_ttft() {
        let c = completion(0);
        assert_eq!(
            c.prefill_component_ps() + c.transfer_component_ps() + c.decode_component_ps(),
            c.ttft_ps()
        );
        assert_eq!(c.ttft_ps(), 2_500);
        assert_eq!(c.transfer_component_ps(), 1_000);
        // TPOT: 3 gaps over 3_000 ps.
        assert!((c.tpot_ps() - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn split_means_sum_to_mean_ttft() {
        let r = report();
        let split = r.ttft_split().unwrap();
        assert!((split.total_s() - 2_500e-12).abs() < 1e-18);
        assert!((split.transfer_s - 1_000e-12).abs() < 1e-18);
    }

    #[test]
    fn makespan_spans_both_pools() {
        let r = report();
        assert_eq!(r.makespan_ps(), 5_500);
        assert_eq!(r.total_kv_bytes(), 2 * 100 * 64);
    }

    #[test]
    fn tsvs_have_expected_shape_and_no_nan() {
        let r = report();
        let tsv = r.to_tsv();
        // Header + (1P + totals) + (1D + totals).
        assert_eq!(tsv.lines().count(), 5, "{tsv}");
        assert!(tsv.lines().nth(1).unwrap().starts_with("prefill\t0"));
        assert!(tsv.lines().nth(2).unwrap().starts_with("prefill\ttotal"));
        assert!(tsv.lines().nth(3).unwrap().starts_with("decode\t0"));
        assert!(tsv.lines().nth(4).unwrap().starts_with("decode\ttotal"));
        let metrics = r.metrics_tsv();
        assert_eq!(metrics.lines().count(), 7, "{metrics}");
        assert!(!metrics.contains("NaN"));
        for name in ["ttft_prefill", "ttft_transfer", "ttft_decode", "tpot"] {
            assert!(metrics.contains(name), "missing {name} in {metrics}");
        }
    }

    #[test]
    fn empty_report_is_all_dashes() {
        let r = DisaggReport::new(
            "rr".into(),
            "sticky".into(),
            vec![empty_sim_report(0)],
            vec![empty_sim_report(0)],
            Vec::new(),
            None,
            Vec::new(),
            vec![0],
            vec![0],
        );
        assert_eq!(r.ttft_percentiles(), None);
        assert_eq!(r.ttft_split(), None);
        assert!(!r.metrics_tsv().contains("NaN"));
        assert!(r.summary().contains("n/a"));
    }

    #[test]
    fn summary_names_both_policies() {
        let s = report().summary();
        assert!(s.contains("least-outstanding") && s.contains("least-kv"), "{s}");
    }
}
