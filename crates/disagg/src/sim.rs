//! The disaggregated serving simulator: a prefill pool and a decode pool
//! joined by a KV-transfer link, as a thin composition over the core
//! [`FleetEngine`].
//!
//! Disaggregation is exactly the fleet engine with role-filtered
//! admission plus a KV-transfer link: requests route to the prefill-role
//! replicas at arrival; when a prefill replica finishes a request (its
//! scheduler runs in
//! [`SchedulerMode::PrefillOnly`](llmss_sched::SchedulerMode)), the
//! engine serializes the request's KV cache — prompt tokens ×
//! `kv_bytes_per_token` — FIFO over the inter-pool link in KV-ready
//! order and injects the request into the decode replica the pairing
//! policy picked, arriving when the transfer completes. Decode replicas
//! run in [`SchedulerMode::DecodeOnly`](llmss_sched::SchedulerMode):
//! admission reserves the shipped KV footprint and every iteration is a
//! decode step. Transfers overlap decode-pool execution in virtual time.
//!
//! This type owns no event loop: it builds the engine (prefill replicas
//! at fleet indices `0..P`, decode replicas at `P..P+D`), forwards the
//! [`Simulate`] lifecycle, and re-maps the engine's global indices back
//! to per-pool indices when assembling the [`DisaggReport`].

use llmss_cluster::{ReplicaRole, RoutingPolicy, RoutingPolicyKind};
use llmss_core::{
    ConfigError, Fabric, FleetEngine, ServingSimulator, SimConfig, Simulate, StaticControl,
    Telemetry,
};
use llmss_net::LinkSpec;
use llmss_sched::{Request, TimePs};

use crate::report::{DisaggCompletion, DisaggReport, Transfer};

/// How a finished prefill picks its decode replica.
///
/// All three reuse the cluster [`RoutingPolicy`] machinery over
/// decode-pool snapshots; the decision runs at prefill-completion time,
/// before the transfer starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairingPolicyKind {
    /// Ship to the decode replica with the fewest KV pages in use — the
    /// memory-pressure signal that matters most on a pool whose whole job
    /// is holding caches.
    LeastKvLoad,
    /// Ship to the decode replica with the fewest unfinished requests.
    LeastOutstanding,
    /// Session affinity: the request id picks the replica regardless of
    /// load (KV locality for multi-turn reuse).
    Sticky,
}

impl PairingPolicyKind {
    /// Every built-in pairing policy (for sweeps and exhaustive tests).
    pub const ALL: [PairingPolicyKind; 3] = [
        PairingPolicyKind::LeastKvLoad,
        PairingPolicyKind::LeastOutstanding,
        PairingPolicyKind::Sticky,
    ];

    /// Instantiates the policy as a cluster routing policy.
    pub fn build(self) -> Box<dyn RoutingPolicy> {
        match self {
            PairingPolicyKind::LeastKvLoad => RoutingPolicyKind::LeastKvLoad.build(0),
            PairingPolicyKind::LeastOutstanding => RoutingPolicyKind::LeastOutstanding.build(0),
            PairingPolicyKind::Sticky => RoutingPolicyKind::Sticky.build(0),
        }
    }

    /// The CLI spelling (`--pairing` flag values).
    pub fn as_str(&self) -> &'static str {
        match self {
            PairingPolicyKind::LeastKvLoad => "least-kv",
            PairingPolicyKind::LeastOutstanding => "least-outstanding",
            PairingPolicyKind::Sticky => "sticky",
        }
    }
}

impl std::fmt::Display for PairingPolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for PairingPolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "least-kv" | "kv" => Ok(PairingPolicyKind::LeastKvLoad),
            "least-outstanding" | "lor" => Ok(PairingPolicyKind::LeastOutstanding),
            "sticky" => Ok(PairingPolicyKind::Sticky),
            other => Err(format!(
                "unknown pairing policy '{other}' \
                 (expected least-kv | least-outstanding | sticky)"
            )),
        }
    }
}

/// Disaggregated-deployment configuration: pool sizes, routing/pairing
/// policies, and the inter-pool KV link.
///
/// # Examples
///
/// ```
/// use llmss_disagg::{DisaggConfig, PairingPolicyKind};
///
/// let cfg = DisaggConfig::new(2, 2)
///     .kv_link_gbps(32.0)
///     .pairing(PairingPolicyKind::Sticky)
///     .seed(7);
/// assert_eq!((cfg.prefill_replicas, cfg.decode_replicas), (2, 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisaggConfig {
    /// Prefill-pool size (≥ 1).
    pub prefill_replicas: usize,
    /// Decode-pool size (≥ 1).
    pub decode_replicas: usize,
    /// Front-end routing over the prefill pool.
    pub routing: RoutingPolicyKind,
    /// Decode-replica selection at prefill-completion time.
    pub pairing: PairingPolicyKind,
    /// The inter-pool KV-transfer link (shared, FIFO-serialized).
    pub kv_link: LinkSpec,
    /// Seed for randomized routing policies.
    pub seed: u64,
}

impl DisaggConfig {
    /// A `prefill`×`decode` deployment with least-outstanding routing,
    /// least-KV pairing, and a CXL-class KV link.
    ///
    /// # Panics
    ///
    /// Panics if either pool is empty.
    pub fn new(prefill: usize, decode: usize) -> Self {
        assert!(prefill > 0, "the prefill pool needs at least one replica");
        assert!(decode > 0, "the decode pool needs at least one replica");
        Self {
            prefill_replicas: prefill,
            decode_replicas: decode,
            routing: RoutingPolicyKind::LeastOutstanding,
            pairing: PairingPolicyKind::LeastKvLoad,
            kv_link: LinkSpec::cxl(),
            seed: 0,
        }
    }

    /// Sets the KV-link bandwidth in GB/s (latency stays CXL-class).
    pub fn kv_link_gbps(mut self, gbps: f64) -> Self {
        self.kv_link = LinkSpec::new(gbps, LinkSpec::cxl().latency_ns);
        self
    }

    /// Sets the full KV-link spec (bandwidth and latency).
    pub fn kv_link(mut self, link: LinkSpec) -> Self {
        self.kv_link = link;
        self
    }

    /// Sets the prefill-pool routing policy.
    pub fn routing(mut self, routing: RoutingPolicyKind) -> Self {
        self.routing = routing;
        self
    }

    /// Sets the decode-pairing policy.
    pub fn pairing(mut self, pairing: PairingPolicyKind) -> Self {
        self.pairing = pairing;
        self
    }

    /// Sets the routing seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A disaggregated prefill/decode deployment, advanced in virtual time
/// by the core [`FleetEngine`].
#[derive(Debug)]
pub struct DisaggSimulator {
    engine: FleetEngine,
    /// Prefill-pool size: the engine holds prefill replicas at fleet
    /// indices `0..P` and decode replicas at `P..P+D`.
    prefill_len: usize,
    routing_name: String,
    pairing_name: String,
}

impl DisaggSimulator {
    /// Builds a disaggregated deployment from per-pool replica
    /// configurations (they may differ — batch limits, KV capacity,
    /// hardware — but must serve the same model) and a request trace.
    ///
    /// The configurations' scheduler modes are forced to
    /// prefill-only/decode-only; callers don't need to set them.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when either replica configuration cannot
    /// be realized.
    ///
    /// # Panics
    ///
    /// Panics if the two configurations name different models (the KV
    /// bytes-per-token of the shipped caches must agree).
    pub fn new(
        prefill_config: SimConfig,
        decode_config: SimConfig,
        config: DisaggConfig,
        trace: Vec<Request>,
    ) -> Result<Self, ConfigError> {
        // The single dedicated FIFO link — the legacy wire, pinned
        // byte-identically by the goldens.
        let fabric = Fabric::fifo(vec![config.kv_link]);
        Self::with_fabric(prefill_config, decode_config, config, fabric, trace)
    }

    /// Builds a disaggregated deployment whose KV transfers cross an
    /// explicit [`Fabric`] (topology + sharing discipline) instead of
    /// `config.kv_link` as a single FIFO wire. Fabric endpoints are
    /// fleet-global replica indices: prefill replicas at `0..P`, decode
    /// replicas at `P..P+D`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when either replica configuration cannot
    /// be realized.
    ///
    /// # Panics
    ///
    /// As [`new`](Self::new); additionally panics when a routed fabric
    /// covers fewer endpoints than `P + D`.
    pub fn with_fabric(
        prefill_config: SimConfig,
        decode_config: SimConfig,
        config: DisaggConfig,
        fabric: Fabric,
        trace: Vec<Request>,
    ) -> Result<Self, ConfigError> {
        assert_eq!(
            prefill_config.model.name, decode_config.model.name,
            "prefill and decode pools must serve the same model"
        );
        let prefill_config = prefill_config.prefill_only();
        let decode_config = decode_config.decode_only();
        let mut configs = vec![prefill_config; config.prefill_replicas];
        configs.extend(vec![decode_config; config.decode_replicas]);

        let router = config.routing.build(config.seed);
        let pairer = config.pairing.build();
        let routing_name = router.name().to_owned();
        let pairing_name = pairer.name().to_owned();
        let engine = FleetEngine::with_fabric(
            configs,
            fabric,
            Box::new(StaticControl::new(router, pairer)),
            trace,
        )?;
        Ok(Self { engine, prefill_len: config.prefill_replicas, routing_name, pairing_name })
    }

    /// The prefill-pool replicas (for inspection between steps).
    pub fn prefill_replicas(&self) -> &[ServingSimulator] {
        &self.engine.sims()[..self.prefill_len]
    }

    /// The decode-pool replicas (for inspection between steps).
    pub fn decode_replicas(&self) -> &[ServingSimulator] {
        &self.engine.sims()[self.prefill_len..]
    }

    /// KV bytes shipped per prompt token (from the model spec).
    pub fn kv_bytes_per_token(&self) -> u64 {
        self.engine.kv_bytes_per_token()
    }

    /// Injects one request online: it queues at the front end and routes
    /// to the prefill pool when virtual time reaches its arrival.
    pub fn push_request(&mut self, request: Request) {
        self.engine.push_request(request);
    }

    /// The earliest virtual time the next [`step`](Self::step) would act
    /// (an arrival, a replica iteration in either pool, or a pending KV
    /// transfer), or `None` when the deployment has fully drained.
    pub fn next_ready_ps(&self) -> Option<TimePs> {
        self.engine.next_ready_ps()
    }

    /// The deployment's virtual clock: the furthest replica clock in
    /// either pool.
    pub fn clock_ps(&self) -> TimePs {
        self.engine.clock_ps()
    }

    /// Attaches a telemetry handle; the engine fans it out per replica
    /// (prefill pool first, then decode) and onto the KV fabric.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.engine.set_telemetry(telemetry);
    }

    /// Sets the worker-thread budget for windowed fleet stepping
    /// (byte-identical outcomes under any value; 1 = serial). The
    /// prefill pool always advances through the serial path — its
    /// completions move the KV commit horizon — so sharding accelerates
    /// the decode pool's iteration stretches.
    pub fn set_shards(&mut self, shards: usize) {
        self.engine.set_shards(shards);
    }

    /// Arms the deployment-wide shared reuse cache across both pools
    /// (namespaced by configuration fingerprint, so prefill- and
    /// decode-configured replicas never alias).
    pub fn enable_shared_cache(&mut self) {
        self.engine.enable_shared_cache();
    }

    /// Requests that finished their full lifecycle (decode completed).
    pub fn completed_requests(&self) -> usize {
        self.decode_replicas().iter().map(|r| r.scheduler().completions().len()).sum()
    }

    /// Processes the earliest virtual-time event: commits any transfer
    /// whose KV-ready order is settled, then routes one arrival or runs
    /// one replica iteration (queueing any prefills it finishes).
    /// Returns `false` when everything has drained.
    pub fn step(&mut self) -> bool {
        self.engine.step()
    }

    /// Runs the deployment to completion and assembles the report.
    pub fn run(mut self) -> DisaggReport {
        while self.step() {}
        self.into_report()
    }

    /// Assembles the report from the deployment's current state (a
    /// partially drained deployment yields a partial report), mapping the
    /// engine's fleet-global replica indices back to per-pool indices.
    pub fn into_report(self) -> DisaggReport {
        let prefill_len = self.prefill_len;
        let parts = self.engine.into_parts();
        let routed_prefill: Vec<usize> =
            parts.replicas[..prefill_len].iter().map(|r| r.routed).collect();
        let routed_decode: Vec<usize> =
            parts.replicas[prefill_len..].iter().map(|r| r.paired).collect();
        debug_assert!(
            parts.replicas[..prefill_len].iter().all(|r| r.role == ReplicaRole::Prefill)
                && parts.replicas[prefill_len..].iter().all(|r| r.role == ReplicaRole::Decode),
            "a static disaggregated fleet never reshapes"
        );
        let mut reports = parts.replicas.into_iter().map(|r| r.report);
        let prefill_reports: Vec<_> = reports.by_ref().take(prefill_len).collect();
        let decode_reports: Vec<_> = reports.collect();

        let transfer_of = |id: u64| {
            let t = parts.transfers[&id];
            Transfer {
                prefill_replica: t.from,
                decode_replica: t.to - prefill_len,
                prefill_done_ps: t.ready_ps,
                start_ps: t.start_ps,
                done_ps: t.done_ps,
                bytes: t.bytes,
            }
        };
        let mut completions: Vec<DisaggCompletion> = decode_reports
            .iter()
            .flat_map(|r| r.completions.iter())
            .map(|c| {
                let transfer = transfer_of(c.id);
                let request = parts.requests[&c.id];
                DisaggCompletion {
                    id: c.id,
                    arrival_ps: request.arrival_ps,
                    input_len: c.input_len,
                    output_len: c.output_len,
                    prefill_replica: transfer.prefill_replica,
                    decode_replica: transfer.decode_replica,
                    prefill_done_ps: transfer.prefill_done_ps,
                    transfer_start_ps: transfer.start_ps,
                    transfer_done_ps: transfer.done_ps,
                    first_token_ps: c.first_token_ps,
                    finish_ps: c.finish_ps,
                    kv_bytes: transfer.bytes,
                }
            })
            .collect();
        completions.sort_by_key(|c| c.id);

        let contention_ratios =
            parts.transfers.values().filter_map(|t| t.contention()).collect();
        DisaggReport::new(
            self.routing_name,
            self.pairing_name,
            prefill_reports,
            decode_reports,
            completions,
            parts.fabric,
            contention_ratios,
            routed_prefill,
            routed_decode,
        )
    }
}

impl Simulate for DisaggSimulator {
    type Report = DisaggReport;

    fn push_request(&mut self, request: Request) {
        DisaggSimulator::push_request(self, request);
    }

    fn next_ready_ps(&self) -> Option<TimePs> {
        DisaggSimulator::next_ready_ps(self)
    }

    fn clock_ps(&self) -> TimePs {
        DisaggSimulator::clock_ps(self)
    }

    fn completed_requests(&self) -> usize {
        DisaggSimulator::completed_requests(self)
    }

    fn step(&mut self) -> bool {
        DisaggSimulator::step(self)
    }

    fn finalize(self) -> DisaggReport {
        self.into_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmss_cluster::{bursty_trace, BurstyTraceSpec};
    use llmss_model::ModelSpec;

    fn replica_config() -> SimConfig {
        SimConfig::new(ModelSpec::gpt2()).npu_num(1).tensor_parallel()
    }

    fn small_trace() -> Vec<Request> {
        bursty_trace(&BurstyTraceSpec {
            bursts: 2,
            burst_size: 8,
            ..BurstyTraceSpec::default()
        })
    }

    fn run(config: DisaggConfig, trace: Vec<Request>) -> DisaggReport {
        DisaggSimulator::new(replica_config(), replica_config(), config, trace)
            .expect("gpt2 fits a single Table-I NPU")
            .run()
    }

    #[test]
    fn every_request_prefills_transfers_and_decodes_once() {
        let trace = small_trace();
        let report = run(DisaggConfig::new(2, 2), trace.clone());
        assert_eq!(report.total_completions(), trace.len());
        let mut ids: Vec<u64> = report.completions.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), trace.len(), "duplicated or lost requests");
        for c in &report.completions {
            assert!(c.prefill_done_ps > c.arrival_ps, "request {}: acausal prefill", c.id);
            assert!(c.transfer_start_ps >= c.prefill_done_ps);
            assert!(c.transfer_done_ps > c.transfer_start_ps);
            assert!(c.first_token_ps > c.transfer_done_ps, "decode before KV arrived");
            assert!(c.finish_ps >= c.first_token_ps);
            assert_eq!(c.output_len, self_output_len(&trace, c.id));
        }
    }

    fn self_output_len(trace: &[Request], id: u64) -> usize {
        trace.iter().find(|r| r.id == id).unwrap().output_len
    }

    #[test]
    fn transfer_bytes_follow_prompt_length() {
        let report = run(DisaggConfig::new(1, 1), small_trace());
        let per_token = ModelSpec::gpt2().kv_bytes_per_token();
        for c in &report.completions {
            assert_eq!(c.kv_bytes, c.input_len as u64 * per_token);
        }
    }

    #[test]
    fn shared_link_serializes_transfers_fifo() {
        // A starved link forces queueing: transfers must never overlap,
        // and each starts no earlier than its prefill finished.
        let report = run(DisaggConfig::new(2, 1).kv_link_gbps(0.5), small_trace());
        let mut transfers: Vec<_> = report
            .completions
            .iter()
            .map(|c| (c.transfer_start_ps, c.transfer_done_ps))
            .collect();
        transfers.sort_unstable();
        for pair in transfers.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "transfers overlap on the shared link");
        }
    }

    #[test]
    fn link_serves_transfers_in_kv_ready_order() {
        // Two prefill replicas, mixed prompt sizes, a slow link: an
        // early-*started* heavy prefill must not jump the queue ahead of
        // a lighter prefill whose KV was *ready* first. Replaying the
        // link FIFO in ready order must reproduce every start time
        // exactly (no phantom queueing from event-discovery order).
        let trace = bursty_trace(&BurstyTraceSpec {
            bursts: 2,
            burst_size: 10,
            heavy_every: 2,
            ..BurstyTraceSpec::default()
        });
        let report = run(
            DisaggConfig::new(2, 2).kv_link_gbps(2.0).routing(RoutingPolicyKind::RoundRobin),
            trace,
        );
        let mut by_ready: Vec<_> = report.completions.iter().collect();
        by_ready.sort_by_key(|c| (c.prefill_done_ps, c.id));
        let mut link_free = 0;
        for c in by_ready {
            assert_eq!(
                c.transfer_start_ps,
                c.prefill_done_ps.max(link_free),
                "request {}: transfer not served in KV-ready order",
                c.id
            );
            link_free = c.transfer_done_ps;
        }
    }

    #[test]
    fn fair_single_fabric_serves_every_request_causally() {
        // Same deployment, but the wire is a fair-sharing flow model:
        // transfers enter the fabric the moment their KV is ready (no
        // FIFO queueing) and deliveries stay causal.
        let config = DisaggConfig::new(2, 2).kv_link_gbps(2.0);
        let endpoints = config.prefill_replicas + config.decode_replicas;
        let graph = llmss_core::FabricGraph::single(endpoints, config.kv_link);
        let trace = small_trace();
        let report = DisaggSimulator::with_fabric(
            replica_config(),
            replica_config(),
            config,
            Fabric::fair("single", graph),
            trace.clone(),
        )
        .expect("gpt2 fits a single Table-I NPU")
        .run();
        assert_eq!(report.total_completions(), trace.len());
        for c in &report.completions {
            assert_eq!(
                c.transfer_start_ps, c.prefill_done_ps,
                "request {}: a fair fabric admits flows at their ready time",
                c.id
            );
            assert!(c.transfer_done_ps > c.transfer_start_ps);
            assert!(c.first_token_ps > c.transfer_done_ps, "decode before KV arrived");
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let sig = |report: &DisaggReport| {
            report
                .completions
                .iter()
                .map(|c| (c.id, c.prefill_done_ps, c.transfer_done_ps, c.finish_ps))
                .collect::<Vec<_>>()
        };
        let a = run(DisaggConfig::new(2, 2).seed(9), small_trace());
        let b = run(DisaggConfig::new(2, 2).seed(9), small_trace());
        assert_eq!(sig(&a), sig(&b));
    }

    #[test]
    fn sticky_pairing_follows_request_id() {
        let report =
            run(DisaggConfig::new(1, 3).pairing(PairingPolicyKind::Sticky), small_trace());
        for c in &report.completions {
            assert_eq!(c.decode_replica as u64, c.id % 3);
        }
    }

    #[test]
    fn pairing_policies_are_selectable_and_complete() {
        for pairing in PairingPolicyKind::ALL {
            let report = run(DisaggConfig::new(1, 2).pairing(pairing), small_trace());
            assert_eq!(report.total_completions(), 16, "pairing {pairing}");
            assert_eq!(report.pairing, pairing.as_str());
        }
    }

    #[test]
    fn decode_pool_overlaps_transfers_with_execution() {
        // With a slow link and several requests, some decode iterations
        // must run while later transfers are still in flight — the
        // whole point of overlapping the handoff in virtual time.
        let report = run(DisaggConfig::new(1, 1).kv_link_gbps(1.0), small_trace());
        let decode = &report.decode_reports[0];
        let overlapped = decode.iterations.iter().any(|it| {
            report
                .completions
                .iter()
                .any(|c| it.start_ps < c.transfer_done_ps && c.transfer_start_ps < it.start_ps)
        });
        assert!(overlapped, "no decode iteration overlapped an in-flight transfer");
    }

    #[test]
    fn pairing_kind_round_trips_through_str() {
        for kind in PairingPolicyKind::ALL {
            let parsed: PairingPolicyKind = kind.as_str().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("nope".parse::<PairingPolicyKind>().is_err());
    }

    #[test]
    #[should_panic(expected = "same model")]
    fn mismatched_models_rejected() {
        let _ = DisaggSimulator::new(
            SimConfig::new(ModelSpec::gpt2()).npu_num(1).tensor_parallel(),
            SimConfig::new(ModelSpec::gpt3_7b()).npu_num(4).tensor_parallel(),
            DisaggConfig::new(1, 1),
            Vec::new(),
        );
    }
}
