//! Property tests for disaggregated serving: KV-transfer byte
//! conservation and decode-pool KV-capacity safety under handoff
//! admission.

use proptest::prelude::*;

use llmss_cluster::RoutingPolicyKind;
use llmss_core::SimConfig;
use llmss_disagg::{DisaggConfig, DisaggSimulator, PairingPolicyKind};
use llmss_model::ModelSpec;
use llmss_sched::{Request, TimePs};

fn arb_trace() -> impl Strategy<Value = Vec<Request>> {
    proptest::collection::vec((16usize..600, 1usize..12, 0u64..50), 1..24).prop_map(|shapes| {
        let mut clock: TimePs = 0;
        shapes
            .into_iter()
            .enumerate()
            .map(|(id, (input_len, output_len, gap_us))| {
                clock += gap_us * 1_000_000;
                Request::new(id as u64, input_len, output_len, clock)
            })
            .collect()
    })
}

fn replica_config() -> SimConfig {
    SimConfig::new(ModelSpec::gpt2()).npu_num(1).tensor_parallel()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Bytes shipped per request equal prompt_tokens × kv_bytes_per_token
    /// exactly, for every pairing policy — the transfer model never
    /// invents or loses cache bytes.
    #[test]
    fn kv_transfer_byte_accounting_conserves(
        trace in arb_trace(),
        pairing_idx in 0usize..PairingPolicyKind::ALL.len(),
    ) {
        let per_token = ModelSpec::gpt2().kv_bytes_per_token();
        let expected_total: u64 =
            trace.iter().map(|r| r.input_len as u64 * per_token).sum();
        let config = DisaggConfig::new(2, 2)
            .pairing(PairingPolicyKind::ALL[pairing_idx])
            .routing(RoutingPolicyKind::RoundRobin);
        let report =
            DisaggSimulator::new(replica_config(), replica_config(), config, trace.clone())
                .expect("gpt2 fits a single Table-I NPU")
                .run();
        prop_assert_eq!(report.total_completions(), trace.len());
        prop_assert_eq!(report.total_kv_bytes(), expected_total);
        for c in &report.completions {
            let original = trace.iter().find(|r| r.id == c.id).unwrap();
            prop_assert_eq!(c.kv_bytes, original.input_len as u64 * per_token);
            prop_assert_eq!(c.input_len, original.input_len);
        }
    }

    /// A decode-pool KV cache never exceeds its capacity, even when the
    /// pool is memory-starved and handoff admissions contend with cache
    /// growth — checked after every virtual-time event.
    #[test]
    fn decode_pool_kv_never_exceeds_capacity(trace in arb_trace(), seed in 0u64..32) {
        // Starve the decode pool: barely more memory than weights +
        // reserve, so admissions and decode growth fight over pages.
        let decode_cfg = {
            let mut cfg = replica_config();
            cfg.npu_mem_gib = Some(1.45);
            cfg
        };
        let config = DisaggConfig::new(1, 2).seed(seed);
        let mut sim =
            DisaggSimulator::new(replica_config(), decode_cfg, config, trace.clone())
                .expect("decode pool must still fit the model");
        while sim.step() {
            for replica in sim.decode_replicas() {
                let kv = replica.scheduler().kv();
                prop_assert!(
                    kv.used_pages() <= kv.config().total_pages(),
                    "decode KV overcommitted: {} of {} pages",
                    kv.used_pages(),
                    kv.config().total_pages(),
                );
            }
        }
        let completed: usize =
            sim.decode_replicas().iter().map(|r| r.scheduler().completions().len()).sum();
        prop_assert_eq!(completed, trace.len(), "starved decode pool lost requests");
    }
}
