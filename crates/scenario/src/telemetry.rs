//! The `[telemetry]` scenario table: request-lifecycle tracing and
//! windowed time-series metrics as declarative values.
//!
//! A scenario with a `[telemetry]` table records [`SimEvent`]s during the
//! run and exports them after it finishes:
//!
//! ```toml
//! [telemetry]
//! trace = "auto"        # Chrome-trace JSON ("auto" = {output}-trace.json)
//! timeline = "auto"     # windowed TSV ("auto" = {output}-timeline.tsv)
//! window_ps = 100000000000   # timeline window (100 ms of virtual time)
//! slo_ttft_ms = 500.0   # TTFT attainment threshold
//! slo_tpot_ms = 50.0    # TPOT attainment threshold
//! requests = [0, 1]     # optional request-id filter (empty = all)
//! replicas = [0]        # optional replica filter (empty = all)
//! ```
//!
//! Every scalar is reachable as a `telemetry.*` key through
//! [`Scenario::set`](crate::Scenario::set), so recording is a sweep axis
//! like any other knob. Recording costs nothing when the table is absent:
//! the simulators compile the no-op sink path to nothing.
//!
//! [`SimEvent`]: llmss_core::SimEvent

use llmss_core::TimelineConfig;
use llmss_sched::TimePs;
use serde::Value;

use crate::ScenarioError;

/// The `[telemetry]` table: which exports to produce, the timeline
/// window, SLO thresholds, and optional event filters.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySpec {
    /// Chrome-trace JSON output path; `"auto"` derives
    /// `{output}-trace.json`. `None` disables the trace export.
    pub trace: Option<String>,
    /// Timeline TSV output path; `"auto"` derives
    /// `{output}-timeline.tsv`. `None` disables the timeline export.
    pub timeline: Option<String>,
    /// Timeline window in picoseconds of virtual time.
    pub window_ps: TimePs,
    /// TTFT threshold for the timeline's windowed SLO-attainment column,
    /// in milliseconds.
    pub slo_ttft_ms: f64,
    /// TPOT threshold for the timeline's windowed SLO-attainment column,
    /// in milliseconds.
    pub slo_tpot_ms: f64,
    /// Request-id filter for request-scoped events (empty = keep all).
    pub requests: Vec<u64>,
    /// Replica filter for replica-scoped events (empty = keep all).
    pub replicas: Vec<usize>,
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        let defaults = TimelineConfig::default();
        Self {
            trace: None,
            timeline: None,
            window_ps: defaults.window_ps,
            slo_ttft_ms: defaults.slo_ttft_ms,
            slo_tpot_ms: defaults.slo_tpot_ms,
            requests: Vec::new(),
            replicas: Vec::new(),
        }
    }
}

impl TelemetrySpec {
    /// A spec exporting both artifacts at the derived (`auto`) paths.
    pub fn auto() -> Self {
        Self { trace: Some("auto".into()), timeline: Some("auto".into()), ..Self::default() }
    }

    /// Whether the run should record events at all.
    pub fn enabled(&self) -> bool {
        self.trace.is_some() || self.timeline.is_some()
    }

    /// The trace output path under the run's output prefix (`None` when
    /// the trace export is off).
    pub fn trace_path(&self, output: &str) -> Option<String> {
        self.trace.as_ref().map(|p| resolve(p, output, "-trace.json"))
    }

    /// The timeline output path under the run's output prefix (`None`
    /// when the timeline export is off).
    pub fn timeline_path(&self, output: &str) -> Option<String> {
        self.timeline.as_ref().map(|p| resolve(p, output, "-timeline.tsv"))
    }

    /// The timeline exporter's configuration.
    pub fn timeline_config(&self) -> TimelineConfig {
        TimelineConfig {
            window_ps: self.window_ps,
            slo_ttft_ms: self.slo_ttft_ms,
            slo_tpot_ms: self.slo_tpot_ms,
        }
    }

    /// The request filter as the exporters expect it (`None` = keep all).
    pub fn request_filter(&self) -> Option<&[u64]> {
        if self.requests.is_empty() {
            None
        } else {
            Some(&self.requests)
        }
    }

    /// The replica filter as the exporters expect it (`None` = keep all).
    pub fn replica_filter(&self) -> Option<&[usize]> {
        if self.replicas.is_empty() {
            None
        } else {
            Some(&self.replicas)
        }
    }

    /// Checks the table's own constraints.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a typed
    /// [`ScenarioError`].
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let invalid = |field: &str, message: String| {
            Err(ScenarioError::InvalidValue { field: field.into(), message })
        };
        if self.window_ps == 0 {
            return invalid(
                "telemetry.window_ps",
                "the timeline window must be positive".into(),
            );
        }
        for (field, value) in [
            ("telemetry.slo_ttft_ms", self.slo_ttft_ms),
            ("telemetry.slo_tpot_ms", self.slo_tpot_ms),
        ] {
            if !value.is_finite() || value <= 0.0 {
                return invalid(
                    field,
                    format!("an SLO threshold must be positive, got {value}"),
                );
            }
        }
        Ok(())
    }

    /// Sets one knob by its serialized sub-key (the `telemetry.*`
    /// surface of [`Scenario::set`](crate::Scenario::set) — sweep axes
    /// and `--set`). The filter lists parse from comma-separated ids.
    pub(crate) fn set(&mut self, key: &str, value: &str) -> Result<(), ScenarioError> {
        fn parse<T: std::str::FromStr>(field: &str, value: &str) -> Result<T, ScenarioError>
        where
            T::Err: std::fmt::Display,
        {
            value.parse().map_err(|e| ScenarioError::UnknownValue {
                field: format!("telemetry.{field}"),
                value: value.into(),
                expected: format!("{e}"),
            })
        }
        fn parse_list<T: std::str::FromStr>(
            field: &str,
            value: &str,
        ) -> Result<Vec<T>, ScenarioError>
        where
            T::Err: std::fmt::Display,
        {
            if value == "none" || value.is_empty() {
                return Ok(Vec::new());
            }
            value.split(',').map(|item| parse(field, item.trim())).collect()
        }
        let opt_path = |value: &str| -> Option<String> {
            if value == "none" {
                None
            } else {
                Some(value.to_owned())
            }
        };
        match key {
            "trace" => self.trace = opt_path(value),
            "timeline" => self.timeline = opt_path(value),
            "window_ps" => self.window_ps = parse(key, value)?,
            "slo_ttft_ms" => self.slo_ttft_ms = parse(key, value)?,
            "slo_tpot_ms" => self.slo_tpot_ms = parse(key, value)?,
            "requests" => self.requests = parse_list(key, value)?,
            "replicas" => self.replicas = parse_list(key, value)?,
            other => {
                return Err(ScenarioError::UnknownKey { key: format!("telemetry.{other}") })
            }
        }
        Ok(())
    }

    /// Renders the table as a value tree in canonical key order.
    pub(crate) fn to_value(&self) -> Value {
        let opt_str = |s: &Option<String>| match s {
            Some(s) => Value::Str(s.clone()),
            None => Value::Null,
        };
        Value::Object(vec![
            ("trace".into(), opt_str(&self.trace)),
            ("timeline".into(), opt_str(&self.timeline)),
            ("window_ps".into(), Value::Int(i128::from(self.window_ps))),
            ("slo_ttft_ms".into(), Value::Float(self.slo_ttft_ms)),
            ("slo_tpot_ms".into(), Value::Float(self.slo_tpot_ms)),
            (
                "requests".into(),
                Value::Array(
                    self.requests.iter().map(|&id| Value::Int(i128::from(id))).collect(),
                ),
            ),
            (
                "replicas".into(),
                Value::Array(self.replicas.iter().map(|&r| Value::Int(r as i128)).collect()),
            ),
        ])
    }

    /// Rebuilds the table from a value tree with typed errors.
    pub(crate) fn from_value(v: &Value) -> Result<Self, ScenarioError> {
        let Value::Object(fields) = v else {
            return Err(ScenarioError::Parse {
                message: format!("telemetry: expected a table, got {v:?}"),
            });
        };
        let mut spec = TelemetrySpec::default();
        for (key, value) in fields {
            match (key.as_str(), value) {
                ("requests", Value::Array(items)) => {
                    spec.requests = int_list("telemetry.requests", items)?;
                }
                ("replicas", Value::Array(items)) => {
                    spec.replicas = int_list::<usize>("telemetry.replicas", items)?;
                }
                _ => {
                    let text = match value {
                        Value::Null => "none".to_owned(),
                        Value::Str(s) => s.clone(),
                        Value::Int(i) => i.to_string(),
                        Value::Float(f) => format!("{f:?}"),
                        Value::Bool(b) => b.to_string(),
                        other => {
                            return Err(ScenarioError::UnknownValue {
                                field: format!("telemetry.{key}"),
                                value: format!("{other:?}"),
                                expected: "a scalar".into(),
                            })
                        }
                    };
                    spec.set(key, &text)?;
                }
            }
        }
        Ok(spec)
    }
}

fn resolve(path: &str, output: &str, suffix: &str) -> String {
    if path == "auto" {
        format!("{output}{suffix}")
    } else {
        path.to_owned()
    }
}

fn int_list<T: TryFrom<i128>>(field: &str, items: &[Value]) -> Result<Vec<T>, ScenarioError> {
    items
        .iter()
        .map(|v| match v {
            Value::Int(i) => T::try_from(*i).map_err(|_| ()),
            _ => Err(()),
        })
        .collect::<Result<_, _>>()
        .map_err(|()| ScenarioError::UnknownValue {
            field: field.into(),
            value: format!("{items:?}"),
            expected: "an array of non-negative integers".into(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip_is_lossless() {
        let spec = TelemetrySpec {
            trace: Some("auto".into()),
            timeline: Some("out/tl.tsv".into()),
            window_ps: 50_000_000_000,
            slo_ttft_ms: 250.0,
            slo_tpot_ms: 40.0,
            requests: vec![1, 2, 3],
            replicas: vec![0],
        };
        let back = TelemetrySpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(back, spec);
        let off = TelemetrySpec::default();
        assert_eq!(TelemetrySpec::from_value(&off.to_value()).unwrap(), off);
        assert!(!off.enabled());
    }

    #[test]
    fn auto_paths_derive_from_the_output_prefix() {
        let spec = TelemetrySpec::auto();
        assert_eq!(spec.trace_path("out/run"), Some("out/run-trace.json".into()));
        assert_eq!(spec.timeline_path("out/run"), Some("out/run-timeline.tsv".into()));
        let pinned = TelemetrySpec { trace: Some("t.json".into()), ..TelemetrySpec::default() };
        assert_eq!(pinned.trace_path("out/run"), Some("t.json".into()));
        assert_eq!(pinned.timeline_path("out/run"), None);
    }

    #[test]
    fn filters_parse_from_comma_lists() {
        let mut spec = TelemetrySpec::default();
        spec.set("requests", "3, 1,2").unwrap();
        assert_eq!(spec.requests, vec![3, 1, 2]);
        spec.set("requests", "none").unwrap();
        assert!(spec.request_filter().is_none());
        assert!(spec.set("requests", "1,x").is_err());
        assert!(matches!(spec.set("windw_ps", "1"), Err(ScenarioError::UnknownKey { .. })));
    }

    #[test]
    fn validate_rejects_degenerate_knobs() {
        let mut spec = TelemetrySpec::auto();
        assert!(spec.validate().is_ok());
        spec.window_ps = 0;
        assert!(spec.validate().is_err());
        spec.window_ps = 1;
        spec.slo_ttft_ms = -1.0;
        assert!(spec.validate().is_err());
    }
}
