//! The three serving shapes behind one value: [`AnySimulator`] and its
//! [`AnyReport`].
//!
//! `Scenario::build` returns an [`AnySimulator`]; callers drive it
//! through the [`Simulate`] trait without caring whether the scenario
//! described a single replica, a routed cluster, or a disaggregated
//! deployment, and the resulting [`AnyReport`] writes the same artifact
//! set the shape's native report writes.

use llmss_cluster::{ClusterReport, ClusterSimulator};
use llmss_core::{
    FleetEngine, FleetReport, ReportOutput, ReuseStats, ServingSimulator, SimEvent, SimReport,
    Simulate, SloSummary, Telemetry,
};
use llmss_disagg::{DisaggReport, DisaggSimulator};
use llmss_sched::{Request, TimePs};

/// A built scenario: one of the three serving shapes, driven uniformly
/// through [`Simulate`].
#[derive(Debug)]
// One AnySimulator exists per run; variant size spread is irrelevant at
// that cardinality and boxing the fleets would tax every step call.
#[allow(clippy::large_enum_variant)]
pub enum AnySimulator {
    /// One unified serving replica (boxed: a `ServingSimulator` is an
    /// order of magnitude larger than the fleet handles).
    Single(Box<ServingSimulator>),
    /// A multi-replica cluster behind a router.
    Cluster(ClusterSimulator),
    /// A disaggregated prefill/decode deployment.
    Disagg(DisaggSimulator),
    /// A `[fleet]` scenario: the fleet engine under an explicit control
    /// plane (static / flex / autoscale), optionally heterogeneous.
    Fleet(FleetEngine),
}

impl AnySimulator {
    /// The shape's short name (`single` | `cluster` | `disagg`).
    pub fn shape(&self) -> &'static str {
        match self {
            AnySimulator::Single(_) => "single",
            AnySimulator::Cluster(_) => "cluster",
            AnySimulator::Disagg(_) => "disagg",
            AnySimulator::Fleet(_) => "fleet",
        }
    }

    /// Runs to completion and finalizes (the common whole-trace run).
    pub fn run(self) -> AnyReport {
        Simulate::run_to_completion(self)
    }

    /// Attaches a telemetry handle to whichever shape this is. The
    /// multi-replica shapes fan it out per replica through their engine;
    /// the single shape scopes it to replica 0 and announces that
    /// replica so the timeline's live-replica series starts at one.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        match self {
            AnySimulator::Single(s) => {
                let scoped = telemetry.for_replica(0);
                scoped.emit(|| SimEvent::ReplicaActivated {
                    t_ps: 0,
                    replica: 0,
                    admit_from_ps: 0,
                });
                s.set_telemetry(scoped);
            }
            AnySimulator::Cluster(s) => s.set_telemetry(telemetry),
            AnySimulator::Disagg(s) => s.set_telemetry(telemetry),
            AnySimulator::Fleet(s) => s.set_telemetry(telemetry),
        }
    }

    /// Sets the worker-thread budget for windowed fleet stepping on the
    /// multi-replica shapes (byte-identical outcomes under any value;
    /// a single replica has nothing to shard, so `Single` ignores it).
    pub fn set_shards(&mut self, shards: usize) {
        match self {
            AnySimulator::Single(_) => {}
            AnySimulator::Cluster(s) => s.set_shards(shards),
            AnySimulator::Disagg(s) => s.set_shards(shards),
            AnySimulator::Fleet(s) => s.set_shards(shards),
        }
    }

    /// Arms the fleet-wide shared reuse cache on the multi-replica
    /// shapes (a single replica has no peer to share with, so `Single`
    /// ignores it).
    pub fn enable_shared_cache(&mut self) {
        match self {
            AnySimulator::Single(_) => {}
            AnySimulator::Cluster(s) => s.enable_shared_cache(),
            AnySimulator::Disagg(s) => s.enable_shared_cache(),
            AnySimulator::Fleet(s) => s.enable_shared_cache(),
        }
    }
}

impl Simulate for AnySimulator {
    type Report = AnyReport;

    fn push_request(&mut self, request: Request) {
        match self {
            AnySimulator::Single(s) => Simulate::push_request(&mut **s, request),
            AnySimulator::Cluster(s) => Simulate::push_request(s, request),
            AnySimulator::Disagg(s) => Simulate::push_request(s, request),
            AnySimulator::Fleet(s) => Simulate::push_request(s, request),
        }
    }

    fn next_ready_ps(&self) -> Option<TimePs> {
        match self {
            AnySimulator::Single(s) => Simulate::next_ready_ps(&**s),
            AnySimulator::Cluster(s) => Simulate::next_ready_ps(s),
            AnySimulator::Disagg(s) => Simulate::next_ready_ps(s),
            AnySimulator::Fleet(s) => Simulate::next_ready_ps(s),
        }
    }

    fn clock_ps(&self) -> TimePs {
        match self {
            AnySimulator::Single(s) => Simulate::clock_ps(&**s),
            AnySimulator::Cluster(s) => Simulate::clock_ps(s),
            AnySimulator::Disagg(s) => Simulate::clock_ps(s),
            AnySimulator::Fleet(s) => Simulate::clock_ps(s),
        }
    }

    fn completed_requests(&self) -> usize {
        match self {
            AnySimulator::Single(s) => Simulate::completed_requests(&**s),
            AnySimulator::Cluster(s) => Simulate::completed_requests(s),
            AnySimulator::Disagg(s) => Simulate::completed_requests(s),
            AnySimulator::Fleet(s) => Simulate::completed_requests(s),
        }
    }

    fn step(&mut self) -> bool {
        match self {
            AnySimulator::Single(s) => Simulate::step(&mut **s),
            AnySimulator::Cluster(s) => Simulate::step(s),
            AnySimulator::Disagg(s) => Simulate::step(s),
            AnySimulator::Fleet(s) => Simulate::step(s),
        }
    }

    fn finalize(self) -> AnyReport {
        match self {
            AnySimulator::Single(s) => AnyReport::Single(Simulate::finalize(*s)),
            AnySimulator::Cluster(s) => AnyReport::Cluster(Simulate::finalize(s)),
            AnySimulator::Disagg(s) => AnyReport::Disagg(Simulate::finalize(s)),
            AnySimulator::Fleet(s) => AnyReport::Fleet(Simulate::finalize(s)),
        }
    }
}

/// The finished report of any serving shape, with the shape's native
/// artifacts and one shared metric surface for sweeps and comparisons.
#[derive(Debug, Clone)]
pub enum AnyReport {
    /// A single-replica [`SimReport`].
    Single(SimReport),
    /// A cluster [`ClusterReport`].
    Cluster(ClusterReport),
    /// A disaggregated [`DisaggReport`].
    Disagg(DisaggReport),
    /// A fleet-engine [`FleetReport`].
    Fleet(FleetReport),
}

impl AnyReport {
    /// The shape's short name (`single` | `cluster` | `disagg`).
    pub fn shape(&self) -> &'static str {
        match self {
            AnyReport::Single(_) => "single",
            AnyReport::Cluster(_) => "cluster",
            AnyReport::Disagg(_) => "disagg",
            AnyReport::Fleet(_) => "fleet",
        }
    }

    /// Requests fully served.
    pub fn total_completions(&self) -> usize {
        match self {
            AnyReport::Single(r) => r.completions.len(),
            AnyReport::Cluster(r) => r.total_completions(),
            AnyReport::Disagg(r) => r.total_completions(),
            AnyReport::Fleet(r) => r.total_completions(),
        }
    }

    /// Simulated time until the last request finished anywhere.
    pub fn makespan_ps(&self) -> TimePs {
        match self {
            AnyReport::Single(r) => r.sim_duration_ps,
            AnyReport::Cluster(r) => r.makespan_ps(),
            AnyReport::Disagg(r) => r.makespan_ps(),
            AnyReport::Fleet(r) => r.makespan_ps(),
        }
    }

    /// Makespan in seconds.
    pub fn makespan_s(&self) -> f64 {
        self.makespan_ps() as f64 / 1e12
    }

    /// Generation throughput in tokens per simulated second.
    pub fn generation_throughput(&self) -> f64 {
        match self {
            AnyReport::Single(r) => r.generation_throughput(),
            AnyReport::Cluster(r) => r.generation_throughput(),
            AnyReport::Disagg(r) => r.generation_throughput(),
            AnyReport::Fleet(r) => r.generation_throughput(),
        }
    }

    /// The standard SLO percentile summaries (TTFT / TPOT / latency).
    pub fn slo(&self) -> SloSummary {
        match self {
            AnyReport::Single(r) => r.slo(),
            AnyReport::Cluster(r) => r.slo(),
            AnyReport::Disagg(r) => r.slo(),
            AnyReport::Fleet(r) => r.slo(),
        }
    }

    /// Merged reuse statistics (operator- and iteration-level, all
    /// replicas).
    pub fn reuse(&self) -> ReuseStats {
        match self {
            AnyReport::Single(r) => r.reuse,
            AnyReport::Cluster(r) => r.aggregate_reuse(),
            AnyReport::Disagg(r) => r.aggregate_reuse(),
            AnyReport::Fleet(r) => r.aggregate_reuse(),
        }
    }

    /// The single-replica report, if this run was one.
    pub fn as_single(&self) -> Option<&SimReport> {
        match self {
            AnyReport::Single(r) => Some(r),
            _ => None,
        }
    }

    /// The cluster report, if this run was one.
    pub fn as_cluster(&self) -> Option<&ClusterReport> {
        match self {
            AnyReport::Cluster(r) => Some(r),
            _ => None,
        }
    }

    /// The disaggregated report, if this run was one.
    pub fn as_disagg(&self) -> Option<&DisaggReport> {
        match self {
            AnyReport::Disagg(r) => Some(r),
            _ => None,
        }
    }

    /// The fleet report, if this run was one.
    pub fn as_fleet(&self) -> Option<&FleetReport> {
        match self {
            AnyReport::Fleet(r) => Some(r),
            _ => None,
        }
    }
}

impl ReportOutput for AnyReport {
    fn summary(&self) -> String {
        match self {
            AnyReport::Single(r) => ReportOutput::summary(r),
            AnyReport::Cluster(r) => ReportOutput::summary(r),
            AnyReport::Disagg(r) => ReportOutput::summary(r),
            AnyReport::Fleet(r) => ReportOutput::summary(r),
        }
    }

    fn artifacts(&self) -> Vec<(&'static str, String)> {
        match self {
            AnyReport::Single(r) => r.artifacts(),
            AnyReport::Cluster(r) => r.artifacts(),
            AnyReport::Disagg(r) => r.artifacts(),
            AnyReport::Fleet(r) => r.artifacts(),
        }
    }
}
