//! The `[fabric]` scenario table: KV-transfer topology and bandwidth
//! sharing as declarative values.
//!
//! A scenario with a `[fabric]` table ships its KV handoffs over a
//! multi-link fabric instead of the single dedicated FIFO wire:
//!
//! ```toml
//! [fabric]
//! topology = "star4"    # single | starN | cliqueN | hierPxQ | explicit
//! sharing = "fair"      # fair (max-min flows) | fifo (legacy, single only)
//! bw_gbps = 64.0        # access/local links (kv_link_gbps when absent)
//! trunk_gbps = 64.0     # star trunk / hier uplinks (bw_gbps when absent)
//! latency_ns = 150.0    # per-link latency (CXL-class when absent)
//!
//! [[fabric.link]]       # explicit graphs: named links + routes
//! name = "a"
//! gbps = 32.0
//!
//! [[fabric.route]]
//! from = 0
//! to = 1
//! path = ["a"]
//! ```
//!
//! Every scalar is reachable as a `fabric.*` key through
//! [`Scenario::set`](crate::Scenario::set), so topology and
//! oversubscription are sweep axes like any other knob.

use llmss_core::{Fabric, FabricGraph, FabricTopology, NamedLink, RouteSpec};
use llmss_net::LinkSpec;
use serde::Value;

use crate::ScenarioError;

/// How concurrent transfers share the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FabricSharing {
    /// Max–min fair sharing: transfers are flows, bandwidth re-divides
    /// at every flow start/finish.
    #[default]
    Fair,
    /// The legacy discipline: one transfer at a time per link, FIFO by
    /// KV-ready order. Only meaningful on the `single` topology, where
    /// it reproduces pre-fabric reports byte-identically.
    Fifo,
}

impl FabricSharing {
    /// The scenario-file spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            FabricSharing::Fair => "fair",
            FabricSharing::Fifo => "fifo",
        }
    }
}

impl std::fmt::Display for FabricSharing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for FabricSharing {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fair" => Ok(FabricSharing::Fair),
            "fifo" => Ok(FabricSharing::Fifo),
            other => Err(format!("unknown fabric sharing '{other}' (expected fair | fifo)")),
        }
    }
}

/// One `[[fabric.link]]` entry of an explicit graph.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricLink {
    /// The link's name (route paths refer to it).
    pub name: String,
    /// Bandwidth in GB/s.
    pub gbps: f64,
    /// Latency in nanoseconds (the table's `latency_ns`, then
    /// CXL-class, when absent).
    pub latency_ns: Option<f64>,
}

/// One `[[fabric.route]]` entry: the link path an ordered replica pair
/// uses. Routes are bidirectional unless the reverse pair declares its
/// own.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricRoute {
    /// Source replica (fleet-global index).
    pub from: usize,
    /// Destination replica (fleet-global index).
    pub to: usize,
    /// Link names, in hop order.
    pub path: Vec<String>,
}

/// The `[fabric]` table: topology selection, sharing discipline, and
/// link parameters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FabricSpec {
    /// Topology name: `single` (default), `star[N]`, `clique[N]`,
    /// `hier[P]x[Q]`, or `explicit` (with `[[fabric.link]]` /
    /// `[[fabric.route]]` entries).
    pub topology: Option<String>,
    /// How concurrent transfers share bandwidth.
    pub sharing: FabricSharing,
    /// Access/local-link bandwidth in GB/s (the scenario's
    /// `kv_link_gbps` when absent).
    pub bw_gbps: Option<f64>,
    /// Per-link latency in nanoseconds (CXL-class when absent).
    pub latency_ns: Option<f64>,
    /// Star-trunk / hier-uplink bandwidth in GB/s (`bw_gbps` when
    /// absent — a star is then `N:1` oversubscribed).
    pub trunk_gbps: Option<f64>,
    /// Explicit-graph links (`[[fabric.link]]`).
    pub links: Vec<FabricLink>,
    /// Explicit-graph routes (`[[fabric.route]]`).
    pub routes: Vec<FabricRoute>,
}

impl FabricSpec {
    /// A fair-sharing fabric of the named topology.
    pub fn named(topology: impl Into<String>) -> Self {
        Self { topology: Some(topology.into()), ..Self::default() }
    }

    /// The effective topology name (`single` when unset).
    pub fn topology_name(&self) -> &str {
        self.topology.as_deref().unwrap_or("single")
    }

    /// Checks the table's own constraints (no endpoint count needed).
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a typed
    /// [`ScenarioError`].
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let invalid = |field: &str, message: String| {
            Err(ScenarioError::InvalidValue { field: field.into(), message })
        };
        let topology = self.topology_name();
        if topology == "explicit" {
            if self.links.is_empty() {
                return invalid(
                    "fabric.topology",
                    "an explicit fabric needs at least one [[fabric.link]]".into(),
                );
            }
        } else {
            if !self.links.is_empty() || !self.routes.is_empty() {
                return invalid(
                    "fabric.topology",
                    format!(
                        "[[fabric.link]]/[[fabric.route]] entries require \
                         topology = \"explicit\", got \"{topology}\""
                    ),
                );
            }
            if let Err(e) = topology.parse::<FabricTopology>() {
                return invalid("fabric.topology", e);
            }
        }
        if self.sharing == FabricSharing::Fifo && topology != "single" {
            return Err(ScenarioError::Conflict {
                message: format!(
                    "sharing = \"fifo\" is the legacy single-wire discipline; it cannot \
                     serialize the \"{topology}\" topology (use sharing = \"fair\")"
                ),
            });
        }
        for (field, value) in
            [("fabric.bw_gbps", self.bw_gbps), ("fabric.trunk_gbps", self.trunk_gbps)]
        {
            if let Some(bw) = value {
                if !bw.is_finite() || bw <= 0.0 {
                    return invalid(
                        field,
                        format!("link bandwidth must be positive, got {bw}"),
                    );
                }
            }
        }
        if let Some(lat) = self.latency_ns {
            if !lat.is_finite() || lat < 0.0 {
                return invalid(
                    "fabric.latency_ns",
                    format!("link latency cannot be negative, got {lat}"),
                );
            }
        }
        for link in &self.links {
            if link.name.is_empty() {
                return invalid("fabric.link.name", "a fabric link needs a name".into());
            }
            if !link.gbps.is_finite() || link.gbps <= 0.0 {
                return invalid(
                    "fabric.link.gbps",
                    format!(
                        "link '{}': bandwidth must be positive, got {}",
                        link.name, link.gbps
                    ),
                );
            }
        }
        Ok(())
    }

    /// Builds the runtime [`Fabric`] over `endpoints` replicas, with the
    /// scenario's `kv_link_gbps` as the bandwidth fallback.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ScenarioError`] for topology/fleet size
    /// mismatches and malformed explicit graphs.
    pub fn build(&self, endpoints: usize, kv_link_gbps: f64) -> Result<Fabric, ScenarioError> {
        self.validate()?;
        let invalid =
            |message: String| ScenarioError::InvalidValue { field: "fabric".into(), message };
        let latency_ns = self.latency_ns.unwrap_or(LinkSpec::cxl().latency_ns);
        let bw = self.bw_gbps.unwrap_or(kv_link_gbps);
        let access = LinkSpec::new(bw, latency_ns);
        if self.sharing == FabricSharing::Fifo {
            // `validate` pinned the topology to `single`: the one
            // dedicated legacy wire.
            return Ok(Fabric::fifo(vec![access]));
        }
        let topology = self.topology_name();
        let graph = if topology == "explicit" {
            let links: Vec<NamedLink> = self
                .links
                .iter()
                .map(|l| {
                    NamedLink::new(
                        l.name.clone(),
                        LinkSpec::new(l.gbps, l.latency_ns.unwrap_or(latency_ns)),
                    )
                })
                .collect();
            let routes: Vec<RouteSpec> = self
                .routes
                .iter()
                .map(|r| RouteSpec { from: r.from, to: r.to, path: r.path.clone() })
                .collect();
            FabricGraph::explicit(endpoints, links, &routes).map_err(invalid)?
        } else {
            let parsed: FabricTopology = topology.parse().map_err(invalid)?;
            let trunk = LinkSpec::new(self.trunk_gbps.unwrap_or(bw), latency_ns);
            FabricGraph::build(&parsed, endpoints, access, trunk).map_err(invalid)?
        };
        Ok(Fabric::fair(topology, graph))
    }

    /// Sets one knob by its serialized sub-key (the `fabric.*` surface
    /// of [`Scenario::set`](crate::Scenario::set) — sweep axes and
    /// `--set`). The link/route lists are not string-addressable.
    pub(crate) fn set(&mut self, key: &str, value: &str) -> Result<(), ScenarioError> {
        fn parse<T: std::str::FromStr>(field: &str, value: &str) -> Result<T, ScenarioError>
        where
            T::Err: std::fmt::Display,
        {
            value.parse().map_err(|e| ScenarioError::UnknownValue {
                field: format!("fabric.{field}"),
                value: value.into(),
                expected: format!("{e}"),
            })
        }
        let opt_f64 = |field: &str, value: &str| -> Result<Option<f64>, ScenarioError> {
            if value == "none" {
                Ok(None)
            } else {
                parse(field, value).map(Some)
            }
        };
        match key {
            "topology" => {
                self.topology = if value == "none" { None } else { Some(value.to_owned()) }
            }
            "sharing" => self.sharing = parse(key, value)?,
            "bw_gbps" => self.bw_gbps = opt_f64(key, value)?,
            "latency_ns" => self.latency_ns = opt_f64(key, value)?,
            "trunk_gbps" => self.trunk_gbps = opt_f64(key, value)?,
            other => return Err(ScenarioError::UnknownKey { key: format!("fabric.{other}") }),
        }
        Ok(())
    }

    /// Renders the table as a value tree in canonical key order.
    pub(crate) fn to_value(&self) -> Value {
        let opt_float = |v: Option<f64>| match v {
            Some(f) => Value::Float(f),
            None => Value::Null,
        };
        Value::Object(vec![
            (
                "topology".into(),
                match &self.topology {
                    Some(t) => Value::Str(t.clone()),
                    None => Value::Null,
                },
            ),
            ("sharing".into(), Value::Str(self.sharing.as_str().into())),
            ("bw_gbps".into(), opt_float(self.bw_gbps)),
            ("latency_ns".into(), opt_float(self.latency_ns)),
            ("trunk_gbps".into(), opt_float(self.trunk_gbps)),
            (
                "link".into(),
                Value::Array(
                    self.links
                        .iter()
                        .map(|l| {
                            Value::Object(vec![
                                ("name".into(), Value::Str(l.name.clone())),
                                ("gbps".into(), Value::Float(l.gbps)),
                                ("latency_ns".into(), opt_float(l.latency_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "route".into(),
                Value::Array(
                    self.routes
                        .iter()
                        .map(|r| {
                            Value::Object(vec![
                                ("from".into(), Value::Int(r.from as i128)),
                                ("to".into(), Value::Int(r.to as i128)),
                                (
                                    "path".into(),
                                    Value::Array(
                                        r.path.iter().map(|p| Value::Str(p.clone())).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuilds the table from a value tree with typed errors.
    pub(crate) fn from_value(v: &Value) -> Result<Self, ScenarioError> {
        let Value::Object(fields) = v else {
            return Err(ScenarioError::Parse {
                message: format!("fabric: expected a table, got {v:?}"),
            });
        };
        let mut spec = FabricSpec::default();
        for (key, value) in fields {
            match key.as_str() {
                "link" => {
                    let Value::Array(items) = value else {
                        return Err(ScenarioError::Parse {
                            message: format!("fabric.link: expected an array, got {value:?}"),
                        });
                    };
                    spec.links = items.iter().map(link_from_value).collect::<Result<_, _>>()?;
                }
                "route" => {
                    let Value::Array(items) = value else {
                        return Err(ScenarioError::Parse {
                            message: format!("fabric.route: expected an array, got {value:?}"),
                        });
                    };
                    spec.routes =
                        items.iter().map(route_from_value).collect::<Result<_, _>>()?;
                }
                _ => {
                    let text = match value {
                        Value::Null => "none".to_owned(),
                        Value::Str(s) => s.clone(),
                        Value::Int(i) => i.to_string(),
                        Value::Float(f) => format!("{f:?}"),
                        Value::Bool(b) => b.to_string(),
                        other => {
                            return Err(ScenarioError::UnknownValue {
                                field: format!("fabric.{key}"),
                                value: format!("{other:?}"),
                                expected: "a scalar".into(),
                            })
                        }
                    };
                    spec.set(key, &text)?;
                }
            }
        }
        Ok(spec)
    }
}

fn link_from_value(v: &Value) -> Result<FabricLink, ScenarioError> {
    let Value::Object(fields) = v else {
        return Err(ScenarioError::Parse {
            message: format!("fabric.link: expected a table, got {v:?}"),
        });
    };
    let bad = |field: &str, v: &Value, expected: &str| ScenarioError::UnknownValue {
        field: format!("fabric.link.{field}"),
        value: format!("{v:?}"),
        expected: expected.into(),
    };
    let mut name = None;
    let mut gbps = None;
    let mut latency_ns = None;
    for (key, v) in fields {
        match key.as_str() {
            "name" => match v {
                Value::Str(s) => name = Some(s.clone()),
                other => return Err(bad("name", other, "a link name")),
            },
            "gbps" => match v {
                Value::Float(f) => gbps = Some(*f),
                Value::Int(i) => gbps = Some(*i as f64),
                other => return Err(bad("gbps", other, "GB/s")),
            },
            "latency_ns" => match v {
                Value::Null => latency_ns = None,
                Value::Float(f) => latency_ns = Some(*f),
                Value::Int(i) => latency_ns = Some(*i as f64),
                other => return Err(bad("latency_ns", other, "nanoseconds")),
            },
            other => {
                return Err(ScenarioError::UnknownKey { key: format!("fabric.link.{other}") })
            }
        }
    }
    let name = name.ok_or_else(|| ScenarioError::InvalidValue {
        field: "fabric.link".into(),
        message: "every [[fabric.link]] needs a name".into(),
    })?;
    let gbps = gbps.ok_or_else(|| ScenarioError::InvalidValue {
        field: "fabric.link".into(),
        message: format!("link '{name}' needs a gbps bandwidth"),
    })?;
    Ok(FabricLink { name, gbps, latency_ns })
}

fn route_from_value(v: &Value) -> Result<FabricRoute, ScenarioError> {
    let Value::Object(fields) = v else {
        return Err(ScenarioError::Parse {
            message: format!("fabric.route: expected a table, got {v:?}"),
        });
    };
    let bad = |field: &str, v: &Value, expected: &str| ScenarioError::UnknownValue {
        field: format!("fabric.route.{field}"),
        value: format!("{v:?}"),
        expected: expected.into(),
    };
    let mut from = None;
    let mut to = None;
    let mut path = Vec::new();
    for (key, v) in fields {
        match key.as_str() {
            "from" => match v {
                Value::Int(i) if *i >= 0 => from = Some(*i as usize),
                other => return Err(bad("from", other, "a replica index")),
            },
            "to" => match v {
                Value::Int(i) if *i >= 0 => to = Some(*i as usize),
                other => return Err(bad("to", other, "a replica index")),
            },
            "path" => match v {
                Value::Array(items) => {
                    path = items
                        .iter()
                        .map(|p| match p {
                            Value::Str(s) => Ok(s.clone()),
                            other => Err(bad("path", other, "link names")),
                        })
                        .collect::<Result<_, _>>()?;
                }
                other => return Err(bad("path", other, "an array of link names")),
            },
            other => {
                return Err(ScenarioError::UnknownKey { key: format!("fabric.route.{other}") })
            }
        }
    }
    let (from, to) = match (from, to) {
        (Some(f), Some(t)) => (f, t),
        _ => {
            return Err(ScenarioError::InvalidValue {
                field: "fabric.route".into(),
                message: "every [[fabric.route]] needs from and to".into(),
            })
        }
    };
    Ok(FabricRoute { from, to, path })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharing_round_trips() {
        for sharing in [FabricSharing::Fair, FabricSharing::Fifo] {
            let parsed: FabricSharing = sharing.as_str().parse().unwrap();
            assert_eq!(parsed, sharing);
        }
        assert!("nope".parse::<FabricSharing>().is_err());
    }

    #[test]
    fn value_round_trip_is_lossless() {
        let spec = FabricSpec {
            topology: Some("explicit".into()),
            sharing: FabricSharing::Fair,
            bw_gbps: Some(32.0),
            latency_ns: None,
            trunk_gbps: None,
            links: vec![FabricLink { name: "a".into(), gbps: 16.0, latency_ns: Some(100.0) }],
            routes: vec![FabricRoute { from: 0, to: 1, path: vec!["a".into()] }],
        };
        let back = FabricSpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(back, spec);
        let named = FabricSpec::named("star4");
        assert_eq!(FabricSpec::from_value(&named.to_value()).unwrap(), named);
    }

    #[test]
    fn unknown_keys_are_schema_drift() {
        let mut spec = FabricSpec::default();
        assert!(matches!(spec.set("topolgy", "star"), Err(ScenarioError::UnknownKey { .. })));
        let v = Value::Object(vec![(
            "link".into(),
            Value::Array(vec![Value::Object(vec![("nme".into(), Value::Str("x".into()))])]),
        )]);
        assert!(matches!(FabricSpec::from_value(&v), Err(ScenarioError::UnknownKey { .. })));
    }

    #[test]
    fn fifo_sharing_requires_the_single_topology() {
        let mut spec = FabricSpec::named("star4");
        spec.sharing = FabricSharing::Fifo;
        assert!(matches!(spec.validate(), Err(ScenarioError::Conflict { .. })));
        let single = FabricSpec { sharing: FabricSharing::Fifo, ..FabricSpec::default() };
        assert!(single.validate().is_ok());
    }

    #[test]
    fn named_topologies_build_over_the_fleet_size() {
        let spec = FabricSpec::named("star");
        let fabric = spec.build(4, 64.0).unwrap();
        assert_eq!(fabric.endpoints(), Some(4));
        let pinned = FabricSpec::named("clique3");
        assert!(pinned.build(4, 64.0).is_err(), "pinned size must match the fleet");
        let bad = FabricSpec::named("ring9");
        assert!(bad.validate().is_err());
    }

    #[test]
    fn explicit_graphs_build_from_lists() {
        let spec = FabricSpec {
            topology: Some("explicit".into()),
            links: vec![FabricLink { name: "a".into(), gbps: 16.0, latency_ns: None }],
            routes: vec![FabricRoute { from: 0, to: 1, path: vec!["a".into()] }],
            ..FabricSpec::default()
        };
        assert!(spec.build(2, 64.0).is_ok());
        let unrouted = FabricSpec {
            routes: vec![FabricRoute { from: 0, to: 5, path: vec!["a".into()] }],
            ..spec
        };
        assert!(unrouted.build(2, 64.0).is_err(), "endpoint outside the fleet");
    }
}
