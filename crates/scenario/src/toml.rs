//! A small TOML codec over the workspace's serde value tree.
//!
//! Scenario files are TOML; the build environment vendors no TOML crate,
//! so this module implements the subset the scenario schema uses —
//! tables (`[workload]`, `[kv_bucket]`, dotted paths), arrays of tables
//! (`[[fleet.replica]]`), bare/dotted keys, basic strings, integers,
//! floats, booleans, single- or multi-line arrays, inline tables, and
//! `#` comments — parsing into the same [`Value`] tree the JSON codec
//! uses, so one `from_value`/`to_value` pair serves both formats.
//!
//! Emission is the inverse: scalars and arrays first, then one `[table]`
//! section per nested object, preserving field order. Objects inside
//! arrays emit as inline tables (`replica = [{ role = "prefill" }]`),
//! which the parser accepts alongside the `[[...]]` form. `Null` values
//! are skipped (TOML has no null; optional scenario fields simply stay
//! absent).

// llmss-lint: allow(p001, file, reason = "codec internals assert parser-guaranteed non-empty key paths")
use serde::Value;

/// Parses TOML text into a [`Value::Object`] tree.
///
/// # Errors
///
/// Returns a line-qualified message on syntax errors, duplicate keys, or
/// constructs outside the supported subset.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut root = Value::Object(Vec::new());
    let mut table_path: Vec<String> = Vec::new();
    // Whether `table_path` addresses the last element of an array of
    // tables (`[[path]]`) instead of a plain table.
    let mut in_array_item = false;
    let mut lines = text.lines().enumerate().peekable();
    while let Some((line_no, raw)) = lines.next() {
        let line = strip_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| format!("TOML line {}: {msg}", line_no + 1);
        if let Some(header) = line.strip_prefix('[') {
            if let Some(aot) = header.strip_prefix('[') {
                // `[[a.b]]`: append a fresh table to the array at a.b.
                let aot = aot
                    .strip_suffix("]]")
                    .ok_or_else(|| err("unterminated array-of-tables header".into()))?;
                table_path = parse_key_path(aot).map_err(&err)?;
                in_array_item = true;
                let (key, parent_path) = table_path.split_last().expect("keys are non-empty");
                let parent = ensure_table(&mut root, parent_path).map_err(&err)?;
                let Value::Object(fields) = parent else {
                    unreachable!("ensure_table returns objects")
                };
                match fields.iter_mut().find(|(k, _)| k == key) {
                    Some((_, Value::Array(items))) => items.push(Value::Object(Vec::new())),
                    Some(_) => {
                        return Err(err(format!(
                            "array-of-tables `{key}` redefines a non-array value"
                        )))
                    }
                    None => fields
                        .push((key.clone(), Value::Array(vec![Value::Object(Vec::new())]))),
                }
                continue;
            }
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| err("unterminated table header".into()))?;
            table_path = parse_key_path(header).map_err(err)?;
            in_array_item = false;
            // Materialize the table so empty sections still round-trip.
            ensure_table(&mut root, &table_path).map_err(err)?;
            continue;
        }
        let (key_text, value_text) = line
            .split_once('=')
            .ok_or_else(|| err("expected `key = value` or `[table]`".into()))?;
        let key_path = parse_key_path(key_text).map_err(&err)?;
        // Multi-line arrays: keep consuming lines until brackets balance.
        let mut value_text = value_text.trim().to_owned();
        while bracket_depth(&value_text) > 0 {
            let Some((_, next)) = lines.next() else {
                return Err(err("unterminated array".into()));
            };
            value_text.push(' ');
            value_text.push_str(strip_comment(next).trim());
        }
        let value = parse_value(value_text.trim()).map_err(&err)?;
        let (key, parent_path) = key_path.split_last().expect("keys are non-empty");
        let section = if in_array_item {
            array_last_item(&mut root, &table_path).map_err(&err)?
        } else {
            ensure_table(&mut root, &table_path).map_err(&err)?
        };
        let table = ensure_table(section, parent_path).map_err(&err)?;
        let Value::Object(fields) = table else { unreachable!("ensure_table returns objects") };
        if fields.iter().any(|(k, _)| k == key) {
            return Err(err(format!("duplicate key `{key}`")));
        }
        fields.push((key.clone(), value));
    }
    Ok(root)
}

/// Walks to the last element of the array of tables at `path` (which
/// must exist — a `[[path]]` header created it).
fn array_last_item<'a>(root: &'a mut Value, path: &[String]) -> Result<&'a mut Value, String> {
    let (key, parent_path) = path.split_last().expect("array paths are non-empty");
    let parent = ensure_table(root, parent_path)?;
    let Value::Object(fields) = parent else { unreachable!("ensure_table returns objects") };
    let Some((_, Value::Array(items))) = fields.iter_mut().find(|(k, _)| k == key) else {
        return Err(format!("`{key}` is not an array of tables"));
    };
    items.last_mut().ok_or_else(|| format!("array of tables `{key}` is empty"))
}

/// Serializes a [`Value::Object`] tree as TOML.
///
/// # Errors
///
/// Returns a message when the value is not an object or contains shapes
/// TOML cannot express (objects inside arrays, non-finite floats).
pub fn emit(value: &Value) -> Result<String, String> {
    let Value::Object(_) = value else {
        return Err("top-level TOML value must be a table".into());
    };
    let mut out = String::new();
    emit_table(value, &mut Vec::new(), &mut out)?;
    Ok(out)
}

/// Removes a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string => {
                escaped = !escaped;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Net `[` depth outside strings (positive: an array continues).
fn bracket_depth(text: &str) -> i32 {
    let mut depth = 0;
    let mut in_string = false;
    let mut escaped = false;
    for c in text.chars() {
        match c {
            '\\' if in_string => {
                escaped = !escaped;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth -= 1,
            _ => {}
        }
        escaped = false;
    }
    depth
}

/// Splits `a.b.c` into path segments (bare or quoted; a quoted segment
/// may itself contain dots — `"fleet.max_replicas" = ...` is one key).
fn parse_key_path(text: &str) -> Result<Vec<String>, String> {
    // Each part carries whether any of it came from inside quotes, so
    // validation is per segment: quoted segments are taken verbatim,
    // bare segments must stick to the bare-key alphabet.
    let mut parts: Vec<(String, bool)> = Vec::new();
    let mut current = String::new();
    let mut quoted = false;
    let mut in_string = false;
    for c in text.chars() {
        match c {
            '"' => {
                in_string = !in_string;
                quoted = true;
            }
            '.' if !in_string => {
                parts.push((std::mem::take(&mut current), quoted));
                quoted = false;
            }
            c => current.push(c),
        }
    }
    if in_string {
        return Err(format!("unterminated key `{text}`"));
    }
    parts.push((current, quoted));
    let mut out = Vec::new();
    for (part, quoted) in parts {
        // Whitespace around a segment (outside any quotes) is
        // insignificant; schema keys never carry significant edge
        // whitespace inside quotes either.
        let part = part.trim();
        if part.is_empty() && !quoted {
            return Err(format!("invalid key `{text}`"));
        }
        if !quoted && !part.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-') {
            return Err(format!("invalid key `{text}`"));
        }
        out.push(part.to_owned());
    }
    Ok(out)
}

/// Walks (creating as needed) to the object at `path`.
fn ensure_table<'a>(root: &'a mut Value, path: &[String]) -> Result<&'a mut Value, String> {
    let mut current = root;
    for key in path {
        let Value::Object(fields) = current else {
            return Err(format!("key `{key}` redefines a non-table value"));
        };
        let idx = match fields.iter().position(|(k, _)| k == key) {
            Some(i) => i,
            None => {
                fields.push((key.clone(), Value::Object(Vec::new())));
                fields.len() - 1
            }
        };
        current = &mut fields[idx].1;
        if !matches!(current, Value::Object(_)) {
            return Err(format!("key `{key}` is not a table"));
        }
    }
    Ok(current)
}

fn parse_value(text: &str) -> Result<Value, String> {
    let mut chars = Cursor { bytes: text.as_bytes(), pos: 0 };
    let value = chars.value()?;
    chars.skip_ws();
    if chars.pos != chars.bytes.len() {
        return Err(format!("trailing characters after value in `{text}`"));
    }
    Ok(value)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek().ok_or("missing value")? {
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.inline_table(),
            b't' | b'f' => self.boolean(),
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).ok_or("bad escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        other => return Err(format!("unknown escape \\{}", *other as char)),
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while !matches!(self.bytes.get(self.pos), None | Some(b'"' | b'\\')) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8 in string")?,
                    );
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.pos += 1; // `[`
        let mut items = Vec::new();
        loop {
            match self.peek().ok_or("unterminated array")? {
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                b',' => self.pos += 1,
                _ => items.push(self.value()?),
            }
        }
    }

    fn inline_table(&mut self) -> Result<Value, String> {
        self.pos += 1; // `{`
        let mut fields: Vec<(String, Value)> = Vec::new();
        loop {
            match self.peek().ok_or("unterminated inline table")? {
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                b',' => self.pos += 1,
                _ => {
                    let start = self.pos;
                    while !matches!(self.bytes.get(self.pos), None | Some(b'=')) {
                        self.pos += 1;
                    }
                    let key = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in key")?
                        .trim()
                        .to_owned();
                    if key.is_empty() {
                        return Err("empty key in inline table".into());
                    }
                    self.pos += 1; // `=`
                    let value = self.value()?;
                    fields.push((key, value));
                }
            }
        }
    }

    fn boolean(&mut self) -> Result<Value, String> {
        for (kw, v) in [("true", true), ("false", false)] {
            if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
                self.pos += kw.len();
                return Ok(Value::Bool(v));
            }
        }
        Err("expected `true` or `false`".into())
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'+' | b'-' | b'_' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text: String = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number")?
            .chars()
            .filter(|&c| c != '_')
            .collect();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| format!("bad float `{text}`: {e}"))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|e| format!("bad integer `{text}`: {e}"))
        }
    }
}

fn emit_table(value: &Value, path: &mut Vec<String>, out: &mut String) -> Result<(), String> {
    let Value::Object(fields) = value else { unreachable!("callers pass objects") };
    let mut tables: Vec<(&String, &Value)> = Vec::new();
    for (key, v) in fields {
        match v {
            // TOML has no null: optional fields are simply absent.
            Value::Null => {}
            Value::Object(_) => tables.push((key, v)),
            other => {
                out.push_str(&emit_key(key));
                out.push_str(" = ");
                emit_inline(other, out)?;
                out.push('\n');
            }
        }
    }
    for (key, table) in tables {
        path.push(key.clone());
        if !out.is_empty() {
            out.push('\n');
        }
        out.push('[');
        out.push_str(&path.iter().map(|k| emit_key(k)).collect::<Vec<_>>().join("."));
        out.push_str("]\n");
        emit_table(table, path, out)?;
        path.pop();
    }
    Ok(())
}

fn emit_key(key: &str) -> String {
    let bare = !key.is_empty()
        && key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if bare {
        key.to_owned()
    } else {
        format!("\"{}\"", key.replace('\\', "\\\\").replace('"', "\\\""))
    }
}

fn emit_inline(value: &Value, out: &mut String) -> Result<(), String> {
    match value {
        Value::Null => return Err("null has no TOML form".into()),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(format!("non-finite float {f} has no TOML form"));
            }
            // `{:?}` keeps a trailing `.0` on integral floats, so the
            // value re-parses as a float — required for losslessness.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                emit_inline(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            // Only reachable inside arrays: emit the inline-table form
            // (`{ k = v, ... }`), which `parse` accepts alongside the
            // `[[...]]` array-of-tables spelling. Nulls stay absent,
            // matching table emission.
            out.push_str("{ ");
            let mut first = true;
            for (key, v) in fields {
                if matches!(v, Value::Null) {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&emit_key(key));
                out.push_str(" = ");
                emit_inline(v, out)?;
            }
            out.push_str(" }");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_tables_and_arrays() {
        let text = r#"
# a scenario-ish document
model = "gpt2"   # trailing comment
npus = 16
rate = 4.5
sub_batch = false
light = [32, 8]

[workload]
kind = "bursty"
heavy = [512, 64]

[deep.nested]
x = 1
"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("model"), Some(&Value::Str("gpt2".into())));
        assert_eq!(v.get("npus"), Some(&Value::Int(16)));
        assert_eq!(v.get("rate"), Some(&Value::Float(4.5)));
        assert_eq!(v.get("sub_batch"), Some(&Value::Bool(false)));
        assert_eq!(v.get("light"), Some(&Value::Array(vec![Value::Int(32), Value::Int(8)])));
        let workload = v.get("workload").unwrap();
        assert_eq!(workload.get("kind"), Some(&Value::Str("bursty".into())));
        assert_eq!(
            v.get("deep").unwrap().get("nested").unwrap().get("x"),
            Some(&Value::Int(1))
        );
    }

    #[test]
    fn parses_multiline_arrays_and_inline_tables() {
        let text = "grid = [\n  1,\n  2, # comment\n  3\n]\npoint = { x = 1, y = \"a\" }\n";
        let v = parse(text).unwrap();
        assert_eq!(
            v.get("grid"),
            Some(&Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(3)]))
        );
        assert_eq!(v.get("point").unwrap().get("y"), Some(&Value::Str("a".into())));
    }

    #[test]
    fn rejects_garbage_with_line_numbers() {
        assert!(parse("= 3").unwrap_err().contains("line 1"));
        assert!(parse("a = ").unwrap_err().contains("line 1"));
        assert!(parse("x = 1\nx = 2").unwrap_err().contains("duplicate"));
        assert!(parse("[[aot]").unwrap_err().contains("unterminated"));
        assert!(parse("x = 1\n[[x]]").unwrap_err().contains("non-array"));
        // A bare segment stays bare-validated even when another segment
        // of the same key is quoted.
        assert!(parse("bad key.\"x\" = 1").unwrap_err().contains("invalid key"));
        assert!(parse("k = [1, 2").unwrap_err().contains("unterminated"));
        assert!(parse("k = 1 2").unwrap_err().contains("trailing"));
    }

    #[test]
    fn emit_then_parse_is_identity() {
        let v = Value::Object(vec![
            ("model".into(), Value::Str("gpt2\"x".into())),
            ("n".into(), Value::Int(-3)),
            ("rate".into(), Value::Float(4.0)),
            ("half".into(), Value::Float(0.5)),
            ("flag".into(), Value::Bool(true)),
            ("skip".into(), Value::Null),
            ("pair".into(), Value::Array(vec![Value::Int(1), Value::Int(2)])),
            (
                "workload".into(),
                Value::Object(vec![("kind".into(), Value::Str("synthetic".into()))]),
            ),
        ]);
        let text = emit(&v).unwrap();
        let back = parse(&text).unwrap();
        // Null is dropped on emit; everything else survives in order.
        assert_eq!(back.get("model"), Some(&Value::Str("gpt2\"x".into())));
        assert_eq!(back.get("n"), Some(&Value::Int(-3)));
        assert_eq!(back.get("rate"), Some(&Value::Float(4.0)));
        assert_eq!(back.get("half"), Some(&Value::Float(0.5)));
        assert_eq!(back.get("flag"), Some(&Value::Bool(true)));
        assert_eq!(back.get("skip"), None);
        assert_eq!(
            back.get("workload").unwrap().get("kind"),
            Some(&Value::Str("synthetic".into()))
        );
        // And the emitted text itself is stable (canonical form).
        assert_eq!(emit(&back).unwrap(), text);
    }

    #[test]
    fn arrays_of_tables_parse_and_round_trip_inline() {
        // Both spellings parse to the same tree...
        let headers = "[fleet]\ncontrol = \"flex\"\n\n[[fleet.replica]]\nrole = \"prefill\"\n\
                       npus = 1\n\n[[fleet.replica]]\nrole = \"decode\"\n";
        let inline = "[fleet]\ncontrol = \"flex\"\nreplica = [{ role = \"prefill\", \
                      npus = 1 }, { role = \"decode\" }]\n";
        let a = parse(headers).unwrap();
        let b = parse(inline).unwrap();
        let fleet = a.get("fleet").unwrap();
        let Some(Value::Array(items)) = fleet.get("replica") else {
            panic!("replica is not an array: {fleet:?}")
        };
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].get("npus"), Some(&Value::Int(1)));
        assert_eq!(items[1].get("role"), Some(&Value::Str("decode".into())));
        // ...modulo field order, which both spellings preserve.
        assert_eq!(
            a.get("fleet").unwrap().get("replica"),
            b.get("fleet").unwrap().get("replica")
        );
        // ...and the emitted canonical (inline) form re-parses identically.
        let text = emit(&a).unwrap();
        assert_eq!(parse(&text).unwrap(), a, "{text}");
    }

    #[test]
    fn strings_with_hashes_and_escapes_survive() {
        let v =
            Value::Object(vec![("s".into(), Value::Str("a # not a comment\t\"q\"".into()))]);
        let text = emit(&v).unwrap();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
    }
}
