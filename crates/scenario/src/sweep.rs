//! Cartesian parameter sweeps over scenarios: one base [`Scenario`], a
//! grid of string-keyed axes, one consolidated TSV row per point.
//!
//! A sweep file is a TOML document with two tables:
//!
//! ```toml
//! [scenario]          # the base scenario (same schema as a scenario file)
//! model = "gpt2"
//! npus = 1
//! parallel = "tensor"
//!
//! [sweep]             # each key is a scenario key, each value a list
//! replicas = [1, 2, 4]
//! routing = ["round-robin", "power-of-two"]
//! ```
//!
//! Axes apply through [`Scenario::set`], so a sweep can touch anything a
//! `--set` override can — including `workload.*` and `fleet.*` sub-keys
//! — and a typo fails with [`ScenarioError::UnknownKey`] before anything
//! runs. Rows follow the `simspeed` harness conventions: label columns
//! first, then the metric columns, dashes (never NaN) for undefined
//! percentiles.
//!
//! Two more `[sweep]` amenities:
//!
//! * `metrics = ["ttft_p99", "tpot_p50", ...]` (or the CLI `--metrics`
//!   override) selects which metric columns the TSV emits instead of
//!   always carrying every column — see [`SweepRow::METRICS`].
//! * Grid points run across threads with
//!   [`run_jobs`](Sweep::run_jobs) (`--jobs N`, default = available
//!   cores); each point is an independent deterministic simulation, and
//!   rows keep grid order by point index, so the parallel TSV is
//!   byte-identical to the serial one.

// llmss-lint: allow(p001, file, reason = "sweep workers never poison locks (rows are plain data) and every grid point is filled by construction")
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use llmss_core::PercentileSummary;
use serde::Value;

use crate::{toml, AnyReport, Scenario, ScenarioError};

/// One sweep dimension: a scenario key and the values it takes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepAxis {
    /// A [`Scenario::set`] key (top-level or `workload.*`).
    pub key: String,
    /// The override values, in grid order.
    pub values: Vec<String>,
}

/// A cartesian sweep: every combination of axis values applied to the
/// base scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// The scenario every point starts from.
    pub base: Scenario,
    /// The grid dimensions, outermost first.
    pub axes: Vec<SweepAxis>,
    /// Metric columns the TSV emits (`None` = every column). Names are
    /// validated against [`SweepRow::METRICS`] before anything runs.
    pub metrics: Option<Vec<String>>,
}

/// One grid point: the settings that produced it and the scenario to
/// run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// `(key, value)` pairs, one per axis, in axis order.
    pub settings: Vec<(String, String)>,
    /// The fully overridden scenario.
    pub scenario: Scenario,
}

impl Sweep {
    /// A sweep over `base` with no axes yet (a single point).
    pub fn new(base: Scenario) -> Self {
        Self { base, axes: Vec::new(), metrics: None }
    }

    /// Adds a grid axis.
    pub fn axis(
        mut self,
        key: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        self.axes.push(SweepAxis {
            key: key.into(),
            values: values.into_iter().map(Into::into).collect(),
        });
        self
    }

    /// Restricts the TSV to the named metric columns (in the given
    /// order). Validated by [`points`](Self::points)/[`run`](Self::run)
    /// against [`SweepRow::METRICS`].
    pub fn metrics(mut self, names: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.metrics = Some(names.into_iter().map(Into::into).collect());
        self
    }

    /// Parses a sweep document (`[scenario]` base + `[sweep]` grid).
    ///
    /// # Errors
    ///
    /// Returns parse errors, schema violations in the base scenario, or
    /// empty/invalid axes.
    pub fn from_toml(text: &str) -> Result<Self, ScenarioError> {
        let value = toml::parse(text).map_err(|message| ScenarioError::Parse { message })?;
        let Value::Object(fields) = &value else { unreachable!("parse returns objects") };
        let mut base = Scenario::default();
        let mut axes = Vec::new();
        let mut metrics = None;
        for (key, v) in fields {
            match key.as_str() {
                "scenario" => base = Scenario::from_value_checked(v)?,
                "sweep" => (axes, metrics) = parse_sweep_table(v)?,
                other => {
                    return Err(ScenarioError::UnknownKey { key: other.into() });
                }
            }
        }
        Ok(Self { base, axes, metrics })
    }

    /// Loads a sweep file from disk.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Io`] when the file cannot be read, plus
    /// everything [`from_toml`](Self::from_toml) returns.
    pub fn from_path(path: &str) -> Result<Self, ScenarioError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::Io { path: path.into(), message: e.to_string() })?;
        Self::from_toml(&text)
    }

    /// Number of grid points (product of axis lengths; 1 with no axes).
    pub fn len(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// Whether the grid is degenerate (an axis with no values).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes every grid point, applying the axis overrides in
    /// order. Fails fast on the first unknown key or bad value — before
    /// anything runs.
    ///
    /// # Errors
    ///
    /// Rejects an empty grid (an axis with no values) and propagates
    /// [`Scenario::set`] errors with the offending point's settings.
    pub fn points(&self) -> Result<Vec<SweepPoint>, ScenarioError> {
        if self.is_empty() {
            return Err(ScenarioError::InvalidValue {
                field: "sweep".into(),
                message: "an axis has no values — the grid is empty".into(),
            });
        }
        if let Some(metrics) = &self.metrics {
            if metrics.is_empty() {
                return Err(ScenarioError::InvalidValue {
                    field: "sweep.metrics".into(),
                    message: "the metric selection is empty — omit it to emit every column"
                        .into(),
                });
            }
            for name in metrics {
                if !SweepRow::METRICS.contains(&name.as_str()) {
                    return Err(ScenarioError::UnknownValue {
                        field: "sweep.metrics".into(),
                        value: name.clone(),
                        expected: format!("one of {}", SweepRow::METRICS.join(" | ")),
                    });
                }
            }
        }
        let mut points = Vec::with_capacity(self.len());
        let mut odometer = vec![0usize; self.axes.len()];
        loop {
            let mut scenario = self.base.clone();
            let mut settings = Vec::with_capacity(self.axes.len());
            for (axis, &idx) in self.axes.iter().zip(&odometer) {
                let value = &axis.values[idx];
                scenario.set(&axis.key, value)?;
                settings.push((axis.key.clone(), value.clone()));
            }
            points.push(SweepPoint { settings, scenario });
            // Advance the odometer, innermost axis fastest.
            let mut i = self.axes.len();
            loop {
                if i == 0 {
                    return Ok(points);
                }
                i -= 1;
                odometer[i] += 1;
                if odometer[i] < self.axes[i].values.len() {
                    break;
                }
                odometer[i] = 0;
            }
        }
    }

    /// Builds and runs every point serially, collecting one row per
    /// point (equivalent to [`run_jobs(1)`](Self::run_jobs)).
    ///
    /// # Errors
    ///
    /// Fails on the first point that does not validate or build; points
    /// already run are discarded (sweeps are cheap to re-run and a
    /// partial grid is a trap in downstream analysis).
    pub fn run(&self) -> Result<SweepReport, ScenarioError> {
        self.run_jobs(1)
    }

    /// Builds and runs every point across `jobs` worker threads.
    ///
    /// Each grid point is an independent, deterministic simulation, so
    /// the only coordination is an atomic cursor over the point list;
    /// rows are collected by point index, making the report — and its
    /// TSV — byte-identical to a serial [`run`](Self::run) regardless of
    /// scheduling. `jobs` is clamped to the number of points; `0` means
    /// the number of available cores.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run); when several points fail, the error
    /// of the lowest-indexed failing point is reported (deterministic).
    pub fn run_jobs(&self, jobs: usize) -> Result<SweepReport, ScenarioError> {
        let points = self.points()?;
        let axes: Vec<String> = self.axes.iter().map(|a| a.key.clone()).collect();
        let jobs = if jobs == 0 { available_jobs() } else { jobs }.min(points.len()).max(1);
        let mut slots: Vec<Option<Result<SweepRow, ScenarioError>>> = Vec::new();
        if jobs == 1 {
            for point in points {
                slots.push(Some(
                    point.scenario.run().map(|r| SweepRow::collect(point.settings, &r)),
                ));
            }
        } else {
            slots.resize_with(points.len(), || None);
            let cursor = AtomicUsize::new(0);
            let results: Vec<Mutex<Option<Result<SweepRow, ScenarioError>>>> =
                slots.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..jobs {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(point) = points.get(i) else { break };
                        let row = point
                            .scenario
                            .run()
                            .map(|r| SweepRow::collect(point.settings.clone(), &r));
                        *results[i].lock().expect("no poisoned sweep slot") = Some(row);
                    });
                }
            });
            slots = results
                .into_iter()
                .map(|m| m.into_inner().expect("no poisoned sweep slot"))
                .collect();
        }
        let mut rows = Vec::with_capacity(slots.len());
        for slot in slots {
            rows.push(slot.expect("every point was run")?);
        }
        Ok(SweepReport { axes, rows, metrics: self.metrics.clone() })
    }
}

/// The number of worker threads `--jobs 0`/default resolves to.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn parse_sweep_table(
    v: &Value,
) -> Result<(Vec<SweepAxis>, Option<Vec<String>>), ScenarioError> {
    let Value::Object(fields) = v else {
        return Err(ScenarioError::Parse {
            message: format!("[sweep] must be a table of value lists, got {v:?}"),
        });
    };
    let mut axes = Vec::with_capacity(fields.len());
    let mut metrics = None;
    for (key, values) in fields {
        let items = match values {
            Value::Array(items) => items.clone(),
            // A bare scalar is a 1-point axis — handy for pinning.
            other => vec![other.clone()],
        };
        let mut texts = Vec::with_capacity(items.len());
        for item in &items {
            texts.push(match item {
                Value::Str(s) => s.clone(),
                Value::Int(i) => i.to_string(),
                Value::Float(f) => format!("{f:?}"),
                Value::Bool(b) => b.to_string(),
                other => {
                    return Err(ScenarioError::Parse {
                        message: format!("sweep axis `{key}`: unsupported value {other:?}"),
                    })
                }
            });
        }
        // `metrics` is the one reserved [sweep] key: a column selection,
        // not a grid axis (it is not a scenario key either, so nothing
        // sweepable is shadowed).
        if key == "metrics" {
            metrics = Some(texts);
        } else {
            axes.push(SweepAxis { key: key.clone(), values: texts });
        }
    }
    Ok((axes, metrics))
}

/// One finished grid point's metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// `(key, value)` settings that produced the point.
    pub settings: Vec<(String, String)>,
    /// The serving shape the point ran as.
    pub shape: &'static str,
    /// Requests fully served.
    pub completions: usize,
    /// Simulated makespan in seconds.
    pub makespan_s: f64,
    /// Generation throughput in tokens per simulated second.
    pub gen_tput: f64,
    /// TTFT percentiles (`None` with zero completions).
    pub ttft: Option<PercentileSummary>,
    /// TPOT percentiles.
    pub tpot: Option<PercentileSummary>,
    /// End-to-end latency percentiles.
    pub latency: Option<PercentileSummary>,
    /// Operator-level reuse hit rate in `[0, 1]`.
    pub op_reuse: f64,
    /// Iteration-level reuse hit rate in `[0, 1]`.
    pub iter_reuse: f64,
}

impl SweepRow {
    /// Every selectable metric column, in the canonical TSV order a
    /// selection-free sweep emits. A `metrics` selection picks any
    /// subset in any order (`shape` is selectable like the rest; omit
    /// it to drop the column).
    pub const METRICS: [&'static str; 15] = [
        "shape",
        "completed",
        "makespan_s",
        "gen_tput",
        "ttft_p50",
        "ttft_p95",
        "ttft_p99",
        "tpot_p50",
        "tpot_p95",
        "tpot_p99",
        "lat_p50",
        "lat_p95",
        "lat_p99",
        "op_reuse",
        "iter_reuse",
    ];

    /// One metric's TSV field (dash, never NaN, for undefined
    /// percentiles).
    ///
    /// # Panics
    ///
    /// Panics on a name outside [`METRICS`](Self::METRICS) — selections
    /// are validated before any point runs.
    pub fn metric_value(&self, name: &str) -> String {
        let pct = |summary: Option<PercentileSummary>, pick: fn(&PercentileSummary) -> f64| {
            summary.map_or_else(|| "-".into(), |s| format!("{:.4}", pick(&s)))
        };
        match name {
            "shape" => self.shape.to_owned(),
            "completed" => self.completions.to_string(),
            "makespan_s" => format!("{:.4}", self.makespan_s),
            "gen_tput" => format!("{:.2}", self.gen_tput),
            "ttft_p50" => pct(self.ttft, |s| s.p50_s),
            "ttft_p95" => pct(self.ttft, |s| s.p95_s),
            "ttft_p99" => pct(self.ttft, |s| s.p99_s),
            "tpot_p50" => pct(self.tpot, |s| s.p50_s),
            "tpot_p95" => pct(self.tpot, |s| s.p95_s),
            "tpot_p99" => pct(self.tpot, |s| s.p99_s),
            "lat_p50" => pct(self.latency, |s| s.p50_s),
            "lat_p95" => pct(self.latency, |s| s.p95_s),
            "lat_p99" => pct(self.latency, |s| s.p99_s),
            "op_reuse" => format!("{:.4}", self.op_reuse),
            "iter_reuse" => format!("{:.4}", self.iter_reuse),
            other => unreachable!("unvalidated metric name `{other}`"),
        }
    }

    fn collect(settings: Vec<(String, String)>, report: &AnyReport) -> Self {
        let slo = report.slo();
        let reuse = report.reuse();
        Self {
            settings,
            shape: report.shape(),
            completions: report.total_completions(),
            makespan_s: report.makespan_s(),
            gen_tput: report.generation_throughput(),
            ttft: slo.ttft,
            tpot: slo.tpot,
            latency: slo.latency,
            op_reuse: reuse.hit_rate(),
            iter_reuse: reuse.iteration_hit_rate(),
        }
    }
}

/// The consolidated result of a sweep: one row per grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Axis keys, in column order.
    pub axes: Vec<String>,
    /// One row per point, grid order (innermost axis fastest).
    pub rows: Vec<SweepRow>,
    /// The metric selection the TSV honors (`None` = every column).
    pub metrics: Option<Vec<String>>,
}

impl SweepReport {
    /// The metric columns the TSV emits: the selection, or every column
    /// (`shape` first) without one.
    fn columns(&self) -> Vec<&str> {
        match &self.metrics {
            Some(names) => names.iter().map(String::as_str).collect(),
            None => SweepRow::METRICS.to_vec(),
        }
    }

    /// The consolidated TSV: `point`, one column per axis, then the
    /// selected metric columns (dashes for undefined percentiles, never
    /// NaN).
    pub fn to_tsv(&self) -> String {
        let columns = self.columns();
        let mut out = String::from("point");
        for axis in &self.axes {
            out.push('\t');
            out.push_str(axis);
        }
        for column in &columns {
            out.push('\t');
            out.push_str(column);
        }
        out.push('\n');
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&i.to_string());
            for (_, value) in &row.settings {
                out.push('\t');
                out.push_str(value);
            }
            for column in &columns {
                out.push('\t');
                out.push_str(&row.metric_value(column));
            }
            out.push('\n');
        }
        out
    }

    /// A short human summary of the grid.
    pub fn summary(&self) -> String {
        format!("sweep: {} points over [{}]", self.rows.len(), self.axes.join(", "),)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmss_sched::{Dataset, WorkloadSpec};

    fn base() -> Scenario {
        Scenario::model("gpt2").npus(1).tensor_parallel().workload(WorkloadSpec::Synthetic {
            dataset: Dataset::Alpaca,
            requests: 4,
            rate_per_s: 50.0,
            seed: 11,
        })
    }

    #[test]
    fn cartesian_points_enumerate_in_odometer_order() {
        let sweep = Sweep::new(base())
            .axis("replicas", ["1", "2"])
            .axis("routing", ["round-robin", "sticky"]);
        assert_eq!(sweep.len(), 4);
        let points = sweep.points().unwrap();
        let labels: Vec<String> = points
            .iter()
            .map(|p| p.settings.iter().map(|(_, v)| v.clone()).collect::<Vec<_>>().join("/"))
            .collect();
        assert_eq!(labels, ["1/round-robin", "1/sticky", "2/round-robin", "2/sticky"]);
        assert_eq!(points[2].scenario.replicas, 2);
    }

    #[test]
    fn no_axes_is_one_point() {
        let sweep = Sweep::new(base());
        assert_eq!(sweep.len(), 1);
        let report = sweep.run().unwrap();
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].completions, 4);
    }

    #[test]
    fn bad_axis_key_fails_before_running() {
        let sweep = Sweep::new(base()).axis("replcas", ["1"]);
        assert!(matches!(sweep.points(), Err(ScenarioError::UnknownKey { .. })));
    }

    #[test]
    fn empty_axis_is_rejected() {
        let sweep = Sweep::new(base()).axis("replicas", Vec::<String>::new());
        assert!(sweep.is_empty());
        // Both entry points return the typed error — points() must not
        // panic on the empty axis.
        assert!(matches!(sweep.points(), Err(ScenarioError::InvalidValue { .. })));
        assert!(matches!(sweep.run(), Err(ScenarioError::InvalidValue { .. })));
    }

    #[test]
    fn sweep_runs_grid_and_emits_tsv() {
        let report = Sweep::new(base())
            .axis("replicas", ["1", "2"])
            .axis("kv_bucket", ["1", "64"])
            .run()
            .unwrap();
        assert_eq!(report.rows.len(), 4);
        let tsv = report.to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 5, "{tsv}");
        assert!(lines[0].starts_with("point\treplicas\tkv_bucket\tshape"));
        assert!(!tsv.contains("NaN"));
        // Every point served the full trace.
        for row in &report.rows {
            assert_eq!(row.completions, 4);
        }
        assert!(report.summary().contains("4 points"));
    }

    #[test]
    fn sweep_file_round_trip() {
        let text = r#"
[scenario]
model = "gpt2"
npus = 1
parallel = "tensor"

[scenario.workload]
kind = "synthetic"
requests = 4
rate = 50.0
seed = 11

[sweep]
replicas = [1, 2]
routing = ["round-robin", "sticky"]
"#;
        let sweep = Sweep::from_toml(text).unwrap();
        assert_eq!(sweep.base.model, "gpt2");
        assert_eq!(sweep.len(), 4);
        assert_eq!(sweep.axes[0].key, "replicas");
        assert_eq!(sweep.axes[1].values, ["round-robin", "sticky"]);
        // An unknown top-level table is schema drift.
        assert!(matches!(
            Sweep::from_toml("[scnario]\nmodel = \"gpt2\"\n"),
            Err(ScenarioError::UnknownKey { .. })
        ));
    }
}
