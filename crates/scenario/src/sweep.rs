//! Cartesian parameter sweeps over scenarios: one base [`Scenario`], a
//! grid of string-keyed axes, one consolidated TSV row per point.
//!
//! A sweep file is a TOML document with two tables:
//!
//! ```toml
//! [scenario]          # the base scenario (same schema as a scenario file)
//! model = "gpt2"
//! npus = 1
//! parallel = "tensor"
//!
//! [sweep]             # each key is a scenario key, each value a list
//! replicas = [1, 2, 4]
//! routing = ["round-robin", "power-of-two"]
//! ```
//!
//! Axes apply through [`Scenario::set`], so a sweep can touch anything a
//! `--set` override can — including `workload.*` sub-keys — and a typo
//! fails with [`ScenarioError::UnknownKey`] before anything runs. Rows
//! follow the `simspeed` harness conventions: label columns first, then
//! the metric columns, dashes (never NaN) for undefined percentiles.

use llmss_core::PercentileSummary;
use serde::Value;

use crate::{toml, AnyReport, Scenario, ScenarioError};

/// One sweep dimension: a scenario key and the values it takes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepAxis {
    /// A [`Scenario::set`] key (top-level or `workload.*`).
    pub key: String,
    /// The override values, in grid order.
    pub values: Vec<String>,
}

/// A cartesian sweep: every combination of axis values applied to the
/// base scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// The scenario every point starts from.
    pub base: Scenario,
    /// The grid dimensions, outermost first.
    pub axes: Vec<SweepAxis>,
}

/// One grid point: the settings that produced it and the scenario to
/// run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// `(key, value)` pairs, one per axis, in axis order.
    pub settings: Vec<(String, String)>,
    /// The fully overridden scenario.
    pub scenario: Scenario,
}

impl Sweep {
    /// A sweep over `base` with no axes yet (a single point).
    pub fn new(base: Scenario) -> Self {
        Self { base, axes: Vec::new() }
    }

    /// Adds a grid axis.
    pub fn axis(
        mut self,
        key: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        self.axes.push(SweepAxis {
            key: key.into(),
            values: values.into_iter().map(Into::into).collect(),
        });
        self
    }

    /// Parses a sweep document (`[scenario]` base + `[sweep]` grid).
    ///
    /// # Errors
    ///
    /// Returns parse errors, schema violations in the base scenario, or
    /// empty/invalid axes.
    pub fn from_toml(text: &str) -> Result<Self, ScenarioError> {
        let value = toml::parse(text).map_err(|message| ScenarioError::Parse { message })?;
        let Value::Object(fields) = &value else { unreachable!("parse returns objects") };
        let mut base = Scenario::default();
        let mut axes = Vec::new();
        for (key, v) in fields {
            match key.as_str() {
                "scenario" => base = Scenario::from_value_checked(v)?,
                "sweep" => axes = parse_axes(v)?,
                other => {
                    return Err(ScenarioError::UnknownKey { key: other.into() });
                }
            }
        }
        Ok(Self { base, axes })
    }

    /// Loads a sweep file from disk.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Io`] when the file cannot be read, plus
    /// everything [`from_toml`](Self::from_toml) returns.
    pub fn from_path(path: &str) -> Result<Self, ScenarioError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::Io { path: path.into(), message: e.to_string() })?;
        Self::from_toml(&text)
    }

    /// Number of grid points (product of axis lengths; 1 with no axes).
    pub fn len(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// Whether the grid is degenerate (an axis with no values).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes every grid point, applying the axis overrides in
    /// order. Fails fast on the first unknown key or bad value — before
    /// anything runs.
    ///
    /// # Errors
    ///
    /// Rejects an empty grid (an axis with no values) and propagates
    /// [`Scenario::set`] errors with the offending point's settings.
    pub fn points(&self) -> Result<Vec<SweepPoint>, ScenarioError> {
        if self.is_empty() {
            return Err(ScenarioError::InvalidValue {
                field: "sweep".into(),
                message: "an axis has no values — the grid is empty".into(),
            });
        }
        let mut points = Vec::with_capacity(self.len());
        let mut odometer = vec![0usize; self.axes.len()];
        loop {
            let mut scenario = self.base.clone();
            let mut settings = Vec::with_capacity(self.axes.len());
            for (axis, &idx) in self.axes.iter().zip(&odometer) {
                let value = &axis.values[idx];
                scenario.set(&axis.key, value)?;
                settings.push((axis.key.clone(), value.clone()));
            }
            points.push(SweepPoint { settings, scenario });
            // Advance the odometer, innermost axis fastest.
            let mut i = self.axes.len();
            loop {
                if i == 0 {
                    return Ok(points);
                }
                i -= 1;
                odometer[i] += 1;
                if odometer[i] < self.axes[i].values.len() {
                    break;
                }
                odometer[i] = 0;
            }
        }
    }

    /// Builds and runs every point, collecting one row per point.
    ///
    /// # Errors
    ///
    /// Fails on the first point that does not validate or build; points
    /// already run are discarded (sweeps are cheap to re-run and a
    /// partial grid is a trap in downstream analysis).
    pub fn run(&self) -> Result<SweepReport, ScenarioError> {
        let points = self.points()?;
        let mut rows = Vec::with_capacity(points.len());
        for point in points {
            let report = point.scenario.run()?;
            rows.push(SweepRow::collect(point.settings, &report));
        }
        Ok(SweepReport { axes: self.axes.iter().map(|a| a.key.clone()).collect(), rows })
    }
}

fn parse_axes(v: &Value) -> Result<Vec<SweepAxis>, ScenarioError> {
    let Value::Object(fields) = v else {
        return Err(ScenarioError::Parse {
            message: format!("[sweep] must be a table of value lists, got {v:?}"),
        });
    };
    let mut axes = Vec::with_capacity(fields.len());
    for (key, values) in fields {
        let items = match values {
            Value::Array(items) => items.clone(),
            // A bare scalar is a 1-point axis — handy for pinning.
            other => vec![other.clone()],
        };
        let mut axis_values = Vec::with_capacity(items.len());
        for item in &items {
            axis_values.push(match item {
                Value::Str(s) => s.clone(),
                Value::Int(i) => i.to_string(),
                Value::Float(f) => format!("{f:?}"),
                Value::Bool(b) => b.to_string(),
                other => {
                    return Err(ScenarioError::Parse {
                        message: format!("sweep axis `{key}`: unsupported value {other:?}"),
                    })
                }
            });
        }
        axes.push(SweepAxis { key: key.clone(), values: axis_values });
    }
    Ok(axes)
}

/// One finished grid point's metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// `(key, value)` settings that produced the point.
    pub settings: Vec<(String, String)>,
    /// The serving shape the point ran as.
    pub shape: &'static str,
    /// Requests fully served.
    pub completions: usize,
    /// Simulated makespan in seconds.
    pub makespan_s: f64,
    /// Generation throughput in tokens per simulated second.
    pub gen_tput: f64,
    /// TTFT percentiles (`None` with zero completions).
    pub ttft: Option<PercentileSummary>,
    /// TPOT percentiles.
    pub tpot: Option<PercentileSummary>,
    /// End-to-end latency percentiles.
    pub latency: Option<PercentileSummary>,
    /// Operator-level reuse hit rate in `[0, 1]`.
    pub op_reuse: f64,
    /// Iteration-level reuse hit rate in `[0, 1]`.
    pub iter_reuse: f64,
}

impl SweepRow {
    fn collect(settings: Vec<(String, String)>, report: &AnyReport) -> Self {
        let slo = report.slo();
        let reuse = report.reuse();
        Self {
            settings,
            shape: report.shape(),
            completions: report.total_completions(),
            makespan_s: report.makespan_s(),
            gen_tput: report.generation_throughput(),
            ttft: slo.ttft,
            tpot: slo.tpot,
            latency: slo.latency,
            op_reuse: reuse.hit_rate(),
            iter_reuse: reuse.iteration_hit_rate(),
        }
    }
}

/// The consolidated result of a sweep: one row per grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Axis keys, in column order.
    pub axes: Vec<String>,
    /// One row per point, grid order (innermost axis fastest).
    pub rows: Vec<SweepRow>,
}

impl SweepReport {
    /// The consolidated TSV: `point`, one column per axis, then the
    /// metric columns (dashes for undefined percentiles, never NaN).
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("point");
        for axis in &self.axes {
            out.push('\t');
            out.push_str(axis);
        }
        out.push_str(
            "\tshape\tcompleted\tmakespan_s\tgen_tput\
             \tttft_p50\tttft_p95\tttft_p99\
             \ttpot_p50\ttpot_p95\ttpot_p99\
             \tlat_p50\tlat_p95\tlat_p99\top_reuse\titer_reuse\n",
        );
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&i.to_string());
            for (_, value) in &row.settings {
                out.push('\t');
                out.push_str(value);
            }
            out.push_str(&format!(
                "\t{}\t{}\t{:.4}\t{:.2}\t{}\t{}\t{}\t{:.4}\t{:.4}\n",
                row.shape,
                row.completions,
                row.makespan_s,
                row.gen_tput,
                PercentileSummary::tsv_fields_or_dashes(row.ttft),
                PercentileSummary::tsv_fields_or_dashes(row.tpot),
                PercentileSummary::tsv_fields_or_dashes(row.latency),
                row.op_reuse,
                row.iter_reuse,
            ));
        }
        out
    }

    /// A short human summary of the grid.
    pub fn summary(&self) -> String {
        format!("sweep: {} points over [{}]", self.rows.len(), self.axes.join(", "),)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmss_sched::{Dataset, WorkloadSpec};

    fn base() -> Scenario {
        Scenario::model("gpt2").npus(1).tensor_parallel().workload(WorkloadSpec::Synthetic {
            dataset: Dataset::Alpaca,
            requests: 4,
            rate_per_s: 50.0,
            seed: 11,
        })
    }

    #[test]
    fn cartesian_points_enumerate_in_odometer_order() {
        let sweep = Sweep::new(base())
            .axis("replicas", ["1", "2"])
            .axis("routing", ["round-robin", "sticky"]);
        assert_eq!(sweep.len(), 4);
        let points = sweep.points().unwrap();
        let labels: Vec<String> = points
            .iter()
            .map(|p| p.settings.iter().map(|(_, v)| v.clone()).collect::<Vec<_>>().join("/"))
            .collect();
        assert_eq!(labels, ["1/round-robin", "1/sticky", "2/round-robin", "2/sticky"]);
        assert_eq!(points[2].scenario.replicas, 2);
    }

    #[test]
    fn no_axes_is_one_point() {
        let sweep = Sweep::new(base());
        assert_eq!(sweep.len(), 1);
        let report = sweep.run().unwrap();
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].completions, 4);
    }

    #[test]
    fn bad_axis_key_fails_before_running() {
        let sweep = Sweep::new(base()).axis("replcas", ["1"]);
        assert!(matches!(sweep.points(), Err(ScenarioError::UnknownKey { .. })));
    }

    #[test]
    fn empty_axis_is_rejected() {
        let sweep = Sweep::new(base()).axis("replicas", Vec::<String>::new());
        assert!(sweep.is_empty());
        // Both entry points return the typed error — points() must not
        // panic on the empty axis.
        assert!(matches!(sweep.points(), Err(ScenarioError::InvalidValue { .. })));
        assert!(matches!(sweep.run(), Err(ScenarioError::InvalidValue { .. })));
    }

    #[test]
    fn sweep_runs_grid_and_emits_tsv() {
        let report = Sweep::new(base())
            .axis("replicas", ["1", "2"])
            .axis("kv_bucket", ["1", "64"])
            .run()
            .unwrap();
        assert_eq!(report.rows.len(), 4);
        let tsv = report.to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 5, "{tsv}");
        assert!(lines[0].starts_with("point\treplicas\tkv_bucket\tshape"));
        assert!(!tsv.contains("NaN"));
        // Every point served the full trace.
        for row in &report.rows {
            assert_eq!(row.completions, 4);
        }
        assert!(report.summary().contains("4 points"));
    }

    #[test]
    fn sweep_file_round_trip() {
        let text = r#"
[scenario]
model = "gpt2"
npus = 1
parallel = "tensor"

[scenario.workload]
kind = "synthetic"
requests = 4
rate = 50.0
seed = 11

[sweep]
replicas = [1, 2]
routing = ["round-robin", "sticky"]
"#;
        let sweep = Sweep::from_toml(text).unwrap();
        assert_eq!(sweep.base.model, "gpt2");
        assert_eq!(sweep.len(), 4);
        assert_eq!(sweep.axes[0].key, "replicas");
        assert_eq!(sweep.axes[1].values, ["round-robin", "sticky"]);
        // An unknown top-level table is schema drift.
        assert!(matches!(
            Sweep::from_toml("[scnario]\nmodel = \"gpt2\"\n"),
            Err(ScenarioError::UnknownKey { .. })
        ));
    }
}
