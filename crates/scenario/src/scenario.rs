//! The [`Scenario`] builder: one typed, declarative description of a
//! serving experiment, validated at build time.

// llmss-lint: allow(p001, file, reason = "emit paths assert invariants established by validate(); serializing a validated scenario is infallible")
use llmss_cluster::{ClusterConfig, ClusterSimulator, RoutingPolicyKind};
use llmss_core::{
    AutoscaleConfig, AutoscaleControl, ControlPlane, FleetEngine, FlexPools, FlexPoolsConfig,
    KvBucket, KvManage, ParallelismKind, PimMode, ReplicaRole, ServingSimulator, SimConfig,
    StaticControl,
};
use llmss_disagg::{DisaggConfig, DisaggSimulator, PairingPolicyKind};
use llmss_model::ModelSpec;
use llmss_net::LinkSpec;
use llmss_sched::{Request, SchedulingPolicy, TimePs, Workload, WorkloadSpec};
use serde::{Deserialize, Error, Serialize, Value};

use crate::{
    toml, AnyReport, AnySimulator, ChaosSpec, FabricSpec, FleetControlKind, FleetSpec,
    ScenarioError, TelemetrySpec,
};

/// The serving shape a scenario describes, derived from its
/// `replicas`/`disagg` fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingShape {
    /// One unified replica.
    Single,
    /// `replicas` unified replicas behind a router.
    Cluster {
        /// Fleet size (>= 2 in this shape).
        replicas: usize,
    },
    /// A disaggregated prefill/decode deployment.
    Disagg {
        /// Prefill-pool size.
        prefill: usize,
        /// Decode-pool size.
        decode: usize,
    },
    /// A `[fleet]` scenario: the fleet engine with an explicit control
    /// plane (static, flexing, or autoscaling) and optionally a
    /// heterogeneous per-replica config list.
    Fleet {
        /// Initial fleet size.
        replicas: usize,
        /// The control plane driving the fleet.
        control: FleetControlKind,
    },
}

impl std::fmt::Display for ServingShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServingShape::Single => write!(f, "single"),
            ServingShape::Cluster { replicas } => write!(f, "cluster x{replicas}"),
            ServingShape::Disagg { prefill, decode } => {
                write!(f, "disagg {prefill}P x {decode}D")
            }
            ServingShape::Fleet { replicas, control } => {
                write!(f, "fleet x{replicas} ({control})")
            }
        }
    }
}

/// One serving experiment, declaratively: model, hardware shape, serving
/// technique knobs, and workload — the whole surface the CLI flags,
/// scenario files, and sweep grids share.
///
/// `Scenario` is a plain value with a chainable builder; nothing is
/// checked until [`build`](Self::build), which validates every
/// cross-field constraint and returns a typed [`ScenarioError`] instead
/// of panicking deep inside a simulator.
///
/// # Examples
///
/// ```no_run
/// use llmss_scenario::Scenario;
/// use llmss_cluster::RoutingPolicyKind;
/// use llmss_sched::{BurstyTraceSpec, WorkloadSpec};
///
/// let report = Scenario::model("gpt2")
///     .npus(1)
///     .tensor_parallel()
///     .replicas(4)
///     .routing(RoutingPolicyKind::PowerOfTwoChoices)
///     .workload(WorkloadSpec::from(BurstyTraceSpec::default()))
///     .run()?;
/// assert_eq!(report.total_completions(), 200);
/// # Ok::<(), llmss_scenario::ScenarioError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Model name (see [`ModelSpec::by_name`]).
    pub model: String,
    /// NPUs per replica.
    pub npus: usize,
    /// Maximum batch size (0 = unlimited).
    pub max_batch: usize,
    /// Batching delay in milliseconds.
    pub batch_delay_ms: f64,
    /// Scheduling policy (`orca` iteration-level or `request`-level).
    pub scheduling: SchedulingPolicy,
    /// Parallelism strategy.
    pub parallel: ParallelismKind,
    /// Pipeline-stage count for hybrid parallelism.
    pub npu_group: usize,
    /// Per-NPU memory override in GiB.
    pub npu_mem_gib: Option<f64>,
    /// KV-cache management scheme.
    pub kv_manage: KvManage,
    /// PIM participation.
    pub pim: PimMode,
    /// PIM-pool size when `pim` is `Pool` (default: `npus`).
    pub pim_pool_size: Option<usize>,
    /// NeuPIMs-style sub-batch interleaving.
    pub sub_batch: bool,
    /// Computation-reuse caches.
    pub reuse: bool,
    /// Whole-iteration outcome memoization.
    pub iteration_memo: bool,
    /// KV-bucket policy for iteration memoization (fixed or adaptive).
    pub kv_bucket: KvBucket,
    /// Skip the initiation phase (prompts modeled as pre-cached).
    pub gen_only: bool,
    /// Seed for routing/pairing policies (and, when set through the
    /// string-override surface, the workload generator).
    pub seed: u64,
    /// Path to an NPU hardware-config JSON (Table-I defaults when
    /// absent).
    pub network: Option<String>,
    /// Serving replicas (>= 2 selects the cluster shape).
    pub replicas: usize,
    /// Front-end routing policy.
    pub routing: RoutingPolicyKind,
    /// `(prefill, decode)` pool sizes; `Some` selects the disaggregated
    /// shape.
    pub disagg: Option<(usize, usize)>,
    /// Inter-pool KV-link bandwidth in GB/s (disaggregated shape).
    pub kv_link_gbps: f64,
    /// Decode-replica pairing policy (disaggregated shape).
    pub pairing: PairingPolicyKind,
    /// The `[fleet]` table: control plane and per-replica config list;
    /// `Some` selects the fleet shape.
    pub fleet: Option<FleetSpec>,
    /// The `[fabric]` table: KV-transfer topology and sharing
    /// discipline; `None` keeps the legacy dedicated FIFO wire.
    pub fabric: Option<FabricSpec>,
    /// The `[telemetry]` table: lifecycle tracing and windowed metrics;
    /// `None` records nothing (the zero-cost default path).
    pub telemetry: Option<TelemetrySpec>,
    /// The `[chaos]` table: deterministic fault injection (fleet shape
    /// only); `None` — or a table that injects nothing — keeps the run
    /// byte-identical to a chaos-free one.
    pub chaos: Option<ChaosSpec>,
    /// The traffic source.
    pub workload: WorkloadSpec,
}

impl Default for Scenario {
    /// Mirrors the artifact CLI's defaults exactly, so a flagless legacy
    /// invocation and an empty scenario file describe the same run.
    fn default() -> Self {
        Self {
            model: "gpt2".into(),
            npus: 16,
            max_batch: 0,
            batch_delay_ms: 0.0,
            scheduling: SchedulingPolicy::IterationLevel,
            parallel: ParallelismKind::Hybrid,
            npu_group: 1,
            npu_mem_gib: None,
            kv_manage: KvManage::Vllm,
            pim: PimMode::None,
            pim_pool_size: None,
            sub_batch: false,
            reuse: true,
            iteration_memo: true,
            kv_bucket: KvBucket::exact(),
            gen_only: false,
            seed: 42,
            network: None,
            replicas: 1,
            routing: RoutingPolicyKind::RoundRobin,
            disagg: None,
            kv_link_gbps: 128.0,
            pairing: PairingPolicyKind::LeastKvLoad,
            fleet: None,
            fabric: None,
            telemetry: None,
            chaos: None,
            workload: WorkloadSpec::default(),
        }
    }
}

impl Scenario {
    /// Every top-level scenario key, in canonical file order. `set`,
    /// the file codecs, and sweep axes all speak exactly this schema
    /// (plus `workload.*` sub-keys).
    pub const KEYS: [&'static str; 28] = [
        "model",
        "npus",
        "max_batch",
        "batch_delay_ms",
        "scheduling",
        "parallel",
        "npu_group",
        "npu_mem_gib",
        "kv_manage",
        "pim",
        "pim_pool_size",
        "sub_batch",
        "reuse",
        "iteration_memo",
        "gen_only",
        "seed",
        "network",
        "replicas",
        "routing",
        "disagg",
        "kv_link_gbps",
        "pairing",
        "kv_bucket",
        "fleet",
        "fabric",
        "telemetry",
        "chaos",
        "workload",
    ];

    /// Starts a scenario for `model` with the artifact defaults.
    pub fn model(name: impl Into<String>) -> Self {
        Self { model: name.into(), ..Self::default() }
    }

    /// Sets the number of NPUs per replica.
    pub fn npus(mut self, n: usize) -> Self {
        self.npus = n;
        self
    }

    /// Caps the batch size (0 = unlimited).
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n;
        self
    }

    /// Sets the batching delay in milliseconds.
    pub fn batch_delay_ms(mut self, ms: f64) -> Self {
        self.batch_delay_ms = ms;
        self
    }

    /// Sets the scheduling policy.
    pub fn scheduling(mut self, policy: SchedulingPolicy) -> Self {
        self.scheduling = policy;
        self
    }

    /// Uses pure tensor parallelism.
    pub fn tensor_parallel(mut self) -> Self {
        self.parallel = ParallelismKind::Tensor;
        self
    }

    /// Uses pure pipeline parallelism.
    pub fn pipeline_parallel(mut self) -> Self {
        self.parallel = ParallelismKind::Pipeline;
        self
    }

    /// Uses hybrid parallelism with `groups` pipeline stages.
    pub fn hybrid_parallel(mut self, groups: usize) -> Self {
        self.parallel = ParallelismKind::Hybrid;
        self.npu_group = groups;
        self
    }

    /// Overrides per-NPU memory in GiB.
    pub fn npu_mem_gib(mut self, gib: f64) -> Self {
        self.npu_mem_gib = Some(gib);
        self
    }

    /// Uses max-length KV preallocation instead of paging.
    pub fn kv_max_len(mut self) -> Self {
        self.kv_manage = KvManage::MaxLen;
        self
    }

    /// Attaches a local PIM to every NPU.
    pub fn pim_local(mut self) -> Self {
        self.pim = PimMode::Local;
        self
    }

    /// Adds a PIM pool of `n` devices.
    pub fn pim_pool(mut self, n: usize) -> Self {
        self.pim = PimMode::Pool;
        self.pim_pool_size = Some(n);
        self
    }

    /// Enables NeuPIMs-style sub-batch interleaving.
    pub fn sub_batch(mut self, enabled: bool) -> Self {
        self.sub_batch = enabled;
        self
    }

    /// Enables or disables the computation-reuse caches.
    pub fn reuse(mut self, enabled: bool) -> Self {
        self.reuse = enabled;
        self
    }

    /// Enables or disables whole-iteration memoization.
    pub fn iteration_memo(mut self, enabled: bool) -> Self {
        self.iteration_memo = enabled;
        self
    }

    /// Sets the KV-bucket policy: a token count for a fixed bucket, or a
    /// full [`KvBucket`] (e.g. `KvBucket::Adaptive { .. }`).
    pub fn kv_bucket(mut self, bucket: impl Into<KvBucket>) -> Self {
        self.kv_bucket = bucket.into();
        self
    }

    /// Skips the initiation phase (prompts modeled as pre-cached).
    pub fn gen_only(mut self, enabled: bool) -> Self {
        self.gen_only = enabled;
        self
    }

    /// Seeds the routing/pairing policies *and* the workload generator
    /// (matching the legacy `--seed` flag's reach).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.workload.reseed(seed);
        self
    }

    /// Points at an NPU hardware-config JSON file.
    pub fn network(mut self, path: impl Into<String>) -> Self {
        self.network = Some(path.into());
        self
    }

    /// Sets the fleet size (>= 2 selects the cluster shape).
    pub fn replicas(mut self, n: usize) -> Self {
        self.replicas = n;
        self
    }

    /// Sets the front-end routing policy.
    pub fn routing(mut self, routing: RoutingPolicyKind) -> Self {
        self.routing = routing;
        self
    }

    /// Selects the disaggregated shape with the given pool sizes.
    pub fn disagg(mut self, prefill: usize, decode: usize) -> Self {
        self.disagg = Some((prefill, decode));
        self
    }

    /// Sets the inter-pool KV-link bandwidth in GB/s.
    pub fn kv_link_gbps(mut self, gbps: f64) -> Self {
        self.kv_link_gbps = gbps;
        self
    }

    /// Sets the decode-pairing policy.
    pub fn pairing(mut self, pairing: PairingPolicyKind) -> Self {
        self.pairing = pairing;
        self
    }

    /// Selects the fleet shape: an explicit control plane (static /
    /// flex / autoscale) over an optionally heterogeneous replica list.
    pub fn fleet(mut self, spec: FleetSpec) -> Self {
        self.fleet = Some(spec);
        self
    }

    /// Ships KV handoffs over a `[fabric]` topology instead of the
    /// legacy dedicated FIFO wire.
    pub fn fabric(mut self, spec: FabricSpec) -> Self {
        self.fabric = Some(spec);
        self
    }

    /// Records lifecycle events during the run and exports them per the
    /// `[telemetry]` table.
    pub fn telemetry(mut self, spec: TelemetrySpec) -> Self {
        self.telemetry = Some(spec);
        self
    }

    /// Injects faults during the run per the `[chaos]` table (fleet
    /// shape only).
    pub fn chaos(mut self, spec: ChaosSpec) -> Self {
        self.chaos = Some(spec);
        self
    }

    /// Sets the traffic source.
    pub fn workload(mut self, workload: impl Into<WorkloadSpec>) -> Self {
        self.workload = workload.into();
        self
    }

    /// The serving shape the `replicas`/`disagg`/`fleet` fields select.
    pub fn shape(&self) -> ServingShape {
        match (&self.fleet, self.disagg, self.replicas) {
            (Some(spec), _, r) => {
                ServingShape::Fleet { replicas: spec.size(r), control: spec.control }
            }
            (None, Some((prefill, decode)), _) => ServingShape::Disagg { prefill, decode },
            (None, None, r) if r > 1 => ServingShape::Cluster { replicas: r },
            _ => ServingShape::Single,
        }
    }

    /// A one-line banner for run output.
    pub fn describe(&self) -> String {
        format!(
            "model={} npus={} parallel={:?} pim={:?} shape={} workload={}",
            self.model,
            self.npus,
            self.parallel,
            self.pim,
            self.shape(),
            self.workload.describe(),
        )
    }

    /// Checks every cross-field constraint without building simulators.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a typed
    /// [`ScenarioError`].
    pub fn validate(&self) -> Result<(), ScenarioError> {
        self.field_checks()?;
        self.validated_config().map(|_| ())
    }

    /// The pure cross-field checks (no filesystem, no simulators).
    fn field_checks(&self) -> Result<(), ScenarioError> {
        let invalid = |field: &str, message: String| {
            Err(ScenarioError::InvalidValue { field: field.into(), message })
        };
        if ModelSpec::by_name(&self.model).is_none() {
            return Err(ScenarioError::UnknownModel { name: self.model.clone() });
        }
        if self.npus == 0 {
            return invalid("npus", "a replica needs at least one NPU".into());
        }
        if self.replicas == 0 {
            return invalid("replicas", "the fleet needs at least one replica".into());
        }
        if let Some((p, d)) = self.disagg {
            if p == 0 || d == 0 {
                return invalid("disagg", "both pools need at least one replica".into());
            }
            if self.replicas > 1 {
                return Err(ScenarioError::Conflict {
                    message: format!(
                        "disagg {p}x{d} and replicas={} are mutually exclusive: the \
                         disaggregated shape already defines its fleet as the two pools",
                        self.replicas
                    ),
                });
            }
        }
        if !self.kv_link_gbps.is_finite() || self.kv_link_gbps <= 0.0 {
            return invalid(
                "kv_link_gbps",
                format!("link bandwidth must be positive, got {}", self.kv_link_gbps),
            );
        }
        if let Some(fleet) = &self.fleet {
            self.fleet_checks(fleet)?;
        }
        if let Some(fabric) = &self.fabric {
            self.fabric_checks(fabric)?;
        }
        if let Some(telemetry) = &self.telemetry {
            telemetry.validate()?;
        }
        if let Some(chaos) = &self.chaos {
            chaos.validate()?;
            if chaos.enabled() && self.fleet.is_none() {
                return Err(ScenarioError::Conflict {
                    message: "[chaos] injects faults through the fleet engine, which \
                              requires a [fleet] table"
                        .into(),
                });
            }
        }
        self.kv_bucket.validate()?;
        if matches!(self.kv_bucket, KvBucket::Adaptive { .. })
            && !(self.reuse && self.iteration_memo)
        {
            return Err(ScenarioError::Conflict {
                message: "adaptive kv_bucket anneals the iteration cache, which requires \
                          reuse and iteration_memo to be enabled"
                    .into(),
            });
        }
        match (self.pim, self.pim_pool_size) {
            (PimMode::Pool, Some(0)) => {
                return invalid("pim_pool_size", "a PIM pool needs at least one device".into())
            }
            (PimMode::None | PimMode::Local, Some(_)) => {
                return Err(ScenarioError::Conflict {
                    message: "pim_pool_size is set but pim is not \"pool\"".into(),
                })
            }
            _ => {}
        }
        Ok(())
    }

    /// The `[fleet]` cross-field constraints.
    fn fleet_checks(&self, fleet: &FleetSpec) -> Result<(), ScenarioError> {
        let invalid = |field: &str, message: String| {
            Err(ScenarioError::InvalidValue { field: field.into(), message })
        };
        let conflict = |message: String| Err(ScenarioError::Conflict { message });
        if self.disagg.is_some() {
            return conflict(
                "disagg and [fleet] are mutually exclusive: express the pools as \
                 prefill/decode roles in [[fleet.replica]] entries"
                    .into(),
            );
        }
        if !fleet.replicas.is_empty() && self.replicas > 1 {
            return conflict(format!(
                "replicas={} conflicts with the {}-entry [[fleet.replica]] list: \
                 the list alone defines the fleet size",
                self.replicas,
                fleet.replicas.len()
            ));
        }
        let size = fleet.size(self.replicas);
        if size == 0 {
            return invalid("fleet", "the fleet needs at least one replica".into());
        }
        if !fleet.tick_ms.is_finite() || fleet.tick_ms <= 0.0 {
            return invalid(
                "fleet.tick_ms",
                format!("the control tick must be positive, got {}", fleet.tick_ms),
            );
        }
        if fleet.shards == 0 {
            return invalid(
                "fleet.shards",
                "the shard count must be at least 1 (1 = the serial loop)".into(),
            );
        }
        if fleet.shards > 1 && self.telemetry.as_ref().is_some_and(TelemetrySpec::enabled) {
            return conflict(
                "fleet.shards > 1 and [telemetry] are mutually exclusive: the event \
                 trace records the global interleaving, which windowed stepping does \
                 not preserve (run with shards = 1 to trace)"
                    .into(),
            );
        }
        if fleet.shared_cache && self.telemetry.as_ref().is_some_and(TelemetrySpec::enabled) {
            return conflict(
                "fleet.shared_cache and [telemetry] are mutually exclusive: shared-\
                 cache runs step through the windowed path, which does not preserve \
                 the global event interleaving the trace records"
                    .into(),
            );
        }
        let prefill = fleet.replicas.iter().filter(|r| r.role == ReplicaRole::Prefill).count();
        let decode = fleet.replicas.iter().filter(|r| r.role == ReplicaRole::Decode).count();
        if prefill > 0 && decode == 0 {
            return invalid(
                "fleet",
                "prefill-role replicas need at least one decode-role replica to \
                 receive their KV handoffs"
                    .into(),
            );
        }
        if (0..size).all(|i| !fleet.role_of(i).accepts_arrivals()) {
            return invalid(
                "fleet",
                "no replica accepts arrivals: an all-decode fleet cannot serve".into(),
            );
        }
        match fleet.control {
            FleetControlKind::Static => {}
            FleetControlKind::Flex => {
                if prefill == 0 || decode == 0 {
                    return conflict(
                        "control = \"flex\" reassigns replicas between the prefill and \
                         decode pools: declare both roles in [[fleet.replica]]"
                            .into(),
                    );
                }
                if fleet.min_prefill == 0 {
                    return invalid(
                        "fleet.min_prefill",
                        "flexing must keep at least one prefill replica".into(),
                    );
                }
                if prefill < fleet.min_prefill {
                    return invalid(
                        "fleet.min_prefill",
                        format!(
                            "the fleet declares {prefill} prefill replicas but \
                             min_prefill is {}",
                            fleet.min_prefill
                        ),
                    );
                }
            }
            FleetControlKind::Autoscale => {
                if prefill > 0 || decode > 0 {
                    return conflict(
                        "control = \"autoscale\" scales a unified fleet; prefill/decode \
                         roles are not autoscalable (use control = \"flex\")"
                            .into(),
                    );
                }
                if fleet.min_replicas == 0 {
                    return invalid(
                        "fleet.min_replicas",
                        "the fleet floor must be at least one replica".into(),
                    );
                }
                if fleet.min_replicas > fleet.max_replicas {
                    return invalid(
                        "fleet.max_replicas",
                        format!(
                            "bounds are inverted: min {} > max {}",
                            fleet.min_replicas, fleet.max_replicas
                        ),
                    );
                }
                if size < fleet.min_replicas || size > fleet.max_replicas {
                    return invalid(
                        "fleet",
                        format!(
                            "the initial fleet size {size} is outside the autoscale \
                             bounds {}..={}",
                            fleet.min_replicas, fleet.max_replicas
                        ),
                    );
                }
                if !fleet.queue_high.is_finite()
                    || !fleet.queue_low.is_finite()
                    || fleet.queue_low >= fleet.queue_high
                {
                    return invalid(
                        "fleet.queue_low",
                        format!(
                            "queue_low ({}) must be below queue_high ({}) for \
                             hysteresis",
                            fleet.queue_low, fleet.queue_high
                        ),
                    );
                }
                if !fleet.warmup_ms.is_finite() || fleet.warmup_ms < 0.0 {
                    return invalid(
                        "fleet.warmup_ms",
                        format!(
                            "the warm-up delay cannot be negative, got {}",
                            fleet.warmup_ms
                        ),
                    );
                }
            }
        }
        Ok(())
    }

    /// The `[fabric]` cross-field constraints — and a dry build of the
    /// graph, so topology/fleet size mismatches surface at validation
    /// time with a typed error.
    fn fabric_checks(&self, fabric: &FabricSpec) -> Result<(), ScenarioError> {
        fabric.validate()?;
        let conflict = |message: String| Err(ScenarioError::Conflict { message });
        let endpoints = match self.shape() {
            ServingShape::Disagg { prefill, decode } => prefill + decode,
            ServingShape::Fleet { replicas, control } => {
                let fleet = self.fleet.as_ref().expect("the fleet shape has a spec");
                if !fleet.has_prefill() {
                    return conflict(
                        "a [fabric] table needs KV transfers to carry: declare \
                         prefill/decode roles in [[fleet.replica]] entries"
                            .into(),
                    );
                }
                if control != FleetControlKind::Static {
                    return conflict(format!(
                        "control = \"{control}\" resizes or re-roles the fleet; the \
                         fabric's endpoint graph is fixed (use control = \"static\")"
                    ));
                }
                replicas
            }
            shape => {
                return conflict(format!(
                    "a [fabric] table needs KV transfers to carry, but the {shape} \
                     shape has none: use disagg = \"PxD\" or prefill/decode roles \
                     in [fleet]"
                ));
            }
        };
        fabric.build(endpoints, self.kv_link_gbps).map(|_| ())
    }

    /// The per-replica [`SimConfig`] this scenario describes.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] when validation fails or the hardware
    /// config file cannot be read.
    pub fn replica_config(&self) -> Result<SimConfig, ScenarioError> {
        self.field_checks()?;
        self.validated_config()
    }

    /// Builds the `SimConfig` and runs the layout checks on it — the one
    /// construction path shared by `validate`, `replica_config`, and
    /// `build`, so the hardware-config file is read exactly once per
    /// entry point.
    fn validated_config(&self) -> Result<SimConfig, ScenarioError> {
        let model = ModelSpec::by_name(&self.model)
            .ok_or_else(|| ScenarioError::UnknownModel { name: self.model.clone() })?;
        let mut cfg = SimConfig::new(model);
        cfg.npu_num = self.npus;
        cfg.max_batch = self.max_batch;
        cfg.batch_delay_ms = self.batch_delay_ms;
        cfg.scheduling = self.scheduling;
        cfg.parallel = self.parallel;
        cfg.npu_group = self.npu_group;
        cfg.npu_mem_gib = self.npu_mem_gib;
        cfg.kv_manage = self.kv_manage;
        cfg.sub_batch = self.sub_batch;
        cfg.reuse = self.reuse;
        cfg.iteration_memo = self.iteration_memo;
        cfg.kv_bucket = self.kv_bucket;
        match self.pim {
            PimMode::None => {}
            PimMode::Local => cfg = cfg.pim_local(),
            PimMode::Pool => {
                cfg = cfg.pim_pool(self.pim_pool_size.unwrap_or(self.npus));
            }
        }
        if let Some(path) = &self.network {
            let json = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
                path: path.clone(),
                message: e.to_string(),
            })?;
            cfg.npu_config = llmss_npu::NpuConfig::from_json(&json).map_err(|message| {
                ScenarioError::InvalidValue { field: "network".into(), message }
            })?;
        }
        // Parallelism layout constraints (group divisibility, stages vs
        // model depth) are pure functions of the config — fail here, not
        // inside a half-built fleet.
        cfg.parallelism()?;
        Ok(cfg)
    }

    /// Materializes the workload, applying `gen_only` (prompts shrink to
    /// one token, modeling a pre-cached initiation phase).
    ///
    /// # Errors
    ///
    /// Propagates workload errors (unreadable trace, bad parameters).
    pub fn trace(&self) -> Result<Vec<Request>, ScenarioError> {
        let mut trace = self.workload.materialize()?;
        if self.gen_only {
            for r in &mut trace {
                *r = Request::new(r.id, 1, r.output_len, r.arrival_ps);
            }
        }
        Ok(trace)
    }

    /// Validates the scenario and builds the simulator for its shape.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ScenarioError`] on any invalid field, conflict,
    /// unrealizable hardware configuration, or workload failure.
    pub fn build(&self) -> Result<AnySimulator, ScenarioError> {
        self.field_checks()?;
        let cfg = self.validated_config()?;
        let trace = self.trace()?;
        Ok(match self.shape() {
            ServingShape::Single => {
                AnySimulator::Single(Box::new(ServingSimulator::new(cfg, trace)?))
            }
            ServingShape::Cluster { replicas } => {
                let cluster =
                    ClusterConfig::new(replicas).routing(self.routing).seed(self.seed);
                AnySimulator::Cluster(ClusterSimulator::new(cfg, cluster, trace)?)
            }
            ServingShape::Disagg { prefill, decode } => {
                let disagg = DisaggConfig::new(prefill, decode)
                    .kv_link_gbps(self.kv_link_gbps)
                    .routing(self.routing)
                    .pairing(self.pairing)
                    .seed(self.seed);
                AnySimulator::Disagg(match &self.fabric {
                    // No [fabric] table: the legacy dedicated FIFO wire,
                    // byte-identical to pre-fabric reports.
                    None => DisaggSimulator::new(cfg.clone(), cfg, disagg, trace)?,
                    Some(fabric) => {
                        let built = fabric.build(prefill + decode, self.kv_link_gbps)?;
                        DisaggSimulator::with_fabric(cfg.clone(), cfg, disagg, built, trace)?
                    }
                })
            }
            ServingShape::Fleet { replicas, .. } => {
                let fleet = self.fleet.as_ref().expect("the fleet shape has a spec");
                AnySimulator::Fleet(self.build_fleet(fleet, replicas, trace)?)
            }
        })
    }

    /// Builds the fleet engine for a `[fleet]` scenario: one validated
    /// `SimConfig` per replica (base scenario + that slot's overrides +
    /// its role), the KV link when prefill roles exist, and the selected
    /// control plane.
    fn build_fleet(
        &self,
        fleet: &FleetSpec,
        replicas: usize,
        trace: Vec<Request>,
    ) -> Result<FleetEngine, ScenarioError> {
        let ms_to_ps = |ms: f64| (ms * 1e9).round() as TimePs;
        let mut configs = Vec::with_capacity(replicas);
        for i in 0..replicas {
            let mut per_replica = self.clone();
            per_replica.fleet = None;
            // Chaos is fleet-level, not per-replica: the clone only
            // exists to validate one slot's serving config.
            per_replica.chaos = None;
            if let Some(over) = fleet.replicas.get(i) {
                if let Some(npus) = over.npus {
                    per_replica.npus = npus;
                }
                if let Some(max_batch) = over.max_batch {
                    per_replica.max_batch = max_batch;
                }
                if let Some(delay) = over.batch_delay_ms {
                    per_replica.batch_delay_ms = delay;
                }
                if let Some(gib) = over.npu_mem_gib {
                    per_replica.npu_mem_gib = Some(gib);
                }
            }
            per_replica.field_checks()?;
            let cfg = per_replica.validated_config()?;
            configs.push(match fleet.role_of(i) {
                ReplicaRole::Unified => cfg,
                ReplicaRole::Prefill => cfg.prefill_only(),
                ReplicaRole::Decode => cfg.decode_only(),
            });
        }
        let fabric = match &self.fabric {
            Some(spec) => Some(spec.build(replicas, self.kv_link_gbps)?),
            None => None,
        };
        let links = if fleet.has_prefill() {
            vec![LinkSpec::new(self.kv_link_gbps, LinkSpec::cxl().latency_ns)]
        } else {
            Vec::new()
        };
        let control: Box<dyn ControlPlane> = match fleet.control {
            FleetControlKind::Static => Box::new(StaticControl::new(
                self.routing.build(self.seed),
                self.pairing.build(),
            )),
            FleetControlKind::Flex => Box::new(FlexPools::new(
                self.routing.build(self.seed),
                self.pairing.build(),
                FlexPoolsConfig {
                    tick_ps: ms_to_ps(fleet.tick_ms),
                    idle_ticks: fleet.flex_idle_ticks,
                    min_prefill: fleet.min_prefill,
                },
            )),
            FleetControlKind::Autoscale => Box::new(AutoscaleControl::new(
                self.routing.build(self.seed),
                AutoscaleConfig {
                    tick_ps: ms_to_ps(fleet.tick_ms),
                    min_replicas: fleet.min_replicas,
                    max_replicas: fleet.max_replicas,
                    queue_high: fleet.queue_high,
                    queue_low: fleet.queue_low,
                    warmup_ps: ms_to_ps(fleet.warmup_ms),
                },
            )),
        };
        let link_count = match &fabric {
            Some(fabric) => fabric.link_count(),
            None => links.len(),
        };
        let mut engine = match fabric {
            Some(fabric) => FleetEngine::with_fabric(configs, fabric, control, trace)?,
            None => FleetEngine::new(configs, links, control, trace)?,
        };
        if let Some(chaos) = self.chaos.as_ref().filter(|c| c.enabled()) {
            // Bounds-check fault targets against the largest fleet this
            // deployment can reach, not just its starting size: an
            // autoscale scenario may legitimately fault a replica that
            // only exists after a scale-up.
            let ceiling = if matches!(fleet.control, FleetControlKind::Autoscale) {
                replicas.max(fleet.max_replicas)
            } else {
                replicas
            };
            engine.set_chaos(chaos.build(ceiling, link_count)?);
        }
        engine.set_shards(fleet.shards);
        if fleet.shared_cache {
            engine.enable_shared_cache();
        }
        Ok(engine)
    }

    /// Builds and runs to completion (the one-shot convenience).
    ///
    /// # Errors
    ///
    /// Propagates [`build`](Self::build) errors.
    pub fn run(&self) -> Result<AnyReport, ScenarioError> {
        Ok(self.build()?.run())
    }

    /// Sets one field by its serialized key — the string-override
    /// surface shared by CLI flags, `--set key=value`, and sweep grids.
    /// `workload.*` keys route into the workload spec; `seed` reaches
    /// both the policies and the workload generator (matching the legacy
    /// `--seed`).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::UnknownKey`] for keys outside the schema,
    /// [`ScenarioError::UnknownValue`] when the value does not parse.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), ScenarioError> {
        fn parse<T: std::str::FromStr>(field: &str, value: &str) -> Result<T, ScenarioError>
        where
            T::Err: std::fmt::Display,
        {
            value.parse().map_err(|e| ScenarioError::UnknownValue {
                field: field.into(),
                value: value.into(),
                expected: format!("{e}"),
            })
        }
        fn parse_bool(field: &str, value: &str) -> Result<bool, ScenarioError> {
            match value {
                "true" | "1" | "on" => Ok(true),
                "false" | "0" | "off" => Ok(false),
                _ => Err(ScenarioError::UnknownValue {
                    field: field.into(),
                    value: value.into(),
                    expected: "true | false".into(),
                }),
            }
        }
        if let Some(subkey) = key.strip_prefix("fleet.") {
            return self.fleet.get_or_insert_with(FleetSpec::default).set(subkey, value);
        }
        if let Some(subkey) = key.strip_prefix("fabric.") {
            return self.fabric.get_or_insert_with(FabricSpec::default).set(subkey, value);
        }
        if let Some(subkey) = key.strip_prefix("telemetry.") {
            return self
                .telemetry
                .get_or_insert_with(TelemetrySpec::default)
                .set(subkey, value);
        }
        if let Some(subkey) = key.strip_prefix("chaos.") {
            return self.chaos.get_or_insert_with(ChaosSpec::default).set(subkey, value);
        }
        if let Some(subkey) = key.strip_prefix("workload.") {
            return self.workload.set(subkey, value).map_err(|message| {
                ScenarioError::UnknownValue {
                    field: key.into(),
                    value: value.into(),
                    expected: message,
                }
            });
        }
        match key {
            "model" => self.model = value.to_owned(),
            "npus" | "npu_num" => self.npus = parse(key, value)?,
            "max_batch" => self.max_batch = parse(key, value)?,
            "batch_delay_ms" => self.batch_delay_ms = parse(key, value)?,
            "scheduling" => {
                self.scheduling = match value {
                    "orca" => SchedulingPolicy::IterationLevel,
                    "request" => SchedulingPolicy::RequestLevel,
                    _ => {
                        return Err(ScenarioError::UnknownValue {
                            field: key.into(),
                            value: value.into(),
                            expected: "orca | request".into(),
                        })
                    }
                }
            }
            "parallel" => {
                self.parallel = match value {
                    "tensor" => ParallelismKind::Tensor,
                    "pipeline" => ParallelismKind::Pipeline,
                    "hybrid" => ParallelismKind::Hybrid,
                    _ => {
                        return Err(ScenarioError::UnknownValue {
                            field: key.into(),
                            value: value.into(),
                            expected: "tensor | pipeline | hybrid".into(),
                        })
                    }
                }
            }
            "npu_group" => self.npu_group = parse(key, value)?,
            "npu_mem_gib" => {
                self.npu_mem_gib = if value == "none" { None } else { Some(parse(key, value)?) }
            }
            "kv_manage" => {
                self.kv_manage = match value {
                    "vllm" => KvManage::Vllm,
                    "max" => KvManage::MaxLen,
                    _ => {
                        return Err(ScenarioError::UnknownValue {
                            field: key.into(),
                            value: value.into(),
                            expected: "vllm | max".into(),
                        })
                    }
                }
            }
            "pim" | "pim_type" => {
                self.pim = match value {
                    "none" => PimMode::None,
                    "local" => PimMode::Local,
                    "pool" => PimMode::Pool,
                    _ => {
                        return Err(ScenarioError::UnknownValue {
                            field: key.into(),
                            value: value.into(),
                            expected: "none | local | pool".into(),
                        })
                    }
                }
            }
            "pim_pool_size" => {
                self.pim_pool_size =
                    if value == "none" { None } else { Some(parse(key, value)?) }
            }
            "sub_batch" => self.sub_batch = parse_bool(key, value)?,
            "reuse" => self.reuse = parse_bool(key, value)?,
            "iteration_memo" => self.iteration_memo = parse_bool(key, value)?,
            "kv_bucket" => {
                self.kv_bucket = if value == "adaptive" {
                    KvBucket::adaptive()
                } else {
                    KvBucket::Fixed { tokens: parse(key, value)? }
                }
            }
            "gen_only" => self.gen_only = parse_bool(key, value)?,
            "seed" => {
                let seed = parse(key, value)?;
                self.seed = seed;
                self.workload.reseed(seed);
            }
            "network" => {
                self.network = if value == "none" { None } else { Some(value.to_owned()) }
            }
            "replicas" => self.replicas = parse(key, value)?,
            "routing" => {
                self.routing =
                    value.parse().map_err(|e: String| ScenarioError::UnknownValue {
                        field: key.into(),
                        value: value.into(),
                        expected: e,
                    })?
            }
            "disagg" => {
                self.disagg = if value == "none" { None } else { Some(parse_pools(value)?) }
            }
            "kv_link_gbps" => self.kv_link_gbps = parse(key, value)?,
            "pairing" => {
                self.pairing =
                    value.parse().map_err(|e: String| ScenarioError::UnknownValue {
                        field: key.into(),
                        value: value.into(),
                        expected: e,
                    })?
            }
            "fleet" => {
                // `none` clears the table; a control kind is shorthand
                // for a default-knobbed fleet of that control plane.
                self.fleet = if value == "none" {
                    None
                } else {
                    let control: FleetControlKind = parse(key, value)?;
                    let mut spec = self.fleet.take().unwrap_or_default();
                    spec.control = control;
                    Some(spec)
                }
            }
            "fabric" => {
                // `none` clears the table; a topology name is shorthand
                // for a fair-sharing fabric of that topology.
                self.fabric = if value == "none" {
                    None
                } else {
                    let mut spec = self.fabric.take().unwrap_or_default();
                    spec.topology = Some(value.to_owned());
                    Some(spec)
                }
            }
            "telemetry" => {
                // `none` clears the table; `auto` is shorthand for both
                // exports at their derived paths.
                self.telemetry = match value {
                    "none" => None,
                    "auto" => Some(TelemetrySpec::auto()),
                    _ => {
                        return Err(ScenarioError::UnknownValue {
                            field: key.into(),
                            value: value.into(),
                            expected: "none | auto | telemetry.* sub-keys".into(),
                        })
                    }
                }
            }
            "chaos" => {
                // `none` clears the table; fault windows are only
                // expressible as `[[chaos.*]]` entries in a file.
                self.chaos = match value {
                    "none" => None,
                    _ => {
                        return Err(ScenarioError::UnknownValue {
                            field: key.into(),
                            value: value.into(),
                            expected: "none | chaos.* sub-keys".into(),
                        })
                    }
                }
            }
            "workload" => {
                return Err(ScenarioError::UnknownValue {
                    field: key.into(),
                    value: value.into(),
                    expected: "workload sub-keys, e.g. workload.kind or workload.rate".into(),
                })
            }
            other => return Err(ScenarioError::UnknownKey { key: other.into() }),
        }
        Ok(())
    }

    /// Serializes as a TOML scenario file (the canonical on-disk form).
    pub fn to_toml(&self) -> String {
        toml::emit(&self.to_value()).expect("scenario values are TOML-expressible")
    }

    /// Serializes as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario serialization is infallible")
    }

    /// Parses a TOML scenario document: defaults first, then every
    /// present key. Unknown keys are schema drift and fail loudly.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Parse`] for syntax errors and typed
    /// errors for schema violations.
    pub fn from_toml(text: &str) -> Result<Self, ScenarioError> {
        let value = toml::parse(text).map_err(|message| ScenarioError::Parse { message })?;
        Self::from_value_checked(&value)
    }

    /// Parses a JSON scenario document (same schema as the TOML form).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Parse`] on malformed JSON or schema
    /// violations.
    pub fn from_json(text: &str) -> Result<Self, ScenarioError> {
        serde_json::from_str(text).map_err(|e| ScenarioError::Parse { message: e.to_string() })
    }

    /// Loads a scenario file, dispatching on extension (`.json` is JSON,
    /// anything else TOML).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Io`] when the file cannot be read and
    /// parse/schema errors otherwise.
    pub fn from_path(path: &str) -> Result<Self, ScenarioError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::Io { path: path.into(), message: e.to_string() })?;
        if path.ends_with(".json") { Self::from_json(&text) } else { Self::from_toml(&text) }
            .map_err(|e| match e {
                ScenarioError::Parse { message } => {
                    ScenarioError::Parse { message: format!("{path}: {message}") }
                }
                other => other,
            })
    }

    /// Rebuilds a scenario from a value tree with typed errors (the
    /// checked core behind both file codecs and the sweep loader).
    pub(crate) fn from_value_checked(v: &Value) -> Result<Self, ScenarioError> {
        let Value::Object(fields) = v else {
            return Err(ScenarioError::Parse {
                message: format!("scenario: expected an object, got {v:?}"),
            });
        };
        let mut scenario = Scenario::default();
        for (key, value) in fields {
            match key.as_str() {
                "workload" => {
                    scenario.workload = WorkloadSpec::from_value(value)
                        .map_err(|e| ScenarioError::Parse { message: e.to_string() })?;
                }
                "kv_bucket" => scenario.kv_bucket = kv_bucket_from_value(value)?,
                "fleet" => {
                    scenario.fleet = match value {
                        Value::Null => None,
                        other => Some(FleetSpec::from_value(other)?),
                    }
                }
                "fabric" => {
                    scenario.fabric = match value {
                        Value::Null => None,
                        // `fabric = "star4"`: fair-sharing shorthand.
                        Value::Str(topology) => Some(FabricSpec::named(topology.clone())),
                        other => Some(FabricSpec::from_value(other)?),
                    }
                }
                "telemetry" => {
                    scenario.telemetry = match value {
                        Value::Null => None,
                        // `telemetry = "auto"`: both exports, derived
                        // paths.
                        Value::Str(s) if s == "auto" => Some(TelemetrySpec::auto()),
                        other => Some(TelemetrySpec::from_value(other)?),
                    }
                }
                "chaos" => {
                    scenario.chaos = match value {
                        Value::Null => None,
                        other => Some(ChaosSpec::from_value(other)?),
                    }
                }
                "npu_mem_gib" => {
                    scenario.npu_mem_gib = match value {
                        Value::Null => None,
                        Value::Float(f) => Some(*f),
                        Value::Int(i) => Some(*i as f64),
                        other => {
                            return Err(ScenarioError::UnknownValue {
                                field: "npu_mem_gib".into(),
                                value: format!("{other:?}"),
                                expected: "a number of GiB".into(),
                            })
                        }
                    }
                }
                "pim_pool_size" => {
                    scenario.pim_pool_size = match value {
                        Value::Null => None,
                        other => Some(usize::from_value(other).map_err(|e| {
                            ScenarioError::UnknownValue {
                                field: "pim_pool_size".into(),
                                value: format!("{other:?}"),
                                expected: e.to_string(),
                            }
                        })?),
                    }
                }
                "network" | "disagg" if matches!(value, Value::Null) => {
                    // Optional fields spelled out as null (JSON form).
                    if key == "network" {
                        scenario.network = None;
                    } else {
                        scenario.disagg = None;
                    }
                }
                // `seed` must not re-seed the workload here: the file may
                // carry an explicit workload seed, and field order must
                // not matter. The coupling is a CLI/sweep convenience.
                "seed" => {
                    scenario.seed =
                        u64::from_value(value).map_err(|e| ScenarioError::UnknownValue {
                            field: "seed".into(),
                            value: format!("{value:?}"),
                            expected: e.to_string(),
                        })?
                }
                _ => {
                    let text = scalar_to_string(key, value)?;
                    scenario.set(key, &text)?;
                }
            }
        }
        Ok(scenario)
    }

    /// Renders the scenario as a value tree in canonical key order.
    fn to_value(&self) -> Value {
        let opt_str = |s: &Option<String>| match s {
            Some(s) => Value::Str(s.clone()),
            None => Value::Null,
        };
        Value::Object(vec![
            ("model".into(), Value::Str(self.model.clone())),
            ("npus".into(), Value::Int(self.npus as i128)),
            ("max_batch".into(), Value::Int(self.max_batch as i128)),
            ("batch_delay_ms".into(), Value::Float(self.batch_delay_ms)),
            (
                "scheduling".into(),
                Value::Str(
                    match self.scheduling {
                        SchedulingPolicy::IterationLevel => "orca",
                        SchedulingPolicy::RequestLevel => "request",
                    }
                    .into(),
                ),
            ),
            (
                "parallel".into(),
                Value::Str(
                    match self.parallel {
                        ParallelismKind::Tensor => "tensor",
                        ParallelismKind::Pipeline => "pipeline",
                        ParallelismKind::Hybrid => "hybrid",
                    }
                    .into(),
                ),
            ),
            ("npu_group".into(), Value::Int(self.npu_group as i128)),
            (
                "npu_mem_gib".into(),
                match self.npu_mem_gib {
                    Some(gib) => Value::Float(gib),
                    None => Value::Null,
                },
            ),
            (
                "kv_manage".into(),
                Value::Str(
                    match self.kv_manage {
                        KvManage::Vllm => "vllm",
                        KvManage::MaxLen => "max",
                    }
                    .into(),
                ),
            ),
            (
                "pim".into(),
                Value::Str(
                    match self.pim {
                        PimMode::None => "none",
                        PimMode::Local => "local",
                        PimMode::Pool => "pool",
                    }
                    .into(),
                ),
            ),
            (
                "pim_pool_size".into(),
                match self.pim_pool_size {
                    Some(n) => Value::Int(n as i128),
                    None => Value::Null,
                },
            ),
            ("sub_batch".into(), Value::Bool(self.sub_batch)),
            ("reuse".into(), Value::Bool(self.reuse)),
            ("iteration_memo".into(), Value::Bool(self.iteration_memo)),
            ("gen_only".into(), Value::Bool(self.gen_only)),
            ("seed".into(), Value::Int(self.seed as i128)),
            ("network".into(), opt_str(&self.network)),
            ("replicas".into(), Value::Int(self.replicas as i128)),
            ("routing".into(), Value::Str(self.routing.as_str().into())),
            (
                "disagg".into(),
                match self.disagg {
                    Some((p, d)) => Value::Str(format!("{p}x{d}")),
                    None => Value::Null,
                },
            ),
            ("kv_link_gbps".into(), Value::Float(self.kv_link_gbps)),
            ("pairing".into(), Value::Str(self.pairing.as_str().into())),
            ("kv_bucket".into(), kv_bucket_to_value(self.kv_bucket)),
            (
                "fleet".into(),
                match &self.fleet {
                    Some(spec) => spec.to_value(),
                    None => Value::Null,
                },
            ),
            (
                "fabric".into(),
                match &self.fabric {
                    Some(spec) => spec.to_value(),
                    None => Value::Null,
                },
            ),
            (
                "telemetry".into(),
                match &self.telemetry {
                    Some(spec) => spec.to_value(),
                    None => Value::Null,
                },
            ),
            (
                "chaos".into(),
                match &self.chaos {
                    Some(spec) => spec.to_value(),
                    None => Value::Null,
                },
            ),
            ("workload".into(), self.workload.to_value()),
        ])
    }
}

fn parse_pools(value: &str) -> Result<(usize, usize), ScenarioError> {
    let err = || ScenarioError::UnknownValue {
        field: "disagg".into(),
        value: value.into(),
        expected: "PxD pool sizes, e.g. 2x2".into(),
    };
    let (p, d) = value.split_once('x').ok_or_else(err)?;
    Ok((p.parse().map_err(|_| err())?, d.parse().map_err(|_| err())?))
}

fn scalar_to_string(key: &str, value: &Value) -> Result<String, ScenarioError> {
    match value {
        Value::Str(s) => Ok(s.clone()),
        Value::Int(i) => Ok(i.to_string()),
        Value::Float(f) => Ok(format!("{f:?}")),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(ScenarioError::UnknownValue {
            field: key.into(),
            value: format!("{other:?}"),
            expected: "a scalar".into(),
        }),
    }
}

fn kv_bucket_to_value(bucket: KvBucket) -> Value {
    match bucket {
        KvBucket::Fixed { tokens } => Value::Int(tokens as i128),
        KvBucket::Adaptive { min_tokens, max_tokens, target_hit_rate, window } => {
            Value::Object(vec![
                ("min_tokens".into(), Value::Int(min_tokens as i128)),
                ("max_tokens".into(), Value::Int(max_tokens as i128)),
                ("target_hit_rate".into(), Value::Float(target_hit_rate)),
                ("window".into(), Value::Int(window as i128)),
            ])
        }
    }
}

fn kv_bucket_from_value(value: &Value) -> Result<KvBucket, ScenarioError> {
    let bad = |expected: &str| ScenarioError::UnknownValue {
        field: "kv_bucket".into(),
        value: format!("{value:?}"),
        expected: expected.into(),
    };
    match value {
        Value::Int(tokens) => Ok(KvBucket::Fixed {
            tokens: usize::try_from(*tokens).map_err(|_| bad("a positive token count"))?,
        }),
        Value::Str(s) if s == "adaptive" => Ok(KvBucket::adaptive()),
        Value::Object(fields) => {
            let KvBucket::Adaptive {
                mut min_tokens,
                mut max_tokens,
                mut target_hit_rate,
                mut window,
            } = KvBucket::adaptive()
            else {
                unreachable!("adaptive() is Adaptive");
            };
            for (key, v) in fields {
                match key.as_str() {
                    "min_tokens" => {
                        min_tokens = usize::from_value(v)
                            .map_err(|_| bad("min_tokens: a token count"))?
                    }
                    "max_tokens" => {
                        max_tokens = usize::from_value(v)
                            .map_err(|_| bad("max_tokens: a token count"))?
                    }
                    "target_hit_rate" => {
                        target_hit_rate = f64::from_value(v)
                            .map_err(|_| bad("target_hit_rate: a rate in (0, 1]"))?
                    }
                    "window" => {
                        window =
                            u64::from_value(v).map_err(|_| bad("window: an iteration count"))?
                    }
                    other => {
                        return Err(ScenarioError::UnknownKey {
                            key: format!("kv_bucket.{other}"),
                        })
                    }
                }
            }
            Ok(KvBucket::Adaptive { min_tokens, max_tokens, target_hit_rate, window })
        }
        _ => Err(bad("a token count, \"adaptive\", or an adaptive table")),
    }
}

impl Serialize for Scenario {
    fn to_value(&self) -> Value {
        Scenario::to_value(self)
    }
}

impl Deserialize for Scenario {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Scenario::from_value_checked(v).map_err(|e| Error::custom(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmss_sched::{BurstyTraceSpec, Dataset};

    fn small() -> Scenario {
        Scenario::model("gpt2").npus(1).tensor_parallel().workload(WorkloadSpec::Synthetic {
            dataset: Dataset::Alpaca,
            requests: 4,
            rate_per_s: 50.0,
            seed: 11,
        })
    }

    #[test]
    fn shape_follows_replicas_and_disagg() {
        assert_eq!(small().shape(), ServingShape::Single);
        assert_eq!(small().replicas(3).shape(), ServingShape::Cluster { replicas: 3 });
        assert_eq!(
            small().disagg(2, 2).shape(),
            ServingShape::Disagg { prefill: 2, decode: 2 }
        );
    }

    #[test]
    fn builder_chain_builds_and_runs_every_shape() {
        for scenario in [small(), small().replicas(2), small().disagg(1, 1)] {
            let report = scenario.run().unwrap();
            assert_eq!(report.total_completions(), 4, "{}", scenario.shape());
        }
    }

    #[test]
    fn unknown_model_is_typed() {
        let err = Scenario::model("gpt5-999t").build().unwrap_err();
        assert_eq!(err, ScenarioError::UnknownModel { name: "gpt5-999t".into() });
    }

    #[test]
    fn conflicting_shapes_are_rejected() {
        let err = small().replicas(2).disagg(1, 1).build().unwrap_err();
        assert!(matches!(err, ScenarioError::Conflict { .. }), "{err}");
    }

    #[test]
    fn adaptive_bucket_without_memo_is_a_conflict() {
        let err =
            small().kv_bucket(KvBucket::adaptive()).iteration_memo(false).build().unwrap_err();
        assert!(matches!(err, ScenarioError::Conflict { .. }), "{err}");
    }

    #[test]
    fn bad_layouts_fail_validation_not_simulation() {
        // 16 pipeline stages on a 12-layer model: caught by validate.
        let err = Scenario::model("gpt2").npus(16).pipeline_parallel().validate().unwrap_err();
        assert!(matches!(err, ScenarioError::Config(_)), "{err}");
        let err = small().npus(0).validate().unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidValue { .. }), "{err}");
        let err = small().disagg(0, 1).validate().unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidValue { .. }), "{err}");
        let err = small().kv_link_gbps(0.0).disagg(1, 1).validate().unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidValue { .. }), "{err}");
    }

    #[test]
    fn stray_pool_size_is_a_conflict() {
        let mut s = small();
        s.pim_pool_size = Some(2);
        assert!(matches!(s.validate(), Err(ScenarioError::Conflict { .. })));
    }

    #[test]
    fn set_covers_every_documented_key() {
        let mut s = Scenario::default();
        for (key, value) in [
            ("model", "gpt3-7b"),
            ("npus", "4"),
            ("max_batch", "16"),
            ("batch_delay_ms", "2.5"),
            ("scheduling", "request"),
            ("parallel", "tensor"),
            ("npu_group", "2"),
            ("npu_mem_gib", "48"),
            ("kv_manage", "max"),
            ("pim", "pool"),
            ("pim_pool_size", "8"),
            ("sub_batch", "true"),
            ("reuse", "false"),
            ("iteration_memo", "false"),
            ("kv_bucket", "64"),
            ("gen_only", "true"),
            ("seed", "7"),
            ("network", "hw.json"),
            ("replicas", "4"),
            ("routing", "power-of-two"),
            ("disagg", "2x3"),
            ("kv_link_gbps", "32"),
            ("pairing", "sticky"),
            ("workload.kind", "bursty"),
            ("workload.bursts", "2"),
        ] {
            s.set(key, value).unwrap_or_else(|e| panic!("{key}={value}: {e}"));
        }
        assert_eq!(s.model, "gpt3-7b");
        assert_eq!(s.npus, 4);
        assert_eq!(s.scheduling, SchedulingPolicy::RequestLevel);
        assert_eq!(s.pim, PimMode::Pool);
        assert_eq!(s.pim_pool_size, Some(8));
        assert_eq!(s.kv_bucket, KvBucket::Fixed { tokens: 64 });
        assert_eq!(s.disagg, Some((2, 3)));
        assert!(matches!(s.workload, WorkloadSpec::Bursty { .. }));

        assert!(matches!(s.set("not_a_key", "1"), Err(ScenarioError::UnknownKey { .. })));
        assert!(matches!(s.set("routing", "nope"), Err(ScenarioError::UnknownValue { .. })));
    }

    #[test]
    fn set_seed_reaches_the_workload() {
        let mut s = Scenario::default();
        s.set("seed", "9").unwrap();
        assert_eq!(s.seed, 9);
        assert!(matches!(s.workload, WorkloadSpec::Synthetic { seed: 9, .. }));
    }

    #[test]
    fn toml_and_json_round_trips_are_lossless() {
        let scenarios = [
            Scenario::default(),
            small()
                .replicas(4)
                .routing(RoutingPolicyKind::PowerOfTwoChoices)
                .kv_bucket(KvBucket::adaptive())
                .npu_mem_gib(48.0),
            small()
                .disagg(2, 2)
                .kv_link_gbps(32.0)
                .pairing(PairingPolicyKind::Sticky)
                .workload(WorkloadSpec::from(BurstyTraceSpec::prefill_heavy_mix(0.4, 7))),
            small().replicas(2).fleet(FleetSpec::autoscale(1, 3)).chaos(crate::ChaosSpec {
                replica_faults: vec![crate::ReplicaFaultSpec {
                    replica: 1,
                    kind: llmss_core::ReplicaFaultKind::Crash,
                    at_ms: 5.0,
                    recover_ms: Some(15.0),
                }],
                link_faults: vec![crate::LinkFaultSpec {
                    link: 0,
                    at_ms: 2.0,
                    recover_ms: Some(4.0),
                    degrade_to_gbps: 8.0,
                }],
                ..crate::ChaosSpec::default()
            }),
        ];
        for s in scenarios {
            let toml_back = Scenario::from_toml(&s.to_toml()).unwrap();
            assert_eq!(toml_back, s, "TOML round trip:\n{}", s.to_toml());
            let json_back = Scenario::from_json(&s.to_json()).unwrap();
            assert_eq!(json_back, s, "JSON round trip:\n{}", s.to_json());
            // Canonical text is stable: emit(parse(emit(x))) == emit(x).
            assert_eq!(toml_back.to_toml(), s.to_toml());
        }
    }

    #[test]
    fn sparse_files_start_from_defaults() {
        let s = Scenario::from_toml("model = \"gpt3-7b\"\nreplicas = 2\n").unwrap();
        assert_eq!(s.model, "gpt3-7b");
        assert_eq!(s.replicas, 2);
        assert_eq!(s.npus, Scenario::default().npus);
        assert_eq!(s.workload, WorkloadSpec::default());
    }

    #[test]
    fn unknown_file_keys_are_schema_drift() {
        let err = Scenario::from_toml("modle = \"gpt2\"\n").unwrap_err();
        assert!(matches!(err, ScenarioError::UnknownKey { .. }), "{err}");
        let err =
            Scenario::from_toml("[kv_bucket]\nmin_tokens = 1\nmax_token = 2\n").unwrap_err();
        assert!(matches!(err, ScenarioError::UnknownKey { .. }), "{err}");
        let err =
            Scenario::from_toml("[workload]\nkind = \"synthetic\"\nrte = 1.0\n").unwrap_err();
        assert!(matches!(err, ScenarioError::Parse { .. }), "{err}");
    }

    #[test]
    fn file_field_order_does_not_couple_seed_and_workload() {
        // Top-level seed listed *after* the workload table must not
        // clobber the workload's own explicit seed.
        let s = Scenario::from_toml("[workload]\nkind = \"synthetic\"\nseed = 7\n").unwrap();
        assert!(matches!(s.workload, WorkloadSpec::Synthetic { seed: 7, .. }));
        assert_eq!(s.seed, 42);
    }

    #[test]
    fn fabric_keys_route_into_the_table() {
        let mut s = small().disagg(2, 2);
        s.set("fabric.topology", "star4").unwrap();
        s.set("fabric.trunk_gbps", "16").unwrap();
        s.set("fabric.sharing", "fair").unwrap();
        let fabric = s.fabric.as_ref().unwrap();
        assert_eq!(fabric.topology.as_deref(), Some("star4"));
        assert_eq!(fabric.trunk_gbps, Some(16.0));
        s.validate().unwrap();
        // The bare key is topology shorthand; `none` clears the table.
        s.set("fabric", "clique4").unwrap();
        assert_eq!(s.fabric.as_ref().unwrap().topology.as_deref(), Some("clique4"));
        s.set("fabric", "none").unwrap();
        assert!(s.fabric.is_none());
        assert!(matches!(
            s.set("fabric.sharing", "lottery"),
            Err(ScenarioError::UnknownValue { .. })
        ));
    }

    #[test]
    fn chaos_keys_route_into_the_table() {
        let mut s = small().replicas(2).fleet(FleetSpec::autoscale(1, 3));
        s.set("chaos.crash_rate_per_s", "2.0").unwrap();
        s.set("chaos.seed", "9").unwrap();
        s.set("chaos.max_retries", "5").unwrap();
        let chaos = s.chaos.as_ref().unwrap();
        assert_eq!(chaos.crash_rate_per_s, 2.0);
        assert_eq!(chaos.seed, 9);
        assert_eq!(chaos.max_retries, 5);
        s.validate().unwrap();
        // `none` clears the table; anything else is not a bare value.
        assert!(matches!(s.set("chaos", "on"), Err(ScenarioError::UnknownValue { .. })));
        s.set("chaos", "none").unwrap();
        assert!(s.chaos.is_none());
        assert!(matches!(
            s.set("chaos.crash_rate", "1"),
            Err(ScenarioError::UnknownKey { .. })
        ));
    }

    #[test]
    fn chaos_needs_a_fleet_to_strike() {
        let mut s = small().replicas(2);
        s.set("chaos.crash_rate_per_s", "1.0").unwrap();
        let err = s.validate().unwrap_err();
        assert!(matches!(err, ScenarioError::Conflict { .. }), "{err}");
        // An inert [chaos] table is fine anywhere: it injects nothing.
        let mut inert = small().replicas(2);
        inert.set("chaos.seed", "3").unwrap();
        inert.validate().unwrap();
    }

    #[test]
    fn chaos_fault_targets_are_bounds_checked_at_build() {
        let mut s = small().replicas(2).fleet(FleetSpec::default());
        s.chaos = Some(crate::ChaosSpec {
            replica_faults: vec![crate::ReplicaFaultSpec {
                replica: 7,
                kind: llmss_core::ReplicaFaultKind::Crash,
                at_ms: 1.0,
                recover_ms: Some(2.0),
            }],
            ..crate::ChaosSpec::default()
        });
        s.validate().unwrap();
        let err = s.build().unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidValue { .. }), "{err}");
        // Autoscale raises the ceiling to max_replicas.
        let mut auto = s.clone();
        auto.fleet = Some(FleetSpec::autoscale(1, 8));
        auto.build().unwrap();
    }

    #[test]
    fn fabric_needs_kv_transfers_to_carry() {
        use crate::FabricSpec;
        for s in [small(), small().replicas(2)] {
            let err = s.fabric(FabricSpec::default()).validate().unwrap_err();
            assert!(matches!(err, ScenarioError::Conflict { .. }), "{err}");
        }
        // Pinned topology sizes must match the fleet at validation time.
        let err =
            small().disagg(1, 1).fabric(FabricSpec::named("star4")).validate().unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidValue { .. }), "{err}");
    }

    #[test]
    fn fabric_scenarios_round_trip_and_run() {
        use crate::FabricSpec;
        let mut spec = FabricSpec::named("star2");
        spec.trunk_gbps = Some(32.0);
        let s = small().disagg(1, 1).fabric(spec);
        let back = Scenario::from_toml(&s.to_toml()).unwrap();
        assert_eq!(back, s, "TOML round trip:\n{}", s.to_toml());
        let report = s.run().unwrap();
        assert_eq!(report.total_completions(), 4);
        // The string shorthand builds the same fair fabric.
        let short = Scenario::from_toml("disagg = \"1x1\"\nfabric = \"star2\"\n").unwrap();
        assert_eq!(short.fabric, Some(FabricSpec::named("star2")));
    }

    #[test]
    fn kv_bucket_spellings() {
        let fixed = Scenario::from_toml("kv_bucket = 64\n").unwrap();
        assert_eq!(fixed.kv_bucket, KvBucket::Fixed { tokens: 64 });
        let named = Scenario::from_toml("kv_bucket = \"adaptive\"\n").unwrap();
        assert_eq!(named.kv_bucket, KvBucket::adaptive());
        let table = Scenario::from_toml(
            "[kv_bucket]\nmin_tokens = 2\nmax_tokens = 32\ntarget_hit_rate = 0.5\nwindow = 16\n",
        )
        .unwrap();
        assert_eq!(
            table.kv_bucket,
            KvBucket::Adaptive {
                min_tokens: 2,
                max_tokens: 32,
                target_hit_rate: 0.5,
                window: 16
            }
        );
    }
}
