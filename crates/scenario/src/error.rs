//! Typed scenario errors: every way a scenario can fail to describe a
//! runnable experiment, with a message good enough to fix the file.

use llmss_core::ConfigError;
use llmss_sched::WorkloadError;

/// Why a scenario could not be parsed, validated, built, or run.
///
/// The CLI exits with these messages directly; bad flag combinations and
/// bad scenario files fail here, at build time, instead of panicking deep
/// inside a simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The named model is not in the catalog.
    UnknownModel {
        /// The requested model name.
        name: String,
    },
    /// A field's value does not parse or names an unknown variant.
    UnknownValue {
        /// The scenario field.
        field: String,
        /// The offending value.
        value: String,
        /// What would have been accepted.
        expected: String,
    },
    /// A field's value parsed but is out of its valid range.
    InvalidValue {
        /// The scenario field.
        field: String,
        /// What is wrong with it.
        message: String,
    },
    /// Two valid fields that cannot be combined.
    Conflict {
        /// The cross-field constraint that failed.
        message: String,
    },
    /// A key that is not part of the scenario schema (a typo in a file,
    /// an unknown `--set`, or a stale sweep axis).
    UnknownKey {
        /// The unrecognized key.
        key: String,
    },
    /// The underlying simulator configuration could not be realized
    /// (invalid parallelism, model does not fit in memory, ...).
    Config(ConfigError),
    /// The workload could not be materialized.
    Workload(WorkloadError),
    /// A scenario/sweep file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The filesystem error.
        message: String,
    },
    /// A scenario/sweep document is not valid TOML/JSON or does not
    /// match the schema.
    Parse {
        /// The codec's description of the failure.
        message: String,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::UnknownModel { name } => write!(f, "unknown model '{name}'"),
            ScenarioError::UnknownValue { field, value, expected } => {
                write!(f, "{field}: unknown value '{value}' (expected {expected})")
            }
            ScenarioError::InvalidValue { field, message } => write!(f, "{field}: {message}"),
            ScenarioError::Conflict { message } => write!(f, "conflicting scenario: {message}"),
            ScenarioError::UnknownKey { key } => {
                write!(f, "unknown scenario key '{key}' (see `Scenario::KEYS` for the schema)")
            }
            ScenarioError::Config(e) => write!(f, "{e}"),
            ScenarioError::Workload(e) => write!(f, "{e}"),
            ScenarioError::Io { path, message } => write!(f, "{path}: {message}"),
            ScenarioError::Parse { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<ConfigError> for ScenarioError {
    fn from(e: ConfigError) -> Self {
        ScenarioError::Config(e)
    }
}

impl From<WorkloadError> for ScenarioError {
    fn from(e: WorkloadError) -> Self {
        ScenarioError::Workload(e)
    }
}
