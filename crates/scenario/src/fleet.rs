//! The `[fleet]` scenario table: heterogeneous fleets and runtime
//! control planes (role flexing, autoscaling) as declarative values.
//!
//! A scenario with a `[fleet]` table builds a
//! [`FleetEngine`](llmss_core::FleetEngine) directly instead of the
//! cluster/disagg wrappers:
//!
//! ```toml
//! [fleet]
//! control = "autoscale"    # static | flex | autoscale
//! tick_ms = 1.0
//! min_replicas = 1
//! max_replicas = 4
//! queue_high = 4.0
//! queue_low = 0.5
//! warmup_ms = 5.0
//!
//! [[fleet.replica]]        # optional per-replica config list
//! npus = 1                 # (heterogeneous fleet; omit for a
//! [[fleet.replica]]        #  homogeneous fleet of `replicas`)
//! npus = 2
//! max_batch = 8
//! ```
//!
//! Each `[[fleet.replica]]` entry overrides the base scenario's replica
//! configuration for that slot; a `role` of `prefill`/`decode` builds a
//! disaggregation-style fleet wired through the scenario's
//! `kv_link_gbps` link.

use llmss_core::ReplicaRole;
use serde::Value;

use crate::ScenarioError;

/// Which control plane drives the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FleetControlKind {
    /// A fixed router/pairer, no reconfiguration (today's behavior).
    Static,
    /// Prefill/decode role flexing with drain semantics.
    Flex,
    /// Queue-depth autoscaling between `min..max` replicas.
    Autoscale,
}

impl FleetControlKind {
    /// The scenario-file spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            FleetControlKind::Static => "static",
            FleetControlKind::Flex => "flex",
            FleetControlKind::Autoscale => "autoscale",
        }
    }
}

impl std::fmt::Display for FleetControlKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for FleetControlKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "static" => Ok(FleetControlKind::Static),
            "flex" => Ok(FleetControlKind::Flex),
            "autoscale" => Ok(FleetControlKind::Autoscale),
            other => Err(format!(
                "unknown fleet control '{other}' (expected static | flex | autoscale)"
            )),
        }
    }
}

/// One `[[fleet.replica]]` entry: per-replica overrides of the base
/// scenario's replica configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaOverride {
    /// The replica's serving role (`unified` unless set).
    pub role: ReplicaRole,
    /// NPUs for this replica (base scenario's `npus` unless set).
    pub npus: Option<usize>,
    /// Batch cap for this replica.
    pub max_batch: Option<usize>,
    /// Batching delay for this replica, in milliseconds.
    pub batch_delay_ms: Option<f64>,
    /// Per-NPU memory override for this replica, in GiB.
    pub npu_mem_gib: Option<f64>,
}

impl Default for ReplicaOverride {
    fn default() -> Self {
        Self {
            role: ReplicaRole::Unified,
            npus: None,
            max_batch: None,
            batch_delay_ms: None,
            npu_mem_gib: None,
        }
    }
}

impl ReplicaOverride {
    /// An override that only sets the serving role.
    pub fn role(role: ReplicaRole) -> Self {
        Self { role, ..Self::default() }
    }

    fn to_value(self) -> Value {
        let opt_int = |v: Option<usize>| match v {
            Some(n) => Value::Int(n as i128),
            None => Value::Null,
        };
        let opt_float = |v: Option<f64>| match v {
            Some(f) => Value::Float(f),
            None => Value::Null,
        };
        Value::Object(vec![
            ("role".into(), Value::Str(self.role.to_string())),
            ("npus".into(), opt_int(self.npus)),
            ("max_batch".into(), opt_int(self.max_batch)),
            ("batch_delay_ms".into(), opt_float(self.batch_delay_ms)),
            ("npu_mem_gib".into(), opt_float(self.npu_mem_gib)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, ScenarioError> {
        let Value::Object(fields) = v else {
            return Err(ScenarioError::Parse {
                message: format!("fleet.replica: expected a table, got {v:?}"),
            });
        };
        let bad = |field: &str, v: &Value, expected: &str| ScenarioError::UnknownValue {
            field: format!("fleet.replica.{field}"),
            value: format!("{v:?}"),
            expected: expected.into(),
        };
        let mut over = ReplicaOverride::default();
        for (key, v) in fields {
            match key.as_str() {
                "role" => {
                    let Value::Str(s) = v else {
                        return Err(bad("role", v, "unified | prefill | decode"));
                    };
                    over.role = s.parse().map_err(|e: String| ScenarioError::UnknownValue {
                        field: "fleet.replica.role".into(),
                        value: s.clone(),
                        expected: e,
                    })?;
                }
                "npus" => {
                    over.npus = opt_usize(v).ok_or_else(|| bad("npus", v, "an NPU count"))?
                }
                "max_batch" => {
                    over.max_batch =
                        opt_usize(v).ok_or_else(|| bad("max_batch", v, "a batch size"))?
                }
                "batch_delay_ms" => {
                    over.batch_delay_ms =
                        opt_f64(v).ok_or_else(|| bad("batch_delay_ms", v, "milliseconds"))?
                }
                "npu_mem_gib" => {
                    over.npu_mem_gib = opt_f64(v).ok_or_else(|| bad("npu_mem_gib", v, "GiB"))?
                }
                other => {
                    return Err(ScenarioError::UnknownKey {
                        key: format!("fleet.replica.{other}"),
                    })
                }
            }
        }
        Ok(over)
    }
}

fn opt_usize(v: &Value) -> Option<Option<usize>> {
    match v {
        Value::Null => Some(None),
        Value::Int(i) => usize::try_from(*i).ok().map(Some),
        _ => None,
    }
}

fn opt_f64(v: &Value) -> Option<Option<f64>> {
    match v {
        Value::Null => Some(None),
        Value::Float(f) => Some(Some(*f)),
        Value::Int(i) => Some(Some(*i as f64)),
        _ => None,
    }
}

/// The `[fleet]` table: control-plane selection, policy knobs, and the
/// optional per-replica config list.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Which control plane drives the fleet.
    pub control: FleetControlKind,
    /// Control tick period in milliseconds (flex/autoscale).
    pub tick_ms: f64,
    /// Per-replica overrides (`[[fleet.replica]]`); empty means a
    /// homogeneous fleet of the scenario's `replicas`.
    pub replicas: Vec<ReplicaOverride>,
    /// Flex: consecutive idle ticks before a prefill replica flexes.
    pub flex_idle_ticks: u32,
    /// Flex: prefill-role replicas that must always remain.
    pub min_prefill: usize,
    /// Autoscale: fleet-size floor.
    pub min_replicas: usize,
    /// Autoscale: fleet-size ceiling.
    pub max_replicas: usize,
    /// Autoscale: mean queue depth per replica above which to scale up.
    pub queue_high: f64,
    /// Autoscale: mean queue depth per replica below which to scale down.
    pub queue_low: f64,
    /// Autoscale: warm-up delay before a new replica takes work, in
    /// milliseconds.
    pub warmup_ms: f64,
    /// Worker-thread budget for windowed fleet stepping (1 = the
    /// per-event serial loop; outcomes are byte-identical under any
    /// value).
    pub shards: usize,
    /// Whether homogeneous replicas share one fleet-wide reuse cache.
    pub shared_cache: bool,
}

impl Default for FleetSpec {
    fn default() -> Self {
        Self {
            control: FleetControlKind::Static,
            tick_ms: 1.0,
            replicas: Vec::new(),
            flex_idle_ticks: 2,
            min_prefill: 1,
            min_replicas: 1,
            max_replicas: 4,
            queue_high: 4.0,
            queue_low: 0.5,
            warmup_ms: 5.0,
            shards: 1,
            shared_cache: false,
        }
    }
}

impl FleetSpec {
    /// An autoscaling fleet between `min` and `max` replicas.
    pub fn autoscale(min: usize, max: usize) -> Self {
        Self {
            control: FleetControlKind::Autoscale,
            min_replicas: min,
            max_replicas: max,
            ..Self::default()
        }
    }

    /// A flexing prefill/decode fleet with the given per-pool sizes.
    pub fn flex(prefill: usize, decode: usize) -> Self {
        let mut replicas = vec![ReplicaOverride::role(ReplicaRole::Prefill); prefill];
        replicas.extend(vec![ReplicaOverride::role(ReplicaRole::Decode); decode]);
        Self { control: FleetControlKind::Flex, replicas, ..Self::default() }
    }

    /// A static fleet with the given per-replica roles.
    pub fn with_roles(roles: &[ReplicaRole]) -> Self {
        Self {
            replicas: roles.iter().map(|&r| ReplicaOverride::role(r)).collect(),
            ..Self::default()
        }
    }

    /// Sets one knob by its serialized sub-key (the `fleet.*` surface of
    /// [`Scenario::set`](crate::Scenario::set) — sweep axes and `--set`).
    /// The per-replica list is not string-addressable.
    pub(crate) fn set(&mut self, key: &str, value: &str) -> Result<(), ScenarioError> {
        fn parse<T: std::str::FromStr>(field: &str, value: &str) -> Result<T, ScenarioError>
        where
            T::Err: std::fmt::Display,
        {
            value.parse().map_err(|e| ScenarioError::UnknownValue {
                field: format!("fleet.{field}"),
                value: value.into(),
                expected: format!("{e}"),
            })
        }
        match key {
            "control" => self.control = parse(key, value)?,
            "tick_ms" => self.tick_ms = parse(key, value)?,
            "flex_idle_ticks" => self.flex_idle_ticks = parse(key, value)?,
            "min_prefill" => self.min_prefill = parse(key, value)?,
            "min_replicas" => self.min_replicas = parse(key, value)?,
            "max_replicas" => self.max_replicas = parse(key, value)?,
            "queue_high" => self.queue_high = parse(key, value)?,
            "queue_low" => self.queue_low = parse(key, value)?,
            "warmup_ms" => self.warmup_ms = parse(key, value)?,
            "shards" => self.shards = parse(key, value)?,
            "shared_cache" => self.shared_cache = parse(key, value)?,
            other => return Err(ScenarioError::UnknownKey { key: format!("fleet.{other}") }),
        }
        Ok(())
    }

    /// Renders the table as a value tree in canonical key order. The
    /// sharding knobs appear only when set off their defaults, so value
    /// trees of pre-sharding scenarios keep their historical bytes.
    pub(crate) fn to_value(&self) -> Value {
        let mut fields = vec![
            ("control".into(), Value::Str(self.control.as_str().into())),
            ("tick_ms".into(), Value::Float(self.tick_ms)),
            ("flex_idle_ticks".into(), Value::Int(self.flex_idle_ticks as i128)),
            ("min_prefill".into(), Value::Int(self.min_prefill as i128)),
            ("min_replicas".into(), Value::Int(self.min_replicas as i128)),
            ("max_replicas".into(), Value::Int(self.max_replicas as i128)),
            ("queue_high".into(), Value::Float(self.queue_high)),
            ("queue_low".into(), Value::Float(self.queue_low)),
            ("warmup_ms".into(), Value::Float(self.warmup_ms)),
        ];
        if self.shards != 1 {
            fields.push(("shards".into(), Value::Int(self.shards as i128)));
        }
        if self.shared_cache {
            fields.push(("shared_cache".into(), Value::Bool(self.shared_cache)));
        }
        fields.push((
            "replica".into(),
            Value::Array(self.replicas.iter().map(|r| r.to_value()).collect()),
        ));
        Value::Object(fields)
    }

    /// Rebuilds the table from a value tree with typed errors.
    pub(crate) fn from_value(v: &Value) -> Result<Self, ScenarioError> {
        let Value::Object(fields) = v else {
            return Err(ScenarioError::Parse {
                message: format!("fleet: expected a table, got {v:?}"),
            });
        };
        let mut spec = FleetSpec::default();
        for (key, value) in fields {
            if key == "replica" {
                let Value::Array(items) = value else {
                    return Err(ScenarioError::Parse {
                        message: format!("fleet.replica: expected an array, got {value:?}"),
                    });
                };
                spec.replicas =
                    items.iter().map(ReplicaOverride::from_value).collect::<Result<_, _>>()?;
                continue;
            }
            let text = match value {
                Value::Str(s) => s.clone(),
                Value::Int(i) => i.to_string(),
                Value::Float(f) => format!("{f:?}"),
                Value::Bool(b) => b.to_string(),
                other => {
                    return Err(ScenarioError::UnknownValue {
                        field: format!("fleet.{key}"),
                        value: format!("{other:?}"),
                        expected: "a scalar".into(),
                    })
                }
            };
            spec.set(key, &text)?;
        }
        Ok(spec)
    }

    /// The fleet size this spec implies given the scenario's `replicas`
    /// field: the per-replica list's length when present.
    pub fn size(&self, scenario_replicas: usize) -> usize {
        if self.replicas.is_empty() {
            scenario_replicas
        } else {
            self.replicas.len()
        }
    }

    /// Role of replica `i` (unified when the list is absent or short).
    pub fn role_of(&self, i: usize) -> ReplicaRole {
        self.replicas.get(i).map_or(ReplicaRole::Unified, |r| r.role)
    }

    /// Whether any replica holds the prefill role (the fleet then needs
    /// a KV link and at least one decode replica).
    pub fn has_prefill(&self) -> bool {
        self.replicas.iter().any(|r| r.role == ReplicaRole::Prefill)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_kind_round_trips() {
        for kind in
            [FleetControlKind::Static, FleetControlKind::Flex, FleetControlKind::Autoscale]
        {
            let parsed: FleetControlKind = kind.as_str().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("nope".parse::<FleetControlKind>().is_err());
    }

    #[test]
    fn value_round_trip_is_lossless() {
        let mut spec = FleetSpec::flex(2, 1);
        spec.replicas[0].npus = Some(2);
        spec.replicas[2].max_batch = Some(8);
        spec.tick_ms = 0.5;
        let back = FleetSpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn unknown_keys_are_schema_drift() {
        let mut spec = FleetSpec::default();
        assert!(matches!(spec.set("mni_replicas", "1"), Err(ScenarioError::UnknownKey { .. })));
        let v = Value::Object(vec![(
            "replica".into(),
            Value::Array(vec![Value::Object(vec![("roel".into(), Value::Str("x".into()))])]),
        )]);
        assert!(matches!(FleetSpec::from_value(&v), Err(ScenarioError::UnknownKey { .. })));
    }

    #[test]
    fn size_and_roles_follow_the_list() {
        let spec = FleetSpec::flex(2, 1);
        assert_eq!(spec.size(1), 3);
        assert_eq!(spec.role_of(0), ReplicaRole::Prefill);
        assert_eq!(spec.role_of(2), ReplicaRole::Decode);
        assert!(spec.has_prefill());
        let homogeneous = FleetSpec::autoscale(1, 4);
        assert_eq!(homogeneous.size(2), 2);
        assert!(!homogeneous.has_prefill());
    }
}
