//! One `Scenario` API: the unified workload/simulator/report surface.
//!
//! LLMServingSim grew three sibling front-ends — single-replica serving
//! (`llmss-core`), routed clusters (`llmss-cluster`), and disaggregated
//! prefill/decode deployments (`llmss-disagg`) — each with its own config
//! struct, report type, and CLI plumbing, so every new serving technique
//! paid an O(front-ends) integration tax. This crate collapses that into
//! one composable experiment surface (the direction LLMServingSim 2.0's
//! "unified simulator" takes):
//!
//! * [`Scenario`] — a typed, chainable, *declarative* description of an
//!   experiment: model, hardware, serving-technique knobs, fleet shape,
//!   workload. Cross-field constraints are validated at
//!   [`build`](Scenario::build) time with a typed [`ScenarioError`], and
//!   the value round-trips losslessly to TOML and JSON scenario files
//!   (unknown keys are schema drift and fail loudly).
//! * [`AnySimulator`] / [`AnyReport`] — the three serving shapes behind
//!   one value, driven through the
//!   [`Simulate`](llmss_core::Simulate) trait and written through the
//!   [`ReportOutput`](llmss_core::ReportOutput) writer, so drivers are
//!   written once.
//! * [`Sweep`] — cartesian parameter grids over a base scenario
//!   (`[sweep]` tables of a sweep file, or the [`Sweep::axis`] builder),
//!   one consolidated TSV row per point.
//!
//! # Examples
//!
//! Builder, file, and sweep are the same object:
//!
//! ```
//! use llmss_scenario::Scenario;
//! use llmss_sched::{Dataset, WorkloadSpec};
//!
//! let scenario = Scenario::model("gpt2").npus(1).tensor_parallel().workload(
//!     WorkloadSpec::Synthetic { dataset: Dataset::Alpaca, requests: 4, rate_per_s: 50.0, seed: 1 },
//! );
//! // ... serialize it for the repo ...
//! let file = scenario.to_toml();
//! // ... and a colleague reproduces the run from the file alone.
//! let report = Scenario::from_toml(&file)?.run()?;
//! assert_eq!(report.total_completions(), 4);
//! # Ok::<(), llmss_scenario::ScenarioError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod any;
mod chaos;
mod error;
mod fabric;
mod fleet;
mod scenario;
mod sweep;
mod telemetry;
pub mod toml;

pub use any::{AnyReport, AnySimulator};
pub use chaos::{ChaosSpec, LinkFaultSpec, ReplicaFaultSpec};
pub use error::ScenarioError;
pub use fabric::{FabricLink, FabricRoute, FabricSharing, FabricSpec};
pub use fleet::{FleetControlKind, FleetSpec, ReplicaOverride};
pub use scenario::{Scenario, ServingShape};
pub use sweep::{Sweep, SweepAxis, SweepPoint, SweepReport, SweepRow};
pub use telemetry::TelemetrySpec;
