//! The `[chaos]` scenario table: deterministic fault injection as
//! declarative values.
//!
//! A scenario with a `[chaos]` table arms the fleet engine's chaos
//! subsystem: explicit replica/link fault windows, seeded rate-based
//! crash injection, and the retry policy for requests a fault knocks
//! out:
//!
//! ```toml
//! [chaos]
//! seed = 7                  # stream for rate-based injection
//! crash_rate_per_s = 0.0    # Poisson crashes per replica per virtual second
//! mttr_ms = 10.0            # recovery time for rate-injected crashes
//! horizon_ms = 100.0        # injection horizon for rate-based crashes
//! max_retries = 3           # retry budget per knocked-out request
//! retry_backoff_ms = 1.0    # first retry backoff (virtual time)
//! retry_backoff_mult = 2.0  # geometric backoff growth
//!
//! [[chaos.replica_fault]]   # explicit fault windows
//! replica = 1
//! kind = "crash"            # crash | hang | drain
//! at_ms = 20.0
//! recover_ms = 60.0         # omit to stay down for the rest of the run
//!
//! [[chaos.link_fault]]
//! link = 0
//! at_ms = 10.0
//! recover_ms = 30.0
//! degrade_to_gbps = 8.0     # 0.0 = full partition (requires recover_ms)
//! ```
//!
//! Every scalar is reachable as a `chaos.*` key through
//! [`Scenario::set`](crate::Scenario::set), so fault intensity is a sweep
//! axis like any other knob. An absent table (or one that injects
//! nothing) leaves every report and trace byte-identical to a chaos-free
//! run; with faults, the same seed and table reproduce the same run
//! byte-for-byte.

use llmss_core::{ChaosSchedule, LinkFault, ReplicaFault, ReplicaFaultKind, RetryPolicy};
use llmss_sched::TimePs;
use serde::Value;

use crate::ScenarioError;

/// One `[[chaos.replica_fault]]` entry: an explicit replica fault
/// window in scenario (millisecond) units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaFaultSpec {
    /// The replica the fault hits.
    pub replica: usize,
    /// What the fault does while the replica is down.
    pub kind: ReplicaFaultKind,
    /// When the fault strikes, in virtual milliseconds.
    pub at_ms: f64,
    /// When the replica recovers; `None` leaves it down for the rest of
    /// the run (invalid for a hang).
    pub recover_ms: Option<f64>,
}

impl Default for ReplicaFaultSpec {
    fn default() -> Self {
        Self { replica: 0, kind: ReplicaFaultKind::Crash, at_ms: 0.0, recover_ms: None }
    }
}

impl ReplicaFaultSpec {
    fn to_value(self) -> Value {
        Value::Object(vec![
            ("replica".into(), Value::Int(self.replica as i128)),
            ("kind".into(), Value::Str(self.kind.to_string())),
            ("at_ms".into(), Value::Float(self.at_ms)),
            ("recover_ms".into(), opt_float(self.recover_ms)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, ScenarioError> {
        let Value::Object(fields) = v else {
            return Err(ScenarioError::Parse {
                message: format!("chaos.replica_fault: expected a table, got {v:?}"),
            });
        };
        let bad = |field: &str, v: &Value, expected: &str| ScenarioError::UnknownValue {
            field: format!("chaos.replica_fault.{field}"),
            value: format!("{v:?}"),
            expected: expected.into(),
        };
        let mut fault = ReplicaFaultSpec::default();
        for (key, v) in fields {
            match key.as_str() {
                "replica" => {
                    fault.replica =
                        index_of(v).ok_or_else(|| bad("replica", v, "a replica index"))?;
                }
                "kind" => {
                    let Value::Str(s) = v else {
                        return Err(bad("kind", v, "crash | hang | drain"));
                    };
                    fault.kind =
                        s.parse().map_err(|e: String| ScenarioError::UnknownValue {
                            field: "chaos.replica_fault.kind".into(),
                            value: s.clone(),
                            expected: e,
                        })?;
                }
                "at_ms" => {
                    fault.at_ms = f64_of(v).ok_or_else(|| bad("at_ms", v, "milliseconds"))?;
                }
                "recover_ms" => {
                    fault.recover_ms =
                        opt_f64(v).ok_or_else(|| bad("recover_ms", v, "milliseconds"))?;
                }
                other => {
                    return Err(ScenarioError::UnknownKey {
                        key: format!("chaos.replica_fault.{other}"),
                    })
                }
            }
        }
        Ok(fault)
    }
}

/// One `[[chaos.link_fault]]` entry: an explicit fabric-link
/// degradation window in scenario (millisecond) units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaultSpec {
    /// The fabric link index the fault hits.
    pub link: usize,
    /// When the degradation starts, in virtual milliseconds.
    pub at_ms: f64,
    /// When the link's original bandwidth is restored; `None` leaves it
    /// degraded for the rest of the run (invalid for a full partition).
    pub recover_ms: Option<f64>,
    /// Bandwidth while degraded, in GB/s. Zero partitions the link
    /// outright, which requires `recover_ms`.
    pub degrade_to_gbps: f64,
}

impl Default for LinkFaultSpec {
    fn default() -> Self {
        Self { link: 0, at_ms: 0.0, recover_ms: None, degrade_to_gbps: 0.0 }
    }
}

impl LinkFaultSpec {
    fn to_value(self) -> Value {
        Value::Object(vec![
            ("link".into(), Value::Int(self.link as i128)),
            ("at_ms".into(), Value::Float(self.at_ms)),
            ("recover_ms".into(), opt_float(self.recover_ms)),
            ("degrade_to_gbps".into(), Value::Float(self.degrade_to_gbps)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, ScenarioError> {
        let Value::Object(fields) = v else {
            return Err(ScenarioError::Parse {
                message: format!("chaos.link_fault: expected a table, got {v:?}"),
            });
        };
        let bad = |field: &str, v: &Value, expected: &str| ScenarioError::UnknownValue {
            field: format!("chaos.link_fault.{field}"),
            value: format!("{v:?}"),
            expected: expected.into(),
        };
        let mut fault = LinkFaultSpec::default();
        for (key, v) in fields {
            match key.as_str() {
                "link" => {
                    fault.link = index_of(v).ok_or_else(|| bad("link", v, "a link index"))?;
                }
                "at_ms" => {
                    fault.at_ms = f64_of(v).ok_or_else(|| bad("at_ms", v, "milliseconds"))?;
                }
                "recover_ms" => {
                    fault.recover_ms =
                        opt_f64(v).ok_or_else(|| bad("recover_ms", v, "milliseconds"))?;
                }
                "degrade_to_gbps" => {
                    fault.degrade_to_gbps =
                        f64_of(v).ok_or_else(|| bad("degrade_to_gbps", v, "GB/s"))?;
                }
                other => {
                    return Err(ScenarioError::UnknownKey {
                        key: format!("chaos.link_fault.{other}"),
                    })
                }
            }
        }
        Ok(fault)
    }
}

fn opt_float(v: Option<f64>) -> Value {
    match v {
        Some(f) => Value::Float(f),
        None => Value::Null,
    }
}

fn index_of(v: &Value) -> Option<usize> {
    match v {
        Value::Int(i) => usize::try_from(*i).ok(),
        _ => None,
    }
}

fn f64_of(v: &Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(*f),
        Value::Int(i) => Some(*i as f64),
        _ => None,
    }
}

fn opt_f64(v: &Value) -> Option<Option<f64>> {
    match v {
        Value::Null => Some(None),
        _ => f64_of(v).map(Some),
    }
}

/// The `[chaos]` table: explicit fault windows, seeded rate-based crash
/// injection, and the retry policy for knocked-out requests.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Stream seed for rate-based injection (same seed, same faults).
    pub seed: u64,
    /// Poisson crash rate per replica, in faults per virtual second.
    /// Zero disables rate-based injection.
    pub crash_rate_per_s: f64,
    /// Mean time to recovery for rate-injected crashes, in milliseconds.
    pub mttr_ms: f64,
    /// Injection horizon for rate-based crashes, in milliseconds.
    pub horizon_ms: f64,
    /// Retry budget per knocked-out request before it is abandoned.
    pub max_retries: u32,
    /// Backoff before the first retry, in virtual milliseconds.
    pub retry_backoff_ms: f64,
    /// Multiplier applied to the backoff on each further retry.
    pub retry_backoff_mult: f64,
    /// Explicit replica fault windows (`[[chaos.replica_fault]]`).
    pub replica_faults: Vec<ReplicaFaultSpec>,
    /// Explicit link fault windows (`[[chaos.link_fault]]`).
    pub link_faults: Vec<LinkFaultSpec>,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        let retry = RetryPolicy::default();
        Self {
            seed: 0,
            crash_rate_per_s: 0.0,
            mttr_ms: 10.0,
            horizon_ms: 100.0,
            max_retries: retry.max_retries,
            retry_backoff_ms: retry.backoff_ps as f64 / 1e9,
            retry_backoff_mult: retry.backoff_multiplier,
            replica_faults: Vec::new(),
            link_faults: Vec::new(),
        }
    }
}

impl ChaosSpec {
    /// Whether the table injects anything at all. A `[chaos]` table that
    /// injects nothing leaves the run byte-identical to a chaos-free
    /// one, so the engine is only armed when this is true.
    pub fn enabled(&self) -> bool {
        !self.replica_faults.is_empty()
            || !self.link_faults.is_empty()
            || self.crash_rate_per_s > 0.0
    }

    /// Checks the table's own constraints.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a typed
    /// [`ScenarioError`].
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let invalid = |field: String, message: String| {
            Err(ScenarioError::InvalidValue { field, message })
        };
        if !self.crash_rate_per_s.is_finite() || self.crash_rate_per_s < 0.0 {
            return invalid(
                "chaos.crash_rate_per_s".into(),
                format!("the crash rate must be non-negative, got {}", self.crash_rate_per_s),
            );
        }
        for (field, value) in [
            ("chaos.mttr_ms", self.mttr_ms),
            ("chaos.horizon_ms", self.horizon_ms),
            ("chaos.retry_backoff_ms", self.retry_backoff_ms),
        ] {
            if !value.is_finite() || value <= 0.0 {
                return invalid(field.into(), format!("must be positive, got {value}"));
            }
        }
        if !self.retry_backoff_mult.is_finite() || self.retry_backoff_mult < 1.0 {
            return invalid(
                "chaos.retry_backoff_mult".into(),
                format!(
                    "the backoff multiplier must be at least 1, got {}",
                    self.retry_backoff_mult
                ),
            );
        }
        for (i, fault) in self.replica_faults.iter().enumerate() {
            let field = |name: &str| format!("chaos.replica_fault[{i}].{name}");
            if !fault.at_ms.is_finite() || fault.at_ms < 0.0 {
                return invalid(
                    field("at_ms"),
                    format!("a fault time must be non-negative, got {}", fault.at_ms),
                );
            }
            match fault.recover_ms {
                Some(recover)
                    if !recover.is_finite() || ms_to_ps(recover) <= ms_to_ps(fault.at_ms) =>
                {
                    return invalid(
                        field("recover_ms"),
                        format!(
                            "recovery at {recover} ms must land after the fault at {} ms",
                            fault.at_ms
                        ),
                    );
                }
                None if fault.kind == ReplicaFaultKind::Hang => {
                    return invalid(
                        field("recover_ms"),
                        "a hang without a recovery time stalls forever".into(),
                    );
                }
                _ => {}
            }
        }
        for (i, fault) in self.link_faults.iter().enumerate() {
            let field = |name: &str| format!("chaos.link_fault[{i}].{name}");
            if !fault.at_ms.is_finite() || fault.at_ms < 0.0 {
                return invalid(
                    field("at_ms"),
                    format!("a fault time must be non-negative, got {}", fault.at_ms),
                );
            }
            if !fault.degrade_to_gbps.is_finite() || fault.degrade_to_gbps < 0.0 {
                return invalid(
                    field("degrade_to_gbps"),
                    format!(
                        "degraded bandwidth must be non-negative, got {}",
                        fault.degrade_to_gbps
                    ),
                );
            }
            match fault.recover_ms {
                Some(recover)
                    if !recover.is_finite() || ms_to_ps(recover) <= ms_to_ps(fault.at_ms) =>
                {
                    return invalid(
                        field("recover_ms"),
                        format!(
                            "recovery at {recover} ms must land after the fault at {} ms",
                            fault.at_ms
                        ),
                    );
                }
                None if fault.degrade_to_gbps == 0.0 => {
                    return invalid(
                        field("recover_ms"),
                        "a full partition without a recovery time stalls forever".into(),
                    );
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Compiles the table into the engine's [`ChaosSchedule`]: seeded
    /// rate-based crashes over `replicas`, then the explicit fault
    /// windows, all converted to picoseconds.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidValue`] for an explicit fault
    /// that targets a replica or link the deployment does not have.
    pub fn build(&self, replicas: usize, links: usize) -> Result<ChaosSchedule, ScenarioError> {
        let mut schedule = if self.crash_rate_per_s > 0.0 {
            ChaosSchedule::seeded(
                self.seed,
                self.crash_rate_per_s,
                ms_to_ps(self.mttr_ms),
                ms_to_ps(self.horizon_ms),
                replicas,
            )
        } else {
            ChaosSchedule::new()
        };
        for (i, fault) in self.replica_faults.iter().enumerate() {
            if fault.replica >= replicas {
                return Err(ScenarioError::InvalidValue {
                    field: format!("chaos.replica_fault[{i}].replica"),
                    message: format!(
                        "replica {} is out of range for a fleet that can reach {replicas} replicas",
                        fault.replica
                    ),
                });
            }
            schedule = schedule.replica_fault(ReplicaFault {
                replica: fault.replica,
                kind: fault.kind,
                at_ps: ms_to_ps(fault.at_ms),
                recover_ps: fault.recover_ms.map(ms_to_ps),
            });
        }
        for (i, fault) in self.link_faults.iter().enumerate() {
            if fault.link >= links {
                return Err(ScenarioError::InvalidValue {
                    field: format!("chaos.link_fault[{i}].link"),
                    message: format!(
                        "link {} is out of range for a fabric with {links} link(s)",
                        fault.link
                    ),
                });
            }
            schedule = schedule.link_fault(LinkFault {
                link: fault.link,
                at_ps: ms_to_ps(fault.at_ms),
                recover_ps: fault.recover_ms.map(ms_to_ps),
                degrade_to_gbps: fault.degrade_to_gbps,
            });
        }
        Ok(schedule.retry(RetryPolicy {
            max_retries: self.max_retries,
            backoff_ps: ms_to_ps(self.retry_backoff_ms),
            backoff_multiplier: self.retry_backoff_mult,
        }))
    }

    /// Sets one knob by its serialized sub-key (the `chaos.*` surface of
    /// [`Scenario::set`](crate::Scenario::set) — sweep axes and `--set`).
    /// The fault lists are not string-addressable.
    pub(crate) fn set(&mut self, key: &str, value: &str) -> Result<(), ScenarioError> {
        fn parse<T: std::str::FromStr>(field: &str, value: &str) -> Result<T, ScenarioError>
        where
            T::Err: std::fmt::Display,
        {
            value.parse().map_err(|e| ScenarioError::UnknownValue {
                field: format!("chaos.{field}"),
                value: value.into(),
                expected: format!("{e}"),
            })
        }
        match key {
            "seed" => self.seed = parse(key, value)?,
            "crash_rate_per_s" => self.crash_rate_per_s = parse(key, value)?,
            "mttr_ms" => self.mttr_ms = parse(key, value)?,
            "horizon_ms" => self.horizon_ms = parse(key, value)?,
            "max_retries" => self.max_retries = parse(key, value)?,
            "retry_backoff_ms" => self.retry_backoff_ms = parse(key, value)?,
            "retry_backoff_mult" => self.retry_backoff_mult = parse(key, value)?,
            other => return Err(ScenarioError::UnknownKey { key: format!("chaos.{other}") }),
        }
        Ok(())
    }

    /// Renders the table as a value tree in canonical key order.
    pub(crate) fn to_value(&self) -> Value {
        Value::Object(vec![
            ("seed".into(), Value::Int(i128::from(self.seed))),
            ("crash_rate_per_s".into(), Value::Float(self.crash_rate_per_s)),
            ("mttr_ms".into(), Value::Float(self.mttr_ms)),
            ("horizon_ms".into(), Value::Float(self.horizon_ms)),
            ("max_retries".into(), Value::Int(i128::from(self.max_retries))),
            ("retry_backoff_ms".into(), Value::Float(self.retry_backoff_ms)),
            ("retry_backoff_mult".into(), Value::Float(self.retry_backoff_mult)),
            (
                "replica_fault".into(),
                Value::Array(self.replica_faults.iter().map(|f| f.to_value()).collect()),
            ),
            (
                "link_fault".into(),
                Value::Array(self.link_faults.iter().map(|f| f.to_value()).collect()),
            ),
        ])
    }

    /// Rebuilds the table from a value tree with typed errors.
    pub(crate) fn from_value(v: &Value) -> Result<Self, ScenarioError> {
        let Value::Object(fields) = v else {
            return Err(ScenarioError::Parse {
                message: format!("chaos: expected a table, got {v:?}"),
            });
        };
        let mut spec = ChaosSpec::default();
        for (key, value) in fields {
            if key == "replica_fault" || key == "link_fault" {
                let Value::Array(items) = value else {
                    return Err(ScenarioError::Parse {
                        message: format!("chaos.{key}: expected an array, got {value:?}"),
                    });
                };
                if key == "replica_fault" {
                    spec.replica_faults = items
                        .iter()
                        .map(ReplicaFaultSpec::from_value)
                        .collect::<Result<_, _>>()?;
                } else {
                    spec.link_faults = items
                        .iter()
                        .map(LinkFaultSpec::from_value)
                        .collect::<Result<_, _>>()?;
                }
                continue;
            }
            let text = match value {
                Value::Null => "none".to_owned(),
                Value::Str(s) => s.clone(),
                Value::Int(i) => i.to_string(),
                Value::Float(f) => format!("{f:?}"),
                Value::Bool(b) => b.to_string(),
                other => {
                    return Err(ScenarioError::UnknownValue {
                        field: format!("chaos.{key}"),
                        value: format!("{other:?}"),
                        expected: "a scalar".into(),
                    })
                }
            };
            spec.set(key, &text)?;
        }
        Ok(spec)
    }
}

/// Scenario milliseconds to engine picoseconds (the repo-wide idiom).
fn ms_to_ps(ms: f64) -> TimePs {
    (ms * 1e9).round() as TimePs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash(replica: usize, at_ms: f64, recover_ms: Option<f64>) -> ReplicaFaultSpec {
        ReplicaFaultSpec { replica, kind: ReplicaFaultKind::Crash, at_ms, recover_ms }
    }

    #[test]
    fn value_round_trip_is_lossless() {
        let spec = ChaosSpec {
            seed: 42,
            crash_rate_per_s: 1.5,
            mttr_ms: 8.0,
            horizon_ms: 60.0,
            max_retries: 5,
            retry_backoff_ms: 0.5,
            retry_backoff_mult: 1.5,
            replica_faults: vec![
                crash(1, 20.0, Some(60.0)),
                ReplicaFaultSpec {
                    replica: 0,
                    kind: ReplicaFaultKind::Hang,
                    at_ms: 5.0,
                    recover_ms: Some(9.0),
                },
            ],
            link_faults: vec![LinkFaultSpec {
                link: 0,
                at_ms: 10.0,
                recover_ms: Some(30.0),
                degrade_to_gbps: 8.0,
            }],
        };
        let back = ChaosSpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(back, spec);
        let off = ChaosSpec::default();
        assert_eq!(ChaosSpec::from_value(&off.to_value()).unwrap(), off);
        assert!(!off.enabled());
        assert!(spec.enabled());
    }

    #[test]
    fn scalars_route_through_set() {
        let mut spec = ChaosSpec::default();
        spec.set("crash_rate_per_s", "2.0").unwrap();
        spec.set("seed", "9").unwrap();
        assert_eq!(spec.crash_rate_per_s, 2.0);
        assert_eq!(spec.seed, 9);
        assert!(spec.enabled(), "a positive crash rate arms injection");
        assert!(matches!(spec.set("crash_rate", "1"), Err(ScenarioError::UnknownKey { .. })));
        assert!(spec.set("seed", "banana").is_err());
    }

    #[test]
    fn validate_rejects_degenerate_windows() {
        let ok = ChaosSpec {
            replica_faults: vec![crash(0, 10.0, Some(20.0))],
            ..ChaosSpec::default()
        };
        assert!(ok.validate().is_ok());

        let backwards = ChaosSpec {
            replica_faults: vec![crash(0, 10.0, Some(10.0))],
            ..ChaosSpec::default()
        };
        assert!(backwards.validate().is_err(), "recovery must land after the fault");

        let eternal_hang = ChaosSpec {
            replica_faults: vec![ReplicaFaultSpec {
                kind: ReplicaFaultKind::Hang,
                at_ms: 1.0,
                ..ReplicaFaultSpec::default()
            }],
            ..ChaosSpec::default()
        };
        assert!(eternal_hang.validate().is_err(), "a hang needs a recovery time");

        let eternal_partition = ChaosSpec {
            link_faults: vec![LinkFaultSpec { at_ms: 1.0, ..LinkFaultSpec::default() }],
            ..ChaosSpec::default()
        };
        assert!(eternal_partition.validate().is_err(), "a partition needs a recovery time");

        let negative_rate = ChaosSpec { crash_rate_per_s: -1.0, ..ChaosSpec::default() };
        assert!(negative_rate.validate().is_err());
    }

    #[test]
    fn build_bounds_checks_targets_and_composes_injection() {
        let spec = ChaosSpec {
            crash_rate_per_s: 5.0,
            horizon_ms: 1000.0,
            replica_faults: vec![crash(1, 20.0, Some(60.0))],
            ..ChaosSpec::default()
        };
        let schedule = spec.build(2, 0).unwrap();
        assert!(
            schedule.replica_faults.len() > 1,
            "seeded crashes and the explicit window should both land"
        );
        assert_eq!(schedule.retry, RetryPolicy::default());
        assert!(spec.build(1, 0).is_err(), "replica 1 does not exist in a 1-replica fleet");

        let link = ChaosSpec {
            link_faults: vec![LinkFaultSpec {
                link: 2,
                at_ms: 1.0,
                recover_ms: Some(2.0),
                degrade_to_gbps: 1.0,
            }],
            ..ChaosSpec::default()
        };
        assert!(link.build(4, 1).is_err(), "link 2 does not exist in a 1-link fabric");
        assert!(link.build(4, 3).is_ok());
    }
}
