//! Pluggable traffic sources: the [`Workload`] trait and the declarative
//! [`WorkloadSpec`] value behind it.
//!
//! Every front-end used to dispatch on CLI strings to decide where its
//! requests came from; a workload is now a *value* that any driver can
//! materialize into a request trace:
//!
//! * [`WorkloadSpec::Synthetic`] — the paper's ShareGPT/Alpaca-like
//!   length models with seeded Poisson arrivals ([`TraceGenerator`]).
//! * [`WorkloadSpec::Bursty`] — skewed, bursty routing-experiment traffic
//!   ([`BurstyTraceSpec`], moved here from `llmss-cluster` so schedulers,
//!   clusters, and scenario files all share one generator), including the
//!   prefill-/decode-heavy mixture knobs.
//! * [`WorkloadSpec::TraceFile`] — the artifact's TSV trace format.
//!
//! `WorkloadSpec` serializes to a `kind`-tagged object (the `[workload]`
//! table of a scenario file) and rejects unknown keys, so scenario-file
//! schema drift fails loudly instead of silently ignoring a typo.
//!
//! # Examples
//!
//! ```
//! use llmss_sched::{Dataset, Workload, WorkloadSpec};
//!
//! let spec = WorkloadSpec::Synthetic {
//!     dataset: Dataset::Alpaca,
//!     requests: 8,
//!     rate_per_s: 100.0,
//!     seed: 7,
//! };
//! let trace = spec.materialize().unwrap();
//! assert_eq!(trace.len(), 8);
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Error, Serialize, Value};

use crate::{trace_from_tsv, Dataset, Request, TimePs, TraceGenerator};

/// Shape of a bursty, size-skewed trace.
///
/// Requests arrive in `bursts` bursts of `burst_size`, separated by
/// `burst_gap_ms` of silence. Within a burst, arrivals are 1 µs apart
/// (ordered, effectively simultaneous at serving timescales) unless
/// `poisson_rate_per_s` is set, in which case intra-burst gaps are drawn
/// from a seeded exponential distribution (a Poisson arrival process).
///
/// Heavy requests carry the `heavy` input/output token counts; the rest
/// use `light`. Placement is either *periodic* (every `heavy_every`-th
/// request by global index — deliberately adversarial to round-robin:
/// when `heavy_every` is a multiple of the replica count, round-robin
/// funnels *all* heavy requests to the same replicas) or *stochastic*
/// (`heavy_frac > 0`: each request is heavy with that probability,
/// seeded). The heavy/light pairs double as the long-prompt/short-decode
/// mixture knob for disaggregation experiments — see
/// [`prefill_heavy_mix`](Self::prefill_heavy_mix) and
/// [`decode_heavy_mix`](Self::decode_heavy_mix).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstyTraceSpec {
    /// Number of bursts.
    pub bursts: usize,
    /// Requests per burst.
    pub burst_size: usize,
    /// Idle gap between bursts, in milliseconds.
    pub burst_gap_ms: f64,
    /// Every `heavy_every`-th request is heavy (0 disables the periodic
    /// rule; ignored when `heavy_frac > 0`).
    pub heavy_every: usize,
    /// Probability that any given request is heavy (0.0 keeps the
    /// periodic `heavy_every` rule).
    pub heavy_frac: f64,
    /// `(input_len, output_len)` of light requests.
    pub light: (usize, usize),
    /// `(input_len, output_len)` of heavy requests.
    pub heavy: (usize, usize),
    /// Mean intra-burst arrival rate in requests/s; 0.0 keeps the fixed
    /// 1 µs spacing, > 0 draws exponential inter-arrival gaps.
    pub poisson_rate_per_s: f64,
    /// Seed for the stochastic knobs (`heavy_frac`,
    /// `poisson_rate_per_s`).
    pub seed: u64,
}

impl Default for BurstyTraceSpec {
    fn default() -> Self {
        Self {
            bursts: 8,
            burst_size: 25,
            burst_gap_ms: 40.0,
            heavy_every: 4,
            heavy_frac: 0.0,
            light: (32, 8),
            heavy: (512, 64),
            poisson_rate_per_s: 0.0,
            seed: 0,
        }
    }
}

impl BurstyTraceSpec {
    /// Total requests the spec generates.
    pub fn total_requests(&self) -> usize {
        self.bursts * self.burst_size
    }

    /// A prefill-heavy mixture: `frac` of requests carry long prompts
    /// with short decodes (the disaggregation sweet spot — big KV builds
    /// that stall co-batched decoders), the rest are light conversational
    /// requests. Arrivals within a burst follow a seeded Poisson process.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is outside `[0, 1]`.
    pub fn prefill_heavy_mix(frac: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&frac), "mixture fraction must be in [0, 1]");
        Self {
            heavy: (1024, 8), // long prompt, short decode
            light: (32, 48),
            heavy_every: 0,
            heavy_frac: frac,
            poisson_rate_per_s: 5_000.0,
            seed,
            ..Self::default()
        }
    }

    /// A decode-heavy mixture: `frac` of requests stream long outputs
    /// from short prompts (disaggregation pays for the transfer without
    /// relieving much prefill pressure).
    ///
    /// # Panics
    ///
    /// Panics if `frac` is outside `[0, 1]`.
    pub fn decode_heavy_mix(frac: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&frac), "mixture fraction must be in [0, 1]");
        Self {
            heavy: (32, 256), // short prompt, long decode
            light: (32, 48),
            heavy_every: 0,
            heavy_frac: frac,
            poisson_rate_per_s: 5_000.0,
            seed,
            ..Self::default()
        }
    }
}

/// Generates the bursty trace described by `spec` (see
/// [`BurstyTraceSpec`]). Fully deterministic: the stochastic knobs
/// (Poisson arrivals, Bernoulli heavy placement) are driven by
/// `spec.seed`, and arrivals are strictly increasing either way.
///
/// # Examples
///
/// ```
/// use llmss_sched::{bursty_trace, BurstyTraceSpec};
///
/// let trace = bursty_trace(&BurstyTraceSpec::default());
/// assert_eq!(trace.len(), 200);
/// assert!(trace.windows(2).all(|w| w[0].arrival_ps < w[1].arrival_ps));
///
/// // Seeded Poisson arrivals + 40% long-prompt/short-decode mix.
/// let mix = bursty_trace(&BurstyTraceSpec::prefill_heavy_mix(0.4, 7));
/// assert_eq!(mix, bursty_trace(&BurstyTraceSpec::prefill_heavy_mix(0.4, 7)));
/// assert!(mix.windows(2).all(|w| w[0].arrival_ps < w[1].arrival_ps));
/// ```
pub fn bursty_trace(spec: &BurstyTraceSpec) -> Vec<Request> {
    let gap_ps = (spec.burst_gap_ms * 1e9) as TimePs;
    let intra_ps: TimePs = 1_000_000; // 1 µs between arrivals in a burst
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut out = Vec::with_capacity(spec.total_requests());
    let mut clock: TimePs = 0;
    for burst in 0..spec.bursts {
        // Poisson tails may spill past the nominal burst boundary; never
        // let a later burst start behind an earlier arrival.
        clock = clock.max(burst as TimePs * gap_ps);
        for slot in 0..spec.burst_size {
            let id = (burst * spec.burst_size + slot) as u64;
            let heavy = if spec.heavy_frac > 0.0 {
                rng.gen_bool(spec.heavy_frac)
            } else {
                spec.heavy_every > 0 && (id as usize).is_multiple_of(spec.heavy_every)
            };
            let (input_len, output_len) = if heavy { spec.heavy } else { spec.light };
            let arrival = if spec.poisson_rate_per_s > 0.0 {
                if slot > 0 {
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let gap_s = -u.ln() / spec.poisson_rate_per_s;
                    clock += ((gap_s * 1e12) as TimePs).max(1);
                }
                clock
            } else {
                burst as TimePs * gap_ps + slot as TimePs * intra_ps
            };
            clock = arrival;
            out.push(Request::new(id, input_len, output_len, arrival));
        }
        // Keep monotonicity across bursts even if a tail spilled over.
        clock += 1;
    }
    out
}

/// Why a workload could not be materialized into a request trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// A trace file could not be read.
    Io {
        /// The path that failed.
        path: String,
        /// The underlying I/O error message.
        message: String,
    },
    /// A trace file could not be parsed.
    Parse {
        /// The path that failed.
        path: String,
        /// The parser's description of the first malformed line.
        message: String,
    },
    /// A generator parameter is out of its valid range.
    Invalid {
        /// Human-readable description of the bad parameter.
        message: String,
    },
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::Io { path, message } => {
                write!(f, "cannot read workload trace {path}: {message}")
            }
            WorkloadError::Parse { path, message } => {
                write!(f, "malformed workload trace {path}: {message}")
            }
            WorkloadError::Invalid { message } => write!(f, "invalid workload: {message}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// A pluggable traffic source: anything that can be materialized into a
/// request trace, sorted by arrival time.
///
/// Implemented by the declarative [`WorkloadSpec`], by the concrete
/// generators ([`TraceGenerator`], [`BurstyTraceSpec`]), and by plain
/// request vectors — so drivers take *values*, not CLI-string dispatch.
pub trait Workload: std::fmt::Debug {
    /// Materializes the full request trace.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] when the source cannot produce a trace
    /// (unreadable/malformed file, out-of-range parameter).
    fn materialize(&self) -> Result<Vec<Request>, WorkloadError>;
}

impl Workload for BurstyTraceSpec {
    fn materialize(&self) -> Result<Vec<Request>, WorkloadError> {
        Ok(bursty_trace(self))
    }
}

impl Workload for Vec<Request> {
    fn materialize(&self) -> Result<Vec<Request>, WorkloadError> {
        Ok(self.clone())
    }
}

/// The declarative, serializable traffic source of a scenario: the
/// `[workload]` table of a scenario file.
///
/// Serialized as a `kind`-tagged object (`synthetic` | `bursty` |
/// `trace`); deserialization starts from the kind's defaults, applies
/// only the keys present, and rejects unknown keys.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// Seeded Poisson arrivals over a named length distribution (the
    /// paper's ShareGPT/Alpaca-like models, or fixed lengths).
    Synthetic {
        /// Length distribution.
        dataset: Dataset,
        /// Number of requests to generate.
        requests: usize,
        /// Poisson arrival rate in requests per second.
        rate_per_s: f64,
        /// Generator seed.
        seed: u64,
    },
    /// Bursty, size-skewed traffic for routing/disaggregation
    /// experiments.
    Bursty {
        /// The burst shape and mixture knobs.
        spec: BurstyTraceSpec,
    },
    /// A request trace in the artifact's TSV format
    /// (`input_toks  output_toks  arrival_ms`).
    TraceFile {
        /// Path to the TSV file.
        path: String,
    },
}

impl Default for WorkloadSpec {
    /// The legacy CLI's default traffic: 64 Alpaca-like requests at
    /// 4 req/s, seed 42.
    fn default() -> Self {
        WorkloadSpec::Synthetic {
            dataset: Dataset::Alpaca,
            requests: 64,
            rate_per_s: 4.0,
            seed: 42,
        }
    }
}

impl WorkloadSpec {
    /// The `kind` tag this spec serializes under.
    pub fn kind(&self) -> &'static str {
        match self {
            WorkloadSpec::Synthetic { .. } => "synthetic",
            WorkloadSpec::Bursty { .. } => "bursty",
            WorkloadSpec::TraceFile { .. } => "trace",
        }
    }

    /// A one-line human description (for run banners).
    pub fn describe(&self) -> String {
        match self {
            WorkloadSpec::Synthetic { dataset, requests, rate_per_s, seed } => {
                format!("synthetic {dataset} x{requests} @ {rate_per_s} req/s (seed {seed})")
            }
            WorkloadSpec::Bursty { spec } => format!(
                "bursty {}x{} ({}in/{}out heavy, {}in/{}out light)",
                spec.bursts,
                spec.burst_size,
                spec.heavy.0,
                spec.heavy.1,
                spec.light.0,
                spec.light.1
            ),
            WorkloadSpec::TraceFile { path } => format!("trace {path}"),
        }
    }

    /// Overrides the seed of a seeded generator (no-op for trace files) —
    /// how `--seed` reaches the workload without a second flag.
    pub fn reseed(&mut self, new_seed: u64) {
        match self {
            WorkloadSpec::Synthetic { seed, .. } => *seed = new_seed,
            WorkloadSpec::Bursty { spec } => spec.seed = new_seed,
            WorkloadSpec::TraceFile { .. } => {}
        }
    }

    /// Sets one field by its serialized key (`dataset`, `requests`,
    /// `rate`, `seed`, `path`, `bursts`, `burst_size`, `burst_gap_ms`,
    /// `heavy_every`, `heavy_frac`, `poisson_rate`, `light`, `heavy` as
    /// `INxOUT`) — or `kind`, which switches the variant to its
    /// defaults. This is the string-override surface shared by CLI flags
    /// and sweep grids.
    ///
    /// # Errors
    ///
    /// Returns a message when the key does not exist on the current
    /// kind or the value does not parse.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        fn parse<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            value.parse().map_err(|e| format!("workload.{key}: {e}"))
        }
        fn parse_pair(key: &str, value: &str) -> Result<(usize, usize), String> {
            let (i, o) = value
                .split_once('x')
                .ok_or_else(|| format!("workload.{key} expects INxOUT, got '{value}'"))?;
            Ok((parse(key, i)?, parse(key, o)?))
        }
        if key == "kind" {
            *self = match value {
                "synthetic" => WorkloadSpec::default(),
                "bursty" => WorkloadSpec::Bursty { spec: BurstyTraceSpec::default() },
                "trace" => WorkloadSpec::TraceFile { path: String::new() },
                other => {
                    return Err(format!(
                        "unknown workload kind '{other}' (expected synthetic | bursty | trace)"
                    ))
                }
            };
            return Ok(());
        }
        match self {
            WorkloadSpec::Synthetic { dataset, requests, rate_per_s, seed } => match key {
                "dataset" => *dataset = parse(key, value)?,
                "requests" => *requests = parse(key, value)?,
                "rate" => *rate_per_s = parse(key, value)?,
                "seed" => *seed = parse(key, value)?,
                other => {
                    return Err(format!(
                        "unknown synthetic-workload key '{other}' \
                         (expected dataset | requests | rate | seed)"
                    ))
                }
            },
            WorkloadSpec::Bursty { spec } => match key {
                "bursts" => spec.bursts = parse(key, value)?,
                "burst_size" => spec.burst_size = parse(key, value)?,
                "burst_gap_ms" => spec.burst_gap_ms = parse(key, value)?,
                "heavy_every" => spec.heavy_every = parse(key, value)?,
                "heavy_frac" => spec.heavy_frac = parse(key, value)?,
                "poisson_rate" => spec.poisson_rate_per_s = parse(key, value)?,
                "light" => spec.light = parse_pair(key, value)?,
                "heavy" => spec.heavy = parse_pair(key, value)?,
                "seed" => spec.seed = parse(key, value)?,
                other => {
                    return Err(format!(
                        "unknown bursty-workload key '{other}' (expected bursts | \
                         burst_size | burst_gap_ms | heavy_every | heavy_frac | \
                         poisson_rate | light | heavy | seed)"
                    ))
                }
            },
            WorkloadSpec::TraceFile { path } => match key {
                "path" => *path = value.to_owned(),
                other => {
                    return Err(format!("unknown trace-workload key '{other}' (expected path)"))
                }
            },
        }
        Ok(())
    }

    fn validate(&self) -> Result<(), WorkloadError> {
        let invalid = |message: String| Err(WorkloadError::Invalid { message });
        match self {
            WorkloadSpec::Synthetic { requests, rate_per_s, .. } => {
                if *requests == 0 {
                    return invalid("synthetic workload needs at least one request".into());
                }
                if !rate_per_s.is_finite() || *rate_per_s <= 0.0 {
                    return invalid(format!("arrival rate must be positive, got {rate_per_s}"));
                }
            }
            WorkloadSpec::Bursty { spec } => {
                if spec.total_requests() == 0 {
                    return invalid(
                        "bursty workload needs bursts >= 1 and burst_size >= 1".into(),
                    );
                }
                if !(0.0..=1.0).contains(&spec.heavy_frac) {
                    return invalid(format!(
                        "heavy_frac must be in [0, 1], got {}",
                        spec.heavy_frac
                    ));
                }
            }
            WorkloadSpec::TraceFile { path } => {
                if path.is_empty() {
                    return invalid("trace workload needs a path".into());
                }
            }
        }
        Ok(())
    }
}

impl Workload for WorkloadSpec {
    fn materialize(&self) -> Result<Vec<Request>, WorkloadError> {
        self.validate()?;
        match self {
            WorkloadSpec::Synthetic { dataset, requests, rate_per_s, seed } => {
                Ok(TraceGenerator::new(*dataset, *seed)
                    .rate_per_s(*rate_per_s)
                    .generate(*requests))
            }
            WorkloadSpec::Bursty { spec } => Ok(bursty_trace(spec)),
            WorkloadSpec::TraceFile { path } => {
                let tsv = std::fs::read_to_string(path).map_err(|e| WorkloadError::Io {
                    path: path.clone(),
                    message: e.to_string(),
                })?;
                trace_from_tsv(&tsv)
                    .map_err(|message| WorkloadError::Parse { path: path.clone(), message })
            }
        }
    }
}

impl From<BurstyTraceSpec> for WorkloadSpec {
    fn from(spec: BurstyTraceSpec) -> Self {
        WorkloadSpec::Bursty { spec }
    }
}

fn pair_value(pair: (usize, usize)) -> Value {
    Value::Array(vec![Value::Int(pair.0 as i128), Value::Int(pair.1 as i128)])
}

impl Serialize for WorkloadSpec {
    fn to_value(&self) -> Value {
        let mut fields = vec![("kind".to_owned(), Value::Str(self.kind().to_owned()))];
        match self {
            WorkloadSpec::Synthetic { dataset, requests, rate_per_s, seed } => {
                fields.push(("dataset".into(), Value::Str(dataset.spelling())));
                fields.push(("requests".into(), Value::Int(*requests as i128)));
                fields.push(("rate".into(), Value::Float(*rate_per_s)));
                fields.push(("seed".into(), Value::Int(*seed as i128)));
            }
            WorkloadSpec::Bursty { spec } => {
                fields.push(("bursts".into(), Value::Int(spec.bursts as i128)));
                fields.push(("burst_size".into(), Value::Int(spec.burst_size as i128)));
                fields.push(("burst_gap_ms".into(), Value::Float(spec.burst_gap_ms)));
                fields.push(("heavy_every".into(), Value::Int(spec.heavy_every as i128)));
                fields.push(("heavy_frac".into(), Value::Float(spec.heavy_frac)));
                fields.push(("light".into(), pair_value(spec.light)));
                fields.push(("heavy".into(), pair_value(spec.heavy)));
                fields.push(("poisson_rate".into(), Value::Float(spec.poisson_rate_per_s)));
                fields.push(("seed".into(), Value::Int(spec.seed as i128)));
            }
            WorkloadSpec::TraceFile { path } => {
                fields.push(("path".into(), Value::Str(path.clone())));
            }
        }
        Value::Object(fields)
    }
}

impl Deserialize for WorkloadSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let Value::Object(fields) = v else {
            return Err(Error::custom(format!("workload: expected an object, got {v:?}")));
        };
        let kind = match v.get("kind") {
            Some(Value::Str(s)) => s.as_str(),
            Some(other) => {
                return Err(Error::custom(format!(
                    "workload.kind: expected a string, got {other:?}"
                )))
            }
            None => "synthetic",
        };
        let mut spec = WorkloadSpec::default();
        spec.set("kind", kind).map_err(Error::custom)?;
        for (key, value) in fields {
            if key == "kind" {
                continue;
            }
            // Funnel every field through the string-override surface so
            // the file schema and the sweep/CLI schema cannot drift.
            let text = match value {
                Value::Str(s) => s.clone(),
                Value::Int(i) => i.to_string(),
                Value::Float(f) => format!("{f:?}"),
                Value::Bool(b) => b.to_string(),
                Value::Array(items) => {
                    // `light = [32, 8]` spells the INxOUT pair.
                    let parts: Vec<String> = items
                        .iter()
                        .map(|it| match it {
                            Value::Int(i) => Ok(i.to_string()),
                            other => Err(Error::custom(format!(
                                "workload.{key}: expected integers, got {other:?}"
                            ))),
                        })
                        .collect::<Result<_, _>>()?;
                    parts.join("x")
                }
                other => {
                    return Err(Error::custom(format!(
                        "workload.{key}: unsupported value {other:?}"
                    )))
                }
            };
            spec.set(key, &text).map_err(Error::custom)?;
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_requests_land_periodically() {
        let spec = BurstyTraceSpec::default();
        let trace = bursty_trace(&spec);
        for (i, r) in trace.iter().enumerate() {
            let expect_heavy = i % spec.heavy_every == 0;
            assert_eq!(r.input_len == spec.heavy.0, expect_heavy, "request {i}");
        }
    }

    #[test]
    fn bursts_are_separated_by_gaps() {
        let spec = BurstyTraceSpec {
            bursts: 3,
            burst_size: 4,
            burst_gap_ms: 10.0,
            ..BurstyTraceSpec::default()
        };
        let trace = bursty_trace(&spec);
        // Last of burst 0 to first of burst 1 spans (almost) the gap.
        let intra = trace[3].arrival_ps - trace[0].arrival_ps;
        let inter = trace[4].arrival_ps - trace[3].arrival_ps;
        assert!(inter > 100 * intra);
    }

    #[test]
    fn zero_heavy_every_disables_heavies() {
        let spec = BurstyTraceSpec { heavy_every: 0, ..BurstyTraceSpec::default() };
        assert!(bursty_trace(&spec).iter().all(|r| r.input_len == spec.light.0));
    }

    #[test]
    fn poisson_arrivals_are_seeded_and_monotone() {
        let spec =
            BurstyTraceSpec { poisson_rate_per_s: 10_000.0, seed: 3, ..Default::default() };
        let a = bursty_trace(&spec);
        let b = bursty_trace(&spec);
        assert_eq!(a, b, "same seed must reproduce the same arrivals");
        assert!(a.windows(2).all(|w| w[0].arrival_ps < w[1].arrival_ps));
        // Exponential gaps vary; the fixed 1 µs spacing does not.
        let gaps: Vec<TimePs> = a[..spec.burst_size]
            .windows(2)
            .map(|w| w[1].arrival_ps - w[0].arrival_ps)
            .collect();
        let distinct: std::collections::HashSet<_> = gaps.iter().collect();
        assert!(distinct.len() > 3, "gaps look deterministic: {gaps:?}");
        let other = bursty_trace(&BurstyTraceSpec { seed: 4, ..spec });
        assert_ne!(a, other, "different seeds must differ");
    }

    #[test]
    fn mixture_fraction_controls_heavy_share() {
        let all_heavy = bursty_trace(&BurstyTraceSpec::prefill_heavy_mix(1.0, 1));
        assert!(all_heavy.iter().all(|r| r.input_len == 1024 && r.output_len == 8));
        let none_heavy = bursty_trace(&BurstyTraceSpec::prefill_heavy_mix(0.0, 1));
        assert!(none_heavy.iter().all(|r| r.input_len == 32));
        let half = bursty_trace(&BurstyTraceSpec::prefill_heavy_mix(0.5, 1));
        let heavies = half.iter().filter(|r| r.input_len == 1024).count();
        assert!(
            (60..140).contains(&heavies),
            "50% mix over 200 requests gave {heavies} heavies"
        );
    }

    #[test]
    fn decode_heavy_mix_streams_long_outputs() {
        let trace = bursty_trace(&BurstyTraceSpec::decode_heavy_mix(1.0, 9));
        assert!(trace.iter().all(|r| r.output_len == 256 && r.input_len == 32));
    }

    #[test]
    fn legacy_fixed_spacing_is_unchanged() {
        // The stochastic knobs default off: the trace shape predates them.
        let trace = bursty_trace(&BurstyTraceSpec::default());
        assert_eq!(trace[1].arrival_ps - trace[0].arrival_ps, 1_000_000);
        assert_eq!(trace[0].arrival_ps, 0);
    }

    #[test]
    fn spec_kinds_materialize_and_match_their_generators() {
        let synthetic = WorkloadSpec::Synthetic {
            dataset: Dataset::ShareGpt,
            requests: 12,
            rate_per_s: 20.0,
            seed: 5,
        };
        assert_eq!(
            synthetic.materialize().unwrap(),
            TraceGenerator::new(Dataset::ShareGpt, 5).rate_per_s(20.0).generate(12)
        );
        let spec = BurstyTraceSpec { bursts: 2, burst_size: 3, ..Default::default() };
        let bursty: WorkloadSpec = spec.into();
        assert_eq!(bursty.materialize().unwrap(), bursty_trace(&spec));
    }

    #[test]
    fn trace_file_workload_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("llmss-workload-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.tsv");
        let trace = TraceGenerator::new(Dataset::Alpaca, 3).rate_per_s(8.0).generate(6);
        std::fs::write(&path, crate::trace_to_tsv(&trace)).unwrap();
        let spec = WorkloadSpec::TraceFile { path: path.to_string_lossy().into_owned() };
        let loaded = spec.materialize().unwrap();
        assert_eq!(loaded.len(), 6);
        let missing = WorkloadSpec::TraceFile { path: "/nonexistent/x.tsv".into() };
        assert!(matches!(missing.materialize(), Err(WorkloadError::Io { .. })));
    }

    #[test]
    fn invalid_parameters_are_rejected_with_messages() {
        let zero = WorkloadSpec::Synthetic {
            dataset: Dataset::Alpaca,
            requests: 0,
            rate_per_s: 4.0,
            seed: 0,
        };
        assert!(matches!(zero.materialize(), Err(WorkloadError::Invalid { .. })));
        let bad_rate = WorkloadSpec::Synthetic {
            dataset: Dataset::Alpaca,
            requests: 4,
            rate_per_s: 0.0,
            seed: 0,
        };
        assert!(bad_rate.materialize().is_err());
        let empty_path = WorkloadSpec::TraceFile { path: String::new() };
        assert!(empty_path.materialize().is_err());
    }

    #[test]
    fn serde_round_trips_every_kind() {
        let specs = [
            WorkloadSpec::default(),
            WorkloadSpec::Bursty { spec: BurstyTraceSpec::prefill_heavy_mix(0.4, 7) },
            WorkloadSpec::TraceFile { path: "traces/a.tsv".into() },
        ];
        for spec in specs {
            let back = WorkloadSpec::from_value(&spec.to_value()).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let mut v = WorkloadSpec::default().to_value();
        if let Value::Object(fields) = &mut v {
            fields.push(("rate_typo".into(), Value::Float(1.0)));
        }
        assert!(WorkloadSpec::from_value(&v).is_err());
        let mut spec = WorkloadSpec::default();
        assert!(spec.set("nope", "1").is_err());
        assert!(spec.set("kind", "nope").is_err());
    }

    #[test]
    fn set_switches_kind_and_applies_fields() {
        let mut spec = WorkloadSpec::default();
        spec.set("kind", "bursty").unwrap();
        spec.set("bursts", "2").unwrap();
        spec.set("heavy", "1024x8").unwrap();
        match spec {
            WorkloadSpec::Bursty { spec } => {
                assert_eq!(spec.bursts, 2);
                assert_eq!(spec.heavy, (1024, 8));
            }
            other => panic!("expected bursty, got {other:?}"),
        }
    }

    #[test]
    fn reseed_reaches_seeded_generators_only() {
        let mut s = WorkloadSpec::default();
        s.reseed(99);
        assert!(matches!(s, WorkloadSpec::Synthetic { seed: 99, .. }));
        let mut t = WorkloadSpec::TraceFile { path: "x.tsv".into() };
        t.reseed(99); // no-op, must not panic
        assert_eq!(t, WorkloadSpec::TraceFile { path: "x.tsv".into() });
    }
}
