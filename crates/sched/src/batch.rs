//! Iteration batches and sub-batch partitioning.
//!
//! [`IterationBatch`] is what the scheduler hands the engine stack each
//! iteration: the batch composition plus any KV-cache eviction/reload
//! transfers the graph converter must materialize. Sub-batch partitioning
//! (Algorithm 1 line 2) splits a batch into independent pieces so
//! heterogeneous accelerators can overlap — the NeuPIMs sub-batch
//! interleaving technique.

use llmss_model::SeqSlot;
use serde::{Deserialize, Serialize};

use crate::KvTransfer;

/// One scheduler iteration's worth of work.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IterationBatch {
    /// Sequences participating this iteration.
    pub slots: Vec<SeqSlot>,
    /// KV pages evicted to host before this iteration runs.
    pub evictions: Vec<KvTransfer>,
    /// KV pages reloaded from host before this iteration runs.
    pub reloads: Vec<KvTransfer>,
}

impl IterationBatch {
    /// Prompt tokens processed (initiation-phase slots).
    pub fn prompt_tokens(&self) -> usize {
        self.slots.iter().filter(|s| s.kv_past == 0).map(|s| s.new_tokens).sum()
    }

    /// Tokens generated: every participating sequence emits exactly one
    /// output token per iteration (prefill slots emit their *first* output
    /// token when the initiation pass completes — paper Figure 1).
    pub fn generated_tokens(&self) -> usize {
        self.slots.len()
    }

    /// Number of participating sequences.
    pub fn batch_size(&self) -> usize {
        self.slots.len()
    }

    /// Total bytes moved to/from host for KV management.
    pub fn swap_bytes(&self) -> u64 {
        self.evictions.iter().chain(&self.reloads).map(|t| t.bytes).sum()
    }

    /// Whether this is a steady-state iteration — no KV paging traffic to
    /// or from host memory. Only steady batches are candidates for
    /// iteration-outcome memoization: eviction/reload transfers
    /// materialize as host-memory operators whose bytes and placement
    /// would otherwise have to join the signature.
    pub fn is_steady(&self) -> bool {
        self.evictions.is_empty() && self.reloads.is_empty()
    }
}

/// The balance criterion for sub-batch partitioning (Algorithm 1's
/// `Criteria` input).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionCriteria {
    /// Balance compute load (new tokens per sub-batch).
    ComputeLoad,
    /// Balance memory traffic (KV bytes touched per sub-batch).
    MemoryAccess,
}

/// Splits a batch into `k` sub-batches, balancing the chosen criterion with
/// a greedy longest-processing-time assignment.
///
/// Sub-batches preserve deterministic ordering: slots are sorted by weight
/// (descending) with the request id breaking ties, then each goes to the
/// currently lightest sub-batch.
///
/// # Panics
///
/// Panics if `k` is zero.
///
/// # Examples
///
/// ```
/// use llmss_model::SeqSlot;
/// use llmss_sched::{partition_sub_batches, PartitionCriteria};
///
/// let slots = vec![
///     SeqSlot::decode(0, 1000),
///     SeqSlot::decode(1, 100),
///     SeqSlot::decode(2, 900),
///     SeqSlot::decode(3, 200),
/// ];
/// let subs = partition_sub_batches(&slots, 2, PartitionCriteria::MemoryAccess);
/// assert_eq!(subs.len(), 2);
/// assert_eq!(subs.iter().map(|s| s.len()).sum::<usize>(), 4);
/// ```
pub fn partition_sub_batches(
    slots: &[SeqSlot],
    k: usize,
    criteria: PartitionCriteria,
) -> Vec<Vec<SeqSlot>> {
    assert!(k > 0, "need at least one sub-batch");
    let weight = |s: &SeqSlot| -> u64 {
        match criteria {
            PartitionCriteria::ComputeLoad => s.new_tokens as u64 * s.kv_total() as u64,
            PartitionCriteria::MemoryAccess => s.kv_total() as u64,
        }
    };
    let mut sorted: Vec<SeqSlot> = slots.to_vec();
    sorted.sort_by(|a, b| weight(b).cmp(&weight(a)).then(a.request.cmp(&b.request)));

    let mut bins: Vec<(u64, Vec<SeqSlot>)> = vec![(0, Vec::new()); k.min(slots.len()).max(1)];
    for s in sorted {
        let lightest =
            bins.iter_mut().min_by_key(|(w, b)| (*w, b.len())).expect("at least one bin"); // llmss-lint: allow(p001, reason = "bins is constructed non-empty above")
        lightest.0 += weight(&s);
        lightest.1.push(s);
    }
    bins.into_iter().map(|(_, b)| b).filter(|b| !b.is_empty()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmss_model::SeqSlot;

    #[test]
    fn token_accounting() {
        let b = IterationBatch {
            slots: vec![
                SeqSlot::prefill(0, 64),
                SeqSlot::decode(1, 100),
                SeqSlot::decode(2, 5),
            ],
            evictions: vec![],
            reloads: vec![],
        };
        assert_eq!(b.prompt_tokens(), 64);
        // All three sequences emit one token (the prefill emits its first).
        assert_eq!(b.generated_tokens(), 3);
        assert_eq!(b.batch_size(), 3);
    }

    #[test]
    fn partition_covers_all_slots_exactly_once() {
        let slots: Vec<_> = (0..13).map(|i| SeqSlot::decode(i, 10 + i as usize * 7)).collect();
        let subs = partition_sub_batches(&slots, 4, PartitionCriteria::MemoryAccess);
        let mut ids: Vec<u64> = subs.iter().flatten().map(|s| s.request).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..13).collect::<Vec<_>>());
    }

    #[test]
    fn partition_balances_memory_weight() {
        let slots: Vec<_> = (0..16).map(|i| SeqSlot::decode(i, 64 + i as usize * 64)).collect();
        let subs = partition_sub_batches(&slots, 2, PartitionCriteria::MemoryAccess);
        let loads: Vec<u64> =
            subs.iter().map(|b| b.iter().map(|s| s.kv_total() as u64).sum()).collect();
        let max = *loads.iter().max().unwrap() as f64;
        let min = *loads.iter().min().unwrap() as f64;
        assert!(max / min < 1.25, "imbalanced: {loads:?}");
    }

    #[test]
    fn more_bins_than_slots_collapses() {
        let slots = vec![SeqSlot::decode(0, 10)];
        let subs = partition_sub_batches(&slots, 8, PartitionCriteria::ComputeLoad);
        assert_eq!(subs.len(), 1);
    }

    #[test]
    fn partition_is_deterministic() {
        let slots: Vec<_> = (0..9).map(|i| SeqSlot::decode(i, 100)).collect();
        let a = partition_sub_batches(&slots, 3, PartitionCriteria::ComputeLoad);
        let b = partition_sub_batches(&slots, 3, PartitionCriteria::ComputeLoad);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one sub-batch")]
    fn zero_bins_rejected() {
        partition_sub_batches(&[], 0, PartitionCriteria::ComputeLoad);
    }
}
