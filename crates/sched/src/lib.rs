//! Serving-layer substrate for LLMServingSim: requests, traces, batching,
//! iteration-level scheduling, and KV-cache management.
//!
//! This crate rebuilds the system-software half of the paper's co-design:
//!
//! * [`Request`] / [`TraceGenerator`] — synthetic ShareGPT/Alpaca-like
//!   request traces with Poisson arrivals, plus the artifact's TSV format.
//! * [`Workload`] / [`WorkloadSpec`] — pluggable traffic sources as
//!   declarative values (synthetic, bursty, trace file), so front-ends
//!   take a workload instead of dispatching on CLI strings.
//! * [`Scheduler`] — Orca-style iteration-level scheduling that re-forms
//!   the batch each iteration, admits by KV-memory availability, and
//!   evicts/reloads KV pages under pressure (vLLM-style demand paging via
//!   [`KvCache`]).
//! * [`partition_sub_batches`] — NeuPIMs-style sub-batch partitioning for
//!   heterogeneous overlap.
//!
//! # Examples
//!
//! Run a small serving episode end to end:
//!
//! ```
//! use llmss_sched::{
//!     Dataset, KvCache, KvCacheConfig, Scheduler, SchedulerConfig, TraceGenerator,
//! };
//!
//! let trace = TraceGenerator::new(Dataset::Alpaca, 7).rate_per_s(100.0).generate(8);
//! let kv = KvCache::new(KvCacheConfig::paged(8 << 20, 1024));
//! let mut sched = Scheduler::new(SchedulerConfig::default(), kv, trace);
//! while let Some(batch) = sched.next_batch() {
//!     // (a real caller hands `batch` to the engine stack here)
//!     sched.complete_iteration(2_000_000);
//! }
//! assert_eq!(sched.completions().len(), 8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
mod dataset;
mod kv_cache;
mod memory;
mod orca;
mod request;
mod workload;

pub use batch::{partition_sub_batches, IterationBatch, PartitionCriteria};
pub use dataset::{trace_from_tsv, trace_to_tsv, Dataset, LengthModel, TraceGenerator};
pub use kv_cache::{KvCache, KvCacheConfig, KvError, KvPolicy, KvTransfer};
pub use memory::MemoryModel;
pub use orca::{LostWork, Scheduler, SchedulerConfig, SchedulerMode, SchedulingPolicy};
pub use request::{Completion, Request, RequestState, TimePs};
pub use workload::{bursty_trace, BurstyTraceSpec, Workload, WorkloadError, WorkloadSpec};
