//! Iteration-level scheduling (Orca) with KV-cache-aware admission.
//!
//! The scheduler re-forms the batch every iteration: finished requests
//! retire, newly arrived requests join (when KV memory admits them), decode
//! sequences grow their KV allocation — evicting the most recently admitted
//! sequences to host memory under pressure and reloading them when space
//! frees up (paper Section IV-A, "KV cache-aware memory modeling").
//!
//! A request-level policy (classic static batching: the batch runs until
//! *all* members finish) is included as the contrast Orca §6.1 draws.

// llmss-lint: allow(p001, file, reason = "queue fronts are checked non-empty by the scheduler state machine immediately before popping")
use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use llmss_model::SeqSlot;

use crate::{
    Completion, IterationBatch, KvCache, KvError, KvTransfer, Request, RequestState, TimePs,
};

/// Batch re-formation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// Orca-style iteration-level scheduling (the artifact's
    /// `scheduling=orca` default).
    IterationLevel,
    /// Static request-level batching: admit only when the running batch
    /// has fully drained.
    RequestLevel,
}

/// Which serving phases this scheduler runs — the knob behind
/// disaggregated prefill/decode serving.
///
/// A unified scheduler runs every request end to end. In a disaggregated
/// deployment (LLMServingSim2.0, DistServe, TokenSim) a *prefill pool*
/// only builds KV caches and a *decode pool* only streams tokens from KV
/// caches shipped to it, so each pool's scheduler runs a restricted
/// lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerMode {
    /// Prefill and decode on the same engine (classic serving).
    Unified,
    /// Prefill pool: a request completes at the end of its prefill
    /// iteration — its KV cache is then ready to ship to a decode pool.
    PrefillOnly,
    /// Decode pool: an admitted request arrives with its prompt KV
    /// already computed elsewhere ([`KvCache::try_admit`] reserves the
    /// shipped footprint) and runs decode iterations only.
    DecodeOnly,
}

/// Scheduler configuration (the artifact's `scheduling`, `max_batch`,
/// `batch_delay` parameters).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Batch re-formation policy.
    pub policy: SchedulingPolicy,
    /// Which serving phases this scheduler runs.
    pub mode: SchedulerMode,
    /// Maximum concurrent sequences (0 = unlimited, the artifact default).
    pub max_batch: usize,
    /// Extra delay applied when waking up for newly arrived requests.
    pub batch_delay_ps: TimePs,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            policy: SchedulingPolicy::IterationLevel,
            mode: SchedulerMode::Unified,
            max_batch: 0,
            batch_delay_ps: 0,
        }
    }
}

/// A sequence the scheduler is tracking.
#[derive(Debug, Clone)]
struct Seq {
    req: Request,
    state: RequestState,
    /// Output tokens produced so far.
    generated: usize,
    first_token_ps: Option<TimePs>,
}

impl Seq {
    /// KV tokens this sequence's next decode step attends over (prompt
    /// plus generated history).
    fn kv_tokens(&self, mode: SchedulerMode) -> usize {
        match mode {
            // The first output token came out of the prefill pass; each
            // token is appended to the cache when the next iteration
            // processes it, and the last one never is.
            SchedulerMode::Unified | SchedulerMode::PrefillOnly => {
                self.req.input_len + self.generated.saturating_sub(1)
            }
            // No local prefill: the shipped prompt KV covers the first
            // decode step, and every generated token extends it.
            SchedulerMode::DecodeOnly => self.req.input_len + self.generated,
        }
    }
}

/// One request a crash knocked out of a scheduler, with enough progress
/// context for a fleet driver to price the loss and retry it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LostWork {
    /// The request as the scheduler knew it (original arrival and
    /// lengths — a retry re-enters admission from these).
    pub request: Request,
    /// Output tokens the crashed replica had generated (their KV died
    /// with it).
    pub generated: usize,
    /// Whether the prompt's prefill had completed (its KV died too, so
    /// the retry pays a full re-prefill).
    pub prefill_done: bool,
}

/// The iteration-level serving scheduler.
///
/// Drive it in a loop: [`next_batch`](Self::next_batch) produces the batch
/// for one iteration (or `None` when all requests have completed), the
/// caller simulates the iteration, and
/// [`complete_iteration`](Self::complete_iteration) advances the clock and
/// sequence states.
///
/// # Examples
///
/// ```
/// use llmss_sched::{
///     KvCache, KvCacheConfig, Request, Scheduler, SchedulerConfig,
/// };
///
/// let kv = KvCache::new(KvCacheConfig::paged(1 << 20, 256));
/// let requests = vec![Request::new(0, 32, 4, 0)];
/// let mut sched = Scheduler::new(SchedulerConfig::default(), kv, requests);
/// let mut iterations = 0;
/// while let Some(batch) = sched.next_batch() {
///     assert!(!batch.slots.is_empty());
///     sched.complete_iteration(1_000_000); // pretend 1 us per iteration
///     iterations += 1;
/// }
/// assert_eq!(iterations, 4); // 1 prefill + 3 decode iterations
/// assert_eq!(sched.completions().len(), 1);
/// ```
#[derive(Debug)]
pub struct Scheduler {
    config: SchedulerConfig,
    kv: KvCache,
    pending: VecDeque<Request>,
    active: Vec<Seq>,
    /// Evicted sequences in eviction order (FIFO reload priority).
    evicted: VecDeque<Seq>,
    completions: Vec<Completion>,
    clock_ps: TimePs,
    iterations: u64,
    total_requests: usize,
}

impl Scheduler {
    /// Creates a scheduler over a fixed request trace.
    ///
    /// Requests are sorted by arrival time; ids must be unique. The trace
    /// may be empty — a front-end (e.g. a cluster router) can then inject
    /// requests online with [`push_request`](Self::push_request).
    pub fn new(config: SchedulerConfig, kv: KvCache, mut requests: Vec<Request>) -> Self {
        requests.sort_by_key(|r| (r.arrival_ps, r.id));
        let total = requests.len();
        Self {
            config,
            kv,
            pending: requests.into(),
            active: Vec::new(),
            evicted: VecDeque::new(),
            completions: Vec::new(),
            clock_ps: 0,
            iterations: 0,
            total_requests: total,
        }
    }

    /// Injects one request online (cluster-router entry point).
    ///
    /// Unlike the trace passed to [`new`](Self::new), pushed requests
    /// arrive while the simulation is running: the request joins the
    /// pending queue in `(arrival, id)` order and is admitted by the next
    /// [`next_batch`](Self::next_batch) whose clock has reached its
    /// arrival time. Pushing a request whose arrival is already in the
    /// past (relative to the scheduler clock) is allowed — it models a
    /// request that queued at the front-end while an iteration was in
    /// flight, and is admitted at the current clock.
    pub fn push_request(&mut self, request: Request) {
        self.total_requests += 1;
        let at = self
            .pending
            .iter()
            .position(|r| (r.arrival_ps, r.id) > (request.arrival_ps, request.id))
            .unwrap_or(self.pending.len());
        self.pending.insert(at, request);
    }

    /// The earliest simulated time this scheduler can make progress, or
    /// `None` when it is fully drained (every known request completed).
    ///
    /// * With running (or evicted) sequences, the next iteration forms at
    ///   the current clock.
    /// * Otherwise the scheduler is idle until its earliest pending
    ///   arrival (plus the configured batch delay).
    ///
    /// A cluster driver interleaves replicas by stepping whichever
    /// reports the smallest ready time; a `None` replica wakes up again
    /// when [`push_request`](Self::push_request) hands it new work.
    pub fn next_ready_ps(&self) -> Option<TimePs> {
        if !self.active.is_empty() || !self.evicted.is_empty() {
            return Some(self.clock_ps);
        }
        let front = self.pending.front()?;
        // Mirror next_batch's fast-forward exactly: the batch delay is a
        // wake-up cost, charged only when the scheduler is actually asleep
        // ahead of the arrival — a pending request already behind the
        // clock is served at the clock, delay-free.
        Some(if front.arrival_ps > self.clock_ps {
            front.arrival_ps + self.config.batch_delay_ps
        } else {
            self.clock_ps
        })
    }

    /// Requests accepted but not yet finished (pending + active +
    /// evicted) — the router's queue-depth load signal.
    pub fn outstanding(&self) -> usize {
        self.pending.len() + self.active.len() + self.evicted.len()
    }

    /// The serving phases this scheduler currently runs.
    pub fn mode(&self) -> SchedulerMode {
        self.config.mode
    }

    /// Whether no work is queued or in flight — the only safe point for a
    /// role switch ([`set_mode`](Self::set_mode)).
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.active.is_empty() && self.evicted.is_empty()
    }

    /// Role-switch hook: re-targets the scheduler at a different serving
    /// phase (prefill-pool ↔ decode-pool flexing, unified ↔ pool roles).
    ///
    /// The switch is only legal on a *drained* scheduler: sequences
    /// admitted under one mode carry that mode's KV accounting, so a fleet
    /// driver must drain the replica (stop offering it work, let in-flight
    /// requests finish) before flipping its role.
    ///
    /// # Panics
    ///
    /// Panics if any request is pending, active, or evicted — a role
    /// switch mid-drain would strand it.
    pub fn set_mode(&mut self, mode: SchedulerMode) {
        assert!(
            self.is_idle(),
            "role switch with {} requests in flight: drain the replica first",
            self.outstanding()
        );
        self.config.mode = mode;
    }

    /// Requests waiting for admission.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Current scheduler clock.
    pub fn clock_ps(&self) -> TimePs {
        self.clock_ps
    }

    /// Iterations completed so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Whether every request has finished.
    pub fn is_done(&self) -> bool {
        self.completions.len() == self.total_requests
    }

    /// Completion records for finished requests (in finish order).
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Takes ownership of the completion records without copying them —
    /// the report-assembly path for drivers that are done stepping this
    /// scheduler. The scheduler afterwards reports no completions (and is
    /// no longer [`is_done`](Self::is_done) if it had served any), so
    /// this is a terminal operation.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Number of sequences currently running.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Number of sequences currently evicted to host.
    pub fn evicted_len(&self) -> usize {
        self.evicted.len()
    }

    /// The KV cache (for utilization metrics).
    pub fn kv(&self) -> &KvCache {
        &self.kv
    }

    /// Forms the batch for the next iteration.
    ///
    /// Returns `None` once all requests have completed. If no sequence is
    /// runnable but requests are still pending, the clock fast-forwards to
    /// the next arrival (plus the configured batch delay).
    pub fn next_batch(&mut self) -> Option<IterationBatch> {
        if self.is_done() {
            return None;
        }

        // Fast-forward when idle.
        if self.active.is_empty() && self.evicted.is_empty() {
            let next_arrival = self.pending.front()?.arrival_ps;
            if next_arrival > self.clock_ps {
                self.clock_ps = next_arrival + self.config.batch_delay_ps;
            }
        }

        let mut evictions: Vec<KvTransfer> = Vec::new();
        let mut reloads: Vec<KvTransfer> = Vec::new();

        // 1. Grow KV for decode sequences (the token generated last
        //    iteration is appended as it is processed). Under pressure,
        //    evict the most recently admitted other sequence; if none
        //    exists, the growing sequence itself is evicted. The victim
        //    set stays sorted so membership checks in this per-iteration
        //    hot loop are O(log n) instead of a linear scan per sequence.
        let mut forced_out: Vec<u64> = Vec::new();
        let mark_forced = |forced_out: &mut Vec<u64>, id: u64| {
            if let Err(pos) = forced_out.binary_search(&id) {
                forced_out.insert(pos, id);
            }
        };
        for i in 0..self.active.len() {
            if self.active[i].state != RequestState::Generating || self.active[i].generated == 0
            {
                continue;
            }
            let id = self.active[i].req.id;
            if forced_out.binary_search(&id).is_ok() {
                // Already evicted as a victim of an earlier sequence's
                // growth in this same pass.
                continue;
            }
            loop {
                match self.kv.append_token(id) {
                    Ok(_) => break,
                    Err(KvError::OutOfMemory) => {
                        match self.kv.evict_victim(Some(id)) {
                            Some(t) => {
                                mark_forced(&mut forced_out, t.request);
                                evictions.push(t);
                            }
                            None => {
                                // Nothing else to evict: push this sequence
                                // itself to host and stop growing it.
                                if let Some(t) = self.kv.evict_victim(None) {
                                    mark_forced(&mut forced_out, t.request);
                                    evictions.push(t);
                                }
                                break;
                            }
                        }
                    }
                    Err(e) => unreachable!("append on resident sequence failed: {e}"),
                }
            }
        }
        if !forced_out.is_empty() {
            // Move evicted sequences out of the active set (most recently
            // admitted first, matching eviction order).
            let mut moved: Vec<Seq> = Vec::new();
            self.active.retain_mut(|s| {
                if forced_out.binary_search(&s.req.id).is_ok() {
                    let mut out = s.clone();
                    out.state = RequestState::Evicted;
                    moved.push(out);
                    false
                } else {
                    true
                }
            });
            moved.sort_by_key(|s| s.req.id);
            self.evicted.extend(moved);
        }

        // 2. Reload evicted sequences (FIFO) while memory permits.
        while let Some(front) = self.evicted.front() {
            if self.batch_full() {
                break;
            }
            match self.kv.reload(front.req.id) {
                Ok(t) => {
                    reloads.push(t);
                    let mut seq = self.evicted.pop_front().expect("front exists");
                    seq.state = RequestState::Generating;
                    self.active.push(seq);
                }
                Err(KvError::OutOfMemory) => break,
                Err(e) => unreachable!("reload of evicted sequence failed: {e}"),
            }
        }

        // 3. Admit newly arrived requests while memory and max_batch allow.
        let admission_open = match self.config.policy {
            SchedulingPolicy::IterationLevel => true,
            SchedulingPolicy::RequestLevel => self.active.is_empty() && self.evicted.is_empty(),
        };
        if admission_open {
            while let Some(front) = self.pending.front() {
                if front.arrival_ps > self.clock_ps || self.batch_full() {
                    break;
                }
                if !self.kv.try_admit(front.id, front.input_len) {
                    // A request that fails admission into an *empty* cache
                    // can never run; dropping it silently would corrupt the
                    // experiment, so fail loudly.
                    assert!(
                        self.kv.used_pages() > 0
                            || !self.active.is_empty()
                            || !self.evicted.is_empty(),
                        "request {} needs {} KV pages but the cache only holds {}: \
                         it can never be served",
                        front.id,
                        self.kv.pages_for(front.input_len),
                        self.kv.free_pages(),
                    );
                    break;
                }
                let req = self.pending.pop_front().expect("front exists");
                // In decode-only mode the prompt KV just reserved by
                // `try_admit` models the cache shipped from a prefill
                // pool: the sequence skips prefill and decodes directly
                // against it.
                let state = match self.config.mode {
                    SchedulerMode::DecodeOnly => RequestState::Generating,
                    SchedulerMode::Unified | SchedulerMode::PrefillOnly => {
                        RequestState::Admitted
                    }
                };
                self.active.push(Seq { req, state, generated: 0, first_token_ps: None });
            }
        }

        if self.active.is_empty() {
            // Everything evicted and nothing reloadable: the system is
            // wedged only if memory cannot hold a single sequence, which
            // the KV sizing rules out; otherwise retry after advancing to
            // the next arrival.
            return self.next_batch_after_stall();
        }

        let slots: Vec<SeqSlot> = self
            .active
            .iter()
            .map(|s| match s.state {
                RequestState::Admitted => SeqSlot::prefill(s.req.id, s.req.input_len),
                RequestState::Generating => {
                    SeqSlot::decode(s.req.id, s.kv_tokens(self.config.mode))
                }
                other => unreachable!("active sequence in state {other:?}"),
            })
            .collect();

        Some(IterationBatch { slots, evictions, reloads })
    }

    fn next_batch_after_stall(&mut self) -> Option<IterationBatch> {
        // Called when eviction pressure emptied the active set; reload the
        // oldest evicted sequence by force (it must fit alone).
        if let Some(front) = self.evicted.front() {
            match self.kv.reload(front.req.id) {
                Ok(t) => {
                    let mut seq = self.evicted.pop_front().expect("front exists");
                    seq.state = RequestState::Generating;
                    let slot = SeqSlot::decode(seq.req.id, seq.kv_tokens(self.config.mode));
                    self.active.push(seq);
                    return Some(IterationBatch {
                        slots: vec![slot],
                        evictions: Vec::new(),
                        reloads: vec![t],
                    });
                }
                Err(_) => return None,
            }
        }
        None
    }

    fn batch_full(&self) -> bool {
        self.config.max_batch > 0 && self.active.len() >= self.config.max_batch
    }

    /// Records that the iteration produced by the last
    /// [`next_batch`](Self::next_batch) took `latency_ps`: advances the
    /// clock, produces tokens, and retires finished sequences.
    pub fn complete_iteration(&mut self, latency_ps: TimePs) {
        self.clock_ps += latency_ps;
        self.iterations += 1;
        let now = self.clock_ps;

        let mut finished: Vec<Seq> = Vec::new();
        for s in &mut self.active {
            match s.state {
                RequestState::Admitted => {
                    s.generated = 1;
                    s.first_token_ps = Some(now);
                    s.state = RequestState::Generating;
                }
                RequestState::Generating => {
                    s.generated += 1;
                    // A decode-only sequence emits its first token from a
                    // decode iteration, never a prefill one.
                    if s.first_token_ps.is_none() {
                        s.first_token_ps = Some(now);
                    }
                }
                other => unreachable!("active sequence in state {other:?}"),
            }
            if s.generated >= s.req.output_len || self.config.mode == SchedulerMode::PrefillOnly
            {
                s.state = RequestState::Finished;
            }
        }
        self.active.retain(|s| {
            if s.state == RequestState::Finished {
                finished.push(s.clone());
                false
            } else {
                true
            }
        });
        for s in finished {
            self.kv.release(s.req.id);
            self.completions.push(Completion {
                id: s.req.id,
                arrival_ps: s.req.arrival_ps,
                first_token_ps: s.first_token_ps.unwrap_or(now),
                finish_ps: now,
                input_len: s.req.input_len,
                output_len: s.generated,
            });
        }
    }

    /// Crash semantics: drops every request this scheduler holds —
    /// pending, active, and evicted — releasing their KV, and returns
    /// them (in pending → active → evicted order) so a fleet driver can
    /// retry them elsewhere. Already-finished completions survive; the
    /// request count shrinks so the scheduler reads as drained.
    pub fn crash_drain(&mut self) -> Vec<LostWork> {
        let mut lost = Vec::new();
        for req in self.pending.drain(..) {
            // Pending requests were never admitted: no KV to release.
            lost.push(LostWork { request: req, generated: 0, prefill_done: false });
        }
        for seq in self.active.drain(..).chain(self.evicted.drain(..)) {
            self.kv.release(seq.req.id);
            lost.push(LostWork {
                request: seq.req,
                generated: seq.generated,
                prefill_done: seq.first_token_ps.is_some(),
            });
        }
        self.total_requests -= lost.len();
        lost
    }

    /// Retracts completions by id — the crash path for a prefill pool
    /// whose finished-but-unshipped KV died with the replica (the
    /// "completion" only recorded that the KV was ready to ship).
    /// Returns how many records were removed; the request count shrinks
    /// to match.
    pub fn retract_completions(&mut self, ids: &[u64]) -> usize {
        let before = self.completions.len();
        self.completions.retain(|c| !ids.contains(&c.id));
        let removed = before - self.completions.len();
        self.total_requests -= removed;
        removed
    }

    /// Jumps the clock forward to `t` (no-op if already past it) — the
    /// recovery path: a replica coming back from an outage must not
    /// serve retries in its past.
    pub fn advance_clock_to(&mut self, t: TimePs) {
        self.clock_ps = self.clock_ps.max(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KvCacheConfig;

    fn kv(pages: usize) -> KvCache {
        // 16-token pages at 64 B/token.
        KvCache::new(KvCacheConfig::paged(pages as u64 * 16 * 64, 64))
    }

    fn sched(requests: Vec<Request>) -> Scheduler {
        Scheduler::new(SchedulerConfig::default(), kv(1024), requests)
    }

    #[test]
    fn single_request_runs_prefill_then_decode() {
        let mut s = sched(vec![Request::new(0, 100, 3, 0)]);
        let b1 = s.next_batch().unwrap();
        assert_eq!(b1.prompt_tokens(), 100);
        s.complete_iteration(10);
        let b2 = s.next_batch().unwrap();
        assert_eq!(b2.generated_tokens(), 1);
        assert_eq!(b2.slots[0].kv_past, 100);
        s.complete_iteration(10);
        let b3 = s.next_batch().unwrap();
        assert_eq!(b3.slots[0].kv_past, 101);
        s.complete_iteration(10);
        assert!(s.next_batch().is_none());
        assert!(s.is_done());
        let c = s.completions()[0];
        assert_eq!(c.output_len, 3);
        assert_eq!(c.finish_ps, 30);
        assert_eq!(c.first_token_ps, 10);
    }

    #[test]
    fn iteration_level_admits_mid_flight() {
        let mut s = sched(vec![Request::new(0, 64, 10, 0), Request::new(1, 32, 2, 15)]);
        let b1 = s.next_batch().unwrap();
        assert_eq!(b1.batch_size(), 1);
        s.complete_iteration(20); // clock = 20 > 15: request 1 has arrived
        let b2 = s.next_batch().unwrap();
        assert_eq!(b2.batch_size(), 2);
        assert_eq!(b2.prompt_tokens(), 32); // request 1 prefills
        assert_eq!(b2.generated_tokens(), 2); // both emit a token
    }

    #[test]
    fn request_level_waits_for_drain() {
        let cfg = SchedulerConfig {
            policy: SchedulingPolicy::RequestLevel,
            ..SchedulerConfig::default()
        };
        let mut s = Scheduler::new(
            cfg,
            kv(1024),
            vec![Request::new(0, 64, 3, 0), Request::new(1, 32, 2, 1)],
        );
        let b1 = s.next_batch().unwrap();
        assert_eq!(b1.batch_size(), 1, "static batching admits only at drain");
        s.complete_iteration(10);
        // Request 0 still running: request 1 must keep waiting.
        for _ in 0..2 {
            let b = s.next_batch().unwrap();
            assert_eq!(b.batch_size(), 1);
            s.complete_iteration(10);
        }
        // Batch drained; request 1 finally admitted.
        let b = s.next_batch().unwrap();
        assert_eq!(b.batch_size(), 1);
        assert_eq!(b.prompt_tokens(), 32);
    }

    #[test]
    fn max_batch_caps_concurrency() {
        let cfg = SchedulerConfig { max_batch: 2, ..SchedulerConfig::default() };
        let reqs = (0..5).map(|i| Request::new(i, 16, 4, 0)).collect();
        let mut s = Scheduler::new(cfg, kv(1024), reqs);
        let b = s.next_batch().unwrap();
        assert_eq!(b.batch_size(), 2);
    }

    #[test]
    fn clock_fast_forwards_to_arrivals() {
        let mut s = sched(vec![Request::new(0, 16, 1, 5_000)]);
        let b = s.next_batch().unwrap();
        assert_eq!(b.batch_size(), 1);
        assert_eq!(s.clock_ps(), 5_000);
    }

    #[test]
    fn batch_delay_applies_on_wakeup() {
        let cfg = SchedulerConfig { batch_delay_ps: 500, ..SchedulerConfig::default() };
        let mut s = Scheduler::new(cfg, kv(64), vec![Request::new(0, 16, 1, 1_000)]);
        s.next_batch().unwrap();
        assert_eq!(s.clock_ps(), 1_500);
    }

    #[test]
    fn memory_pressure_evicts_and_reloads() {
        // 4 pages of 16 tokens: two 32-token sequences fill memory; growth
        // forces an eviction, and the victim reloads after the other
        // request finishes.
        let reqs = vec![Request::new(0, 32, 20, 0), Request::new(1, 32, 20, 0)];
        let mut s = Scheduler::new(SchedulerConfig::default(), kv(4), reqs);
        let b1 = s.next_batch().unwrap();
        assert_eq!(b1.batch_size(), 2);
        s.complete_iteration(10);
        // Both want to append token 33 -> two new pages needed, none free.
        let b2 = s.next_batch().unwrap();
        assert!(!b2.evictions.is_empty(), "growth must evict under pressure");
        assert_eq!(s.evicted_len() + s.active_len(), 2);
        // Drive to completion; every request must eventually finish.
        let mut guard = 0;
        s.complete_iteration(10);
        while let Some(_b) = s.next_batch() {
            s.complete_iteration(10);
            guard += 1;
            assert!(guard < 500, "scheduler failed to converge");
        }
        assert!(s.is_done());
    }

    #[test]
    fn admission_blocked_until_memory_frees() {
        // One page short: the second request waits for the first to retire.
        let reqs = vec![Request::new(0, 48, 2, 0), Request::new(1, 48, 2, 0)];
        let mut s = Scheduler::new(SchedulerConfig::default(), kv(4), reqs);
        let b1 = s.next_batch().unwrap();
        assert_eq!(b1.batch_size(), 1, "only one 3-page sequence fits");
        s.complete_iteration(10);
        let b2 = s.next_batch().unwrap();
        assert_eq!(b2.batch_size(), 1);
        s.complete_iteration(10);
        // Request 0 done; request 1 admitted now.
        let b3 = s.next_batch().unwrap();
        assert_eq!(b3.prompt_tokens(), 48);
        s.complete_iteration(10);
        s.next_batch().unwrap();
        s.complete_iteration(10);
        assert!(s.is_done());
        assert_eq!(s.completions().len(), 2);
    }

    #[test]
    fn completions_record_ttft_and_latency() {
        let mut s = sched(vec![Request::new(0, 16, 3, 100)]);
        while let Some(_b) = s.next_batch() {
            s.complete_iteration(50);
        }
        let c = s.completions()[0];
        assert_eq!(c.arrival_ps, 100);
        assert_eq!(c.ttft_ps(), 50);
        assert_eq!(c.latency_ps(), 150);
    }

    #[test]
    fn online_injection_into_empty_scheduler() {
        let mut s = sched(Vec::new());
        assert!(s.next_batch().is_none(), "no work yet");
        assert_eq!(s.next_ready_ps(), None);
        s.push_request(Request::new(0, 16, 2, 1_000));
        assert_eq!(s.next_ready_ps(), Some(1_000));
        let b = s.next_batch().unwrap();
        assert_eq!(b.prompt_tokens(), 16);
        s.complete_iteration(10);
        assert_eq!(s.next_ready_ps(), Some(s.clock_ps()));
        s.next_batch().unwrap();
        s.complete_iteration(10);
        assert!(s.is_done());
        assert_eq!(s.next_ready_ps(), None);
        // A drained scheduler accepts more work.
        s.push_request(Request::new(1, 8, 1, 5_000));
        assert!(!s.is_done());
        assert_eq!(s.next_ready_ps(), Some(5_000));
        s.next_batch().unwrap();
        s.complete_iteration(10);
        assert_eq!(s.completions().len(), 2);
    }

    #[test]
    fn pushed_request_with_past_arrival_joins_now() {
        let mut s = sched(vec![Request::new(0, 64, 8, 0)]);
        s.next_batch().unwrap();
        s.complete_iteration(1_000);
        // Arrival 200 is already behind the clock (1000).
        s.push_request(Request::new(1, 32, 2, 200));
        let b = s.next_batch().unwrap();
        assert_eq!(b.batch_size(), 2);
        assert_eq!(b.prompt_tokens(), 32);
    }

    #[test]
    fn push_request_keeps_arrival_order() {
        let mut s = sched(Vec::new());
        s.push_request(Request::new(2, 8, 1, 3_000));
        s.push_request(Request::new(0, 8, 1, 1_000));
        s.push_request(Request::new(1, 8, 1, 2_000));
        assert_eq!(s.outstanding(), 3);
        let b = s.next_batch().unwrap();
        assert_eq!(b.slots[0].request, 0, "earliest arrival admitted first");
        assert_eq!(s.clock_ps(), 1_000);
    }

    #[test]
    fn next_ready_applies_batch_delay_when_idle() {
        let cfg = SchedulerConfig { batch_delay_ps: 500, ..SchedulerConfig::default() };
        let mut s = Scheduler::new(cfg, kv(64), Vec::new());
        s.push_request(Request::new(0, 16, 1, 1_000));
        assert_eq!(s.next_ready_ps(), Some(1_500));
    }

    #[test]
    fn next_ready_matches_next_batch_for_past_arrivals_under_batch_delay() {
        // A pending request already behind the clock is served at the
        // clock with no wake-up delay; next_ready_ps must agree with
        // where next_batch will actually form the batch.
        let cfg = SchedulerConfig { batch_delay_ps: 5_000, ..SchedulerConfig::default() };
        let mut s = Scheduler::new(cfg, kv(64), vec![Request::new(0, 16, 1, 0)]);
        s.next_batch().unwrap();
        s.complete_iteration(1_000); // clock = 1_000 (no idle fast-forward)
        s.push_request(Request::new(1, 16, 1, 400)); // arrival in the past
        assert_eq!(s.next_ready_ps(), Some(1_000), "no delay for past arrivals");
        s.next_batch().unwrap();
        assert_eq!(s.clock_ps(), 1_000, "batch forms at the clock, not arrival+delay");
    }

    #[test]
    fn prefill_only_completes_at_end_of_prefill() {
        let cfg = SchedulerConfig { mode: SchedulerMode::PrefillOnly, ..Default::default() };
        let mut s = Scheduler::new(cfg, kv(1024), vec![Request::new(0, 100, 50, 0)]);
        let b = s.next_batch().unwrap();
        assert_eq!(b.prompt_tokens(), 100, "the one iteration is the prefill");
        s.complete_iteration(1_000);
        assert!(s.next_batch().is_none(), "no decode iterations in prefill-only mode");
        assert!(s.is_done());
        let c = s.completions()[0];
        assert_eq!(c.finish_ps, 1_000);
        assert_eq!(c.first_token_ps, 1_000);
        assert_eq!(c.output_len, 1, "prefill produces the KV, not the output stream");
        assert_eq!(s.kv().used_pages(), 0, "KV freed once ready to ship");
    }

    #[test]
    fn decode_only_admits_with_prepopulated_kv_and_skips_prefill() {
        let cfg = SchedulerConfig { mode: SchedulerMode::DecodeOnly, ..Default::default() };
        let mut s = Scheduler::new(cfg, kv(1024), vec![Request::new(0, 64, 3, 0)]);
        let b1 = s.next_batch().unwrap();
        assert_eq!(b1.prompt_tokens(), 0, "no prefill slot in decode-only mode");
        assert_eq!(b1.generated_tokens(), 1);
        assert_eq!(b1.slots[0].kv_past, 64, "prompt KV arrived with the handoff");
        // The shipped prompt KV is resident from admission.
        assert_eq!(s.kv().tokens_of(0), Some(64));
        s.complete_iteration(10);
        let b2 = s.next_batch().unwrap();
        assert_eq!(b2.slots[0].kv_past, 65, "decode grows the shipped cache");
        s.complete_iteration(10);
        s.next_batch().unwrap();
        s.complete_iteration(10);
        assert!(s.is_done());
        let c = s.completions()[0];
        assert_eq!(c.output_len, 3);
        assert_eq!(c.first_token_ps, 10, "first token comes from the first decode step");
        assert_eq!(c.finish_ps, 30);
    }

    #[test]
    fn decode_only_matches_unified_decode_tail() {
        // The decode-only scheduler must replay exactly the decode
        // iterations a unified scheduler would run after prefill: same
        // kv_past sequence, same token count.
        let run = |mode: SchedulerMode| {
            let cfg = SchedulerConfig { mode, ..Default::default() };
            let mut s = Scheduler::new(cfg, kv(1024), vec![Request::new(0, 32, 5, 0)]);
            let mut decode_kv = Vec::new();
            while let Some(b) = s.next_batch() {
                for slot in &b.slots {
                    if slot.new_tokens == 1 {
                        decode_kv.push(slot.kv_past);
                    }
                }
                s.complete_iteration(10);
            }
            decode_kv
        };
        let unified = run(SchedulerMode::Unified);
        let decode_only = run(SchedulerMode::DecodeOnly);
        assert_eq!(unified, vec![32, 33, 34, 35]);
        assert_eq!(decode_only, vec![32, 33, 34, 35, 36]);
        // Unified emits tokens 2..=5 from decode (token 1 from prefill);
        // decode-only emits all 5, so it runs one extra decode step. The
        // kv_past progression over the shared steps is identical.
        assert_eq!(unified, decode_only[..4].to_vec());
    }

    #[test]
    fn crash_drain_returns_everything_and_frees_kv() {
        let reqs = vec![
            Request::new(0, 32, 8, 0),   // will be mid-decode at the crash
            Request::new(1, 32, 8, 0),   // ditto
            Request::new(2, 32, 8, 900), // still pending at the crash
        ];
        let mut s = Scheduler::new(SchedulerConfig::default(), kv(1024), reqs);
        s.next_batch().unwrap();
        s.complete_iteration(10); // both prefills done, first tokens out
        let lost = s.crash_drain();
        assert_eq!(lost.len(), 3);
        assert_eq!(lost[0].request.id, 2, "pending first");
        assert!(!lost[0].prefill_done);
        assert_eq!(lost[0].generated, 0);
        assert!(lost[1].prefill_done, "active sequence had prefilled");
        assert_eq!(lost[1].generated, 1);
        assert_eq!(s.kv().used_pages(), 0, "crash releases every KV page");
        assert_eq!(s.outstanding(), 0);
        assert!(s.is_done(), "a crashed-and-drained scheduler reads as done");
        assert_eq!(s.next_ready_ps(), None);
        // The replica can serve again after recovery.
        s.push_request(Request::new(3, 16, 1, 2_000));
        s.next_batch().unwrap();
        s.complete_iteration(10);
        assert_eq!(s.completions().len(), 1);
    }

    #[test]
    fn retract_completions_unwinds_finished_prefills() {
        let cfg = SchedulerConfig { mode: SchedulerMode::PrefillOnly, ..Default::default() };
        let mut s = Scheduler::new(
            cfg,
            kv(1024),
            vec![Request::new(0, 64, 4, 0), Request::new(1, 64, 4, 0)],
        );
        s.next_batch().unwrap();
        s.complete_iteration(10);
        assert_eq!(s.completions().len(), 2);
        assert!(s.is_done());
        assert_eq!(s.retract_completions(&[1]), 1);
        assert_eq!(s.completions().len(), 1);
        assert!(s.is_done(), "the retracted request no longer counts toward the total");
        assert_eq!(s.retract_completions(&[99]), 0, "unknown ids retract nothing");
    }

    #[test]
    fn advance_clock_never_moves_backwards() {
        let mut s = sched(vec![Request::new(0, 16, 1, 0)]);
        s.next_batch().unwrap();
        s.complete_iteration(1_000);
        s.advance_clock_to(500);
        assert_eq!(s.clock_ps(), 1_000, "recovery in the past is a no-op");
        s.advance_clock_to(5_000);
        assert_eq!(s.clock_ps(), 5_000);
    }

    #[test]
    fn deterministic_run() {
        let run = || {
            let reqs: Vec<Request> = (0..20)
                .map(|i| Request::new(i, 16 + (i as usize * 7) % 64, 4, i * 100))
                .collect();
            let mut s = Scheduler::new(SchedulerConfig::default(), kv(64), reqs);
            let mut sig = Vec::new();
            while let Some(b) = s.next_batch() {
                sig.push((b.batch_size(), b.prompt_tokens(), b.evictions.len()));
                s.complete_iteration(1_000);
            }
            sig
        };
        assert_eq!(run(), run());
    }
}
